"""Retail scenario: a supermarket chain with stores of very different size.

The paper's introduction names "supermarket chains where check-out
scanners, located at different stores, gather data unremittingly".  This
example stresses two assumptions the paper's evaluation makes:

* sites hold *equal* shares of the data → here the stores are heavily
  skewed (a flagship store and small branches),
* sites hold *random* shares → here we also try geographic stores, where
  each store only sees its own region's customers.

Customers are 2-D feature vectors (e.g. basket value vs visit frequency,
rescaled); segments are the density clusters.  We run DBDC under three
partitionings and compare the quality of each against a central run.

Usage::

    python examples/retail_chain.py
"""

from __future__ import annotations

import numpy as np

from repro.clustering.dbscan import dbscan
from repro.core.dbdc import DBDCConfig, run_dbdc_partitioned
from repro.data.generators import random_cluster_dataset
from repro.distributed.partition import partition
from repro.quality import evaluate_quality

EPS, MIN_PTS = 2.2, 6
N_CUSTOMERS = 6_000
N_STORES = 6


def main() -> None:
    customers, __ = random_cluster_dataset(
        N_CUSTOMERS,
        n_clusters=8,
        noise_fraction=0.06,
        min_separation=20.0,
        seed=11,
    )
    central = dbscan(customers, EPS, MIN_PTS)
    print(
        f"{N_CUSTOMERS} customers, central DBSCAN finds "
        f"{central.n_clusters} segments ({central.n_noise} unsegmented)"
    )

    config = DBDCConfig(eps_local=EPS, min_pts_local=MIN_PTS, scheme="rep_kmeans")
    print(f"\n{'partitioning':16s} {'P^I':>7s} {'P^II':>7s} {'repr.':>7s} "
          f"{'store sizes'}")
    for strategy in ("uniform_random", "skewed_sizes", "spatial_blocks"):
        assignment = partition(customers, N_STORES, strategy, seed=3)
        run = run_dbdc_partitioned(customers, assignment, config)
        quality = evaluate_quality(
            run.labels_in_original_order(), central.labels, qp=MIN_PTS
        )
        sizes = np.bincount(assignment, minlength=N_STORES)
        print(
            f"{strategy:16s} {quality.q_p1_percent:6.1f}% "
            f"{quality.q_p2_percent:6.1f}% "
            f"{100 * run.result.representative_fraction:6.1f}% "
            f"{list(map(int, sizes))}"
        )

    print(
        "\nTakeaway: DBDC is robust to how the chain's data is split. "
        "Random splits (the paper's setting) dilute density evenly and "
        "still score high; skewed and geographic stores can even score "
        "higher, because each store then sees its local segments at full "
        "density — segments straddling a store border are repaired by the "
        "global merge of border representatives."
    )


if __name__ == "__main__":
    main()
