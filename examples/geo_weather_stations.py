"""Geographic scenario: DBDC over a *metric* space (great-circle distance).

Section 4 lists among DBSCAN's advantages that it "can be used for all
kinds of metric data spaces and is not confined to vector spaces".  This
example exercises that property through the whole DBDC pipeline:

* weather stations are (lat, lon) positions on the sphere, distances are
  great-circle (haversine) — a metric with no meaningful coordinate
  arithmetic (so k-means-style centroids are out; ``REP_Scor`` uses only
  actual objects and distances),
* region queries run through the M-tree, the paper's cited access method
  for metric data (grids/kd-trees need coordinate axes, the M-tree needs
  only the triangle inequality),
* three regional data centers each hold a share of the stations; storm
  systems spanning data centers are recovered by the global merge.

Usage::

    python examples/geo_weather_stations.py
"""

from __future__ import annotations

import numpy as np

from repro.clustering.dbscan import dbscan
from repro.core.dbdc import DBDCConfig, run_dbdc_partitioned
from repro.data.distance import Metric, register_metric
from repro.distributed.partition import uniform_random
from repro.quality import evaluate_quality

EARTH_RADIUS_KM = 6371.0


def _haversine_pair(p, q):
    p, q = np.asarray(p, dtype=float), np.asarray(q, dtype=float)
    dlat, dlon = q[0] - p[0], q[1] - p[1]
    a = np.sin(dlat / 2) ** 2 + np.cos(p[0]) * np.cos(q[0]) * np.sin(dlon / 2) ** 2
    return float(2 * np.arcsin(np.sqrt(np.clip(a, 0, 1))))


def _haversine_many(p, points):
    p, points = np.asarray(p, dtype=float), np.asarray(points, dtype=float)
    dlat = points[:, 0] - p[0]
    dlon = points[:, 1] - p[1]
    a = np.sin(dlat / 2) ** 2 + np.cos(p[0]) * np.cos(points[:, 0]) * np.sin(dlon / 2) ** 2
    return 2 * np.arcsin(np.sqrt(np.clip(a, 0, 1)))


haversine = Metric("haversine", _haversine_pair, _haversine_many)
register_metric(haversine)


def make_stations(seed: int = 5) -> np.ndarray:
    """Stations clustered around 5 storm systems + scattered singletons."""
    rng = np.random.default_rng(seed)
    storm_centers = np.radians(
        np.asarray(
            [
                [48.0, 11.0],   # Munich
                [40.7, -74.0],  # New York
                [-33.9, 151.2],  # Sydney
                [35.7, 139.7],  # Tokyo
                [19.4, -99.1],  # Mexico City
            ]
        )
    )
    stations = [
        center + rng.normal(0, 0.012, size=(250, 2)) for center in storm_centers
    ]
    lat = rng.uniform(np.radians(-60), np.radians(70), size=120)
    lon = rng.uniform(-np.pi, np.pi, size=120)
    scattered = np.column_stack([lat, lon])
    return np.concatenate(stations + [scattered])


def main() -> None:
    stations = make_stations()
    # Eps = 150 km expressed as a central angle.
    eps_local = 150.0 / EARTH_RADIUS_KM
    min_pts = 5

    central = dbscan(stations, eps_local, min_pts, metric=haversine, index_kind="mtree")
    print(
        f"{stations.shape[0]} stations; central DBSCAN (haversine, M-tree) "
        f"finds {central.n_clusters} storm systems, {central.n_noise} isolated stations"
    )

    assignment = uniform_random(stations.shape[0], 3, seed=0)
    config = DBDCConfig(
        eps_local=eps_local,
        min_pts_local=min_pts,
        scheme="rep_scor",  # representatives must be real stations on a sphere
        metric=haversine,
        index_kind="mtree",
    )
    run = run_dbdc_partitioned(stations, assignment, config)
    result = run.result
    print(
        f"DBDC over 3 data centers: {result.n_global_clusters} global storm "
        f"systems from {result.n_representatives} representatives "
        f"({100 * result.representative_fraction:.1f}% of the stations)"
    )
    print(
        f"Eps_global = {result.eps_global_used * EARTH_RADIUS_KM:.0f} km "
        f"(derived default; 2·Eps_local = {2 * eps_local * EARTH_RADIUS_KM:.0f} km)"
    )
    quality = evaluate_quality(
        run.labels_in_original_order(), central.labels, qp=min_pts
    )
    print(
        f"quality vs central: P^I = {quality.q_p1_percent:.1f}%, "
        f"P^II = {quality.q_p2_percent:.1f}%"
    )


if __name__ == "__main__":
    main()
