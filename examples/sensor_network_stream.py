"""Sensor-network scenario: evolving readings, lazy model resynchronization.

The paper's introduction names "distributed mobile networks, sensor
networks" as motivating settings, and §4 argues for DBSCAN partly because
its incremental version means a site only re-transmits its model when the
local clustering "changes considerably".  This example runs that complete
loop with :class:`repro.distributed.StreamingScenario`:

* four sensor gateways receive readings round after round,
* each gateway maintains its clustering incrementally (no re-clustering),
* a gateway uploads a fresh local model only when it drifted past the
  threshold, and the server refreshes the global model from the latest
  models,
* midway through, a new phenomenon appears in one region and old readings
  expire — watch which rounds actually cause uploads.

Usage::

    python examples/sensor_network_stream.py
"""

from __future__ import annotations

import numpy as np

from repro.data.generators import gaussian_blobs
from repro.distributed import StreamingScenario

N_SITES = 4
ROUNDS = 8


def readings_for_round(round_index: int, rng: np.random.Generator) -> list[np.ndarray]:
    """Per-site arrivals: two stable hotspots; a third appears at round 4."""
    arrivals = []
    for __ in range(N_SITES):
        hotspots = [[10.0, 10.0], [40.0, 15.0]]
        if round_index >= 4:
            hotspots.append([25.0, 45.0])  # new phenomenon
        counts = [30] * len(hotspots)
        points, __labels = gaussian_blobs(
            counts, np.asarray(hotspots), 1.2, seed=rng
        )
        arrivals.append(points)
    return arrivals


def main() -> None:
    rng = np.random.default_rng(7)
    scenario = StreamingScenario(
        N_SITES,
        eps_local=1.8,
        min_pts_local=5,
        drift_threshold=0.25,
    )
    print(f"{'round':>5s} {'arrivals':>9s} {'uploads':>8s} {'bytes up':>9s} "
          f"{'global clusters':>16s} {'representatives':>16s}")
    expired: list[list[int]] = [[] for __ in range(N_SITES)]
    first_round_ids: list[list[int]] = [[] for __ in range(N_SITES)]
    for round_index in range(ROUNDS):
        arrivals = readings_for_round(round_index, rng)
        # Round 6: the oldest readings expire on every gateway.
        departures = expired if round_index == 6 else None
        stats = scenario.run_round(arrivals, departures)
        if round_index == 0:
            # Remember this round's ids so they can expire later.
            for site_idx, site in enumerate(scenario.sites):
                first_round_ids[site_idx] = list(range(arrivals[site_idx].shape[0]))
            expired = first_round_ids
        print(
            f"{stats.round_index:5d} {stats.arrivals:9d} "
            f"{stats.sites_transmitted:8d} {stats.bytes_up:9d} "
            f"{stats.n_global_clusters:16d} {stats.n_representatives:16d}"
        )

    print(
        f"\nlazy policy uploaded {scenario.total_bytes_up()} bytes across "
        f"{ROUNDS} rounds; an eager per-round upload of every model would "
        f"have cost ~{scenario.eager_bytes_up()} bytes "
        f"({scenario.eager_bytes_up() / max(1, scenario.total_bytes_up()):.1f}x)"
    )
    print(
        "note how uploads concentrate on round 0 (models are new) and "
        "round 4 (a phenomenon appeared); steady-state rounds cost nothing "
        "— even round 6's expiry of old readings, which thins the stable "
        "hotspots without moving them, correctly triggers no upload."
    )


if __name__ == "__main__":
    main()
