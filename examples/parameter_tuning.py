"""Choosing DBSCAN parameters for a DBDC deployment.

DBDC inherits DBSCAN's ``Eps``/``MinPts`` (the paper never says how its
values were picked).  This example walks the standard workflow on a fresh
data set:

1. the sorted k-distance plot (DBSCAN paper §4.2) and its knee,
2. a quick central sanity run at the suggested parameters,
3. the §5 trade-off: how ``Eps_local`` steers the number of transmitted
   representatives vs the distributed clustering's quality,
4. distributed aggregate queries over the final federation.

Usage::

    python examples/parameter_tuning.py
"""

from __future__ import annotations

import numpy as np

from repro.clustering.dbscan import dbscan
from repro.clustering.parameters import (
    sorted_k_distance_plot,
    suggest_parameters,
)
from repro.core.dbdc import DBDCConfig, run_dbdc_partitioned
from repro.data.generators import random_cluster_dataset
from repro.distributed import CentralServer, ClientSite, FederationQueries
from repro.distributed.partition import split, uniform_random
from repro.quality import evaluate_quality


def main() -> None:
    points, __ = random_cluster_dataset(
        5_000, n_clusters=9, noise_fraction=0.08, min_separation=18.0, seed=23
    )

    # 1. k-distance knee.
    eps, min_pts = suggest_parameters(points)
    curve = sorted_k_distance_plot(points, min_pts - 1)
    print(f"suggested parameters: Eps = {eps:.2f}, MinPts = {min_pts}")
    print(
        f"k-dist curve: max {curve[0]:.2f}, knee {eps:.2f}, min {curve[-1]:.2f}"
    )

    # 2. Central sanity run.
    central = dbscan(points, eps, min_pts)
    print(
        f"central DBSCAN at the knee: {central.n_clusters} clusters, "
        f"{central.n_noise} noise ({100 * central.n_noise / len(points):.1f}%)"
    )

    # 3. The §5 trade-off around the suggested Eps.
    assignment = uniform_random(points.shape[0], 4, seed=0)
    print(f"\n{'Eps_local':>10s} {'repr. %':>8s} {'bytes up':>9s} {'P^II %':>7s}")
    for factor in (0.75, 1.0, 1.5):
        eps_local = factor * eps
        reference = dbscan(points, eps_local, min_pts)
        config = DBDCConfig(eps_local=eps_local, min_pts_local=min_pts)
        run = run_dbdc_partitioned(points, assignment, config)
        quality = evaluate_quality(
            run.labels_in_original_order(), reference.labels, qp=min_pts
        )
        print(
            f"{eps_local:10.2f} {100 * run.result.representative_fraction:8.1f} "
            f"{run.result.bytes_up:9d} {quality.q_p2_percent:7.1f}"
        )

    # 4. Stand up the federation at the chosen parameters and query it.
    sites = [
        ClientSite(sid, part, eps_local=eps, min_pts_local=min_pts)
        for sid, part in enumerate(split(points, assignment))
    ]
    server = CentralServer()
    for site in sites:
        server.receive_local_model(site.run_local_clustering())
    model = server.build()
    for site in sites:
        site.receive_global_model(model)
    queries = FederationQueries(sites)
    print("\nfederation summary (distributed aggregates, no raw data moved):")
    for aggregate in queries.cluster_summary()[:5]:
        print(
            f"  cluster {aggregate.global_id}: {aggregate.count} objects, "
            f"centroid ({aggregate.centroid[0]:.1f}, {aggregate.centroid[1]:.1f}), "
            f"spread ({aggregate.std[0]:.1f}, {aggregate.std[1]:.1f}), "
            f"per-site {aggregate.per_site_counts}"
        )
    print(f"  ... plus {max(0, len(queries.cluster_summary()) - 5)} more; "
          f"{queries.noise_count()} noise objects federation-wide")


if __name__ == "__main__":
    main()
