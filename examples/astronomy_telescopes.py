"""Astronomy scenario: telescopes streaming detections to a central site.

The paper's introduction motivates DBDC with space telescopes that each
"collect 1GB of data per hour" — far too much to centralize.  This example
simulates that setting end to end:

* three observatories each observe (different random subsets of) the same
  sky and cluster their detections locally,
* only the tiny local models travel over a simulated WAN link,
* the server builds the global model **incrementally** as models arrive
  (the §6 extension: "we do not have to wait for all clients"),
* the final broadcast lets each observatory tag its detections with global
  source ids.

Usage::

    python examples/astronomy_telescopes.py
"""

from __future__ import annotations

import numpy as np

from repro.data.generators import gaussian_blobs, uniform_noise
from repro.distributed import (
    ClientSite,
    IncrementalServer,
    LinkSpec,
    SimulatedNetwork,
)
from repro.distributed.network import SERVER

EPS_LOCAL = 0.9
MIN_PTS = 5
N_SOURCES = 6


def make_sky(seed: int = 0) -> np.ndarray:
    """The 'true sky': six stellar sources plus background events."""
    rng = np.random.default_rng(seed)
    centers = rng.uniform(5, 95, size=(N_SOURCES, 2))
    sources, __ = gaussian_blobs([400] * N_SOURCES, centers, 1.0, seed=rng)
    background = uniform_noise(300, (0.0, 100.0), dim=2, seed=rng)
    return np.concatenate([sources, background])


def main() -> None:
    sky = make_sky()
    rng = np.random.default_rng(1)
    # Each telescope detects a random ~1/3 of all events (overlapping
    # fields of view are fine: DBDC never assumes disjoint data).
    observatories = []
    for site_id, name in enumerate(["Chile", "Hawaii", "Canary Islands"]):
        mask = rng.random(sky.shape[0]) < 0.34
        observatories.append(
            (
                name,
                ClientSite(
                    site_id,
                    sky[mask],
                    eps_local=EPS_LOCAL,
                    min_pts_local=MIN_PTS,
                    scheme="rep_scor",
                ),
            )
        )

    network = SimulatedNetwork(LinkSpec(bandwidth_bytes_per_s=1.25e6, latency_s=0.12))
    server = IncrementalServer(eps_global=2 * EPS_LOCAL, dim=2)

    print("== local clustering and streaming model upload ==")
    for name, site in observatories:
        model = site.run_local_clustering()
        message = network.send(site.site_id, SERVER, "local_model", model.to_bytes())
        server.receive_local_model(model)
        snapshot = server.snapshot()
        print(
            f"{name:15s}: {site.points.shape[0]:5d} detections → "
            f"{len(model):3d} representatives ({message.n_bytes} bytes, "
            f"{message.sim_seconds * 1000:.0f} ms) | global model now has "
            f"{snapshot.n_global_clusters} clusters from "
            f"{len(snapshot)} representatives"
        )

    global_model = server.snapshot()
    print("\n== broadcast and relabeling ==")
    payload = global_model.to_bytes()
    for name, site in observatories:
        network.send(SERVER, site.site_id, "global_model", payload)
        stats = site.receive_global_model(global_model)
        print(
            f"{name:15s}: {stats.n_noise_promoted} background events joined "
            f"a source, {stats.n_still_noise} remain background"
        )

    # What did we save versus shipping every detection to the server?
    stats = network.stats()
    raw_bytes, raw_seconds = network.raw_data_cost(sky.shape[0], 2)
    print("\n== transmission ==")
    print(f"model traffic: {stats.bytes_total} bytes "
          f"({stats.sim_seconds_total:.2f} s simulated)")
    print(f"raw-data baseline: {raw_bytes} bytes ({raw_seconds:.2f} s simulated)")
    print(f"volume saving: {100 * (1 - stats.bytes_upstream / raw_bytes):.1f}%")

    # Server-side catalogue query (§7): which site sees source 0?
    print("\n== membership queries ==")
    source = int(global_model.global_labels[0])
    for name, site in observatories:
        count = site.objects_of_global_cluster(source).shape[0]
        print(f"{name:15s}: {count} detections of global source {source}")


if __name__ == "__main__":
    main()
