"""Tuning ``Eps_global`` — the server's one free parameter.

Section 6 of the paper: the merge radius should be user-tunable; the
derived default (max ε_r over all representatives) lands near
``2·Eps_local``.  The paper also sketches an OPTICS-based alternative that
explores *all* radii with a single clustering run.  This example shows both:

* a sweep of explicit ``Eps_global`` values with the quality they achieve,
* one OPTICS run over the representatives, cut at several radii without
  re-clustering.

Usage::

    python examples/eps_global_tuning.py
"""

from __future__ import annotations

from repro.clustering.dbscan import dbscan
from repro.core.dbdc import DBDCConfig, run_dbdc_partitioned
from repro.core.global_model import build_global_model_via_optics, default_eps_global
from repro.core.local import build_rep_scor_model
from repro.data.datasets import dataset_a
from repro.distributed.partition import split, uniform_random
from repro.quality import evaluate_quality

N_SITES = 4


def main() -> None:
    data = dataset_a(cardinality=4_000)
    central = dbscan(data.points, data.eps_local, data.min_pts)
    assignment = uniform_random(data.n, N_SITES, seed=0)

    # --- Sweep explicit Eps_global values -----------------------------
    print("Eps_global sweep (quality vs central clustering):")
    print(f"{'factor':>7s} {'Eps_global':>11s} {'clusters':>9s} {'P^II':>7s}")
    for factor in (0.5, 1.0, 2.0, 4.0, 8.0):
        config = DBDCConfig(
            eps_local=data.eps_local,
            min_pts_local=data.min_pts,
            eps_global=factor * data.eps_local,
        )
        run = run_dbdc_partitioned(data.points, assignment, config)
        quality = evaluate_quality(
            run.labels_in_original_order(), central.labels, qp=data.min_pts
        )
        print(
            f"{factor:7.1f} {run.result.eps_global_used:11.2f} "
            f"{run.result.n_global_clusters:9d} {quality.q_p2_percent:6.1f}%"
        )

    # --- The derived default ------------------------------------------
    site_points = split(data.points, assignment)
    models = [
        build_rep_scor_model(
            pts, data.eps_local, data.min_pts, site_id=sid
        ).model
        for sid, pts in enumerate(site_points)
    ]
    derived = default_eps_global(models)
    print(
        f"\nderived default Eps_global = max ε_r = {derived:.2f} "
        f"(2·Eps_local = {2 * data.eps_local:.2f})"
    )

    # --- OPTICS alternative: many cuts from one clustering -------------
    print("\nOPTICS-based global model (one run, many cuts):")
    for cut_factor in (1.0, 2.0, 4.0):
        cut = cut_factor * data.eps_local
        model, stats = build_global_model_via_optics(
            models, eps_max=8 * data.eps_local, eps_cut=cut
        )
        print(
            f"  cut at {cut:5.2f}: {model.n_global_clusters:3d} global "
            f"clusters ({stats.n_merged_clusters} merged, "
            f"{stats.n_singletons} singleton)"
        )


if __name__ == "__main__":
    main()
