"""Multinational scenario: hierarchical DBDC over continents.

The paper's introduction motivates DBDC with "international companies such
as DaimlerChrysler [that] have some data which is located in Europe and
some data in the US" and cannot centralize it.  This example extends the
paper's two-level protocol with a regional tier:

    plants → continental servers → headquarters

Each continental server *condenses* its plants' local models before the
transatlantic hop: a representative within ``Eps_local`` of an already-kept
one is absorbed, and the kept representative's ε-range grows so coverage
is preserved.  The long-haul link then carries a fraction of what a flat
topology would send, at nearly identical clustering quality.

Usage::

    python examples/multinational_hierarchy.py
"""

from __future__ import annotations

import numpy as np

from repro.clustering.dbscan import dbscan
from repro.core.dbdc import DBDCConfig, run_dbdc_partitioned
from repro.data.datasets import dataset_a
from repro.distributed.hierarchy import run_hierarchical_dbdc
from repro.distributed.partition import split, uniform_random
from repro.quality import evaluate_quality

N_PLANTS_PER_CONTINENT = 4
CONTINENTS = ("Europe", "North America", "Asia")


def main() -> None:
    data = dataset_a(cardinality=9_000)
    n_sites = N_PLANTS_PER_CONTINENT * len(CONTINENTS)
    assignment = uniform_random(data.n, n_sites, seed=1)
    plants = split(data.points, assignment)
    regions = [
        plants[i * N_PLANTS_PER_CONTINENT : (i + 1) * N_PLANTS_PER_CONTINENT]
        for i in range(len(CONTINENTS))
    ]

    report = run_hierarchical_dbdc(
        regions, eps_local=data.eps_local, min_pts_local=data.min_pts
    )
    print(f"{data.n} records across {n_sites} plants on {len(CONTINENTS)} continents")
    print(f"global clusters found: {report.global_model.n_global_clusters}\n")

    print(f"{'continent':>14s} {'plants':>7s} {'reps in':>8s} {'reps out':>9s} "
          f"{'long-haul bytes':>16s}")
    for name, region in zip(CONTINENTS, report.regions):
        print(
            f"{name:>14s} {len(region.site_ids):7d} "
            f"{region.n_received_representatives:8d} "
            f"{region.n_forwarded_representatives:9d} "
            f"{region.bytes_up_region:16d}"
        )
    print(
        f"\nlong-haul traffic: {report.long_haul_bytes} bytes vs "
        f"{report.flat_equivalent_bytes} bytes flat "
        f"({100 * report.long_haul_saving:.0f}% of flat)"
    )

    # Quality: hierarchical vs flat vs central.
    central = dbscan(data.points, data.eps_local, data.min_pts)
    labels = np.empty(data.n, dtype=np.intp)
    for sid in range(n_sites):
        members = np.flatnonzero(assignment == sid)
        labels[members] = report.sites[sid].global_labels
    hierarchical_q = evaluate_quality(labels, central.labels, qp=data.min_pts)

    flat = run_dbdc_partitioned(
        data.points,
        assignment,
        DBDCConfig(eps_local=data.eps_local, min_pts_local=data.min_pts),
    )
    flat_q = evaluate_quality(
        flat.labels_in_original_order(), central.labels, qp=data.min_pts
    )
    print(
        f"quality vs central: hierarchical P^II = "
        f"{hierarchical_q.q_p2_percent:.1f}%, flat P^II = "
        f"{flat_q.q_p2_percent:.1f}%"
    )


if __name__ == "__main__":
    main()
