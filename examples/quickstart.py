"""Quickstart: cluster a distributed data set with DBDC in ~20 lines.

Runs the full protocol of the paper on data set A spread over four client
sites, then compares the result against a central DBSCAN run using the
paper's quality measures.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import DBDCConfig, dataset_a, dbscan, run_dbdc_partitioned
from repro.distributed import uniform_random
from repro.quality import evaluate_quality


def main() -> None:
    # 1. The data: 8 700 2-D points in 13 clusters (+ noise), as in Fig. 6.
    data = dataset_a()
    print(f"data set A: {data.n} objects, recommended Eps={data.eps_local}, "
          f"MinPts={data.min_pts}")

    # 2. Spread the objects over 4 independent client sites (the paper's
    #    "equally distributed" setting).
    assignment = uniform_random(data.n, n_sites=4, seed=0)

    # 3. Run DBDC: local DBSCAN per site → REP_Scor local models → global
    #    DBSCAN over the representatives → relabeling on every site.
    config = DBDCConfig(eps_local=data.eps_local, min_pts_local=data.min_pts)
    run = run_dbdc_partitioned(data.points, assignment, config)
    result = run.result
    print(f"DBDC found {result.n_global_clusters} global clusters using "
          f"{result.n_representatives} representatives "
          f"({100 * result.representative_fraction:.1f}% of the data volume)")
    print(f"runtime (paper accounting): max local {result.max_local_seconds:.2f}s "
          f"+ global {result.global_seconds:.2f}s = {result.overall_seconds:.2f}s")

    # 4. Compare against clustering everything centrally.
    central = dbscan(data.points, data.eps_local, data.min_pts)
    quality = evaluate_quality(
        run.labels_in_original_order(), central.labels, qp=data.min_pts
    )
    print(f"central DBSCAN found {central.n_clusters} clusters")
    print(f"quality vs central: P^I = {quality.q_p1_percent:.1f}%, "
          f"P^II = {quality.q_p2_percent:.1f}%")


if __name__ == "__main__":
    main()
