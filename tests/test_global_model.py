"""Unit tests for the server-side global model (Section 6)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.global_model import (
    MIN_PTS_GLOBAL,
    build_global_model,
    build_global_model_via_optics,
    default_eps_global,
)
from repro.core.models import LocalModel, Representative


def _model(site_id, reps):
    return LocalModel(
        site_id=site_id,
        representatives=[
            Representative(np.asarray(p, dtype=float), eps, site_id, cid)
            for p, eps, cid in reps
        ],
        n_objects=100,
        scheme="rep_scor",
        eps_local=1.0,
        min_pts_local=5,
    )


class TestDefaultEpsGlobal:
    def test_max_over_all_sites(self):
        m1 = _model(0, [([0, 0], 1.5, 0)])
        m2 = _model(1, [([5, 5], 1.9, 0), ([9, 9], 1.2, 1)])
        assert default_eps_global([m1, m2]) == 1.9

    def test_empty_models(self):
        assert default_eps_global([]) == 0.0
        assert default_eps_global([_model(0, [])]) == 0.0

    def test_default_close_to_twice_eps_local(self):
        """Section 6: the ε_r-derived default lands near 2·Eps_local."""
        from repro.core.local import build_rep_scor_model
        from repro.data.generators import gaussian_blobs

        points, __ = gaussian_blobs([200], np.asarray([[0.0, 0.0]]), 1.0, seed=5)
        outcome = build_rep_scor_model(points, 0.5, 5)
        eps_default = default_eps_global([outcome.model])
        assert 0.5 < eps_default <= 1.0 + 1e-9  # (Eps, 2·Eps]


class TestBuildGlobalModel:
    def test_figure4_merge_across_sites(self):
        """The paper's Figure 4: four representatives from three sites in a
        chain merge into ONE global cluster at Eps_global = 2·Eps_local,
        but stay separate at Eps_global = Eps_local."""
        eps_local = 1.0
        chain = [
            _model(0, [([0.0, 0.0], 2.0, 0), ([1.8, 0.0], 2.0, 0)]),
            _model(1, [([3.6, 0.0], 2.0, 0)]),
            _model(2, [([5.4, 0.0], 2.0, 0)]),
        ]
        merged, stats = build_global_model(chain, eps_global=2 * eps_local)
        assert merged.n_global_clusters == 1
        assert stats.n_merged_clusters == 1
        separate, stats2 = build_global_model(chain, eps_global=eps_local)
        assert separate.n_global_clusters == 4
        assert stats2.n_singletons == 4

    def test_min_pts_global_is_two(self):
        model, __ = build_global_model([_model(0, [([0, 0], 1.0, 0)])], eps_global=1.0)
        assert model.min_pts_global == MIN_PTS_GLOBAL == 2

    def test_singletons_promoted_to_own_clusters(self):
        models = [_model(0, [([0, 0], 1.0, 0), ([100, 100], 1.0, 1)])]
        model, stats = build_global_model(models, eps_global=2.0)
        assert model.n_global_clusters == 2
        assert stats.n_singletons == 2
        assert (model.global_labels >= 0).all()

    def test_default_eps_used_when_none(self):
        models = [_model(0, [([0, 0], 1.7, 0)])]
        model, __ = build_global_model(models)
        assert model.eps_global == 1.7

    def test_empty_input(self):
        model, stats = build_global_model([_model(0, [])])
        assert len(model) == 0
        assert stats.n_representatives == 0

    def test_representative_order_preserved(self):
        m1 = _model(0, [([0, 0], 1.0, 0)])
        m2 = _model(1, [([5, 5], 1.0, 0)])
        model, __ = build_global_model([m1, m2], eps_global=1.0)
        assert model.representatives[0].site_id == 0
        assert model.representatives[1].site_id == 1

    def test_stats_counts_consistent(self):
        models = [
            _model(0, [([0, 0], 1.0, 0), ([1, 0], 1.0, 0), ([50, 50], 1.0, 1)])
        ]
        model, stats = build_global_model(models, eps_global=1.5)
        assert stats.n_representatives == 3
        assert stats.n_merged_clusters == 1
        assert stats.n_singletons == 1
        assert model.n_global_clusters == 2


class TestOpticsVariant:
    def test_matches_dbscan_based_model(self, rng):
        points = rng.normal(size=(30, 2))
        models = [
            _model(0, [(p, 1.0, i) for i, p in enumerate(points[:15])]),
            _model(1, [(p, 1.0, i) for i, p in enumerate(points[15:])]),
        ]
        via_dbscan, __ = build_global_model(models, eps_global=0.8)
        via_optics, __ = build_global_model_via_optics(
            models, eps_max=1.6, eps_cut=0.8
        )
        # Same number of global clusters (partitions agree up to borders;
        # representatives are "cores" at MinPts=2 almost always).
        assert via_optics.n_global_clusters == via_dbscan.n_global_clusters

    def test_multiple_cuts_from_one_run(self):
        chain = [_model(0, [([float(i), 0.0], 1.0, i) for i in range(5)])]
        tight, __ = build_global_model_via_optics(chain, eps_max=4.0, eps_cut=0.5)
        loose, __ = build_global_model_via_optics(chain, eps_max=4.0, eps_cut=1.5)
        assert tight.n_global_clusters == 5
        assert loose.n_global_clusters == 1
