"""Unit + property tests: incremental DBSCAN == batch DBSCAN.

The maintained labelling must always equal a from-scratch DBSCAN over the
current point set *as a partition of the core points* (cluster ids and
order-dependent border claims may differ; noise must match exactly).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering.dbscan import dbscan
from repro.clustering.incremental import IncrementalDBSCAN
from repro.clustering.labels import NOISE


def assert_equivalent_to_batch(inc: IncrementalDBSCAN) -> None:
    """Compare the incremental state against a fresh DBSCAN run."""
    points = inc.points()
    if points.size == 0:
        return
    batch = dbscan(points, inc.eps, inc.min_pts, index_kind="brute")
    live = inc.live_indices()
    inc_labels = inc.labels()
    inc_core = np.asarray([inc.is_core(int(i)) for i in live])
    np.testing.assert_array_equal(inc_core, batch.core_mask)
    # Core partition equal up to renaming (bijectively).
    mapping: dict[int, int] = {}
    reverse: dict[int, int] = {}
    for a, b in zip(inc_labels[batch.core_mask], batch.labels[batch.core_mask]):
        assert a >= 0 and b >= 0
        assert mapping.setdefault(int(a), int(b)) == int(b)
        assert reverse.setdefault(int(b), int(a)) == int(a)
    # A point is clustered incrementally iff it is clustered in batch
    # (border points may differ in *which* cluster, not in noise-ness)...
    np.testing.assert_array_equal(inc_labels == NOISE, batch.labels == NOISE)


class TestValidation:
    def test_rejects_bad_eps(self):
        with pytest.raises(ValueError, match="eps"):
            IncrementalDBSCAN(0.0, 3, 2)

    def test_rejects_bad_min_pts(self):
        with pytest.raises(ValueError, match="min_pts"):
            IncrementalDBSCAN(1.0, 0, 2)


class TestInsertionCases:
    def test_noise_insertion(self):
        inc = IncrementalDBSCAN(1.0, 3, 2)
        idx = inc.insert([0.0, 0.0])
        assert inc.label_of(idx) == NOISE
        assert not inc.is_core(idx)

    def test_cluster_creation(self):
        inc = IncrementalDBSCAN(1.0, 3, 2)
        ids = [inc.insert(p) for p in ([0.0, 0.0], [0.5, 0.0], [0.0, 0.5])]
        labels = {inc.label_of(i) for i in ids}
        assert labels == {0} or len(labels) == 1 and NOISE not in labels
        assert inc.cluster_count() == 1

    def test_absorption_of_border_point(self):
        inc = IncrementalDBSCAN(1.0, 3, 2)
        for p in ([0.0, 0.0], [0.5, 0.0], [0.0, 0.5]):
            inc.insert(p)
        border = inc.insert([0.9, 0.0])  # near the cluster, itself non-core?
        assert inc.label_of(border) >= 0

    def test_merge_two_clusters(self):
        inc = IncrementalDBSCAN(1.0, 3, 2)
        left = [inc.insert(p) for p in ([0.0, 0.0], [0.5, 0.0], [0.0, 0.5])]
        right = [inc.insert(p) for p in ([3.0, 0.0], [3.5, 0.0], [3.0, 0.5])]
        assert inc.cluster_count() == 2
        # The bridge point connects both sides.
        inc.insert([1.7, 0.0])
        inc.insert([1.7, 0.4])
        inc.insert([2.4, 0.0])
        assert_equivalent_to_batch(inc)

    def test_noise_promoted_when_density_grows(self):
        inc = IncrementalDBSCAN(1.0, 4, 2)
        a = inc.insert([0.0, 0.0])
        b = inc.insert([0.5, 0.0])
        assert inc.label_of(a) == NOISE
        inc.insert([0.0, 0.5])
        inc.insert([0.5, 0.5])
        assert inc.label_of(a) >= 0
        assert inc.label_of(b) >= 0

    def test_disconnected_newly_core_groups_stay_separate(self):
        """Regression (hypothesis seed 19173): a non-core insertion can
        push two far-apart neighbors over MinPts simultaneously; the two
        fresh cores are NOT density-connected through the non-core new
        point and must found/extend *separate* clusters."""
        inc = IncrementalDBSCAN(1.0, 3, 2)
        # Two pairs, each one point short of a core, sitting just under
        # 2*eps apart; the bridge point is within eps of one member of
        # each pair but ends up non-core itself (2 neighbors < MinPts-1).
        left_a = inc.insert([0.0, 0.0])
        left_b = inc.insert([-0.8, 0.0])
        right_a = inc.insert([1.9, 0.0])
        right_b = inc.insert([2.7, 0.0])
        assert inc.cluster_count() == 0
        bridge = inc.insert([0.95, 0.0])  # within eps of left_a and right_a
        assert_equivalent_to_batch(inc)
        # left_a and right_a are now core; bridge has only 2 neighbors
        # (min_pts=3 counts the point itself: bridge has {bridge, left_a,
        # right_a} = 3 → actually core here, so shift the geometry):
        # ensured by the batch-equivalence assertion above either way.

    def test_non_core_bridge_does_not_merge(self):
        """The sharp version: the bridge is non-core, so the two fresh
        cores must stay in different clusters."""
        inc = IncrementalDBSCAN(1.0, 4, 2)
        for p in ([0.0, 0.0], [-0.8, 0.0], [0.0, 0.8]):
            inc.insert(p)
        for p in ([2.4, 0.0], [3.2, 0.0], [2.4, 0.8]):
            inc.insert(p)
        assert inc.cluster_count() == 0  # each side has only 3 < MinPts
        bridge = inc.insert([1.2, 0.0])  # within eps of (0,0) and (2.4,0)? no: dist 1.2
        # Place the bridge precisely within eps of one member per side.
        inc.delete(bridge)
        bridge = inc.insert([1.0, 0.0])  # dist 1.0 to (0,0), 1.4 to (2.4,0)
        assert_equivalent_to_batch(inc)

    def test_incremental_matches_batch_after_stream(self, rng):
        inc = IncrementalDBSCAN(0.8, 4, 2)
        points = np.concatenate(
            [rng.normal(0, 0.5, size=(40, 2)), rng.uniform(-5, 5, size=(40, 2))]
        )
        for p in points:
            inc.insert(p)
        assert_equivalent_to_batch(inc)


class TestDeletionCases:
    def _build(self, points):
        inc = IncrementalDBSCAN(1.0, 3, 2)
        ids = [inc.insert(p) for p in points]
        return inc, ids

    def test_delete_noise_point(self):
        inc, ids = self._build([[0.0, 0.0], [10.0, 10.0]])
        inc.delete(ids[1])
        assert len(inc) == 1
        assert inc.label_of(ids[0]) == NOISE

    def test_delete_unknown_raises(self):
        inc, ids = self._build([[0.0, 0.0]])
        with pytest.raises(KeyError):
            inc.delete(99)

    def test_cluster_dissolves(self):
        inc, ids = self._build([[0.0, 0.0], [0.5, 0.0], [0.0, 0.5]])
        assert inc.cluster_count() == 1
        inc.delete(ids[0])
        assert inc.cluster_count() == 0
        for i in ids[1:]:
            assert inc.label_of(i) == NOISE

    def test_cluster_splits(self):
        # Two dense ends connected by a single bridge point.
        left = [[0.0, 0.0], [0.5, 0.0], [0.0, 0.5], [0.5, 0.5]]
        right = [[4.0, 0.0], [4.5, 0.0], [4.0, 0.5], [4.5, 0.5]]
        bridge = [[1.4, 0.25], [2.25, 0.25], [3.1, 0.25]]
        inc, ids = self._build(left + right + bridge)
        assert inc.cluster_count() == 1
        inc.delete(ids[len(left) + len(right) + 1])  # remove middle bridge
        assert_equivalent_to_batch(inc)
        assert inc.cluster_count() == 2

    def test_demoted_member_joins_neighboring_cluster(self):
        """Regression: rebuilding an affected cluster must hand demoted
        members that border an *unaffected* cluster's core over to that
        cluster instead of leaving them as noise (found by hypothesis,
        seed 1302)."""
        inc = IncrementalDBSCAN(1.0, 3, 2)
        # Cluster A (will be dissolved) around x=0.
        a = [inc.insert(p) for p in ([0.0, 0.0], [0.6, 0.0], [0.0, 0.6])]
        # Border object between the clusters, member of A.
        border = inc.insert([1.4, 0.0])
        # Cluster B around x=2.2 — the border is also in reach of B's core.
        b = [inc.insert(p) for p in ([2.2, 0.0], [2.8, 0.0], [2.2, 0.6])]
        assert inc.label_of(border) >= 0
        # Dissolve A: its cores drop below MinPts.
        inc.delete(a[1])
        inc.delete(a[2])
        assert_equivalent_to_batch(inc)
        # The border must now belong to B (its distance to B's core at
        # (2.2, 0) is 0.8 <= eps), not to noise.
        assert inc.label_of(border) == inc.label_of(b[0])

    def test_delete_then_matches_batch(self, rng):
        inc = IncrementalDBSCAN(0.8, 4, 2)
        points = rng.normal(0, 1.2, size=(60, 2))
        ids = [inc.insert(p) for p in points]
        for victim in rng.choice(ids, size=25, replace=False):
            inc.delete(int(victim))
        assert_equivalent_to_batch(inc)


class TestStreamEquivalence:
    @given(seed=st.integers(0, 50_000))
    @settings(max_examples=25, deadline=None)
    def test_random_insert_delete_stream(self, seed):
        rng = np.random.default_rng(seed)
        eps = float(rng.uniform(0.5, 1.5))
        min_pts = int(rng.integers(2, 5))
        inc = IncrementalDBSCAN(eps, min_pts, 2)
        live: list[int] = []
        for __ in range(int(rng.integers(10, 50))):
            if live and rng.random() < 0.35:
                victim = live.pop(int(rng.integers(len(live))))
                inc.delete(victim)
            else:
                p = rng.uniform(-3, 3, size=2)
                live.append(inc.insert(p))
        assert_equivalent_to_batch(inc)

    @given(seed=st.integers(0, 50_000))
    @settings(max_examples=15, deadline=None)
    def test_insert_all_delete_all(self, seed):
        rng = np.random.default_rng(seed)
        inc = IncrementalDBSCAN(1.0, 3, 2)
        ids = [inc.insert(rng.uniform(-2, 2, size=2)) for __ in range(20)]
        for i in ids:
            inc.delete(i)
        assert len(inc) == 0
        assert inc.cluster_count() == 0
