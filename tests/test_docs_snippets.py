"""The README quickstart must actually run — docs are part of the API."""

from __future__ import annotations

import re
from pathlib import Path

import pytest

README = Path(__file__).resolve().parent.parent / "README.md"


def _first_python_block(text: str) -> str:
    match = re.search(r"```python\n(.*?)```", text, flags=re.DOTALL)
    assert match, "README has no python code block"
    return match.group(1)


@pytest.mark.skipif(not README.exists(), reason="README not present")
def test_readme_quickstart_executes(capsys):
    code = _first_python_block(README.read_text())
    namespace: dict = {}
    exec(compile(code, str(README), "exec"), namespace)  # noqa: S102
    out = capsys.readouterr().out
    # The snippet prints cluster count, representative fraction, quality.
    lines = [line for line in out.strip().splitlines() if line]
    assert len(lines) == 3
    assert int(lines[0]) > 0                      # clusters found
    assert 0.0 < float(lines[1]) < 1.0            # representative fraction
    assert 50.0 < float(lines[2]) <= 100.0        # P^II percent
