"""Tests for the shared experiment plumbing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.datasets import dataset_c
from repro.experiments.common import (
    central_reference,
    dataset_trial,
    run_trial,
    timed,
)


class TestTimed:
    def test_returns_result_and_duration(self):
        result, seconds = timed(sum, [1, 2, 3])
        assert result == 6
        assert seconds >= 0.0

    def test_passes_kwargs(self):
        result, __ = timed(sorted, [3, 1, 2], reverse=True)
        assert result == [3, 2, 1]


class TestCentralReference:
    def test_clusters_and_timing(self):
        data = dataset_c(cardinality=400)
        result, seconds = central_reference(
            data.points, data.eps_local, data.min_pts
        )
        assert result.n_clusters >= 1
        assert seconds > 0


class TestRunTrial:
    @pytest.fixture(scope="class")
    def data(self):
        return dataset_c(cardinality=600)

    def test_efficiency_only_skips_quality(self, data):
        trial = run_trial(
            data.points,
            n_sites=2,
            eps_local=data.eps_local,
            min_pts=data.min_pts,
            evaluate=False,
        )
        assert trial.quality is None
        assert trial.central_seconds == 0.0
        assert trial.overall_seconds > 0

    def test_quality_computed_by_default(self, data):
        trial = run_trial(
            data.points,
            n_sites=2,
            eps_local=data.eps_local,
            min_pts=data.min_pts,
        )
        assert trial.quality is not None
        assert 0.0 <= trial.quality.q_p2 <= 1.0
        assert trial.central_seconds > 0

    def test_precomputed_reference_reused(self, data):
        central, seconds = central_reference(
            data.points, data.eps_local, data.min_pts
        )
        trial = run_trial(
            data.points,
            n_sites=2,
            eps_local=data.eps_local,
            min_pts=data.min_pts,
            central=central,
            central_seconds=seconds,
        )
        assert trial.central_seconds == seconds

    def test_representative_percent(self, data):
        trial = run_trial(
            data.points,
            n_sites=2,
            eps_local=data.eps_local,
            min_pts=data.min_pts,
            evaluate=False,
        )
        assert 0.0 < trial.representative_percent < 100.0

    def test_labels_aligned_with_points(self, data):
        trial = run_trial(
            data.points,
            n_sites=3,
            eps_local=data.eps_local,
            min_pts=data.min_pts,
            evaluate=False,
        )
        assert trial.labels.shape == (data.points.shape[0],)


class TestDatasetTrial:
    def test_uses_recommended_parameters(self):
        data = dataset_c(cardinality=600)
        trial = dataset_trial(data, n_sites=2)
        config = trial.run.result.config
        assert config.eps_local == data.eps_local
        assert config.min_pts_local == data.min_pts
