"""Parallel local phase: reports must match the sequential run exactly.

``DistributedRunConfig.parallelism`` only changes *when* site work
executes, never *what* it computes: parallel runs must agree with
``parallelism=1`` on every deterministic report field (labels, global
model, relabel stats, network traffic) — only the wall-clock timings may
differ.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.generators import gaussian_blobs
from repro.distributed.network import SimulatedNetwork
from repro.distributed.runner import DistributedRunConfig, DistributedRunner


@pytest.fixture
def blobs():
    points, __ = gaussian_blobs(
        [120, 120, 120], np.asarray([[0.0, 0.0], [14.0, 0.0], [7.0, 12.0]]), 1.0, seed=7
    )
    return points


def _config(**overrides):
    defaults = dict(eps_local=1.0, min_pts_local=5, seed=3)
    defaults.update(overrides)
    return DistributedRunConfig(**defaults)


def _run(points, config, n_sites=4):
    network = SimulatedNetwork()
    return DistributedRunner(config, network).run(points, n_sites=n_sites)


def _assert_reports_equal(reference, candidate):
    """Equality on everything except the wall-clock timing fields."""
    assert np.array_equal(
        reference.labels_in_original_order(), candidate.labels_in_original_order()
    )
    assert np.array_equal(
        np.asarray(reference.assignment), np.asarray(candidate.assignment)
    )
    assert len(reference.global_model) == len(candidate.global_model)
    assert np.array_equal(
        reference.global_model.global_labels, candidate.global_model.global_labels
    )
    assert reference.global_model.to_bytes() == candidate.global_model.to_bytes()
    for ref_site, cand_site in zip(reference.sites, candidate.sites):
        assert np.array_equal(ref_site.global_labels, cand_site.global_labels)
        assert ref_site.relabel_stats == cand_site.relabel_stats
        assert (
            ref_site.local_outcome.model.to_bytes()
            == cand_site.local_outcome.model.to_bytes()
        )
    assert reference.network.n_messages == candidate.network.n_messages
    assert reference.network.bytes_upstream == candidate.network.bytes_upstream
    assert reference.network.bytes_downstream == candidate.network.bytes_downstream


@pytest.mark.parametrize("parallelism", [2, 4, 8])
def test_thread_parallelism_matches_sequential(blobs, parallelism):
    reference = _run(blobs, _config(parallelism=1))
    candidate = _run(blobs, _config(parallelism=parallelism))
    _assert_reports_equal(reference, candidate)


def test_process_backend_matches_sequential(blobs):
    reference = _run(blobs, _config(parallelism=1))
    candidate = _run(blobs, _config(parallelism=2, parallel_backend="process"))
    _assert_reports_equal(reference, candidate)


def test_parallelism_larger_than_site_count(blobs):
    reference = _run(blobs, _config(parallelism=1), n_sites=2)
    candidate = _run(blobs, _config(parallelism=16), n_sites=2)
    _assert_reports_equal(reference, candidate)


def test_wall_times_recorded(blobs):
    report = _run(blobs, _config(parallelism=2))
    assert report.local_wall_seconds > 0
    assert report.relabel_wall_seconds > 0
    # Wall time of the whole phase can't beat the slowest *measured* site
    # by more than scheduling noise; sanity-check the fields are coherent.
    assert report.overall_seconds > 0


def test_parallel_report_separates_wall_and_cpu(blobs):
    """Satellite of the observability sweep: a parallel local phase must
    report max-over-sites *wall* time and aggregate *CPU* time as
    separate, clock-named fields — the historical single number silently
    mixed the two."""
    report = _run(blobs, _config(parallelism=4))
    # max_local_wall_seconds is a max, not a sum: it can never exceed the
    # whole phase's wall time but must cover the slowest site.
    slowest = max(site.times.local_wall_seconds for site in report.sites)
    assert report.max_local_wall_seconds == slowest
    assert report.max_local_wall_seconds <= report.local_wall_seconds
    # CPU time aggregates across sites and is attributed per site too.
    assert report.local_cpu_seconds > 0
    assert report.local_cpu_seconds == pytest.approx(
        sum(site.times.local_cpu_seconds for site in report.sites)
    )
    assert report.relabel_cpu_seconds == pytest.approx(
        sum(site.times.relabel_cpu_seconds for site in report.sites)
    )
    # Clock-named aliases agree with the legacy field names.
    assert report.max_local_seconds == report.max_local_wall_seconds
    assert report.global_seconds == report.global_wall_seconds
    assert report.overall_seconds == report.overall_wall_seconds


def test_per_site_times_name_their_clock(blobs):
    report = _run(blobs, _config(parallelism=2))
    for site in report.sites:
        assert site.times.local_wall_seconds > 0
        assert site.times.local_cpu_seconds >= 0
        assert site.times.local_seconds == site.times.local_wall_seconds
        assert site.times.relabel_seconds == site.times.relabel_wall_seconds


def test_config_rejects_bad_parallelism():
    with pytest.raises(ValueError, match="parallelism"):
        _config(parallelism=0)
    with pytest.raises(ValueError, match="parallelism"):
        _config(parallelism=-2)


def test_config_rejects_unknown_backend():
    with pytest.raises(ValueError, match="parallel_backend"):
        _config(parallel_backend="mpi")


def test_labels_in_original_order_validates_assignment(blobs):
    report = _run(blobs, _config())
    # Out-of-range site id.
    report.assignment = np.asarray(report.assignment).copy()
    report.assignment[0] = len(report.sites)
    with pytest.raises(ValueError, match="site"):
        report.labels_in_original_order()
    # Count mismatch: legal ids, but site 0 gets one object too many.
    report.assignment = np.zeros(sum(s.points.shape[0] for s in report.sites), dtype=np.intp)
    with pytest.raises(ValueError, match="objects"):
        report.labels_in_original_order()


# ---------------------------------------------------------------------------
# auto-fallback + shared memory (million-point-scale PR)
# ---------------------------------------------------------------------------
def _patch_cpus(monkeypatch, n):
    import repro.distributed.runner as runner_mod

    monkeypatch.setattr(runner_mod.os, "cpu_count", lambda: n)


def test_auto_fallback_single_cpu(blobs, monkeypatch):
    _patch_cpus(monkeypatch, 1)
    report = _run(blobs, _config(parallelism=4))
    assert report.effective_parallelism == 1
    assert report.parallelism_fallback_reason == "single_cpu"


def test_auto_fallback_small_sites(blobs, monkeypatch):
    # 360 points over 4 sites is far below the 20k-per-site threshold.
    _patch_cpus(monkeypatch, 8)
    report = _run(blobs, _config(parallelism=4))
    assert report.effective_parallelism == 1
    assert report.parallelism_fallback_reason == "small_sites"


def test_auto_fallback_can_be_disabled(blobs, monkeypatch):
    _patch_cpus(monkeypatch, 8)
    report = _run(blobs, _config(parallelism=4, auto_fallback=False))
    assert report.effective_parallelism == 4
    assert report.parallelism_fallback_reason is None


def test_fallback_threshold_is_tunable(blobs, monkeypatch):
    _patch_cpus(monkeypatch, 8)
    report = _run(blobs, _config(parallelism=4, fallback_min_points=10))
    assert report.effective_parallelism == 4
    assert report.parallelism_fallback_reason is None


def test_fallback_run_matches_parallel_run(blobs, monkeypatch):
    """The fallback decision may change *when* work runs, never results."""
    _patch_cpus(monkeypatch, 8)
    fell_back = _run(blobs, _config(parallelism=4))
    forced = _run(blobs, _config(parallelism=4, auto_fallback=False))
    _assert_reports_equal(fell_back, forced)


def test_sequential_run_reports_no_fallback(blobs):
    report = _run(blobs, _config(parallelism=1))
    assert report.effective_parallelism == 1
    assert report.parallelism_fallback_reason is None


def test_fallback_fields_in_flat_metrics(blobs):
    metrics = _run(blobs, _config(parallelism=4)).flat_metrics()
    assert metrics["parallel.effective_workers"] == 1.0
    assert metrics["parallel.fallback_count"] == 1.0
    assert "shm.bytes_shared" in metrics
    assert "shm.setup_seconds" in metrics
    assert "shm.teardown_seconds" in metrics


def test_process_shm_matches_sequential(blobs):
    reference = _run(blobs, _config(parallelism=1))
    candidate = _run(
        blobs,
        _config(
            parallelism=2,
            parallel_backend="process",
            auto_fallback=False,
            shared_memory="on",
        ),
    )
    _assert_reports_equal(reference, candidate)
    assert candidate.effective_parallelism == 2
    # Point arrays for the local phase + labels for the relabel phase
    # travelled via shared memory, not pickle.
    assert candidate.shm_bytes_shared > blobs.nbytes
    assert candidate.shm_setup_seconds >= 0.0
    assert candidate.shm_teardown_seconds >= 0.0
    assert reference.shm_bytes_shared == 0


def test_process_shm_off_matches_on(blobs):
    on = _run(
        blobs,
        _config(
            parallelism=2,
            parallel_backend="process",
            auto_fallback=False,
            shared_memory="on",
        ),
    )
    off = _run(
        blobs,
        _config(
            parallelism=2,
            parallel_backend="process",
            auto_fallback=False,
            shared_memory="off",
        ),
    )
    _assert_reports_equal(on, off)
    assert off.shm_bytes_shared == 0


def test_thread_backend_never_uses_shm(blobs, monkeypatch):
    _patch_cpus(monkeypatch, 8)
    report = _run(
        blobs,
        _config(parallelism=4, auto_fallback=False, shared_memory="on"),
    )
    assert report.shm_bytes_shared == 0


def test_config_rejects_bad_new_knobs():
    with pytest.raises(ValueError, match="relabel_kernel"):
        _config(relabel_kernel="warp")
    with pytest.raises(ValueError, match="fallback_min_points"):
        _config(fallback_min_points=-1)
    with pytest.raises(ValueError, match="shared_memory"):
        _config(shared_memory="maybe")


@pytest.mark.parametrize("kernel", ["reference", "vectorized"])
def test_relabel_kernels_match_default(blobs, kernel):
    reference = _run(blobs, _config())
    candidate = _run(blobs, _config(relabel_kernel=kernel))
    _assert_reports_equal(reference, candidate)
