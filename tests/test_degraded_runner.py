"""Degraded-mode protocol tests: bit-identity of the clean path, label
guarantees for failed sites, deadline/quorum semantics, determinism."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering.labels import NOISE
from repro.data.generators import gaussian_blobs
from repro.distributed.network import SERVER, SimulatedNetwork
from repro.distributed.partition import split, uniform_random
from repro.distributed.runner import (
    DistributedRunConfig,
    DistributedRunner,
    RoundPolicy,
)
from repro.distributed.server import CentralServer
from repro.distributed.site import ClientSite
from repro.faults import FaultPlan, SiteFaults, TransportPolicy

N_SITES = 4


@pytest.fixture(scope="module")
def workload():
    points, __ = gaussian_blobs(
        [120, 120], np.asarray([[0.0, 0.0], [15.0, 0.0]]), 1.0, seed=21
    )
    assignment = uniform_random(points.shape[0], N_SITES, seed=8)
    return split(points, assignment), assignment


@pytest.fixture
def config():
    return DistributedRunConfig(eps_local=1.0, min_pts_local=5)


def _manual_legacy_run(site_points, config):
    """The pre-fault-runtime protocol, spelled out with the primitives —
    the oracle the refactored clean path must stay bit-identical to."""
    network = SimulatedNetwork()
    sites = [
        ClientSite(
            site_id,
            points,
            eps_local=config.eps_local,
            min_pts_local=config.min_pts_local,
            scheme=config.scheme,
            metric=config.metric,
            index_kind=config.index_kind,
        )
        for site_id, points in enumerate(site_points)
    ]
    server = CentralServer(
        config.eps_global, metric=config.metric, index_kind=config.index_kind
    )
    for site in sites:
        model = site.run_local_clustering()
        network.send(site.site_id, SERVER, "local_model", model.to_bytes())
        server.receive_local_model(model)
    global_model = server.build()
    payload = global_model.to_bytes()
    for site in sites:
        network.send(SERVER, site.site_id, "global_model", payload)
        site.receive_global_model(global_model)
    return sites, global_model, network.stats()


class TestCleanPathBitIdentity:
    """With no plan (or an inactive one) every deterministic report field
    must be bit-identical to the pre-fault-runtime implementation."""

    @pytest.mark.parametrize("plan", [None, FaultPlan.none(seed=77)])
    def test_matches_manual_legacy_protocol(self, workload, config, plan):
        site_points, assignment = workload
        report = DistributedRunner(config, fault_plan=plan).run_on_sites(
            site_points, assignment
        )
        legacy_sites, legacy_model, legacy_stats = _manual_legacy_run(
            site_points, config
        )

        for site, legacy in zip(report.sites, legacy_sites):
            np.testing.assert_array_equal(site.global_labels, legacy.global_labels)
            assert site.failure is None
        np.testing.assert_array_equal(
            report.global_model.global_labels, legacy_model.global_labels
        )
        assert report.global_model.eps_global == legacy_model.eps_global

        assert report.network.n_messages == legacy_stats.n_messages
        assert report.network.bytes_upstream == legacy_stats.bytes_upstream
        assert report.network.bytes_downstream == legacy_stats.bytes_downstream
        assert report.network.bytes_by_kind == legacy_stats.bytes_by_kind
        assert report.network.sim_seconds_total == pytest.approx(
            legacy_stats.sim_seconds_total
        )

        assert report.participating_sites == [s.site_id for s in report.sites]
        assert report.failed_sites == []
        assert report.retries == 0
        assert report.degraded is False
        assert report.transport_stats is None

    def test_inactive_plan_and_no_plan_agree(self, workload, config):
        site_points, assignment = workload
        without = DistributedRunner(config).run_on_sites(site_points, assignment)
        inactive = DistributedRunner(
            config, fault_plan=FaultPlan.none(seed=3)
        ).run_on_sites(site_points, assignment)
        np.testing.assert_array_equal(
            without.labels_in_original_order(),
            inactive.labels_in_original_order(),
        )
        assert without.network.bytes_total == inactive.network.bytes_total


class TestDegradedLabels:
    def test_crash_before_local_leaves_noise(self, workload, config):
        site_points, assignment = workload
        plan = FaultPlan(
            seed=1,
            site_overrides={1: SiteFaults(crash_before_local_prob=1.0)},
        )
        report = DistributedRunner(config, fault_plan=plan).run_on_sites(
            site_points, assignment
        )
        crashed = report.sites[1]
        assert crashed.failure == "crash_before_local"
        assert (crashed.global_labels == NOISE).all()
        assert report.failed_sites == [1]
        assert 1 not in report.participating_sites
        assert report.degraded is True
        # The healthy sites still got relabeled into the global model.
        for site_id in (0, 2, 3):
            assert report.sites[site_id].failure is None
            assert (report.sites[site_id].global_labels >= 0).any()

    def test_missed_broadcast_keeps_local_labels_fresh_ids(
        self, workload, config
    ):
        site_points, assignment = workload
        plan = FaultPlan(
            seed=1, site_overrides={0: SiteFaults(crash_after_send_prob=1.0)}
        )
        report = DistributedRunner(config, fault_plan=plan).run_on_sites(
            site_points, assignment
        )
        lost = report.sites[0]
        assert lost.failure == "crash_after_send"
        # Its model was merged, but it never saw the global model.
        assert 0 in report.participating_sites
        assert report.failed_sites == [0]

        local_labels = lost.local_outcome.clustering.labels
        fresh_floor = int(report.global_model.global_labels.max()) + 1
        # Noise stays noise; clusters survive under fresh, non-colliding ids.
        np.testing.assert_array_equal(
            lost.global_labels == NOISE, local_labels == NOISE
        )
        clustered = lost.global_labels[lost.global_labels >= 0]
        assert (clustered >= fresh_floor).all()
        np.testing.assert_array_equal(
            clustered, local_labels[local_labels >= 0] + fresh_floor
        )
        healthy_ids = {
            int(label)
            for site_id in (1, 2, 3)
            for label in report.sites[site_id].global_labels
            if label >= 0
        }
        assert healthy_ids.isdisjoint(int(c) for c in clustered)

    def test_all_sites_failed_yields_empty_global_model(self, workload, config):
        site_points, assignment = workload
        plan = FaultPlan.site_failures(1.0, seed=5)
        report = DistributedRunner(config, fault_plan=plan).run_on_sites(
            site_points, assignment
        )
        assert report.participating_sites == []
        assert report.failed_sites == list(range(N_SITES))
        assert len(report.global_model) == 0
        assert report.degraded is True
        labels = report.labels_in_original_order()
        assert (labels == NOISE).all()


class TestDeadlineAndQuorum:
    def test_straggler_misses_deadline(self, workload, config):
        site_points, assignment = workload
        plan = FaultPlan(
            seed=2,
            site_overrides={
                2: SiteFaults(straggler_prob=1.0, straggler_factor=1e6)
            },
        )
        policy = RoundPolicy(deadline_s=5.0, compute_rate_objects_per_s=50_000.0)
        report = DistributedRunner(
            config, fault_plan=plan, round_policy=policy
        ).run_on_sites(site_points, assignment)
        assert report.failed_sites == [2]
        assert report.sites[2].failure == "deadline_missed"
        assert 2 not in report.participating_sites
        assert report.degraded is True
        # The straggler still keeps its (renumbered) local clusters.
        assert (report.sites[2].global_labels >= 0).any()

    def test_quorum_missed_flags_degraded(self, workload, config):
        site_points, assignment = workload
        plan = FaultPlan(
            seed=3, site_overrides={0: SiteFaults(crash_before_local_prob=1.0)}
        )
        strict = DistributedRunner(
            config, fault_plan=plan, round_policy=RoundPolicy(quorum=1.0)
        ).run_on_sites(site_points, assignment)
        assert strict.degraded is True

    def test_harmless_active_plan_is_not_degraded(self, workload, config):
        """A plan that is active but injects nothing effective (stragglers
        with factor 1, no deadline) completes a healthy round whose labels
        match the clean run."""
        site_points, assignment = workload
        plan = FaultPlan(
            seed=4, site=SiteFaults(straggler_prob=1.0, straggler_factor=1.0)
        )
        degraded_path = DistributedRunner(
            config, fault_plan=plan, round_policy=RoundPolicy(quorum=1.0)
        ).run_on_sites(site_points, assignment)
        clean = DistributedRunner(config).run_on_sites(site_points, assignment)
        assert degraded_path.degraded is False
        assert degraded_path.failed_sites == []
        # Admission is in simulated-arrival order, so compare as sets.
        assert set(degraded_path.participating_sites) == set(
            clean.participating_sites
        )
        np.testing.assert_array_equal(
            degraded_path.labels_in_original_order(),
            clean.labels_in_original_order(),
        )
        assert degraded_path.transport_stats is not None
        assert degraded_path.transport_stats.n_failed == 0


class TestClockNamedReportFields:
    """Satellite of the observability sweep: every timing field names its
    clock (``*_wall_seconds`` / ``*_cpu_seconds`` / ``*_sim_seconds``) and
    the simulated-clock fields actually carry the simulated round."""

    def test_fault_free_run_has_zero_sim_fields(self, workload, config):
        site_points, assignment = workload
        report = DistributedRunner(config).run_on_sites(site_points, assignment)
        assert report.local_sim_seconds == 0.0
        assert report.round_sim_seconds == 0.0
        assert report.max_local_wall_seconds > 0
        assert report.global_wall_seconds > 0
        # Back-compat aliases resolve to the wall-clock fields.
        assert report.max_local_seconds == report.max_local_wall_seconds
        assert report.global_seconds == report.global_wall_seconds
        assert report.overall_seconds == report.overall_wall_seconds

    def test_degraded_run_reports_simulated_round(self, workload, config):
        site_points, assignment = workload
        plan = FaultPlan(
            seed=4, site=SiteFaults(straggler_prob=1.0, straggler_factor=2.0)
        )
        report = DistributedRunner(config, fault_plan=plan).run_on_sites(
            site_points, assignment
        )
        # The simulated clock is a different clock: local compute plus
        # transfer times, not perf_counter deltas.
        assert report.local_sim_seconds > 0
        assert report.round_sim_seconds >= report.local_sim_seconds
        # And the wall-clock fields still measure the real execution.
        assert report.max_local_wall_seconds > 0
        assert report.local_cpu_seconds > 0

    def test_crash_after_send_broadcast_still_hits_the_wire(
        self, workload, config
    ):
        """Regression: the server is not omniscient — a broadcast to a
        crash-after-send site burns attempts and bytes on the network even
        though it can never be delivered."""
        site_points, assignment = workload
        plan = FaultPlan(
            seed=1, site_overrides={0: SiteFaults(crash_after_send_prob=1.0)}
        )
        report = DistributedRunner(config, fault_plan=plan).run_on_sites(
            site_points, assignment
        )
        clean = DistributedRunner(config).run_on_sites(site_points, assignment)
        assert report.sites[0].failure == "crash_after_send"
        # All four admitted sites got broadcast traffic; the dead site's
        # share burned the full retry budget, so downstream bytes exceed
        # the clean run's.
        assert (
            report.network.bytes_by_kind["global_model"]
            > clean.network.bytes_by_kind["global_model"]
        )
        assert report.transport_stats.n_failed >= 1
        assert report.retries >= 1


def _report_fingerprint(report):
    return (
        [site.global_labels.tolist() for site in report.sites],
        [site.failure for site in report.sites],
        report.participating_sites,
        report.failed_sites,
        report.retries,
        report.degraded,
        report.network.bytes_total,
        report.network.bytes_by_kind,
        round(report.network.sim_seconds_total, 9),
        report.transport_stats,
    )


class TestDeterminism:
    @settings(max_examples=8, deadline=None)
    @given(
        intensity=st.floats(min_value=0.2, max_value=0.9),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_same_plan_same_report(self, workload, intensity, seed):
        """Same seed + same plan ⇒ identical report, retry counts and
        byte accounting included."""
        site_points, assignment = workload
        def run():
            return DistributedRunner(
                DistributedRunConfig(eps_local=1.0, min_pts_local=5),
                fault_plan=FaultPlan.chaos(intensity, seed=seed),
                transport_policy=TransportPolicy(max_attempts=3),
                round_policy=RoundPolicy(deadline_s=60.0, quorum=0.5),
            ).run_on_sites(site_points, assignment)

        assert _report_fingerprint(run()) == _report_fingerprint(run())

    def test_parallel_run_matches_sequential(self, workload, config):
        """The keyed RNG streams make injected faults independent of
        execution order — a parallel local phase changes nothing."""
        site_points, assignment = workload
        plan = FaultPlan.chaos(0.6, seed=9)

        def run(parallelism):
            cfg = DistributedRunConfig(
                eps_local=config.eps_local,
                min_pts_local=config.min_pts_local,
                parallelism=parallelism,
            )
            return DistributedRunner(cfg, fault_plan=plan).run_on_sites(
                site_points, assignment
            )

        assert _report_fingerprint(run(1)) == _report_fingerprint(run(4))
