"""Torture tests for the write-ahead journal (ISSUE 10, satellite 3).

The journal's contract: *every* truncation and corruption point yields a
typed error — :class:`JournalTruncated` for a torn tail,
:class:`JournalCorrupt` for bit damage — and recovery replays exactly
the intact record prefix, never a damaged or out-of-order record.  The
suite drives that contract at every byte offset of a known-good stream,
then property-tests it under hypothesis, and pins the compaction
rename-window dedupe that makes crash-during-compaction safe.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.journal import (
    MAX_RECORD_PAYLOAD,
    RECORD_HEADER_SIZE,
    JournalCorrupt,
    JournalError,
    JournalTruncated,
    Record,
    RecordKind,
    WriteAheadJournal,
    decode_admitted,
    decode_epoch,
    decode_quarantine,
    decode_round_marker,
    encode_admitted,
    encode_epoch,
    encode_quarantine,
    encode_record,
    encode_round_marker,
    scan_records,
)


def _stream(payloads: list[bytes]) -> tuple[bytes, list[Record]]:
    """A well-formed journal byte stream plus its expected records."""
    kinds = list(RecordKind)
    data = b""
    records = []
    for index, payload in enumerate(payloads):
        kind = kinds[index % len(kinds)]
        data += encode_record(kind, index + 1, payload)
        records.append(Record(kind=kind, seq=index + 1, payload=payload))
    return data, records


PAYLOADS = [b"", b"a", b"hello world", bytes(range(64)), b"x" * 200]


class TestScan:
    def test_clean_round_trip(self):
        data, records = _stream(PAYLOADS)
        result = scan_records(data)
        assert result.error is None
        assert result.valid_bytes == len(data)
        assert result.records == records

    def test_empty_stream(self):
        result = scan_records(b"")
        assert result.error is None
        assert result.records == []
        assert result.valid_bytes == 0

    def test_truncation_at_every_byte_offset(self):
        """Cutting the stream anywhere loses only the torn record: the
        scan returns the record prefix before the cut and a typed
        ``JournalTruncated`` unless the cut lands on a record boundary."""
        data, records = _stream(PAYLOADS)
        boundaries = [0]
        for record in records:
            boundaries.append(
                boundaries[-1] + RECORD_HEADER_SIZE + len(record.payload)
            )
        for cut in range(len(data)):
            result = scan_records(data[:cut])
            n_intact = sum(1 for edge in boundaries[1:] if edge <= cut)
            assert result.records == records[:n_intact], f"cut at {cut}"
            assert result.valid_bytes == boundaries[n_intact]
            if cut in boundaries:
                assert result.error is None, f"cut at {cut} is a boundary"
            else:
                assert isinstance(result.error, JournalTruncated), (
                    f"cut at {cut}"
                )
                assert result.error.offset == boundaries[n_intact]

    def test_single_byte_flip_at_every_offset(self):
        """Any single flipped byte is caught (CRC-32 detects all bursts
        up to 32 bits) and costs at most the record it lives in: the
        records before it replay, a typed error names the stop offset."""
        data, records = _stream(PAYLOADS)
        boundaries = [0]
        for record in records:
            boundaries.append(
                boundaries[-1] + RECORD_HEADER_SIZE + len(record.payload)
            )
        for offset in range(len(data)):
            damaged = bytearray(data)
            damaged[offset] ^= 0xFF
            result = scan_records(bytes(damaged))
            hit = sum(1 for edge in boundaries[1:] if edge <= offset)
            assert result.records == records[:hit], f"flip at {offset}"
            assert isinstance(result.error, JournalError), f"flip at {offset}"
            assert result.error.offset == boundaries[hit]
            assert result.valid_bytes == boundaries[hit]

    def test_bad_magic_is_corrupt(self):
        data, __ = _stream([b"payload"])
        result = scan_records(b"XXXX" + data[4:])
        assert isinstance(result.error, JournalCorrupt)
        assert "magic" in str(result.error)

    def test_oversized_length_is_corrupt_not_swallowed(self):
        record = bytearray(encode_record(RecordKind.EPOCH, 1, b"12345678"))
        # Overwrite the length field with something past the cap.
        import struct

        struct.pack_into("<I", record, 17, MAX_RECORD_PAYLOAD + 1)
        result = scan_records(bytes(record))
        assert isinstance(result.error, JournalCorrupt)
        assert "cap" in str(result.error)

    def test_non_monotonic_sequence_is_corrupt(self):
        data = encode_record(RecordKind.EPOCH, 2, b"") + encode_record(
            RecordKind.ROUND_OPEN, 2, b""
        )
        result = scan_records(data)
        assert len(result.records) == 1
        assert isinstance(result.error, JournalCorrupt)
        assert "sequence" in str(result.error)

    def test_encode_rejects_oversized_payload(self):
        with pytest.raises(ValueError, match="exceeds"):
            encode_record(RecordKind.EPOCH, 1, b"\x00" * (MAX_RECORD_PAYLOAD + 1))

    @settings(max_examples=60, deadline=None)
    @given(
        payloads=st.lists(st.binary(max_size=50), min_size=1, max_size=8),
        cut=st.integers(min_value=0, max_value=10_000),
    )
    def test_truncation_property(self, payloads, cut):
        data, records = _stream(payloads)
        cut = cut % (len(data) + 1)
        result = scan_records(data[:cut])
        assert result.records == records[: len(result.records)]
        assert result.valid_bytes <= cut
        if result.error is None:
            assert result.valid_bytes == cut
        else:
            assert isinstance(result.error, JournalTruncated)

    @settings(max_examples=60, deadline=None)
    @given(
        payloads=st.lists(st.binary(max_size=50), min_size=1, max_size=8),
        offset=st.integers(min_value=0, max_value=10_000),
        flip=st.integers(min_value=1, max_value=255),
    )
    def test_flip_property(self, payloads, offset, flip):
        data, records = _stream(payloads)
        offset = offset % len(data)
        damaged = bytearray(data)
        damaged[offset] ^= flip
        result = scan_records(bytes(damaged))
        assert isinstance(result.error, JournalError)
        assert result.records == records[: len(result.records)]
        # The scan never replays the damaged record itself.
        assert len(result.records) < len(records)


class TestPayloadCodecs:
    def test_epoch_round_trip(self):
        assert decode_epoch(encode_epoch(7)) == 7

    def test_epoch_typed_error(self):
        with pytest.raises(JournalCorrupt):
            decode_epoch(b"\x01")

    def test_round_marker_round_trip(self):
        assert decode_round_marker(encode_round_marker(3)) == 3
        assert decode_round_marker(encode_round_marker(-1)) == -1

    def test_round_marker_typed_error(self):
        with pytest.raises(JournalCorrupt):
            decode_round_marker(b"")

    def test_admitted_round_trip(self):
        round_index, payload = decode_admitted(encode_admitted(2, b"model"))
        assert round_index == 2
        assert payload == b"model"

    def test_admitted_typed_error(self):
        with pytest.raises(JournalCorrupt):
            decode_admitted(b"\x00\x00")

    def test_quarantine_round_trip(self):
        round_index, site_id, reason = decode_quarantine(
            encode_quarantine(1, 4, "checksum failed")
        )
        assert (round_index, site_id, reason) == (1, 4, "checksum failed")

    def test_quarantine_length_mismatch(self):
        payload = bytearray(encode_quarantine(0, 0, "abc"))
        del payload[-1]
        with pytest.raises(JournalCorrupt):
            decode_quarantine(bytes(payload))


class TestWriteAheadJournal:
    def test_append_recover_round_trip(self, tmp_path):
        with WriteAheadJournal(tmp_path) as journal:
            journal.append(RecordKind.EPOCH, encode_epoch(1))
            journal.append(RecordKind.ROUND_OPEN, encode_round_marker(0))
            journal.append(RecordKind.MODEL_ADMITTED, encode_admitted(0, b"m"))
        fresh = WriteAheadJournal(tmp_path)
        recovery = fresh.recover()
        assert [r.kind for r in recovery.records] == [
            RecordKind.EPOCH,
            RecordKind.ROUND_OPEN,
            RecordKind.MODEL_ADMITTED,
        ]
        assert recovery.truncated_bytes == 0
        assert recovery.snapshot_error is None
        assert recovery.log_error is None
        # Appends continue the sequence, not restart it.
        seq = fresh.append(RecordKind.ROUND_COMMIT, encode_round_marker(0))
        assert seq == 4

    def test_recover_truncates_torn_tail(self, tmp_path):
        with WriteAheadJournal(tmp_path) as journal:
            journal.append(RecordKind.EPOCH, encode_epoch(1))
            journal.append(RecordKind.ROUND_OPEN, encode_round_marker(0))
        log_path = tmp_path / "wal.log"
        intact = log_path.read_bytes()
        log_path.write_bytes(intact + intact[: RECORD_HEADER_SIZE - 3])
        fresh = WriteAheadJournal(tmp_path)
        recovery = fresh.recover()
        assert len(recovery.records) == 2
        assert isinstance(recovery.log_error, JournalTruncated)
        assert recovery.truncated_bytes == RECORD_HEADER_SIZE - 3
        # The file itself was repaired to the intact prefix.
        assert log_path.read_bytes() == intact
        assert WriteAheadJournal(tmp_path).recover().log_error is None

    def test_recover_at_every_truncation_offset(self, tmp_path):
        """The on-disk repair mirrors the scan: for every cut point the
        journal recovers the boundary-aligned prefix and the repaired
        file re-recovers cleanly."""
        with WriteAheadJournal(tmp_path) as journal:
            for index in range(4):
                journal.append(
                    RecordKind.MODEL_ADMITTED,
                    encode_admitted(index, b"payload-%d" % index),
                )
        log_path = tmp_path / "wal.log"
        intact = log_path.read_bytes()
        for cut in range(len(intact)):
            log_path.write_bytes(intact[:cut])
            recovery = WriteAheadJournal(tmp_path).recover()
            assert recovery.truncated_bytes == cut - sum(
                RECORD_HEADER_SIZE + len(r.payload)
                for r in recovery.records
            )
            again = WriteAheadJournal(tmp_path).recover()
            assert again.log_error is None
            assert again.records == recovery.records
        log_path.write_bytes(intact)

    def test_rename_window_dedupe(self, tmp_path):
        """Records present in both snapshot and log (the compaction
        crash window) replay exactly once, by sequence number."""
        records = [
            (RecordKind.EPOCH, encode_epoch(1)),
            (RecordKind.ROUND_OPEN, encode_round_marker(0)),
            (RecordKind.MODEL_ADMITTED, encode_admitted(0, b"m0")),
            (RecordKind.ROUND_COMMIT, encode_round_marker(0)),
        ]
        snapshot = b"".join(
            encode_record(kind, seq, payload)
            for seq, (kind, payload) in enumerate(records[:3], start=1)
        )
        log = b"".join(
            encode_record(kind, seq, payload)
            for seq, (kind, payload) in enumerate(records[:4], start=1)
        )
        (tmp_path / "wal.snapshot").write_bytes(snapshot)
        (tmp_path / "wal.log").write_bytes(log)
        recovery = WriteAheadJournal(tmp_path).recover()
        assert [r.seq for r in recovery.records] == [1, 2, 3, 4]
        assert not recovery.gap

    def test_gap_discards_unreachable_log_tail(self, tmp_path):
        """A torn snapshot with a non-contiguous log must not replay the
        log out of order: the unreachable tail is discarded, flagged."""
        snap = encode_record(RecordKind.EPOCH, 1, encode_epoch(1))
        # Damage the snapshot's tail record.
        torn = snap + encode_record(
            RecordKind.ROUND_OPEN, 2, encode_round_marker(0)
        )
        (tmp_path / "wal.snapshot").write_bytes(torn[:-1])
        # The log continues at seq 4 — records 2 and 3 are gone forever.
        (tmp_path / "wal.log").write_bytes(
            encode_record(RecordKind.ROUND_COMMIT, 4, encode_round_marker(0))
        )
        recovery = WriteAheadJournal(tmp_path).recover()
        assert recovery.gap
        assert [r.seq for r in recovery.records] == [1]
        assert isinstance(recovery.snapshot_error, JournalTruncated)
        assert (tmp_path / "wal.log").read_bytes() == b""

    def test_compaction_preserves_stream_and_collapses_epochs(self, tmp_path):
        with WriteAheadJournal(tmp_path, snapshot_every_bytes=64) as journal:
            journal.append(RecordKind.EPOCH, encode_epoch(1))
            journal.append(RecordKind.ROUND_OPEN, encode_round_marker(0))
            journal.append(RecordKind.MODEL_ADMITTED, encode_admitted(0, b"m"))
            journal.append(RecordKind.ROUND_COMMIT, encode_round_marker(0))
            journal.append(RecordKind.EPOCH, encode_epoch(2))
            assert journal.maybe_compact()
            assert journal.compactions == 1
            assert journal.log_size == 0
        recovery = WriteAheadJournal(tmp_path).recover()
        kinds = [r.kind for r in recovery.records]
        # Only the newest EPOCH survives; everything else is verbatim.
        assert kinds == [
            RecordKind.ROUND_OPEN,
            RecordKind.MODEL_ADMITTED,
            RecordKind.ROUND_COMMIT,
            RecordKind.EPOCH,
        ]
        assert decode_epoch(recovery.records[-1].payload) == 2
        # Sequence numbers keep rising across the compaction.
        fresh = WriteAheadJournal(tmp_path)
        fresh.recover()
        assert fresh.append(RecordKind.ROUND_OPEN, encode_round_marker(1)) == 6

    def test_compact_below_threshold_is_a_no_op(self, tmp_path):
        with WriteAheadJournal(tmp_path, snapshot_every_bytes=1 << 20) as wal:
            wal.append(RecordKind.EPOCH, encode_epoch(1))
            assert not wal.maybe_compact()
            assert wal.maybe_compact(force=True)

    def test_stale_tmp_file_removed_on_recover(self, tmp_path):
        (tmp_path / "wal.snapshot.tmp").write_bytes(b"half-written garbage")
        WriteAheadJournal(tmp_path).recover()
        assert not (tmp_path / "wal.snapshot.tmp").exists()

    def test_rejects_bad_snapshot_cap(self, tmp_path):
        with pytest.raises(ValueError, match="positive"):
            WriteAheadJournal(tmp_path, snapshot_every_bytes=0)

    @settings(max_examples=25, deadline=None)
    @given(
        payloads=st.lists(st.binary(max_size=40), min_size=1, max_size=6),
        cut=st.integers(min_value=0, max_value=10_000),
    )
    def test_recover_property(self, tmp_path_factory, payloads, cut):
        """For any stream and any cut, recovery yields a boundary-aligned
        prefix and leaves the directory re-recoverable."""
        tmp_path = tmp_path_factory.mktemp("wal")
        with WriteAheadJournal(tmp_path) as journal:
            for index, payload in enumerate(payloads):
                journal.append(
                    RecordKind.MODEL_ADMITTED, encode_admitted(index, payload)
                )
        log_path = tmp_path / "wal.log"
        data = log_path.read_bytes()
        log_path.write_bytes(data[: cut % (len(data) + 1)])
        recovery = WriteAheadJournal(tmp_path).recover()
        assert len(recovery.records) <= len(payloads)
        for index, record in enumerate(recovery.records):
            assert decode_admitted(record.payload) == (index, payloads[index])
        again = WriteAheadJournal(tmp_path).recover()
        assert again.records == recovery.records
        assert again.log_error is None
