"""Tests for the hot-path benchmark module (repro.perf.hotpaths)."""

from __future__ import annotations

import argparse

import numpy as np
import pytest

import repro.perf.hotpaths as hotpaths
from repro.perf.hotpaths import (
    _normalize_cardinalities,
    _parse_cardinality,
    bench_relabel_kernels,
    bench_scale_pipeline,
    bench_shm_pool,
    flat_metrics,
    run_hotpath_bench,
)


@pytest.fixture(scope="module")
def small_report():
    """One real (tiny) bench run shared by the section/metric tests."""
    return run_hotpath_bench(
        cardinality=400, n_sites=2, parallelism=2, seed=11
    )


class TestReportShape:
    def test_all_sections_present_at_small_primary(self, small_report):
        for section in (
            "region_queries",
            "dbscan",
            "local_phase",
            "relabel_kernels",
            "shm_pool",
            "scale",
            "meta",
        ):
            assert section in small_report

    def test_meta_records_sweep_and_workers(self, small_report):
        meta = small_report["meta"]
        assert meta["cardinalities"] == [400]
        assert meta["cardinality"] == 400
        assert meta["effective_workers"] >= 1
        assert "parallelism_fallback_reason" in meta
        assert meta["parallelism"] == 2

    def test_relabel_kernels_section(self, small_report):
        row = small_report["relabel_kernels"]
        assert row["labels_identical"] is True
        assert row["reference_seconds"] > 0
        assert row["vectorized_seconds"] > 0
        assert row["n_representatives"] > 0

    def test_shm_pool_section(self, small_report):
        row = small_report["shm_pool"]
        assert row["roundtrip_ok"] is True
        assert row["bytes_shared"] == 400 * 2 * 8

    def test_local_phase_stamps_effective_workers(self, small_report):
        for name, row in small_report["local_phase"].items():
            if name == "n_sites":
                continue
            assert row["effective_workers"] >= 1
            assert "parallelism_fallback_reason" in row

    def test_scale_section_has_per_phase_budgets(self, small_report):
        row = small_report["scale"]["400"]
        assert set(row["phases"]) == {
            "generate",
            "partition",
            "local",
            "global",
            "relabel",
        }
        for budget in row["phases"].values():
            assert budget["wall_seconds"] >= 0
            assert budget["tracemalloc_peak_mb"] >= 0
            assert budget["rss_peak_mb"] > 0
        assert row["total_wall_seconds"] == pytest.approx(
            sum(b["wall_seconds"] for b in row["phases"].values())
        )
        assert row["peak_rss_mb"] > 0
        assert row["n_global_clusters"] >= 1

    def test_flat_metrics_expose_gateable_names(self, small_report):
        metrics = flat_metrics(small_report)
        assert metrics["relabel_kernels.labels_identical"] == 1.0
        assert metrics["shm.roundtrip_ok"] == 1.0
        assert "relabel_kernels.wall_seconds[reference]" in metrics
        assert "relabel_kernels.wall_seconds[vectorized]" in metrics
        assert "scale.total_wall_seconds[400]" in metrics
        assert "scale.tracemalloc_peak_mb[400:relabel]" in metrics
        assert "scale.rss_peak_mb[400]" in metrics
        assert "local_phase.effective_workers[sequential]" in metrics
        assert "local_phase.relabel_wall_seconds[sequential]" in metrics
        assert all(
            value is None or np.isfinite(value) for value in metrics.values()
        )

    def test_flat_metrics_tolerate_missing_sections(self):
        report = {
            "scale": {
                "10": {
                    "total_wall_seconds": 1.0,
                    "peak_rss_mb": 2.0,
                    "n_global_clusters": 1,
                    "n_covered": 3,
                    "phases": {
                        "local": {
                            "wall_seconds": 1.0,
                            "tracemalloc_peak_mb": 0.5,
                            "rss_peak_mb": 2.0,
                        }
                    },
                }
            }
        }
        metrics = flat_metrics(report)
        assert metrics["scale.total_wall_seconds[10]"] == 1.0
        assert "relabel_kernels.speedup" not in metrics


class TestSweepSemantics:
    def test_large_primary_skips_classic_sections(self, monkeypatch):
        monkeypatch.setattr(hotpaths, "_CLASSIC_MAX", 100)
        monkeypatch.setattr(hotpaths, "_KERNELS_MAX", 100)
        report = run_hotpath_bench(cardinality=300, n_sites=2, seed=11)
        assert "region_queries" not in report
        assert "relabel_kernels" not in report
        assert "300" in report["scale"]
        assert report["meta"]["cardinality"] == 300

    def test_sweep_runs_scale_per_entry(self, monkeypatch):
        report = run_hotpath_bench(
            cardinality=[300, 500],
            n_sites=2,
            seed=11,
            kinds=("grid",),
        )
        assert report["meta"]["cardinalities"] == [300, 500]
        assert set(report["scale"]) == {"300", "500"}
        # Classic sections ran at the primary (first) entry only.
        assert report["meta"]["cardinality"] == 300

    def test_rejects_bad_cardinalities(self):
        with pytest.raises(ValueError, match="positive"):
            _normalize_cardinalities([100, 0])
        with pytest.raises(ValueError, match="positive"):
            _normalize_cardinalities([])

    def test_parse_cardinality(self):
        assert _parse_cardinality("20000") == [20000]
        assert _parse_cardinality("300, 500 ,700") == [300, 500, 700]
        with pytest.raises(argparse.ArgumentTypeError):
            _parse_cardinality("lots")


class TestGitProvenance:
    def test_strict_git_refuses_dirty_tree(self, monkeypatch):
        monkeypatch.setattr(
            hotpaths,
            "run_environment",
            lambda: {"git_rev": "abc", "git_dirty": True},
        )
        with pytest.raises(RuntimeError, match="dirty"):
            run_hotpath_bench(cardinality=100, strict_git=True)

    def test_dirty_tree_warns_without_strict(self, monkeypatch, capsys):
        environment = dict(hotpaths.run_environment())
        environment["git_dirty"] = True
        monkeypatch.setattr(hotpaths, "run_environment", lambda: environment)
        run_hotpath_bench(cardinality=100, n_sites=2, kinds=("grid",))
        assert "dirty" in capsys.readouterr().err


class TestStandaloneSections:
    def test_relabel_kernels_asserts_identity(self, rng):
        points = rng.normal(size=(300, 2))
        row = bench_relabel_kernels(points, 0.5, 4, n_sites=2, seed=3)
        assert row["labels_identical"] is True

    def test_shm_pool_roundtrip(self, rng):
        row = bench_shm_pool(rng.normal(size=(64, 2)), n_sites=4)
        assert row["roundtrip_ok"] is True
        assert row["n_arrays"] == 4
        assert row["bytes_shared"] == 64 * 2 * 8

    def test_scale_pipeline_budgets(self):
        row = bench_scale_pipeline(250, n_sites=2, seed=5)
        assert row["cardinality"] == 250
        assert row["relabel_kernel"] == "vectorized"
        assert len(row["phases"]) == 5
