"""Frame-read edge cases of the live service (ISSUE 8 satellites).

Raw-socket tests of :meth:`DBDCService._read_frame` and the shutdown
path: a clean EOF between frames is not an error, mid-header and
mid-payload truncation each get a typed ``protocol_error`` reply, the
per-frame deadline is ONE budget shared by header and payload (a
slow-loris client cannot stretch a frame to twice ``idle_timeout_s``),
and a graceful ``stop()`` hands blocked AWAIT_GLOBAL waiters a typed
``shutting_down`` frame before their connection closes.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.service import (
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ServiceHandle,
    wire,
)


def _raw_exchange(host: str, port: int, data: bytes) -> bytes:
    """Send raw bytes, half-close, and drain whatever comes back."""
    with socket.create_connection((host, port), timeout=10) as sock:
        if data:
            sock.sendall(data)
        sock.shutdown(socket.SHUT_WR)
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    return b"".join(chunks)


class TestFrameReads:
    def test_clean_eof_between_frames_is_not_an_error(self):
        with ServiceHandle.start(ServiceConfig(metrics_port=None)) as handle:
            response = _raw_exchange(handle.host, handle.port, b"")
            assert response == b""  # no ERROR frame for a clean goodbye
            counters = handle.service.metrics.to_dict()["counters"]
            assert counters.get("service.frame_errors", 0) == 0
            # The service keeps serving.
            with ServiceClient(handle.host, handle.port) as client:
                assert client.health()["status"] == "serving"

    def test_mid_header_truncation_is_a_typed_error(self):
        with ServiceHandle.start(ServiceConfig(metrics_port=None)) as handle:
            frame = wire.encode_frame(wire.FrameKind.LABEL_QUERY, b"x" * 64)
            response = _raw_exchange(handle.host, handle.port, frame[:10])
            decoded, __ = wire.decode_frame(response)
            assert decoded.kind == wire.FrameKind.ERROR
            status, detail = wire.decode_status(decoded.payload)
            assert status == "protocol_error"
            assert "mid-header" in detail

    def test_mid_payload_truncation_is_a_typed_error(self):
        with ServiceHandle.start(ServiceConfig(metrics_port=None)) as handle:
            frame = wire.encode_frame(wire.FrameKind.LABEL_QUERY, b"x" * 64)
            cut = wire.HEADER_SIZE + 5
            response = _raw_exchange(handle.host, handle.port, frame[:cut])
            decoded, __ = wire.decode_frame(response)
            assert decoded.kind == wire.FrameKind.ERROR
            status, detail = wire.decode_status(decoded.payload)
            assert status == "protocol_error"
            assert "mid-payload" in detail

    def test_frame_deadline_is_one_budget_for_header_and_payload(self):
        """The slow-loris fix: the payload read only gets what the header
        read left of the per-frame deadline, so sending a bare header
        late cannot hold the connection for another full timeout."""
        config = ServiceConfig(idle_timeout_s=1.0, metrics_port=None)
        with ServiceHandle.start(config) as handle:
            frame = wire.encode_frame(wire.FrameKind.LABEL_QUERY, b"x" * 64)
            start = time.perf_counter()
            with socket.create_connection(
                (handle.host, handle.port), timeout=10
            ) as sock:
                time.sleep(0.6)
                sock.sendall(frame[: wire.HEADER_SIZE])
                # Never send the payload: the server must close at the
                # frame deadline (~1.0s after accept), not grant the
                # payload a fresh budget (~1.6s — the old 2x bug).
                while sock.recv(4096):
                    pass
            elapsed = time.perf_counter() - start
            assert elapsed < 1.45, (
                f"connection lived {elapsed:.2f}s — the payload read got "
                "its own deadline instead of sharing the frame's"
            )
            counters = handle.service.metrics.to_dict()["counters"]
            assert counters.get("service.connection_deadline_closes", 0) >= 1


class TestShutdownNotice:
    def test_stop_sends_shutting_down_to_blocked_waiters(self):
        """Graceful stop: an in-flight AWAIT_GLOBAL waiter receives a
        typed ``shutting_down`` ERROR frame, not a dead socket."""
        handle = ServiceHandle.start(
            ServiceConfig(expected_sites=2, metrics_port=None)
        )
        outcomes: list[object] = []

        def wait() -> None:
            try:
                with ServiceClient(handle.host, handle.port) as client:
                    outcomes.append(client.await_global_model(timeout_s=30.0))
            except Exception as error:  # noqa: BLE001 - recorded for asserts
                outcomes.append(error)

        thread = threading.Thread(target=wait)
        thread.start()
        time.sleep(0.4)  # let the waiter block server-side
        handle.stop()
        thread.join(10.0)
        assert not thread.is_alive()
        assert len(outcomes) == 1
        error = outcomes[0]
        assert isinstance(error, ServiceError), f"got {error!r}"
        assert error.status == "shutting_down"
        assert handle.service._n_shutdown_notices >= 1
        gauges = handle.service.metrics.to_dict()["gauges"]
        assert gauges["service.shutdown_notices"] >= 1

    def test_stop_sends_shutting_down_to_delta_waiters(self):
        """The MODEL_DELTA wait races the same shutdown event."""
        handle = ServiceHandle.start(ServiceConfig(metrics_port=None))
        outcomes: list[object] = []

        def wait() -> None:
            try:
                with ServiceClient(handle.host, handle.port) as client:
                    outcomes.append(
                        client.await_model_delta(0, None, timeout_s=30.0)
                    )
            except Exception as error:  # noqa: BLE001 - recorded for asserts
                outcomes.append(error)

        thread = threading.Thread(target=wait)
        thread.start()
        time.sleep(0.4)
        handle.stop()
        thread.join(10.0)
        assert not thread.is_alive()
        assert len(outcomes) == 1
        error = outcomes[0]
        assert isinstance(error, ServiceError), f"got {error!r}"
        assert error.status == "shutting_down"
