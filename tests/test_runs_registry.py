"""Unit tests for the run registry (RunRecord schema, JSONL store, gc)."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    RunRegistry,
    build_run_record,
    config_digest,
    run_environment,
    validate_run_record,
)
from repro.obs.registry import _records_from_file


def _env():
    return {
        "git_rev": "deadbeef",
        "git_dirty": False,
        "python": "3.11.0",
        "numpy": "2.0.0",
        "cpu_count": 4,
        "platform": "TestOS",
    }


class TestRunEnvironment:
    def test_required_provenance_keys(self):
        env = run_environment()
        for key in ("git_rev", "python", "numpy", "cpu_count", "platform"):
            assert key in env
        # Inside this checkout the revision must resolve to a real hash.
        assert len(env["git_rev"]) == 40

    def test_outside_a_checkout(self, tmp_path):
        env = run_environment(cwd=tmp_path)
        assert env["git_rev"] == "unknown"
        assert env["git_dirty"] is None


class TestConfigDigest:
    def test_key_order_invariant(self):
        assert config_digest({"a": 1, "b": 2}) == config_digest({"b": 2, "a": 1})

    def test_value_sensitive(self):
        assert config_digest({"a": 1}) != config_digest({"a": 2})

    def test_prefixed(self):
        assert config_digest({}).startswith("sha256:")


class TestBuildRunRecord:
    def test_valid_and_schema_clean(self):
        record = build_run_record(
            "bench",
            config={"cardinality": 100},
            metrics={"x.wall_seconds": 1.0, "q.q_p2_percent": 99.0},
            environment=_env(),
        )
        assert validate_run_record(record) == []
        assert record["command"] == "bench"
        assert record["config_digest"] == config_digest({"cardinality": 100})

    def test_run_id_sortable_and_unique(self):
        a = build_run_record("bench", environment=_env())
        b = build_run_record("bench", environment=_env())
        assert a["run_id"] != b["run_id"]
        assert a["command"] in a["run_id"]

    def test_non_finite_metrics_become_null(self):
        record = build_run_record(
            "bench",
            metrics={"bad": float("nan"), "inf": float("inf"), "ok": 1.5},
            environment=_env(),
        )
        assert record["metrics"]["bad"] is None
        assert record["metrics"]["inf"] is None
        assert record["metrics"]["ok"] == 1.5
        # The record must survive a strict-JSON round trip.
        rehydrated = json.loads(
            json.dumps(record, allow_nan=False, sort_keys=True)
        )
        assert validate_run_record(rehydrated) == []

    def test_schema_rejects_missing_fields(self):
        record = build_run_record("bench", environment=_env())
        del record["config_digest"]
        assert any(
            "config_digest" in problem for problem in validate_run_record(record)
        )

    def test_schema_rejects_bad_metric_values(self):
        record = build_run_record("bench", environment=_env())
        record["metrics"]["oops"] = "fast"
        assert validate_run_record(record) != []


class TestRunRegistry:
    def test_append_and_load(self, tmp_path):
        registry = RunRegistry(tmp_path / ".runs")
        r1 = registry.record("bench", metrics={"a": 1.0}, environment=_env())
        r2 = registry.record("chaos", metrics={"a": 2.0}, environment=_env())
        loaded = registry.load_records()
        assert [r["run_id"] for r in loaded] == [r1["run_id"], r2["run_id"]]
        for record in loaded:
            assert validate_run_record(record) == []

    def test_artifacts_written_and_referenced(self, tmp_path):
        registry = RunRegistry(tmp_path / ".runs")
        record = registry.record(
            "bench",
            artifacts={"report.json": {"k": 1}, "notes.txt": "hello"},
            environment=_env(),
        )
        report_path = registry.root / record["artifacts"]["report.json"]
        assert json.loads(report_path.read_text()) == {"k": 1}
        notes_path = registry.root / record["artifacts"]["notes.txt"]
        assert notes_path.read_text() == "hello"
        # Stored record carries the same relative paths.
        stored = registry.load_records()[-1]
        assert stored["artifacts"] == record["artifacts"]

    def test_malformed_lines_skipped(self, tmp_path):
        registry = RunRegistry(tmp_path / ".runs")
        registry.record("bench", environment=_env())
        with registry.records_path.open("a") as handle:
            handle.write("not json at all\n")
        assert len(registry.load_records()) == 1

    def test_resolve_latest_and_back_references(self, tmp_path):
        registry = RunRegistry(tmp_path / ".runs")
        r1 = registry.record("bench", environment=_env())
        r2 = registry.record("bench", environment=_env())
        assert registry.resolve("latest")[0]["run_id"] == r2["run_id"]
        assert registry.resolve("latest~1")[0]["run_id"] == r1["run_id"]
        with pytest.raises(ValueError):
            registry.resolve("latest~5")

    def test_resolve_run_id_and_prefix(self, tmp_path):
        registry = RunRegistry(tmp_path / ".runs")
        record = registry.record("bench", environment=_env())
        assert registry.resolve(record["run_id"])[0]["run_id"] == record["run_id"]
        prefix = record["run_id"][:-2]
        assert registry.resolve(prefix)[0]["run_id"] == record["run_id"]
        with pytest.raises(ValueError):
            registry.resolve("no-such-run")

    def test_resolve_committed_file(self, tmp_path):
        registry = RunRegistry(tmp_path / ".runs")
        a = build_run_record("bench", metrics={"x": 1.0}, environment=_env())
        b = build_run_record("bench", metrics={"x": 2.0}, environment=_env())
        single = tmp_path / "baseline.json"
        single.write_text(json.dumps(a))
        assert registry.resolve(str(single))[0]["run_id"] == a["run_id"]
        # JSONL with k repeats resolves to all of them (median-of-k).
        multi = tmp_path / "baseline.jsonl"
        multi.write_text(json.dumps(a) + "\n" + json.dumps(b) + "\n")
        assert len(registry.resolve(str(multi))) == 2

    def test_resolve_file_rejects_invalid_records(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"run_id": "x"}))
        with pytest.raises(ValueError):
            _records_from_file(bad)

    def test_last_runs_filters_by_command(self, tmp_path):
        registry = RunRegistry(tmp_path / ".runs")
        registry.record("bench", environment=_env())
        registry.record("chaos", environment=_env())
        registry.record("bench", environment=_env())
        runs = registry.last_runs("bench", 5)
        assert len(runs) == 2
        assert all(r["command"] == "bench" for r in runs)

    def test_gc_keeps_newest_and_removes_artifacts(self, tmp_path):
        registry = RunRegistry(tmp_path / ".runs")
        old = registry.record(
            "bench", artifacts={"r.json": {"old": True}}, environment=_env()
        )
        new = registry.record(
            "bench", artifacts={"r.json": {"new": True}}, environment=_env()
        )
        dropped = registry.gc(keep=1)
        assert dropped == [old["run_id"]]
        remaining = registry.load_records()
        assert [r["run_id"] for r in remaining] == [new["run_id"]]
        assert not registry.artifacts_dir(old["run_id"]).exists()
        assert registry.artifacts_dir(new["run_id"]).exists()

    def test_gc_noop_when_under_budget(self, tmp_path):
        registry = RunRegistry(tmp_path / ".runs")
        registry.record("bench", environment=_env())
        assert registry.gc(keep=10) == []
        assert len(registry.load_records()) == 1

    def test_gc_clamps_when_keep_exceeds_count(self, tmp_path):
        # len(records) < keep < 2 * len(records): a naive negative-index
        # slice would wrap around and drop the oldest records.
        registry = RunRegistry(tmp_path / ".runs")
        records = [
            registry.record(
                "bench", artifacts={"r.json": {"i": i}}, environment=_env()
            )
            for i in range(3)
        ]
        assert registry.gc(keep=5) == []
        assert len(registry.load_records()) == 3
        for record in records:
            assert registry.artifacts_dir(record["run_id"]).exists()

    def test_gc_keep_zero_drops_everything(self, tmp_path):
        registry = RunRegistry(tmp_path / ".runs")
        records = [
            registry.record("bench", environment=_env()) for _ in range(2)
        ]
        assert registry.gc(keep=0) == [r["run_id"] for r in records]
        assert registry.load_records() == []

    def test_last_runs_filters_by_config_digest(self, tmp_path):
        registry = RunRegistry(tmp_path / ".runs")
        a = registry.record("bench", config={"seed": 1}, environment=_env())
        registry.record("bench", config={"seed": 2}, environment=_env())
        b = registry.record("bench", config={"seed": 1}, environment=_env())
        runs = registry.last_runs("bench", 5, config_digest=a["config_digest"])
        assert [r["run_id"] for r in runs] == [a["run_id"], b["run_id"]]
