"""Unit tests for the shared-memory array pool (repro.core.shm)."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.shm import ShmArrayPool, ShmArrayRef, attach_array


class TestShmArrayPool:
    def test_share_attach_roundtrip(self, rng):
        points = rng.normal(size=(100, 3))
        with ShmArrayPool() as pool:
            ref = pool.share(points)
            copy = attach_array(ref)
            np.testing.assert_array_equal(copy, points)
            assert copy.dtype == points.dtype
            assert copy.shape == points.shape

    def test_roundtrip_preserves_dtype(self):
        for dtype in (np.float64, np.float32, np.intp, np.int32):
            array = np.arange(12, dtype=dtype).reshape(3, 4)
            with ShmArrayPool() as pool:
                np.testing.assert_array_equal(
                    attach_array(pool.share(array)), array
                )

    def test_open_returns_readonly_zero_copy_view(self, rng):
        points = rng.normal(size=(10, 2))
        with ShmArrayPool() as pool:
            ref = pool.share(points)
            view, segment = ref.open()
            try:
                np.testing.assert_array_equal(view, points)
                assert not view.flags.writeable
                with pytest.raises((ValueError, RuntimeError)):
                    view[0, 0] = 1.0
            finally:
                del view
                segment.close()

    def test_refs_are_picklable_and_small(self, rng):
        points = rng.normal(size=(5_000, 2))
        with ShmArrayPool() as pool:
            ref = pool.share(points)
            wire = pickle.dumps(ref)
            # The whole point: the ref on the wire is orders of magnitude
            # smaller than the pickled array would be.
            assert len(wire) < points.nbytes / 100
            restored = pickle.loads(wire)
            np.testing.assert_array_equal(attach_array(restored), points)

    def test_share_copies_not_aliases(self, rng):
        points = rng.normal(size=(4, 2))
        with ShmArrayPool() as pool:
            ref = pool.share(points)
            points[0, 0] = 123.0  # mutate the original after sharing
            assert attach_array(ref)[0, 0] != 123.0

    def test_non_contiguous_input(self, rng):
        points = rng.normal(size=(20, 4))[::2, 1:]
        assert not points.flags.c_contiguous
        with ShmArrayPool() as pool:
            np.testing.assert_array_equal(
                attach_array(pool.share(points)), points
            )

    def test_bytes_shared_accounting(self, rng):
        a = rng.normal(size=(10, 2))
        b = rng.normal(size=(7, 3))
        with ShmArrayPool() as pool:
            assert pool.bytes_shared == 0
            ref_a = pool.share(a)
            ref_b = pool.share(b)
            assert pool.bytes_shared == a.nbytes + b.nbytes
            assert pool.n_arrays == 2
            assert ref_a.nbytes == a.nbytes
            assert ref_b.nbytes == b.nbytes

    def test_zero_size_array_rejected(self):
        with ShmArrayPool() as pool:
            with pytest.raises(ValueError, match="zero-size"):
                pool.share(np.empty((0, 2)))

    def test_close_unlinks_segments(self, rng):
        pool = ShmArrayPool()
        ref = pool.share(rng.normal(size=(3, 3)))
        pool.close()
        with pytest.raises(FileNotFoundError):
            attach_array(ref)

    def test_close_is_idempotent_and_share_after_close_raises(self, rng):
        pool = ShmArrayPool()
        pool.share(rng.normal(size=(3, 3)))
        pool.close()
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.share(rng.normal(size=(3, 3)))

    def test_concurrent_pools_do_not_collide(self, rng):
        a = rng.normal(size=(8, 2))
        b = rng.normal(size=(8, 2))
        with ShmArrayPool() as pool_a, ShmArrayPool() as pool_b:
            ref_a = pool_a.share(a)
            ref_b = pool_b.share(b)
            assert ref_a.name != ref_b.name
            np.testing.assert_array_equal(attach_array(ref_a), a)
            np.testing.assert_array_equal(attach_array(ref_b), b)


class TestShmArrayRef:
    def test_nbytes_matches_numpy(self):
        ref = ShmArrayRef(name="x", shape=(10, 3), dtype="<f8")
        assert ref.nbytes == 10 * 3 * 8

    def test_open_missing_segment_raises(self):
        ref = ShmArrayRef(name="repro_does_not_exist", shape=(1,), dtype="<f8")
        with pytest.raises(FileNotFoundError):
            ref.open()
