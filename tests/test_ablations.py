"""Tests for the metric/dimension ablations and the cluster sketch."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.ablations import run_dimension_ablation, run_metric_ablation
from repro.experiments.fig6 import cluster_sketch


class TestMetricAblation:
    @pytest.fixture(scope="class")
    def table(self):
        return run_metric_ablation(cardinality=1_500, n_sites=3, seed=1)

    def test_all_metrics_reported(self, table):
        assert table.column("metric") == ["euclidean", "manhattan", "chebyshev"]

    def test_quality_high_under_every_metric(self, table):
        """The pipeline is metric-generic: distributed ≈ central under
        each metric."""
        for value in table.column("P^II [%]"):
            assert value > 85.0

    def test_cluster_counts_positive(self, table):
        for count in table.column("DBDC clusters"):
            assert count > 0


class TestDimensionAblation:
    @pytest.fixture(scope="class")
    def table(self):
        return run_dimension_ablation(n_per_cluster=120, n_clusters=4, n_sites=3, seed=1)

    def test_dimensions_swept(self, table):
        assert table.column("dim") == [2, 3, 5, 8]

    def test_quality_stays_high_beyond_2d(self, table):
        for value in table.column("P^II [%]"):
            assert value > 85.0

    def test_timings_populated(self, table):
        for value in table.column("DBDC [s]"):
            assert value > 0


class TestClusterSketch:
    def test_dimensions(self, rng):
        points = rng.normal(size=(100, 2))
        labels = rng.integers(-1, 3, size=100)
        sketch = cluster_sketch(points, labels, width=20, height=8)
        lines = sketch.split("\n")
        assert len(lines) == 8
        assert all(len(line) == 20 for line in lines)

    def test_distinct_clusters_distinct_glyphs(self, rng):
        left = rng.normal(0, 0.5, size=(50, 2))
        right = rng.normal(0, 0.5, size=(50, 2)) + [30.0, 0.0]
        points = np.concatenate([left, right])
        labels = np.concatenate([np.zeros(50, dtype=int), np.ones(50, dtype=int)])
        sketch = cluster_sketch(points, labels, width=40, height=10)
        used = {ch for ch in sketch if ch not in " ·\n"}
        assert len(used) == 2

    def test_noise_renders_as_dot(self):
        points = np.asarray([[0.0, 0.0], [10.0, 10.0]])
        labels = np.asarray([-1, 0])
        sketch = cluster_sketch(points, labels, width=10, height=5)
        assert "·" in sketch

    def test_rejects_bad_shapes(self, rng):
        with pytest.raises(ValueError, match="\\(n, 2\\)"):
            cluster_sketch(rng.normal(size=(5, 3)), np.zeros(5, dtype=int))
        with pytest.raises(ValueError, match="labels"):
            cluster_sketch(rng.normal(size=(5, 2)), np.zeros(4, dtype=int))

    def test_empty_points(self):
        assert cluster_sketch(np.empty((0, 2)), np.empty(0, dtype=int)) == ""
