"""Whole-system integration: runner → queries → persistence → viz.

One federation is stood up once and then exercised through every
post-protocol capability the library offers — the "downstream user"
workflow end to end.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.data.generators import gaussian_blobs, uniform_noise
from repro.data.io import load_global_model, save_global_model
from repro.distributed.network import SimulatedNetwork
from repro.distributed.queries import FederationQueries
from repro.distributed.runner import DistributedRunConfig, DistributedRunner
from repro.viz.charts import scatter_plot


@pytest.fixture(scope="module")
def system():
    points, __ = gaussian_blobs(
        [220, 220, 220],
        np.asarray([[0.0, 0.0], [24.0, 0.0], [12.0, 20.0]]),
        1.1,
        seed=55,
    )
    noise = uniform_noise(40, (-6.0, 30.0), dim=2, seed=56)
    points = np.concatenate([points, noise])
    network = SimulatedNetwork()
    config = DistributedRunConfig(eps_local=1.2, min_pts_local=5, seed=2)
    report = DistributedRunner(config, network).run(points, n_sites=4)
    return points, report


class TestFullSystem:
    def test_three_clusters_found(self, system):
        __, report = system
        assert report.global_model.n_global_clusters == 3

    def test_queries_over_runner_output(self, system):
        __, report = system
        queries = FederationQueries(report.sites)
        summary = queries.cluster_summary()
        assert len(summary) == 3
        # Aggregates recover the generating centers.
        centers = sorted(
            (round(a.centroid[0]), round(a.centroid[1])) for a in summary
        )
        assert centers == [(0, 0), (12, 20), (24, 0)]

    def test_aggregate_counts_match_labels(self, system):
        points, report = system
        queries = FederationQueries(report.sites)
        total = sum(a.count for a in queries.cluster_summary())
        labels = report.labels_in_original_order()
        assert total == int(np.count_nonzero(labels >= 0))

    def test_global_model_roundtrips_through_json(self, system, tmp_path):
        __, report = system
        path = tmp_path / "model.json"
        save_global_model(path, report.global_model)
        restored = load_global_model(path)
        assert restored.n_global_clusters == report.global_model.n_global_clusters
        np.testing.assert_array_equal(
            restored.global_labels, report.global_model.global_labels
        )

    def test_result_renders_as_svg(self, system):
        points, report = system
        document = scatter_plot(points, report.labels_in_original_order())
        root = ET.fromstring(document)
        circles = root.findall("{http://www.w3.org/2000/svg}circle")
        assert len(circles) == points.shape[0]

    def test_traffic_was_recorded(self, system):
        __, report = system
        assert report.network.n_messages == 8  # 4 up + 4 down
        assert 0 < report.transmission_cost_ratio < 1
        assert report.transmission_saving == pytest.approx(
            1.0 - report.transmission_cost_ratio
        )
