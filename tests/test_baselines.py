"""Tests for the §4 baseline comparison experiment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.baselines import baseline_workloads, run_baseline_comparison


class TestWorkloads:
    @pytest.fixture(scope="class")
    def workloads(self):
        return baseline_workloads(seed=0)

    def test_all_three_present(self, workloads):
        assert set(workloads) == {"concentric", "noise bridge", "varying density"}

    def test_specs_complete(self, workloads):
        for spec in workloads.values():
            assert spec["points"].shape[0] == spec["truth"].shape[0]
            assert spec["eps"] > 0
            assert spec["min_pts"] >= 1
            assert spec["k"] >= 2

    def test_concentric_geometry(self, workloads):
        spec = workloads["concentric"]
        ring_points = spec["points"][spec["truth"] == 0]
        blob_points = spec["points"][spec["truth"] == 1]
        ring_radii = np.linalg.norm(ring_points, axis=1)
        blob_radii = np.linalg.norm(blob_points, axis=1)
        assert ring_radii.min() > blob_radii.max()  # truly enclosing

    def test_noise_bridge_has_noise_truth(self, workloads):
        spec = workloads["noise bridge"]
        assert (spec["truth"] == -1).sum() == 500

    def test_deterministic(self):
        a = baseline_workloads(seed=3)["concentric"]["points"]
        b = baseline_workloads(seed=3)["concentric"]["points"]
        np.testing.assert_array_equal(a, b)


class TestComparison:
    @pytest.fixture(scope="class")
    def table(self):
        return run_baseline_comparison(seed=0)

    def test_table_shape(self, table):
        assert table.column("workload") == [
            "concentric",
            "noise bridge",
            "varying density",
        ]

    def test_dbscan_good_everywhere(self, table):
        """§4's conclusion: DBSCAN is the only robust choice."""
        for score in table.column("DBSCAN"):
            assert score > 0.8

    def test_kmeans_fails_on_nonglobular(self, table):
        scores = dict(zip(table.column("workload"), table.column("k-means")))
        assert scores["concentric"] < 0.5

    def test_single_link_fails_on_noise(self, table):
        scores = dict(zip(table.column("workload"), table.column("single-link")))
        assert scores["noise bridge"] < 0.5

    def test_single_link_fails_on_varying_density(self, table):
        scores = dict(zip(table.column("workload"), table.column("single-link")))
        assert scores["varying density"] < 0.8

    def test_single_link_good_on_nonglobular(self, table):
        """The paper grants single-link this strength explicitly."""
        scores = dict(zip(table.column("workload"), table.column("single-link")))
        assert scores["concentric"] > 0.9
