"""DBSCAN across metrics and indexes — the §4 metric-space claim.

Property-tests that DBSCAN's output is identical regardless of the index
used, for every supported metric, and that the definitions hold under
non-euclidean metrics too.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering.dbscan import dbscan
from repro.data.distance import get_metric

METRICS = ["euclidean", "manhattan", "chebyshev"]
INDEXES = ["brute", "grid", "kdtree", "rtree", "mtree"]


def _mixed_points(seed: int, n: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    clumped = rng.normal(0, 1.0, size=(n // 2, 2))
    scattered = rng.uniform(-8, 8, size=(n - n // 2, 2))
    return np.concatenate([clumped, scattered])


@pytest.mark.parametrize("metric", METRICS)
@pytest.mark.parametrize("kind", INDEXES)
def test_index_invariance_per_metric(metric, kind, rng):
    points = _mixed_points(77, 150)
    reference = dbscan(points, 1.0, 4, metric=metric, index_kind="brute")
    other = dbscan(points, 1.0, 4, metric=metric, index_kind=kind)
    np.testing.assert_array_equal(other.labels, reference.labels)
    np.testing.assert_array_equal(other.core_mask, reference.core_mask)


@pytest.mark.parametrize("metric", METRICS)
@given(seed=st.integers(0, 50_000), eps=st.floats(0.3, 2.5))
@settings(max_examples=20, deadline=None)
def test_definitions_hold_under_metric(metric, seed, eps):
    points = _mixed_points(seed, 50)
    resolved = get_metric(metric)
    result = dbscan(points, eps, 4, metric=metric)
    for i in range(points.shape[0]):
        distances = resolved.to_many(points[i], points)
        neighbors = np.flatnonzero(distances <= eps)
        assert bool(result.core_mask[i]) == (neighbors.size >= 4)
        if result.labels[i] == -1:
            assert not result.core_mask[neighbors].any()


def test_metric_changes_clustering(rng):
    """Sanity: the metric genuinely matters — a chebyshev ball of radius r
    contains the euclidean ball, so cores only get denser."""
    points = _mixed_points(3, 120)
    euclid = dbscan(points, 1.0, 4, metric="euclidean")
    cheby = dbscan(points, 1.0, 4, metric="chebyshev")
    manhattan = dbscan(points, 1.0, 4, metric="manhattan")
    assert set(np.flatnonzero(euclid.core_mask)) <= set(
        np.flatnonzero(cheby.core_mask)
    )
    assert set(np.flatnonzero(manhattan.core_mask)) <= set(
        np.flatnonzero(euclid.core_mask)
    )


@pytest.mark.parametrize("metric", METRICS)
def test_full_dbdc_pipeline_per_metric(metric):
    """End-to-end: the whole DBDC protocol under each metric."""
    from repro.core.dbdc import DBDCConfig, run_dbdc_partitioned
    from repro.data.generators import gaussian_blobs
    from repro.distributed.partition import uniform_random
    from repro.quality import evaluate_quality

    points, __ = gaussian_blobs(
        [200, 200], np.asarray([[0.0, 0.0], [15.0, 0.0]]), 1.0, seed=4
    )
    central = dbscan(points, 1.2, 5, metric=metric)
    assignment = uniform_random(points.shape[0], 3, seed=0)
    config = DBDCConfig(eps_local=1.2, min_pts_local=5, metric=metric)
    run = run_dbdc_partitioned(points, assignment, config)
    quality = evaluate_quality(
        run.labels_in_original_order(), central.labels, qp=5
    )
    assert quality.q_p2 > 0.9
