"""Property tests for the batched query layer.

For every index kind and metric, ``range_query_batch`` /
``region_query_batch`` must return exactly the per-query results — on
random point sets, duplicated points, empty query batches, external query
points, and (for the grid) radii larger than the build radius.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.distance import Metric, get_metric
from repro.index import build_index

# (index kind, metric) combinations each index supports exactly.  The
# M-tree needs the triangle inequality, so squared_euclidean is excluded
# there; the grid rejects non-L_p metrics at construction time.
INDEX_METRICS = [
    ("brute", "euclidean"),
    ("brute", "manhattan"),
    ("brute", "chebyshev"),
    ("brute", "squared_euclidean"),
    ("grid", "euclidean"),
    ("grid", "manhattan"),
    ("grid", "chebyshev"),
    ("grid", "squared_euclidean"),
    ("kdtree", "euclidean"),
    ("kdtree", "manhattan"),
    ("kdtree", "chebyshev"),
    ("rtree", "euclidean"),
    ("rtree", "manhattan"),
    ("mtree", "euclidean"),
    ("mtree", "manhattan"),
]

BUILD_EPS = 1.1


def _point_set(seed: int, n: int = 140, dim: int = 2) -> np.ndarray:
    """Clumps + scatter + exact duplicates, the hard cases for indexes."""
    rng = np.random.default_rng(seed)
    clumped = rng.normal(0.0, 1.0, size=(n // 2, dim))
    scattered = rng.uniform(-8.0, 8.0, size=(n - n // 2, dim))
    points = np.concatenate([clumped, scattered])
    # Duplicate a slice of rows verbatim (ties at distance 0 and on cell
    # borders must behave identically in both query paths).
    points[-10:] = points[:10]
    return points


def _assert_batch_matches(index, queries: np.ndarray, eps: float) -> None:
    batch = index.range_query_batch(queries, eps)
    assert len(batch) == len(queries)
    for query, hits in zip(queries, batch):
        expected = index.range_query(query, eps)
        assert np.array_equal(hits, expected)


@pytest.mark.parametrize("kind,metric", INDEX_METRICS)
@pytest.mark.parametrize("seed", [0, 1])
def test_range_query_batch_equals_per_query(kind, metric, seed):
    points = _point_set(seed)
    index = build_index(points, kind, metric=metric, eps=BUILD_EPS)
    rng = np.random.default_rng(seed + 99)
    external = rng.uniform(-10.0, 10.0, size=(25, points.shape[1]))
    for eps in (0.0, 0.4, BUILD_EPS, 3.7):
        _assert_batch_matches(index, points[:40], eps)
        _assert_batch_matches(index, external, eps)


@pytest.mark.parametrize("kind,metric", INDEX_METRICS)
def test_region_query_batch_equals_per_query(kind, metric):
    points = _point_set(3)
    index = build_index(points, kind, metric=metric, eps=BUILD_EPS)
    indices = np.asarray([0, 5, 5, 17, points.shape[0] - 1], dtype=np.intp)
    for eps in (0.4, BUILD_EPS):
        batch = index.region_query_batch(indices, eps)
        assert len(batch) == indices.size
        for i, hits in zip(indices, batch):
            assert np.array_equal(hits, index.region_query(int(i), eps))


@pytest.mark.parametrize("kind", ["brute", "grid", "kdtree", "rtree", "mtree"])
def test_empty_query_batch(kind):
    points = _point_set(4)
    index = build_index(points, kind, eps=BUILD_EPS)
    assert index.range_query_batch([], 1.0) == []
    assert index.range_query_batch(np.empty((0, 2)), 1.0) == []
    assert index.region_query_batch([], 1.0) == []
    assert index.region_query_batch(np.empty(0, dtype=np.intp), 1.0) == []


@pytest.mark.parametrize("kind", ["brute", "grid", "kdtree"])
def test_batch_on_empty_index(kind):
    index = build_index(np.empty((0, 2)), kind, eps=BUILD_EPS)
    batch = index.range_query_batch(np.asarray([[0.0, 0.0], [1.0, 1.0]]), 2.0)
    assert len(batch) == 2
    assert all(hits.size == 0 for hits in batch)


def test_grid_batch_eps_larger_than_build_radius():
    """Queries spanning several cell rings stay exact in the batch path."""
    points = _point_set(5)
    index = build_index(points, "grid", eps=0.3)  # small cells
    for eps in (0.9, 2.5, 40.0):  # up to "covers every cell"
        _assert_batch_matches(index, points[:30], eps)


def test_brute_batch_falls_back_for_unknown_metric():
    """A metric outside the L_p family uses the exact per-query fallback."""
    euclid = get_metric("euclidean")
    custom = Metric("custom_scaled", euclid.pairwise, euclid.to_many)
    points = _point_set(6)
    index = build_index(points, "brute", metric=custom)
    _assert_batch_matches(index, points[:25], 1.3)


@pytest.mark.parametrize("name", ["euclidean", "squared_euclidean", "manhattan", "chebyshev"])
def test_metric_matrix_rows_bitwise_equal_to_many(name):
    """The batched kernels' determinism guarantee: matrix row == to_many."""
    metric = get_metric(name)
    rng = np.random.default_rng(11)
    queries = rng.normal(0, 5, size=(17, 3))
    points = rng.normal(0, 5, size=(200, 3))
    matrix = metric.matrix(queries, points)
    for i, query in enumerate(queries):
        row = metric.to_many(query, points)
        assert np.array_equal(matrix[i], row)  # bitwise, not approx
