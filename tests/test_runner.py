"""Unit tests for the DistributedRunner orchestration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.generators import gaussian_blobs
from repro.distributed.network import SimulatedNetwork
from repro.distributed.runner import DistributedRunConfig, DistributedRunner


@pytest.fixture
def blobs():
    points, __ = gaussian_blobs(
        [150, 150], np.asarray([[0.0, 0.0], [14.0, 0.0]]), 1.0, seed=33
    )
    return points


@pytest.fixture
def config():
    return DistributedRunConfig(eps_local=1.0, min_pts_local=5, seed=3)


class TestRun:
    def test_end_to_end_report(self, blobs, config):
        report = DistributedRunner(config).run(blobs, n_sites=3)
        assert len(report.sites) == 3
        assert report.n_objects == blobs.shape[0]
        assert report.n_representatives == len(report.global_model)
        assert report.overall_seconds > 0
        assert report.global_seconds >= 0

    def test_network_traffic_accounted(self, blobs, config):
        network = SimulatedNetwork()
        report = DistributedRunner(config, network).run(blobs, n_sites=3)
        stats = report.network
        # 3 local models up + 3 broadcasts down.
        assert stats.n_messages == 6
        assert stats.bytes_upstream > 0
        assert stats.bytes_downstream > 0

    def test_transmission_saving_complements_cost_ratio(self, blobs, config):
        report = DistributedRunner(config).run(blobs, n_sites=3)
        cost = report.transmission_cost_ratio
        assert cost == pytest.approx(
            report.network.bytes_upstream / report.raw_bytes
        )
        assert 0 < cost < 1.0
        assert report.transmission_saving == pytest.approx(1.0 - cost)
        # Models are far cheaper than the raw data — the saving dominates.
        assert report.transmission_saving > 0.5

    def test_transmission_ratios_zero_for_empty_baseline(self, blobs, config):
        report = DistributedRunner(config).run(blobs, n_sites=3)
        report.raw_bytes = 0
        assert report.transmission_cost_ratio == 0.0
        assert report.transmission_saving == 0.0

    def test_bytes_by_kind_covers_all_traffic(self, blobs, config):
        report = DistributedRunner(config).run(blobs, n_sites=3)
        by_kind = report.bytes_by_kind
        assert set(by_kind) == {"local_model", "global_model"}
        assert by_kind["local_model"] == report.network.bytes_upstream
        assert by_kind["global_model"] == report.network.bytes_downstream
        assert sum(by_kind.values()) == report.network.bytes_total

    def test_labels_realigned(self, blobs, config):
        report = DistributedRunner(config).run(blobs, n_sites=3)
        labels = report.labels_in_original_order()
        assert labels.shape == (blobs.shape[0],)
        # The two blobs are separated; each maps to one global cluster.
        first_blob = labels[:150]
        clustered = first_blob[first_blob >= 0]
        assert np.unique(clustered).size == 1

    def test_both_blobs_distinct_clusters(self, blobs, config):
        report = DistributedRunner(config).run(blobs, n_sites=3)
        labels = report.labels_in_original_order()
        a = labels[:150][labels[:150] >= 0]
        b = labels[150:][labels[150:] >= 0]
        assert set(np.unique(a)).isdisjoint(np.unique(b))

    def test_presplit_sites_without_assignment(self, blobs, config):
        halves = [blobs[:150], blobs[150:]]
        report = DistributedRunner(config).run_on_sites(halves)
        assert report.assignment is None
        with pytest.raises(RuntimeError, match="assignment"):
            report.labels_in_original_order()

    def test_rejects_empty_sites(self, config):
        with pytest.raises(ValueError, match="at least one site"):
            DistributedRunner(config).run_on_sites([])

    def test_matches_plain_pipeline_quality(self, blobs, config):
        """Runner and run_dbdc_partitioned produce the same partition for
        the same assignment."""
        from repro.core.dbdc import DBDCConfig, run_dbdc_partitioned
        from repro.distributed.partition import uniform_random

        assignment = uniform_random(blobs.shape[0], 3, seed=11)
        report = DistributedRunner(config).run_on_sites(
            [blobs[assignment == s] for s in range(3)], assignment
        )
        plain = run_dbdc_partitioned(
            blobs,
            assignment,
            DBDCConfig(eps_local=1.0, min_pts_local=5),
        )
        np.testing.assert_array_equal(
            report.labels_in_original_order(),
            plain.labels_in_original_order(),
        )

    def test_scheme_passthrough(self, blobs):
        config = DistributedRunConfig(
            eps_local=1.0, min_pts_local=5, scheme="rep_kmeans"
        )
        report = DistributedRunner(config).run(blobs, n_sites=2)
        outcome = report.sites[0].local_outcome
        assert outcome.model.scheme == "rep_kmeans"
