"""Tests for the k-distance parameter selection heuristics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.dbscan import dbscan
from repro.clustering.parameters import (
    k_distances,
    sorted_k_distance_plot,
    suggest_eps_by_knee,
    suggest_eps_by_quantile,
    suggest_parameters,
)
from repro.data.generators import gaussian_blobs, uniform_noise


@pytest.fixture
def blob_with_noise(rng):
    blob, __ = gaussian_blobs([150], np.asarray([[0.0, 0.0]]), 1.0, seed=5)
    noise = uniform_noise(15, (-30.0, 30.0), dim=2, seed=6)
    return np.concatenate([blob, noise])


class TestKDistances:
    def test_matches_bruteforce(self, rng):
        points = rng.normal(size=(40, 2))
        k = 3
        result = k_distances(points, k)
        for i in range(40):
            dist = np.linalg.norm(points - points[i], axis=1)
            expected = np.sort(dist)[k]  # index 0 is the point itself
            assert result[i] == pytest.approx(expected)

    def test_rejects_bad_k(self, rng):
        points = rng.normal(size=(10, 2))
        with pytest.raises(ValueError, match="k must be"):
            k_distances(points, 0)
        with pytest.raises(ValueError, match="k must be"):
            k_distances(points, 10)

    def test_sorted_plot_descending(self, blob_with_noise):
        curve = sorted_k_distance_plot(blob_with_noise, 3)
        assert (np.diff(curve) <= 1e-12).all()

    def test_noise_dominates_plot_head(self, blob_with_noise):
        """Scattered noise points carry the largest k-distances."""
        values = k_distances(blob_with_noise, 3)
        worst = set(np.argsort(values)[-10:])
        noise_indices = set(range(150, 165))
        assert len(worst & noise_indices) >= 8


class TestSuggestions:
    def test_quantile_rule_bounds(self, blob_with_noise):
        eps = suggest_eps_by_quantile(blob_with_noise, 4, noise_share=0.1)
        curve = sorted_k_distance_plot(blob_with_noise, 3)
        assert curve[-1] <= eps <= curve[0]

    def test_quantile_rejects_bad_share(self, blob_with_noise):
        with pytest.raises(ValueError, match="noise_share"):
            suggest_eps_by_quantile(blob_with_noise, 4, noise_share=1.0)

    def test_knee_separates_noise_from_cluster(self, blob_with_noise):
        """DBSCAN at the knee eps recovers the blob and flags the
        scattered points as noise — the heuristic's whole purpose."""
        eps = suggest_eps_by_knee(blob_with_noise, 4)
        result = dbscan(blob_with_noise, eps, 4)
        assert result.n_clusters == 1
        assert 5 <= result.n_noise <= 30

    def test_knee_between_curve_extremes(self, blob_with_noise):
        eps = suggest_eps_by_knee(blob_with_noise, 4)
        curve = sorted_k_distance_plot(blob_with_noise, 3)
        assert curve[-1] <= eps <= curve[0]

    def test_suggest_parameters_defaults(self, blob_with_noise):
        eps, min_pts = suggest_parameters(blob_with_noise)
        assert min_pts == 4  # 2 * dim
        assert eps > 0

    def test_suggest_parameters_respects_fixed_min_pts(self, blob_with_noise):
        __, min_pts = suggest_parameters(blob_with_noise, min_pts=7)
        assert min_pts == 7

    def test_end_to_end_on_structured_data(self, rng):
        # The knee heuristic locates the noise/cluster boundary, so the
        # workload needs a noise tail (its intended use case).
        blobs, __ = gaussian_blobs(
            [120, 120, 120],
            np.asarray([[0.0, 0.0], [20.0, 0.0], [10.0, 17.0]]),
            1.0,
            seed=8,
        )
        noise = uniform_noise(30, (-10.0, 30.0), dim=2, seed=9)
        points = np.concatenate([blobs, noise])
        eps, min_pts = suggest_parameters(points)
        result = dbscan(points, eps, min_pts)
        assert result.n_clusters == 3
