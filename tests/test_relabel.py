"""Unit tests for the relabeling step (Section 7, Figure 5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.labels import NOISE
from repro.core.models import GlobalModel, Representative
from repro.core.relabel import relabel_site


def _global_model(reps_spec, labels, eps_global=2.0):
    reps = [
        Representative(np.asarray(p, dtype=float), eps, site, cid)
        for p, eps, site, cid in reps_spec
    ]
    return GlobalModel(reps, np.asarray(labels), eps_global=eps_global)


class TestFigure5Scenario:
    """Reproduce the paper's Figure 5 example:

    R1, R2 are this site's representatives of two separate local clusters;
    R3 comes from another site.  All three belong to the same global
    cluster.  Local noise objects A, B fall inside R3's ε-range and get
    promoted; C stays noise.
    """

    @pytest.fixture
    def scenario(self):
        points = np.asarray(
            [
                [0.0, 0.0],  # 0: member of local cluster 0 (near R1)
                [0.5, 0.0],  # 1: member of local cluster 0
                [6.0, 0.0],  # 2: member of local cluster 1 (near R2)
                [6.5, 0.0],  # 3: member of local cluster 1
                [3.0, 0.2],  # 4: A — local noise inside R3's range
                [3.2, -0.2],  # 5: B — local noise inside R3's range
                [3.0, 9.0],  # 6: C — local noise outside every range
            ]
        )
        local_labels = np.asarray([0, 0, 1, 1, NOISE, NOISE, NOISE])
        model = _global_model(
            [
                ([0.0, 0.0], 1.0, 0, 0),  # R1 (this site, local cluster 0)
                ([6.0, 0.0], 1.0, 0, 1),  # R2 (this site, local cluster 1)
                ([3.0, 0.0], 1.0, 1, 0),  # R3 (remote site)
            ],
            labels=[7, 7, 7],  # one shared global cluster id
        )
        return points, local_labels, model

    def test_noise_promotion(self, scenario):
        points, local_labels, model = scenario
        out, stats = relabel_site(points, local_labels, model, site_id=0)
        assert out[4] == 7  # A
        assert out[5] == 7  # B
        assert stats.n_noise_promoted == 2

    def test_c_stays_noise(self, scenario):
        points, local_labels, model = scenario
        out, __ = relabel_site(points, local_labels, model, site_id=0)
        assert out[6] == NOISE

    def test_local_clusters_merged(self, scenario):
        points, local_labels, model = scenario
        out, stats = relabel_site(points, local_labels, model, site_id=0)
        assert out[0] == out[1] == out[2] == out[3] == 7
        assert stats.n_local_clusters_merged == 1


class TestCoverageRules:
    def test_nearest_covering_representative_wins(self):
        points = np.asarray([[1.0, 0.0]])
        local_labels = np.asarray([NOISE])
        model = _global_model(
            [([0.0, 0.0], 2.0, 1, 0), ([1.5, 0.0], 2.0, 1, 1)],
            labels=[3, 4],
        )
        out, __ = relabel_site(points, local_labels, model, site_id=0)
        assert out[0] == 4  # distance 0.5 beats distance 1.0

    def test_uncovered_cluster_member_inherits_own_global_id(self):
        # The member at distance 1.5 from its rep is outside ε_r = 1.0 but
        # belonged to local cluster 0, whose rep joined global cluster 9.
        points = np.asarray([[1.5, 0.0]])
        local_labels = np.asarray([0])
        model = _global_model([([0.0, 0.0], 1.0, 0, 0)], labels=[9])
        out, stats = relabel_site(points, local_labels, model, site_id=0)
        assert out[0] == 9
        assert stats.n_inherited == 1

    def test_inheritance_disabled_without_site_id(self):
        points = np.asarray([[1.5, 0.0]])
        local_labels = np.asarray([0])
        model = _global_model([([0.0, 0.0], 1.0, 0, 0)], labels=[9])
        out, __ = relabel_site(points, local_labels, model, site_id=None)
        assert out[0] == NOISE

    def test_split_local_cluster_follows_nearest_own_rep(self):
        # Local cluster 0 has two reps that ended in different global
        # clusters; the uncovered member picks the nearer one.
        points = np.asarray([[4.2, 0.0]])
        local_labels = np.asarray([0])
        model = _global_model(
            [([0.0, 0.0], 1.0, 0, 0), ([5.5, 0.0], 1.0, 0, 0)],
            labels=[1, 2],
        )
        out, __ = relabel_site(points, local_labels, model, site_id=0)
        assert out[0] == 2

    def test_remote_reps_do_not_drive_inheritance(self):
        # The only rep of "local cluster 0" belongs to another site.
        points = np.asarray([[1.5, 0.0]])
        local_labels = np.asarray([0])
        model = _global_model([([0.0, 0.0], 1.0, 5, 0)], labels=[9])
        out, __ = relabel_site(points, local_labels, model, site_id=0)
        assert out[0] == NOISE


class TestEdgeCases:
    def test_empty_global_model(self):
        points = np.asarray([[0.0, 0.0]])
        model = GlobalModel([], np.empty(0, dtype=int), eps_global=1.0)
        out, stats = relabel_site(points, np.asarray([0]), model, site_id=0)
        assert out[0] == NOISE
        assert stats.n_covered == 0

    def test_empty_site(self):
        model = _global_model([([0.0, 0.0], 1.0, 0, 0)], labels=[0])
        out, stats = relabel_site(
            np.empty((0, 2)), np.empty(0, dtype=int), model, site_id=0
        )
        assert out.size == 0
        assert stats.n_objects == 0

    def test_length_mismatch_raises(self):
        model = _global_model([([0.0, 0.0], 1.0, 0, 0)], labels=[0])
        with pytest.raises(ValueError, match="local labels"):
            relabel_site(np.zeros((2, 2)), np.asarray([0]), model, site_id=0)

    def test_stats_consistency(self, rng):
        points = rng.normal(0, 2, size=(50, 2))
        local_labels = np.where(rng.random(50) < 0.3, NOISE, 0)
        model = _global_model([([0.0, 0.0], 2.0, 0, 0)], labels=[0])
        out, stats = relabel_site(points, local_labels, model, site_id=0)
        assert stats.n_objects == 50
        assert stats.n_still_noise == int(np.count_nonzero(out == NOISE))
        assert 0 <= stats.n_covered <= 50
