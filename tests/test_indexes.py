"""Unit + property tests for all neighbor indexes (vs the brute oracle)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index import (
    BruteForceIndex,
    GridIndex,
    KDTreeIndex,
    RTreeIndex,
    available_indexes,
    build_index,
)

INDEX_BUILDERS = {
    "brute": lambda pts, metric="euclidean": BruteForceIndex(pts, metric),
    "grid": lambda pts, metric="euclidean": GridIndex(pts, metric, cell_size=1.0),
    "kdtree": lambda pts, metric="euclidean": KDTreeIndex(pts, metric, leaf_size=4),
    "rtree": lambda pts, metric="euclidean": RTreeIndex(pts, metric, node_capacity=4),
}


def _oracle(points, query, eps, metric="euclidean"):
    return BruteForceIndex(points, metric).range_query(query, eps)


@pytest.mark.parametrize("kind", list(INDEX_BUILDERS), ids=str)
class TestAllIndexes:
    def test_region_query_contains_self(self, kind, rng):
        points = rng.normal(size=(50, 2))
        index = INDEX_BUILDERS[kind](points)
        for i in (0, 17, 49):
            assert i in index.region_query(i, 0.5)

    def test_matches_oracle_random_points(self, kind, rng):
        points = rng.uniform(-5, 5, size=(200, 2))
        index = INDEX_BUILDERS[kind](points)
        for eps in (0.1, 0.7, 2.5, 12.0):
            for qi in range(0, 200, 37):
                expected = _oracle(points, points[qi], eps)
                got = index.range_query(points[qi], eps)
                np.testing.assert_array_equal(got, expected)

    def test_matches_oracle_external_query(self, kind, rng):
        points = rng.uniform(-5, 5, size=(100, 3))
        index = INDEX_BUILDERS[kind](points)
        query = np.asarray([9.0, 0.0, -1.0])
        np.testing.assert_array_equal(
            index.range_query(query, 6.0), _oracle(points, query, 6.0)
        )

    def test_manhattan_metric(self, kind, rng):
        points = rng.uniform(-3, 3, size=(80, 2))
        index = INDEX_BUILDERS[kind](points, metric="manhattan")
        query = points[5]
        np.testing.assert_array_equal(
            index.range_query(query, 1.3),
            _oracle(points, query, 1.3, metric="manhattan"),
        )

    def test_empty_index(self, kind):
        points = np.empty((0, 2))
        index = INDEX_BUILDERS[kind](points)
        assert index.range_query(np.zeros(2), 1.0).size == 0
        assert len(index) == 0

    def test_single_point(self, kind):
        index = INDEX_BUILDERS[kind](np.asarray([[1.0, 2.0]]))
        assert list(index.range_query(np.asarray([1.0, 2.0]), 0.0)) == [0]
        assert index.range_query(np.asarray([5.0, 5.0]), 1.0).size == 0

    def test_duplicate_points_all_returned(self, kind):
        points = np.asarray([[0.0, 0.0]] * 5 + [[3.0, 0.0]])
        index = INDEX_BUILDERS[kind](points)
        hits = index.range_query(np.zeros(2), 0.1)
        assert list(hits) == [0, 1, 2, 3, 4]

    def test_eps_boundary_inclusive(self, kind):
        points = np.asarray([[0.0, 0.0], [1.0, 0.0]])
        index = INDEX_BUILDERS[kind](points)
        assert 1 in index.range_query(np.zeros(2), 1.0)
        assert 1 not in index.range_query(np.zeros(2), 0.999)

    def test_count_in_range(self, kind, rng):
        points = rng.uniform(-2, 2, size=(60, 2))
        index = INDEX_BUILDERS[kind](points)
        q = points[0]
        assert index.count_in_range(q, 1.0) == _oracle(points, q, 1.0).size

    @given(seed=st.integers(0, 10_000), eps=st.floats(0.01, 5.0))
    @settings(max_examples=25, deadline=None)
    def test_property_random_configurations(self, kind, seed, eps):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 60))
        dim = int(rng.integers(1, 4))
        points = rng.uniform(-4, 4, size=(n, dim))
        index = INDEX_BUILDERS[kind](points)
        query = rng.uniform(-5, 5, size=dim)
        np.testing.assert_array_equal(
            index.range_query(query, eps), _oracle(points, query, eps)
        )


class TestGridSpecifics:
    def test_rejects_nonpositive_cell(self):
        with pytest.raises(ValueError, match="cell_size"):
            GridIndex(np.zeros((3, 2)), cell_size=0.0)

    def test_rejects_unsupported_metric(self):
        from repro.data.distance import Metric, euclidean

        weird = Metric("weird", euclidean.pairwise, euclidean.to_many)
        with pytest.raises(ValueError, match="supports metrics"):
            GridIndex(np.zeros((3, 2)), weird, cell_size=1.0)

    def test_query_radius_larger_than_cell(self, rng):
        points = rng.uniform(0, 10, size=(150, 2))
        index = GridIndex(points, cell_size=0.5)
        q = points[3]
        np.testing.assert_array_equal(
            index.range_query(q, 4.0), _oracle(points, q, 4.0)
        )

    def test_occupied_cells_counted(self):
        points = np.asarray([[0.1, 0.1], [0.2, 0.2], [5.0, 5.0]])
        index = GridIndex(points, cell_size=1.0)
        assert index.n_occupied_cells == 2


class TestKDTreeSpecifics:
    def test_rejects_bad_leaf_size(self):
        with pytest.raises(ValueError, match="leaf_size"):
            KDTreeIndex(np.zeros((3, 2)), leaf_size=0)

    def test_knn_matches_sorted_oracle(self, rng):
        points = rng.normal(size=(120, 2))
        index = KDTreeIndex(points, leaf_size=5)
        q = rng.normal(size=2)
        idx, dist = index.knn_query(q, 7)
        diff = points - q
        all_dist = np.sqrt((diff * diff).sum(axis=1))
        expected = np.sort(all_dist)[:7]
        np.testing.assert_allclose(np.sort(dist), expected, rtol=1e-12)
        assert np.all(np.diff(dist) >= -1e-12)

    def test_knn_k_exceeds_n(self, rng):
        points = rng.normal(size=(5, 2))
        index = KDTreeIndex(points)
        idx, dist = index.knn_query(np.zeros(2), 50)
        assert idx.size == 5

    def test_knn_rejects_bad_k(self):
        index = KDTreeIndex(np.zeros((3, 2)))
        with pytest.raises(ValueError, match="k must be"):
            index.knn_query(np.zeros(2), 0)

    def test_identical_points_leaf(self):
        points = np.zeros((40, 2))
        index = KDTreeIndex(points, leaf_size=4)
        assert index.range_query(np.zeros(2), 0.1).size == 40


class TestRTreeSpecifics:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError, match="node_capacity"):
            RTreeIndex(np.zeros((3, 2)), node_capacity=1)

    def test_height_grows_with_points(self, rng):
        small = RTreeIndex(rng.normal(size=(10, 2)), node_capacity=4)
        large = RTreeIndex(rng.normal(size=(1000, 2)), node_capacity=4)
        assert large.height > small.height >= 1

    def test_three_dimensional(self, rng):
        points = rng.uniform(-2, 2, size=(300, 3))
        index = RTreeIndex(points, node_capacity=8)
        q = points[42]
        np.testing.assert_array_equal(
            index.range_query(q, 1.2), _oracle(points, q, 1.2)
        )


class TestFactory:
    def test_available_names(self):
        assert set(available_indexes()) == {
            "auto",
            "brute",
            "grid",
            "kdtree",
            "rtree",
            "mtree",
        }

    def test_auto_prefers_grid_with_eps(self, rng):
        points = rng.normal(size=(20, 2))
        index = build_index(points, "auto", eps=1.0)
        assert isinstance(index, GridIndex)

    def test_auto_without_eps_uses_kdtree(self, rng):
        points = rng.normal(size=(20, 2))
        index = build_index(points, "auto")
        assert isinstance(index, KDTreeIndex)

    def test_auto_empty_points_brute(self):
        index = build_index(np.empty((0, 2)), "auto", eps=1.0)
        assert isinstance(index, BruteForceIndex)

    @pytest.mark.parametrize(
        "kind,cls",
        [("brute", BruteForceIndex), ("grid", GridIndex), ("kdtree", KDTreeIndex), ("rtree", RTreeIndex)],
    )
    def test_explicit_kinds(self, kind, cls, rng):
        points = rng.normal(size=(10, 2))
        index = build_index(points, kind, eps=1.0)
        assert isinstance(index, cls)

    def test_grid_without_eps_raises(self, rng):
        with pytest.raises(ValueError, match="grid index needs"):
            build_index(rng.normal(size=(5, 2)), "grid")

    def test_unknown_kind_raises(self, rng):
        with pytest.raises(ValueError, match="unknown index kind"):
            build_index(rng.normal(size=(5, 2)), "balltree")


class TestGridCSRStorage:
    """The structure-of-arrays (CSR) cell layout of :class:`GridIndex`."""

    def _naive_cells(self, index: GridIndex) -> dict:
        """Rebuild the cell -> sorted point indices map the slow way."""
        coords = np.floor(
            (index._points - index._origin) / index.cell_size
        ).astype(np.int64)
        cells: dict = {}
        for i, key in enumerate(map(tuple, coords.tolist())):
            cells.setdefault(key, []).append(i)
        return cells

    def test_flat_is_a_permutation(self, rng):
        points = rng.uniform(-5, 5, size=(200, 2))
        index = GridIndex(points, cell_size=1.3)
        np.testing.assert_array_equal(np.sort(index._flat), np.arange(200))

    def test_slices_partition_flat(self, rng):
        points = rng.uniform(-5, 5, size=(150, 3))
        index = GridIndex(points, cell_size=2.0)
        bounds = sorted(index._cells.values())
        assert bounds[0][0] == 0
        assert bounds[-1][1] == 150
        for (_, stop), (start, _) in zip(bounds, bounds[1:]):
            assert stop == start  # contiguous, non-overlapping

    def test_csr_matches_naive_bucketing(self, rng):
        for trial in range(5):
            points = rng.uniform(-4, 4, size=(120, 2))
            index = GridIndex(points, cell_size=0.9)
            expected = self._naive_cells(index)
            assert set(index._cells) == set(expected)
            for key, (start, stop) in index._cells.items():
                # Stable lexsort keeps indices ascending within a cell,
                # exactly like the per-cell append lists used to.
                assert index._flat[start:stop].tolist() == expected[key]

    def test_occupied_cell_count(self, rng):
        points = rng.uniform(0, 3, size=(80, 2))
        index = GridIndex(points, cell_size=1.0)
        assert index.n_occupied_cells == len(self._naive_cells(index))
        assert index.n_occupied_cells == len(index._cells)

    def test_duplicate_points_share_one_cell(self):
        points = np.tile([[1.5, -0.5]], (7, 1))
        index = GridIndex(points, cell_size=1.0)
        assert index.n_occupied_cells == 1
        np.testing.assert_array_equal(
            index.range_query(points[0], 0.1), np.arange(7)
        )

    def test_empty_index(self):
        index = GridIndex(np.empty((0, 2)), cell_size=1.0)
        assert index.n_occupied_cells == 0
        assert index.range_query(np.zeros(2), 5.0).size == 0
        assert all(
            hits.size == 0
            for hits in index.range_query_batch(np.zeros((3, 2)), 5.0)
        )

    def test_single_point(self):
        index = GridIndex(np.asarray([[2.0, 2.0]]), cell_size=1.0)
        assert index.n_occupied_cells == 1
        np.testing.assert_array_equal(index.range_query([2.0, 2.0], 0.5), [0])
        assert index.range_query([9.0, 9.0], 0.5).size == 0

    def test_queries_through_empty_cells(self, rng):
        # Two far-apart clumps: the query cube between them spans many
        # empty cells, exercising both gather branches.
        points = np.concatenate(
            [rng.normal(0, 0.2, size=(30, 2)), rng.normal(50, 0.2, size=(30, 2))]
        )
        index = GridIndex(points, cell_size=0.5)
        brute = BruteForceIndex(points)
        for query in ([25.0, 25.0], [0.0, 0.0], [50.0, 50.0]):
            for eps in (0.4, 30.0, 80.0):
                np.testing.assert_array_equal(
                    index.range_query(np.asarray(query), eps),
                    brute.range_query(np.asarray(query), eps),
                )

    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(1, 120),
        cell=st.floats(0.3, 3.0),
        eps=st.floats(0.05, 6.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_random_grids_match_brute_oracle(self, seed, n, cell, eps):
        rng = np.random.default_rng(seed)
        points = rng.uniform(-6, 6, size=(n, 2))
        index = GridIndex(points, cell_size=cell)
        brute = BruteForceIndex(points)
        queries = points[:: max(1, n // 7)]
        batched = index.range_query_batch(queries, eps)
        for query, batch_hits in zip(queries, batched):
            expected = brute.range_query(query, eps)
            np.testing.assert_array_equal(index.range_query(query, eps), expected)
            np.testing.assert_array_equal(np.sort(batch_hits), expected)
