"""Unit and integration tests for the observability layer (repro.obs)."""

from __future__ import annotations

import json
import pickle
import tracemalloc

import numpy as np
import pytest

from repro.data.generators import gaussian_blobs
from repro.distributed.runner import DistributedRunConfig, DistributedRunner
from repro.faults import FaultPlan, SiteFaults
from repro.obs import (
    NULL_METRICS,
    NULL_TRACER,
    MetricsRegistry,
    NullMetrics,
    NullTracer,
    Span,
    Tracer,
    load_trace_schema,
    phase_totals,
    to_chrome_trace,
    trace_document,
    validate_trace,
)
from repro.perf.tracing import reconcile_trace


@pytest.fixture(scope="module")
def blobs():
    points, __ = gaussian_blobs(
        [80, 80, 80], np.asarray([[0.0, 0.0], [12.0, 0.0], [6.0, 10.0]]), 1.0,
        seed=3,
    )
    return points


def _config(**overrides):
    defaults = dict(eps_local=1.0, min_pts_local=5, seed=3)
    defaults.update(overrides)
    return DistributedRunConfig(**defaults)


class TestMetricsRegistry:
    def test_counters_accumulate(self):
        metrics = MetricsRegistry()
        metrics.inc("a")
        metrics.inc("a", 2.5)
        assert metrics.value("a") == 3.5
        assert metrics.value("missing", default=-1.0) == -1.0

    def test_gauges_last_write_wins(self):
        metrics = MetricsRegistry()
        metrics.set("g", 1.0)
        metrics.set("g", 7.0)
        assert metrics.value("g") == 7.0

    def test_histogram_summary(self):
        metrics = MetricsRegistry()
        for value in (1.0, 3.0, 5.0):
            metrics.observe("h", value)
        hist = metrics.to_dict()["histograms"]["h"]
        assert hist["count"] == 3
        assert hist["sum"] == 9.0
        assert hist["min"] == 1.0
        assert hist["max"] == 5.0
        # Power-of-two buckets: 1 -> 1.0, 3 -> 4.0, 5 -> 8.0.
        assert hist["buckets"] == {"1.0": 1, "4.0": 1, "8.0": 1}

    def test_histogram_nonpositive_bucket(self):
        metrics = MetricsRegistry()
        metrics.observe("h", 0.0)
        metrics.observe("h", -2.0)
        assert metrics.to_dict()["histograms"]["h"]["buckets"] == {"0.0": 2}

    def test_merge_combines_families(self):
        worker = MetricsRegistry()
        worker.inc("c", 2.0)
        worker.set("g", 4.0)
        worker.observe("h", 2.0)
        driver = MetricsRegistry()
        driver.inc("c", 1.0)
        driver.observe("h", 16.0)
        driver.merge(worker.to_dict())
        assert driver.value("c") == 3.0
        assert driver.value("g") == 4.0
        hist = driver.to_dict()["histograms"]["h"]
        assert hist["count"] == 2
        assert hist["sum"] == 18.0
        assert hist["buckets"] == {"2.0": 1, "16.0": 1}

    def test_merge_none_is_noop(self):
        metrics = MetricsRegistry()
        metrics.merge(None)
        metrics.merge({})
        assert metrics.to_dict() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_registry_survives_pickling(self):
        metrics = MetricsRegistry()
        metrics.inc("c", 5.0)
        clone = pickle.loads(pickle.dumps(metrics))
        clone.inc("c")  # the re-created lock must work
        assert clone.value("c") == 6.0

    def test_null_metrics_noop(self):
        NULL_METRICS.inc("x")
        NULL_METRICS.set("x", 1.0)
        NULL_METRICS.observe("x", 1.0)
        assert NULL_METRICS.value("x") == 0.0
        assert NULL_METRICS.to_dict() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        assert NullMetrics.enabled is False


class TestTracer:
    def test_live_spans_nest(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner", attrs={"k": 1}):
                pass
        assert len(tracer.roots) == 1
        outer = tracer.roots[0]
        assert outer.name == "outer"
        assert [c.name for c in outer.children] == ["inner"]
        inner = outer.children[0]
        assert inner.attrs == {"k": 1}
        assert outer.wall_start <= inner.wall_start
        assert inner.wall_end <= outer.wall_end

    def test_record_under_open_span_and_parent(self):
        tracer = Tracer()
        with tracer.span("phase"):
            auto = tracer.record("auto", wall_start=0.0, wall_end=1.0)
        explicit = tracer.record(
            "child", wall_start=0.2, wall_end=0.4, parent=auto
        )
        root = tracer.record("root", wall_start=5.0, wall_end=6.0)
        assert tracer.roots[0].children == [auto]
        assert auto.children == [explicit]
        assert tracer.roots[1] is root

    def test_record_rehydrates_dict_children(self):
        tracer = Tracer()
        exported = {
            "name": "w",
            "wall_start": 0.1,
            "wall_end": 0.2,
            "children": [{"name": "inner", "wall_start": 0.1, "wall_end": 0.15}],
        }
        span = tracer.record(
            "parent", wall_start=0.0, wall_end=1.0, children=[exported]
        )
        assert isinstance(span.children[0], Span)
        assert span.children[0].children[0].name == "inner"

    def test_export_normalizes_origin(self):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        exported = tracer.export_spans()
        assert exported[0]["wall_start"] >= 0.0
        assert exported[0]["wall_start"] < 60.0  # near zero, not an epoch

    def test_span_dict_round_trip(self):
        span = Span("a", 1.0, 2.0, sim_start=0.0, sim_end=5.0, attrs={"x": 1})
        span.children.append(Span("b", 1.2, 1.8))
        copy = Span.from_dict(span.to_dict())
        assert copy.name == "a"
        assert copy.sim_seconds == 5.0
        assert copy.attrs == {"x": 1}
        assert copy.children[0].name == "b"
        assert copy.children[0].wall_seconds == pytest.approx(0.6)

    def test_leaked_inner_span_tolerated(self):
        tracer = Tracer()
        outer = tracer.span("outer")
        tracer.span("leaked")  # never exited
        outer.__exit__(None, None, None)
        with tracer.span("next"):
            pass
        # The stack unwound; "next" is a new root, not a child of "leaked".
        assert [r.name for r in tracer.roots] == ["outer", "next"]

    def test_null_tracer_shares_one_handle(self):
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")
        assert NULL_TRACER.record("x", wall_start=0.0, wall_end=1.0) is None
        assert NULL_TRACER.export_spans() == []
        assert NullTracer.enabled is False

    def test_disabled_path_allocation_free(self):
        """The null objects are the disabled path: exercising them must
        allocate nothing (pins the zero-overhead claim)."""
        span = NULL_TRACER.span  # pre-bind so the loop allocates nothing
        inc = NULL_METRICS.inc
        # Warm up any lazy interning.
        with span("warm"):
            inc("warm")
        tracemalloc.start()
        before = tracemalloc.take_snapshot()
        for __ in range(100):
            with span("s"):
                inc("c")
        after = tracemalloc.take_snapshot()
        tracemalloc.stop()
        leaked = sum(
            stat.size_diff
            for stat in after.compare_to(before, "lineno")
            if stat.size_diff > 0 and "tracemalloc" not in str(stat.traceback)
        )
        # Allow a little slack for interpreter-internal bookkeeping.
        assert leaked < 512


class TestTraceDocument:
    def _document(self):
        tracer = Tracer()
        metrics = MetricsRegistry()
        metrics.inc("c", 2.0)
        with tracer.span("run"):
            with tracer.span("local_phase", attrs={"site": 0}):
                pass
            tracer.record(
                "send", wall_start=0.0, wall_end=0.1, sim_start=0.0, sim_end=3.0
            )
        return trace_document(tracer, metrics)

    def test_document_validates(self):
        doc = self._document()
        assert validate_trace(doc) == []
        # And survives a JSON round trip.
        assert validate_trace(json.loads(json.dumps(doc))) == []

    def test_validator_rejects_malformed(self):
        doc = self._document()
        doc["version"] = 99
        assert any("version" in e for e in validate_trace(doc))
        doc = self._document()
        del doc["spans"][0]["wall_end"]
        assert any("wall_end" in e for e in validate_trace(doc))
        doc = self._document()
        doc["spans"][0]["surprise"] = 1
        assert any("surprise" in e for e in validate_trace(doc))
        assert any("number" in e for e in validate_trace({
            "version": 1,
            "clocks": {"wall": "w", "sim": "s"},
            "origin": {"wall": "not-a-number"},
            "spans": [],
            "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
        }))

    def test_schema_loads(self):
        schema = load_trace_schema()
        assert schema["properties"]["version"]["enum"] == [1]

    def test_phase_totals(self):
        doc = self._document()
        totals = phase_totals(doc)
        assert totals["run"]["count"] == 1
        assert totals["send"]["sim_seconds"] == pytest.approx(3.0)
        assert totals["local_phase"]["sim_seconds"] is None

    def test_chrome_trace_shape(self):
        doc = self._document()
        chrome = to_chrome_trace(doc)
        events = chrome["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        # 3 wall events + 1 sim event for the sim-stamped span.
        assert len(complete) == 4
        assert all(e["dur"] >= 0.0 for e in complete)
        sim_events = [e for e in complete if e["pid"] == 2]
        assert [e["name"] for e in sim_events] == ["send"]
        assert sim_events[0]["dur"] == pytest.approx(3.0 * 1e6)
        # The site-attributed span rides its own thread lane.
        lanes = {e["name"]: e["tid"] for e in complete if e["pid"] == 1}
        assert lanes["local_phase"] == 2  # tid 2 + site 0
        assert lanes["run"] == 1


def _spans_well_nested(spans, parent=None, epsilon=1e-6, check_child_sum=True):
    """Assert the exported span forest is well-nested per clock.

    ``check_child_sum`` additionally asserts that sibling durations sum to
    no more than the parent's — true only for sequential (parallelism=1)
    runs, where children cannot overlap.
    """
    for span in spans:
        assert span["wall_end"] >= span["wall_start"] - epsilon, span["name"]
        if span.get("sim_start") is not None and span.get("sim_end") is not None:
            assert span["sim_end"] >= span["sim_start"] - epsilon, span["name"]
        if parent is not None:
            assert span["wall_start"] >= parent["wall_start"] - epsilon
            assert span["wall_end"] <= parent["wall_end"] + epsilon
        children = span.get("children", [])
        if check_child_sum:
            child_sum = sum(c["wall_end"] - c["wall_start"] for c in children)
            assert child_sum <= (
                span["wall_end"] - span["wall_start"]
            ) + epsilon * max(1, len(children)), span["name"]
        _spans_well_nested(children, span, epsilon, check_child_sum)


class TestRunnerIntegration:
    def test_disabled_tracing_is_bit_identical(self, blobs):
        """The acceptance pin: a runner without tracer/metrics produces
        the exact same labels, model bytes and network accounting as one
        with them — observation never changes the computation."""
        plain = DistributedRunner(_config()).run(blobs, 3)
        observed = DistributedRunner(
            _config(), tracer=Tracer(), metrics=MetricsRegistry()
        ).run(blobs, 3)
        np.testing.assert_array_equal(
            plain.labels_in_original_order(),
            observed.labels_in_original_order(),
        )
        assert (
            plain.global_model.to_bytes() == observed.global_model.to_bytes()
        )
        assert plain.network.bytes_total == observed.network.bytes_total
        assert plain.network.bytes_by_kind == observed.network.bytes_by_kind
        assert plain.trace is None
        assert observed.trace is not None

    def test_degraded_observed_matches_plain(self, blobs):
        plan = FaultPlan(
            seed=2, site_overrides={1: SiteFaults(crash_before_local_prob=1.0)}
        )
        plain = DistributedRunner(_config(), fault_plan=plan).run(blobs, 3)
        observed = DistributedRunner(
            _config(), fault_plan=plan, tracer=Tracer(), metrics=MetricsRegistry()
        ).run(blobs, 3)
        np.testing.assert_array_equal(
            plain.labels_in_original_order(),
            observed.labels_in_original_order(),
        )
        assert plain.failed_sites == observed.failed_sites
        assert plain.retries == observed.retries
        assert plain.network.bytes_total == observed.network.bytes_total

    def test_trace_validates_and_reconciles(self, blobs):
        report = DistributedRunner(
            _config(), tracer=Tracer(), metrics=MetricsRegistry()
        ).run(blobs, 3)
        doc = report.trace
        assert validate_trace(doc) == []
        # Per-phase totals reconcile with the report's fields within 1%.
        assert reconcile_trace(doc, report) == []
        _spans_well_nested(doc["spans"])
        totals = phase_totals(doc)
        for phase in ("run", "local_phase", "global_phase", "relabel"):
            assert phase in totals

    def test_trace_chrome_export_valid(self, blobs):
        report = DistributedRunner(
            _config(), tracer=Tracer(), metrics=MetricsRegistry()
        ).run(blobs, 3)
        chrome = to_chrome_trace(report.trace)
        events = chrome["traceEvents"]
        assert any(e["ph"] == "M" for e in events)
        for event in events:
            if event["ph"] == "X":
                assert event["ts"] >= 0.0
                assert event["dur"] >= 0.0
                assert isinstance(event["pid"], int)
        json.dumps(chrome)  # must be JSON-serializable as-is

    def test_metrics_cover_every_layer(self, blobs):
        metrics = MetricsRegistry()
        plan = FaultPlan(
            seed=3, site_overrides={2: SiteFaults(crash_after_send_prob=1.0)}
        )
        DistributedRunner(
            _config(), fault_plan=plan, tracer=Tracer(), metrics=metrics
        ).run(blobs, 3)
        snapshot = metrics.to_dict()
        counters = snapshot["counters"]
        assert counters["index.region_queries"] > 0
        assert counters["dbscan.runs"] == 3
        assert counters["transport.messages"] > 0
        assert counters["server.models_admitted"] == 3
        assert counters["runner.degraded_rounds"] == 1
        assert snapshot["gauges"]["runner.failed_sites"] == 1
        assert snapshot["histograms"]["index.neighbors_per_query"]["count"] > 0
        assert snapshot["histograms"]["server.representatives_per_model"][
            "count"
        ] == 3

    def test_worker_spans_grafted_under_compute(self, blobs):
        for backend, parallelism in (("thread", 2), ("process", 2)):
            report = DistributedRunner(
                _config(parallelism=parallelism, parallel_backend=backend),
                tracer=Tracer(),
                metrics=MetricsRegistry(),
            ).run(blobs, 3)
            doc = report.trace
            run = doc["spans"][0]
            local = next(c for c in run["children"] if c["name"] == "local_phase")
            compute = next(
                c for c in local["children"] if c["name"] == "compute"
            )
            names = {c["name"] for c in compute["children"]}
            assert names == {f"site[{i}].local" for i in range(3)}
            # Overlapping workers break the child-sum bound, so only check
            # nesting/containment here.
            _spans_well_nested(doc["spans"], check_child_sum=False)

    def test_region_query_span_bounded_by_dbscan(self, blobs):
        report = DistributedRunner(
            _config(), tracer=Tracer(), metrics=MetricsRegistry()
        ).run(blobs, 3)
        run = report.trace["spans"][0]
        local = next(c for c in run["children"] if c["name"] == "local_phase")
        compute = next(c for c in local["children"] if c["name"] == "compute")
        for site_span in compute["children"]:
            dbscan = next(
                c for c in site_span["children"] if c["name"] == "dbscan"
            )
            queries = next(
                c for c in dbscan["children"] if c["name"] == "region_queries"
            )
            assert queries["wall_end"] <= dbscan["wall_end"] + 1e-9
            assert dbscan["attrs"]["n_region_queries"] > 0
