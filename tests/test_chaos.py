"""Chaos sweep tests: end-to-end run, quality degradation shape, CLI."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.experiments.chaos import chaos_table, run_chaos_sweep, write_chaos_report

# Small fig. 6 data set A slice — enough structure for stable quality
# numbers, small enough for the fast tier.
SWEEP_KWARGS = dict(
    dataset="A",
    cardinality=1200,
    n_sites=8,
    failure_probs=(0.0, 0.25, 0.5),
    trials=2,
    seed=42,
)


@pytest.fixture(scope="module")
def sweep():
    return run_chaos_sweep(**SWEEP_KWARGS)


class TestRunChaosSweep:
    def test_report_structure(self, sweep):
        assert sweep["bench"] == "chaos"
        assert sweep["meta"]["dataset"] == "A"
        assert sweep["meta"]["n_sites"] == 8
        assert len(sweep["sweep"]) == 3
        for point in sweep["sweep"]:
            assert len(point["trials"]) == 2
            for trial in point["trials"]:
                assert 0 <= trial["n_failed_sites"] <= 8
                assert trial["n_participating"] + trial["n_failed_sites"] == 8

    def test_zero_probability_is_healthy(self, sweep):
        clean = sweep["sweep"][0]
        assert clean["failure_prob"] == 0.0
        assert clean["mean_failed_fraction"] == 0.0
        assert clean["n_degraded"] == 0
        assert clean["total_retries"] == 0
        assert clean["mean_q_p2_overall"] > 50.0

    def test_quality_degrades_with_failures_noncatastrophically(self, sweep):
        """Sorted by failed-site fraction, overall P^II must decrease
        monotonically-ish: each step loses roughly the failed sites'
        share of the objects, never collapses below the surviving share."""
        points = sorted(
            sweep["sweep"], key=lambda p: p["mean_failed_fraction"]
        )
        fractions = [p["mean_failed_fraction"] for p in points]
        q_overall = [p["mean_q_p2_overall"] for p in points]
        assert fractions[0] < fractions[-1], "sweep injected no failures"
        healthy = q_overall[0]
        for prev, cur in zip(q_overall, q_overall[1:]):
            assert cur <= prev + 5.0  # monotone up to trial noise
        for frac, q in zip(fractions, q_overall):
            # Non-catastrophic: the surviving (1 - frac) share of objects
            # keeps most of its quality, so overall quality tracks that
            # share instead of collapsing.  Generous slack: the quality
            # criteria match clusters globally, so heavy degradation also
            # shaves a few points off the surviving objects' scores.
            assert q >= healthy * (1.0 - frac) - 20.0

    def test_surviving_sites_keep_quality(self, sweep):
        points = [
            p for p in sweep["sweep"] if p["mean_q_p2_surviving"] is not None
        ]
        healthy = sweep["sweep"][0]["mean_q_p2_overall"]
        for point in points:
            assert point["mean_q_p2_surviving"] > healthy - 15.0

    def test_deterministic_given_seed(self):
        kwargs = dict(SWEEP_KWARGS, failure_probs=(0.5,), trials=1)

        def deterministic_part(report):
            # meta and the per-phase breakdowns carry wall-clock timing;
            # everything else in the sweep must repeat exactly.
            sweep = []
            for point in report["sweep"]:
                point = dict(point)
                point.pop("mean_phase_wall_seconds", None)
                point["trials"] = [
                    {
                        k: v
                        for k, v in trial.items()
                        if k != "phase_wall_seconds"
                    }
                    for trial in point["trials"]
                ]
                sweep.append(point)
            return sweep

        assert deterministic_part(run_chaos_sweep(**kwargs)) == (
            deterministic_part(run_chaos_sweep(**kwargs))
        )

    def test_links_mode_retries(self):
        report = run_chaos_sweep(
            **dict(
                SWEEP_KWARGS,
                mode="links",
                failure_probs=(0.5,),
                trials=1,
                n_sites=4,
                cardinality=600,
            )
        )
        assert report["sweep"][0]["total_retries"] > 0

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError, match="mode"):
            run_chaos_sweep(**dict(SWEEP_KWARGS, mode="gremlins"))
        with pytest.raises(ValueError, match="trials"):
            run_chaos_sweep(**dict(SWEEP_KWARGS, trials=0))

    def test_table_renders(self, sweep):
        text = chaos_table(sweep).to_text()
        assert "Chaos" in text
        assert "P^II overall" in text

    def test_write_report_round_trips(self, sweep, tmp_path):
        path = write_chaos_report(sweep, str(tmp_path / "sub" / "chaos.json"))
        with open(path, encoding="utf-8") as handle:
            restored = json.load(handle)
        assert restored == sweep


class TestChaosCli:
    def test_chaos_command_end_to_end(self, capsys, tmp_path):
        out_path = tmp_path / "BENCH_chaos.json"
        code = main(
            [
                "chaos",
                "--cardinality",
                "600",
                "--sites",
                "4",
                "--trials",
                "1",
                "--failure-probs",
                "0,0.5",
                "--chaos-out",
                str(out_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Chaos" in out
        assert f"wrote {out_path}" in out
        report = json.loads(out_path.read_text(encoding="utf-8"))
        assert report["bench"] == "chaos"
        assert [p["failure_prob"] for p in report["sweep"]] == [0.0, 0.5]
