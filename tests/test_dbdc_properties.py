"""Hypothesis property tests over the full DBDC pipeline."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering.labels import NOISE
from repro.core.dbdc import DBDCConfig, run_dbdc_partitioned
from repro.data.generators import gaussian_blobs, uniform_noise
from repro.distributed.partition import uniform_random


def _workload(seed: int, n_blobs: int, per_blob: int, n_noise: int):
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0, 60, size=(n_blobs, 2))
    points, __ = gaussian_blobs([per_blob] * n_blobs, centers, 1.0, seed=rng)
    if n_noise:
        noise = uniform_noise(n_noise, (0.0, 60.0), dim=2, seed=rng)
        points = np.concatenate([points, noise])
    return points


@given(
    seed=st.integers(0, 20_000),
    n_blobs=st.integers(1, 4),
    n_sites=st.integers(1, 5),
)
@settings(max_examples=20, deadline=None)
def test_pipeline_structural_invariants(seed, n_blobs, n_sites):
    """Invariants that must hold for every DBDC run whatsoever."""
    points = _workload(seed, n_blobs, per_blob=60, n_noise=15)
    assignment = uniform_random(points.shape[0], n_sites, seed=seed)
    config = DBDCConfig(eps_local=1.2, min_pts_local=5)
    run = run_dbdc_partitioned(points, assignment, config)
    result = run.result

    labels = run.labels_in_original_order()
    assert labels.shape == (points.shape[0],)
    assert labels.min() >= NOISE

    # The transmitted model is never larger than the data.
    assert result.n_representatives <= points.shape[0]
    assert 0.0 <= result.representative_fraction <= 1.0

    # Eps_global default obeys Definition 7's bound for REP_Scor.
    assert result.eps_global_used <= 2 * config.eps_local + 1e-9

    # Global labels on sites refer to clusters that exist in the model.
    valid = set(map(int, result.global_model.global_labels)) | {NOISE}
    assert set(map(int, np.unique(labels))) <= valid

    # Every site's label array matches its point count.
    for site in result.sites:
        assert site.global_labels.shape[0] == site.points.shape[0]


@given(seed=st.integers(0, 20_000), n_sites=st.integers(2, 6))
@settings(max_examples=15, deadline=None)
def test_labels_realignment_is_a_permutation(seed, n_sites):
    """Realigned labels are exactly the per-site labels, re-ordered."""
    points = _workload(seed, 2, per_blob=50, n_noise=10)
    assignment = uniform_random(points.shape[0], n_sites, seed=seed)
    config = DBDCConfig(eps_local=1.2, min_pts_local=5)
    run = run_dbdc_partitioned(points, assignment, config)
    aligned = run.labels_in_original_order()
    collected = np.concatenate(
        [site.global_labels for site in run.result.sites]
    )
    assert sorted(aligned.tolist()) == sorted(collected.tolist())


@given(seed=st.integers(0, 20_000))
@settings(max_examples=15, deadline=None)
def test_scheme_rep_counts_match(seed):
    """§5.2: REP_kMeans uses k = |Scor_C|, so both schemes transmit the
    same number of representatives for the same data and partition."""
    points = _workload(seed, 3, per_blob=60, n_noise=0)
    assignment = uniform_random(points.shape[0], 3, seed=seed)
    runs = {}
    for scheme in ("rep_scor", "rep_kmeans"):
        config = DBDCConfig(eps_local=1.2, min_pts_local=5, scheme=scheme)
        runs[scheme] = run_dbdc_partitioned(points, assignment, config)
    assert (
        runs["rep_scor"].result.n_representatives
        == runs["rep_kmeans"].result.n_representatives
    )


@given(seed=st.integers(0, 20_000))
@settings(max_examples=10, deadline=None)
def test_noise_only_data_stays_noise(seed):
    """With everything locally noise, no representative exists and every
    object remains globally unlabeled."""
    rng = np.random.default_rng(seed)
    points = rng.uniform(0, 1000, size=(40, 2))
    assignment = uniform_random(40, 3, seed=seed)
    config = DBDCConfig(eps_local=0.5, min_pts_local=4)
    run = run_dbdc_partitioned(points, assignment, config)
    assert run.result.n_representatives == 0
    assert (run.labels_in_original_order() == NOISE).all()
