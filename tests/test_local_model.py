"""Unit + property tests for local models (Sections 5.1 / 5.2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering.dbscan import dbscan
from repro.core.local import (
    LOCAL_MODEL_SCHEMES,
    build_local_model,
    build_rep_kmeans_model,
    build_rep_scor_model,
    specific_eps_range,
    verify_specific_core_set,
)
from repro.data.distance import euclidean
from repro.data.generators import gaussian_blobs


@pytest.fixture
def blob_site(rng):
    points, __ = gaussian_blobs(
        [80, 80], np.asarray([[0.0, 0.0], [15.0, 0.0]]), 1.0, seed=10
    )
    return points


class TestSpecificCorePoints:
    def test_definition6_holds_per_cluster(self, blob_site):
        outcome = build_rep_scor_model(blob_site, 1.0, 5, site_id=0)
        for cid, scor in outcome.specific_core_points.items():
            assert verify_specific_core_set(
                blob_site, outcome.clustering, cid, scor
            )

    def test_every_cluster_has_representatives(self, blob_site):
        outcome = build_rep_scor_model(blob_site, 1.0, 5)
        assert set(outcome.specific_core_points) == set(
            range(outcome.clustering.n_clusters)
        )
        for scor in outcome.specific_core_points.values():
            assert scor.size >= 1

    def test_selection_depends_on_processing_order(self, blob_site):
        """The paper: the DBSCAN processing order fixes the concrete Scor."""
        from repro.clustering.dbscan import DBSCAN
        from repro.core.local import SpecificCorePointCollector

        forward = SpecificCorePointCollector(blob_site, 1.0)
        DBSCAN(1.0, 5).fit(blob_site, observer=forward)
        backward = SpecificCorePointCollector(blob_site, 1.0)
        DBSCAN(1.0, 5).fit(
            blob_site, observer=backward, order=list(range(len(blob_site)))[::-1]
        )
        fwd = {int(i) for s in forward.specific_core_points().values() for i in s}
        bwd = {int(i) for s in backward.specific_core_points().values() for i in s}
        # Both are valid complete sets but (generically) different ones.
        assert fwd != bwd

    @given(seed=st.integers(0, 20_000))
    @settings(max_examples=25, deadline=None)
    def test_property_definition6(self, seed):
        rng = np.random.default_rng(seed)
        points = np.concatenate(
            [rng.normal(0, 0.8, size=(30, 2)), rng.uniform(-6, 6, size=(20, 2))]
        )
        outcome = build_rep_scor_model(points, 0.9, 4)
        for cid, scor in outcome.specific_core_points.items():
            assert verify_specific_core_set(points, outcome.clustering, cid, scor)


class TestSpecificEpsRanges:
    def test_definition7_value(self, blob_site):
        outcome = build_rep_scor_model(blob_site, 1.0, 5)
        result = outcome.clustering
        for rep, (cid, scor) in zip(
            outcome.model.representatives,
            [
                (cid, s)
                for cid in sorted(outcome.specific_core_points)
                for s in outcome.specific_core_points[cid]
            ],
        ):
            # Recompute ε_s from the definition directly.
            dist = np.linalg.norm(blob_site - blob_site[scor], axis=1)
            core_in_eps = np.flatnonzero(
                (dist <= 1.0) & result.core_mask & (np.arange(len(dist)) != scor)
            )
            expected = 1.0 + (dist[core_in_eps].max() if core_in_eps.size else 0.0)
            assert rep.eps_range == pytest.approx(expected)

    def test_range_at_least_eps(self, blob_site):
        outcome = build_rep_scor_model(blob_site, 1.0, 5)
        for rep in outcome.model.representatives:
            assert rep.eps_range >= 1.0

    def test_range_at_most_two_eps(self, blob_site):
        """ε_s = Eps + max dist to core in N_Eps(s) ≤ 2·Eps."""
        outcome = build_rep_scor_model(blob_site, 1.0, 5)
        for rep in outcome.model.representatives:
            assert rep.eps_range <= 2.0 + 1e-9

    def test_isolated_core_gets_plain_eps(self):
        # min_pts=1: a lone point is core with no core neighbors.
        points = np.asarray([[0.0, 0.0], [100.0, 100.0]])
        result = dbscan(points, 1.0, 1)
        assert specific_eps_range(0, result, metric=euclidean) == pytest.approx(1.0)


class TestRepScorModel:
    def test_representatives_are_actual_objects(self, blob_site):
        outcome = build_rep_scor_model(blob_site, 1.0, 5, site_id=3)
        for rep in outcome.model.representatives:
            distances = np.linalg.norm(blob_site - rep.point, axis=1)
            assert distances.min() == pytest.approx(0.0, abs=1e-12)
            assert rep.site_id == 3

    def test_model_metadata(self, blob_site):
        outcome = build_rep_scor_model(blob_site, 1.0, 5, site_id=3)
        model = outcome.model
        assert model.scheme == "rep_scor"
        assert model.n_objects == blob_site.shape[0]
        assert model.eps_local == 1.0
        assert model.min_pts_local == 5
        assert model.n_local_clusters == outcome.clustering.n_clusters

    def test_far_fewer_representatives_than_objects(self, blob_site):
        outcome = build_rep_scor_model(blob_site, 1.0, 5)
        assert 0 < len(outcome.model) < blob_site.shape[0] / 3

    def test_noise_only_site_empty_model(self, rng):
        points = rng.uniform(0, 1000, size=(20, 2))
        outcome = build_rep_scor_model(points, 0.5, 4)
        assert len(outcome.model) == 0
        assert outcome.model.max_eps_range == 0.0


class TestRepKMeansModel:
    def test_same_representative_count_as_scor(self, blob_site):
        """§5.2: k = |Scor_C| — both schemes transmit equally many reps."""
        scor = build_rep_scor_model(blob_site, 1.0, 5)
        km = build_rep_kmeans_model(blob_site, 1.0, 5)
        assert len(km.model) == len(scor.model)

    def test_centroids_inside_cluster_bbox(self, blob_site):
        outcome = build_rep_kmeans_model(blob_site, 1.0, 5)
        for rep in outcome.model.representatives:
            members = outcome.clustering.members(rep.local_cluster_id)
            low = blob_site[members].min(axis=0) - 1e-9
            high = blob_site[members].max(axis=0) + 1e-9
            assert (rep.point >= low).all() and (rep.point <= high).all()

    def test_eps_range_covers_assigned_objects(self, blob_site):
        """Section 5.2: ε_c = max distance of assigned objects, so every
        cluster object is covered by at least one centroid's range."""
        outcome = build_rep_kmeans_model(blob_site, 1.0, 5)
        for cid in range(outcome.clustering.n_clusters):
            members = outcome.clustering.members(cid)
            reps = [
                r for r in outcome.model.representatives if r.local_cluster_id == cid
            ]
            for obj in blob_site[members]:
                assert any(
                    np.linalg.norm(obj - r.point) <= r.eps_range + 1e-9 for r in reps
                )

    def test_scheme_label(self, blob_site):
        outcome = build_rep_kmeans_model(blob_site, 1.0, 5)
        assert outcome.model.scheme == "rep_kmeans"


class TestDispatch:
    def test_known_schemes(self, blob_site):
        for scheme in LOCAL_MODEL_SCHEMES:
            outcome = build_local_model(blob_site, 1.0, 5, scheme=scheme)
            assert outcome.model.scheme == scheme

    def test_unknown_scheme_raises(self, blob_site):
        with pytest.raises(ValueError, match="unknown local model scheme"):
            build_local_model(blob_site, 1.0, 5, scheme="rep_medoid")
