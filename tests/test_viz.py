"""Tests for the SVG visualization package (XML validity + content)."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.viz.charts import line_chart, reachability_plot, save_svg, scatter_plot
from repro.viz.svg import SVGCanvas

SVG_NS = "{http://www.w3.org/2000/svg}"


def _parse(document: str) -> ET.Element:
    return ET.fromstring(document)


def _count(root: ET.Element, tag: str) -> int:
    return len(root.findall(f"{SVG_NS}{tag}"))


class TestCanvas:
    def test_rejects_bad_size(self):
        with pytest.raises(ValueError, match="positive"):
            SVGCanvas(0, 100)

    def test_valid_xml(self):
        canvas = SVGCanvas(100, 80)
        canvas.circle(10, 10, 3)
        canvas.line(0, 0, 100, 80)
        canvas.text(5, 5, "hello & <world>")
        root = _parse(canvas.to_string())
        assert root.get("width") == "100"
        assert _count(root, "circle") == 1
        assert _count(root, "line") == 1

    def test_text_escaped(self):
        canvas = SVGCanvas(50, 50)
        canvas.text(0, 10, "a < b & c")
        root = _parse(canvas.to_string())
        assert root.find(f"{SVG_NS}text").text == "a < b & c"

    def test_save(self, tmp_path):
        canvas = SVGCanvas(10, 10)
        path = canvas.save(tmp_path / "nested" / "out.svg")
        assert path.exists()
        _parse(path.read_text())


class TestScatterPlot:
    def test_one_circle_per_point(self, rng):
        points = rng.normal(size=(37, 2))
        root = _parse(scatter_plot(points))
        # 37 data circles (plus none others: markers only in scatter).
        assert _count(root, "circle") == 37

    def test_cluster_colors_distinct(self, rng):
        points = np.concatenate(
            [rng.normal(0, 1, size=(10, 2)), rng.normal(20, 1, size=(10, 2))]
        )
        labels = np.concatenate([np.zeros(10, dtype=int), np.ones(10, dtype=int)])
        root = _parse(scatter_plot(points, labels))
        fills = {c.get("fill") for c in root.findall(f"{SVG_NS}circle")}
        assert len(fills) == 2

    def test_noise_rendered_gray(self, rng):
        points = rng.normal(size=(5, 2))
        labels = np.full(5, -1)
        root = _parse(scatter_plot(points, labels))
        fills = {c.get("fill") for c in root.findall(f"{SVG_NS}circle")}
        assert fills == {"#c8c8c8"}

    def test_empty_points(self):
        root = _parse(scatter_plot(np.empty((0, 2))))
        assert _count(root, "circle") == 0

    def test_rejects_3d(self, rng):
        with pytest.raises(ValueError, match="\\(n, 2\\)"):
            scatter_plot(rng.normal(size=(5, 3)))


class TestLineChart:
    def test_one_polyline_per_series(self):
        doc = line_chart(
            [1.0, 2.0, 3.0],
            {"a": [1.0, 2.0, 3.0], "b": [3.0, 2.0, 1.0]},
            title="t",
        )
        root = _parse(doc)
        # 2 data polylines.
        assert _count(root, "polyline") == 2

    def test_legend_labels_present(self):
        doc = line_chart([0.0, 1.0], {"central DBSCAN": [1.0, 2.0]})
        root = _parse(doc)
        texts = [t.text for t in root.findall(f"{SVG_NS}text")]
        assert "central DBSCAN" in texts

    def test_log_scale_accepts_wide_range(self):
        doc = line_chart(
            [1.0, 2.0], {"runtime": [0.01, 100.0]}, log_y=True
        )
        _parse(doc)  # just must be valid

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            line_chart([], {})

    def test_rejects_misaligned_series(self):
        with pytest.raises(ValueError, match="values for"):
            line_chart([1.0, 2.0], {"a": [1.0]})


class TestReachabilityPlot:
    def test_one_bar_per_value(self, rng):
        values = rng.uniform(0.1, 1.0, size=25)
        root = _parse(reachability_plot(values))
        # 25 bars + 1 background rect.
        assert _count(root, "rect") == 26

    def test_infinities_drawn_at_ceiling(self):
        values = np.asarray([np.inf, 0.5, 0.2])
        root = _parse(reachability_plot(values))
        assert _count(root, "rect") == 4

    def test_cut_line_rendered(self):
        doc = reachability_plot(np.asarray([0.5, 0.3]), eps_cut=0.4)
        root = _parse(doc)
        texts = [t.text for t in root.findall(f"{SVG_NS}text")]
        assert any(t and "cut" in t for t in texts)

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            reachability_plot(np.empty(0))


class TestFigureRendering:
    def test_fig6_files_written(self, tmp_path):
        from repro.viz.figures import render_fig6

        paths = render_fig6(tmp_path)
        assert [p.name for p in paths] == ["fig6_A.svg", "fig6_B.svg", "fig6_C.svg"]
        for path in paths:
            root = ET.parse(path).getroot()
            assert len(root.findall(f"{SVG_NS}circle")) > 500

    def test_reachability_figure(self, tmp_path):
        from repro.viz.figures import render_reachability

        path = render_reachability(tmp_path)
        root = ET.parse(path).getroot()
        assert len(root.findall(f"{SVG_NS}rect")) > 100

    def test_fig8_figure_small(self, tmp_path):
        from repro.viz.figures import render_fig8

        path = render_fig8(tmp_path, cardinality=2_000, seed=1)
        root = ET.parse(path).getroot()
        assert len(root.findall(f"{SVG_NS}polyline")) == 1

    def test_fig9_figure_small(self, tmp_path):
        from repro.viz.figures import render_fig9

        path = render_fig9(tmp_path, cardinality=1_500, seed=1)
        root = ET.parse(path).getroot()
        assert len(root.findall(f"{SVG_NS}polyline")) == 4  # both P per scheme

    def test_fig10_figure_small(self, tmp_path):
        from repro.viz.figures import render_fig10

        path = render_fig10(tmp_path, cardinality=1_500, seed=1)
        root = ET.parse(path).getroot()
        assert len(root.findall(f"{SVG_NS}polyline")) == 4

    def test_save_svg_creates_dirs(self, tmp_path):
        path = save_svg("<svg xmlns='http://www.w3.org/2000/svg'/>", tmp_path / "a" / "b.svg")
        assert path.exists()
