"""Unit tests for the quality framework (Section 8, Definitions 9-11)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.labels import NOISE
from repro.quality.pfunctions import (
    OverlapTables,
    object_quality_p1,
    object_quality_p2,
    per_object_p1,
    per_object_p2,
)
from repro.quality.qdbdc import evaluate_quality, q_dbdc_p1, q_dbdc_p2


class TestScalarP1:
    def test_noise_in_both_is_one(self):
        assert object_quality_p1(True, True, 0, 5) == 1

    def test_noise_in_exactly_one_is_zero(self):
        assert object_quality_p1(True, False, 10, 5) == 0
        assert object_quality_p1(False, True, 10, 5) == 0

    def test_clustered_overlap_threshold(self):
        assert object_quality_p1(False, False, 5, 5) == 1
        assert object_quality_p1(False, False, 4, 5) == 0


class TestScalarP2:
    def test_noise_in_both_is_one(self):
        assert object_quality_p2(True, True, 0.0) == 1.0

    def test_noise_in_exactly_one_is_zero(self):
        assert object_quality_p2(True, False, 0.9) == 0.0
        assert object_quality_p2(False, True, 0.9) == 0.0

    def test_jaccard_passthrough(self):
        assert object_quality_p2(False, False, 0.42) == pytest.approx(0.42)


class TestOverlapTables:
    def test_intersection_counts(self):
        distributed = np.asarray([0, 0, 1, 1, NOISE])
        central = np.asarray([0, 0, 0, 1, NOISE])
        tables = OverlapTables(distributed, central)
        assert tables.intersection[(0, 0)] == 2
        assert tables.intersection[(1, 0)] == 1
        assert tables.intersection[(1, 1)] == 1
        assert tables.size_d == {0: 2, 1: 2}
        assert tables.size_c == {0: 3, 1: 1}

    def test_jaccard_inclusion_exclusion(self):
        distributed = np.asarray([0, 0, 0, 1])
        central = np.asarray([0, 0, 1, 1])
        tables = OverlapTables(distributed, central)
        # |C_d ∩ C_c| = 2, |C_d ∪ C_c| = 3 + 2 - 2 = 3.
        assert tables.jaccard(0, 0) == pytest.approx(2 / 3)

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="align"):
            OverlapTables(np.asarray([0]), np.asarray([0, 1]))


class TestPerObjectVectors:
    def test_identity_comparison_yields_all_ones(self, rng):
        labels = rng.integers(-1, 4, size=60)
        np.testing.assert_array_equal(per_object_p1(labels, labels, 1), 1)
        np.testing.assert_allclose(per_object_p2(labels, labels), 1.0)

    def test_p1_quality_parameter(self):
        # Two clusters of 3 overlap fully: overlap 3 >= qp=3 → 1; qp=4 → 0.
        distributed = np.asarray([0, 0, 0])
        central = np.asarray([0, 0, 0])
        assert per_object_p1(distributed, central, 3).tolist() == [1, 1, 1]
        assert per_object_p1(distributed, central, 4).tolist() == [0, 0, 0]

    def test_p1_rejects_bad_qp(self):
        with pytest.raises(ValueError, match="qp"):
            per_object_p1(np.asarray([0]), np.asarray([0]), 0)

    def test_p2_bounded(self, rng):
        distributed = rng.integers(-1, 5, size=100)
        central = rng.integers(-1, 5, size=100)
        scores = per_object_p2(distributed, central)
        assert (scores >= 0).all() and (scores <= 1).all()

    def test_split_cluster_penalized_by_p2_not_p1(self):
        """A central cluster split into two distributed halves: P^I still
        scores 1 (overlap >= qp) but P^II decays to ~0.5 — the paper's
        'more subtle' criterion at work."""
        central = np.zeros(20, dtype=int)
        distributed = np.asarray([0] * 10 + [1] * 10)
        assert per_object_p1(distributed, central, 5).mean() == 1.0
        assert per_object_p2(distributed, central).mean() == pytest.approx(0.5)


class TestQDBDC:
    def test_identity_is_100_percent(self, rng):
        labels = rng.integers(-1, 6, size=80)
        assert q_dbdc_p1(labels, labels, 2) == 1.0
        assert q_dbdc_p2(labels, labels) == 1.0

    def test_disjoint_noise_assignments_zero(self):
        distributed = np.asarray([NOISE, NOISE, 0, 0])
        central = np.asarray([0, 0, NOISE, NOISE])
        assert q_dbdc_p1(distributed, central, 1) == 0.0
        assert q_dbdc_p2(distributed, central) == 0.0

    def test_empty_inputs_are_perfect(self):
        empty = np.empty(0, dtype=int)
        assert q_dbdc_p1(empty, empty, 2) == 1.0
        assert q_dbdc_p2(empty, empty) == 1.0

    def test_evaluate_quality_report(self, rng):
        labels = rng.integers(-1, 4, size=50)
        report = evaluate_quality(labels, labels, qp=3)
        assert report.q_p1 == 1.0
        assert report.q_p2 == 1.0
        assert report.q_p1_percent == 100.0
        assert report.n_objects == 50
        assert report.qp == 3

    def test_report_matches_direct_functions(self, rng):
        distributed = rng.integers(-1, 4, size=70)
        central = rng.integers(-1, 4, size=70)
        report = evaluate_quality(distributed, central, qp=2)
        assert report.q_p1 == pytest.approx(q_dbdc_p1(distributed, central, 2))
        assert report.q_p2 == pytest.approx(q_dbdc_p2(distributed, central))
