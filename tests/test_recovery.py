"""Recovery rounds, payload integrity and repair-equivalence tests.

Pins the three robustness guarantees of the recovery extension:

* a pinned crash scenario where ``max_recovery_rounds = 0`` reproduces
  today's degraded behavior and ``>= 1`` lets the crashed sites rejoin,
* the incremental :class:`GlobalModelRepairer` maintains exactly the
  partition a from-scratch rebuild over the same representatives (at the
  same frozen ``eps_global``) would produce, with stable label names,
* the server's admission gate orders integrity before deadlines, admits
  arrivals exactly *at* the deadline, and applies quorum as a fraction.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering.labels import NOISE
from repro.core.global_model import GlobalModelRepairer, build_global_model
from repro.core.models import GlobalModel, LocalModel, Representative
from repro.data.generators import gaussian_blobs
from repro.distributed.partition import split, uniform_random
from repro.distributed.runner import (
    DistributedRunConfig,
    DistributedRunner,
    RecoveryPolicy,
    RoundPolicy,
)
from repro.distributed.server import CentralServer
from repro.faults import FaultPlan, LinkFaults, SiteFaults

N_SITES = 8


def assert_perm_equivalent(a: np.ndarray, b: np.ndarray) -> None:
    """The two label arrays describe the same partition: a bijection maps
    a's labels onto b's, and noise maps to noise."""
    a = np.asarray(a)
    b = np.asarray(b)
    assert a.shape == b.shape
    forward: dict[int, int] = {}
    backward: dict[int, int] = {}
    for la, lb in zip(a.tolist(), b.tolist()):
        if la == NOISE or lb == NOISE:
            assert la == lb, f"noise mismatch: {la} vs {lb}"
            continue
        assert forward.setdefault(la, lb) == lb, f"{la} maps to both {forward[la]} and {lb}"
        assert backward.setdefault(lb, la) == la, f"{lb} mapped from both {backward[lb]} and {la}"


def _partition(model: GlobalModel) -> set[frozenset]:
    """A model's partition keyed by representative identity (so two models
    holding the same representatives in different orders compare equal)."""
    groups: dict[int, set] = {}
    for rep, label in zip(model.representatives, model.global_labels):
        key = (rep.site_id, rep.local_cluster_id, rep.point.tobytes())
        groups.setdefault(int(label), set()).add(key)
    return {frozenset(members) for members in groups.values()}


def _rep(x, y, eps_range=1.0, site_id=0, local_cluster_id=0):
    return Representative(
        point=np.asarray([x, y], dtype=float),
        eps_range=eps_range,
        site_id=site_id,
        local_cluster_id=local_cluster_id,
    )


def _model(site_id, reps, n_objects=100):
    return LocalModel(
        site_id=site_id,
        representatives=reps,
        n_objects=n_objects,
        scheme="rep_scor",
        eps_local=1.0,
        min_pts_local=5,
    )


@pytest.fixture(scope="module")
def workload():
    points, __ = gaussian_blobs(
        [200, 200], np.asarray([[0.0, 0.0], [15.0, 0.0]]), 1.0, seed=21
    )
    assignment = uniform_random(points.shape[0], N_SITES, seed=8)
    return split(points, assignment), assignment


CONFIG = DistributedRunConfig(eps_local=1.0, min_pts_local=5)

# Pinned scenario: of 8 sites, site 1 dies before its local phase and
# site 5 dies right after uploading (it misses the broadcast).
CRASH_PLAN = FaultPlan(
    seed=7,
    site_overrides={
        1: SiteFaults(crash_before_local_prob=1.0),
        5: SiteFaults(crash_after_send_prob=1.0),
    },
)


def _run(workload, *, rounds, plan=CRASH_PLAN, config=CONFIG):
    site_points, assignment = workload
    return DistributedRunner(
        config,
        fault_plan=plan,
        recovery_policy=RecoveryPolicy(max_recovery_rounds=rounds),
    ).run_on_sites(site_points, assignment)


class TestRecoveryPolicyValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="max_recovery_rounds"):
            RecoveryPolicy(max_recovery_rounds=-1)
        with pytest.raises(ValueError, match="deadline_s"):
            RecoveryPolicy(deadline_s=0.0)
        with pytest.raises(ValueError, match="rejoin_backoff_s"):
            RecoveryPolicy(rejoin_backoff_s=-0.5)
        with pytest.raises(ValueError, match="backoff_multiplier"):
            RecoveryPolicy(backoff_multiplier=0.9)

    def test_enabled(self):
        assert not RecoveryPolicy().enabled
        assert RecoveryPolicy(max_recovery_rounds=2).enabled

    def test_backoff_grows_geometrically(self):
        policy = RecoveryPolicy(
            max_recovery_rounds=3, rejoin_backoff_s=0.5, backoff_multiplier=2.0
        )
        assert policy.backoff_seconds(1) == pytest.approx(0.5)
        assert policy.backoff_seconds(2) == pytest.approx(1.0)
        assert policy.backoff_seconds(3) == pytest.approx(2.0)


class TestPinnedCrashRecovery:
    """The ISSUE's pinned scenario: 2 of 8 sites crash; rounds=0 keeps
    today's degraded outcome, rounds>=1 brings both sites back."""

    def test_rounds_zero_pins_degraded_behavior(self, workload):
        report = _run(workload, rounds=0)
        assert report.failed_sites == [1, 5]
        assert report.degraded
        assert report.recovered_sites == []
        assert report.recovery_rounds_used == 0
        assert report.recovery_rounds == []
        assert 1 not in report.participating_sites
        # Site 5's model made it to the server before the crash.
        assert 5 in report.participating_sites

    def test_one_round_recovers_both_sites(self, workload):
        report = _run(workload, rounds=1)
        assert report.recovered_sites == [1, 5]
        assert report.failed_sites == []
        assert report.stale_sites == []
        assert not report.degraded
        assert sorted(report.participating_sites) == list(range(N_SITES))
        assert report.recovery_rounds_used == 1
        (stats,) = report.recovery_rounds
        assert stats.round_index == 1
        assert stats.attempted_sites == [1, 5]
        assert stats.recovered_sites == [1, 5]
        assert stats.still_failed_sites == []
        for site in report.sites:
            assert site.failure is None

    def test_extra_rounds_converge_after_one(self, workload):
        one = _run(workload, rounds=1)
        three = _run(workload, rounds=3)
        assert three.recovery_rounds_used == 1
        np.testing.assert_array_equal(
            one.labels_in_original_order(), three.labels_in_original_order()
        )

    def test_recovered_labels_match_full_run_at_frozen_eps(self, workload):
        """Post-recovery labels are equivalent (up to label permutation)
        to a fault-free run over all 8 sites at the repaired model's
        frozen eps_global."""
        recovered = _run(workload, rounds=1)
        clean = DistributedRunner(
            dataclasses.replace(
                CONFIG, eps_global=recovered.global_model.eps_global
            )
        ).run_on_sites(*workload)
        assert_perm_equivalent(
            recovered.labels_in_original_order(),
            clean.labels_in_original_order(),
        )

    def test_repaired_model_equals_rebuild(self, workload):
        """The incrementally repaired global model holds exactly the
        partition a from-scratch rebuild over the same representatives
        produces."""
        report = _run(workload, rounds=1)
        models = [site.run_local_clustering() for site in report.sites]
        rebuilt, __ = build_global_model(
            models, eps_global=report.global_model.eps_global
        )
        assert _partition(report.global_model) == _partition(rebuilt)

    def test_recovery_run_is_deterministic(self, workload):
        a = _run(workload, rounds=1)
        b = _run(workload, rounds=1)
        np.testing.assert_array_equal(
            a.labels_in_original_order(), b.labels_in_original_order()
        )
        assert a.recovered_sites == b.recovered_sites
        assert a.network.bytes_total == b.network.bytes_total
        assert a.round_sim_seconds == b.round_sim_seconds

    def test_enabled_recovery_leaves_clean_runs_untouched(self, workload):
        """With no faults firing, a recovery-enabled run never enters the
        recovery loop and stays bit-identical to the plain run."""
        site_points, assignment = workload
        plain = DistributedRunner(CONFIG).run_on_sites(site_points, assignment)
        guarded = _run(workload, rounds=2, plan=FaultPlan.none(seed=5))
        np.testing.assert_array_equal(
            plain.labels_in_original_order(), guarded.labels_in_original_order()
        )
        assert guarded.recovery_rounds_used == 0
        assert guarded.network.bytes_total == plain.network.bytes_total


class TestCorruptionQuarantine:
    """A permanently corrupting link: the site's model is quarantined at
    admission, counted as failed, and recovery re-attempts keep failing
    (the link stays poisoned) — deterministic either way."""

    PLAN = FaultPlan(seed=11, link_overrides={2: LinkFaults(corrupt_prob=1.0)})

    def test_quarantined_site_counts_as_failed(self, workload):
        report = _run(workload, rounds=0, plan=self.PLAN)
        assert report.quarantined_sites == [2]
        assert 2 in report.failed_sites
        assert 2 not in report.participating_sites
        assert report.degraded
        assert report.transport_stats.n_corrupted >= 1

    def test_poisoned_link_stays_quarantined_through_recovery(self, workload):
        report = _run(workload, rounds=2, plan=self.PLAN)
        assert report.quarantined_sites == [2]
        assert 2 in report.failed_sites
        assert report.recovered_sites == []
        assert report.recovery_rounds_used == 2
        for stats in report.recovery_rounds:
            assert stats.attempted_sites == [2]
            assert stats.quarantined_sites == [2]
            assert stats.recovered_sites == []


class TestAdmissionGate:
    def test_arrival_exactly_at_deadline_admitted(self):
        server = CentralServer(deadline_s=5.0)
        assert server.admit(_model(0, [_rep(0, 0)]), arrival_s=5.0) == "admitted"

    def test_arrival_just_after_deadline_rejected(self):
        server = CentralServer(deadline_s=5.0)
        verdict = server.admit(_model(0, [_rep(0, 0)]), arrival_s=5.0 + 1e-9)
        assert verdict == "deadline_missed"
        assert server.rejected_site_ids == [0]

    def test_checksum_failure_beats_deadline(self):
        """A corrupt payload is poison regardless of when it arrived: it
        must land in quarantine, not in the late bucket."""
        server = CentralServer(deadline_s=5.0)
        verdict = server.admit(
            _model(0, [_rep(0, 0)]), arrival_s=99.0, checksum_ok=False
        )
        assert verdict == "quarantined"
        assert server.quarantined_site_ids == [0]
        assert server.rejected_site_ids == []
        assert server.quarantined_models[0][1] == "checksum_mismatch"

    def test_invalid_model_quarantined_with_reason(self):
        server = CentralServer()
        bad = _model(0, [_rep(0, 0, site_id=3)])
        assert server.admit(bad) == "quarantined"
        assert "claims site" in server.quarantined_models[0][1]

    def test_enforce_deadline_false_admits_late_model(self):
        """Recovery rounds run their own deadline and disable the round's."""
        server = CentralServer(deadline_s=5.0)
        verdict = server.admit(
            _model(0, [_rep(0, 0)]), arrival_s=99.0, enforce_deadline=False
        )
        assert verdict == "admitted"

    def test_full_quorum_with_one_failed_site(self):
        server = CentralServer(quorum=1.0, expected_sites=4)
        for site_id in range(3):
            server.admit(_model(site_id, [_rep(site_id, 0.0, site_id=site_id)]))
        assert not server.quorum_met
        server.admit(_model(3, [_rep(3.0, 0.0, site_id=3)]))
        assert server.quorum_met

    def test_quorum_is_a_fraction_not_a_rounded_count(self):
        """1 of 3 admitted is 33.3%: it meets quorum=1/3 exactly but not
        quorum=0.34 — no hidden rounding either way."""
        met = CentralServer(quorum=1.0 / 3.0, expected_sites=3)
        met.admit(_model(0, [_rep(0, 0)]))
        assert met.quorum_met
        missed = CentralServer(quorum=0.34, expected_sites=3)
        missed.admit(_model(0, [_rep(0, 0)]))
        assert not missed.quorum_met

    def test_round_policy_validation(self):
        with pytest.raises(ValueError, match="deadline_s"):
            RoundPolicy(deadline_s=-1.0)
        with pytest.raises(ValueError, match="quorum"):
            RoundPolicy(quorum=1.5)


class TestGlobalModelRepairer:
    def _base(self):
        """Two separated pairs: labels {0, 0, 1, 1} at eps_global=1.0."""
        base = _model(0, [_rep(0, 0), _rep(1, 0), _rep(10, 0), _rep(11, 0)])
        model, __ = build_global_model([base], eps_global=1.0)
        return model

    def test_disjoint_insertion_keeps_old_labels(self):
        model = self._base()
        before = model.global_labels.copy()
        repairer = GlobalModelRepairer(model)
        repaired, relabeled = repairer.add_model(
            _model(1, [_rep(20, 0), _rep(21, 0)])
        )
        assert not relabeled
        np.testing.assert_array_equal(repaired.global_labels[:4], before)
        # The new pair forms one fresh cluster beyond every old id.
        new = repaired.global_labels[4:]
        assert new[0] == new[1]
        assert new[0] > before.max()

    def test_joining_insertion_keeps_cluster_id(self):
        model = self._base()
        repairer = GlobalModelRepairer(model)
        repaired, relabeled = repairer.add_model(_model(1, [_rep(1.5, 0)]))
        assert not relabeled  # old members kept their label
        assert repaired.global_labels[4] == repaired.global_labels[0]

    def test_merge_adopts_smallest_participating_id(self):
        base = _model(0, [_rep(0, 0), _rep(1, 0), _rep(3, 0), _rep(4, 0)])
        model, __ = build_global_model([base], eps_global=1.0)
        a, b = int(model.global_labels[0]), int(model.global_labels[2])
        assert a != b
        repairer = GlobalModelRepairer(model)
        repaired, relabeled = repairer.add_model(_model(1, [_rep(2, 0)]))
        assert relabeled
        assert set(repaired.global_labels.tolist()) == {min(a, b)}

    def test_empty_model_changes_nothing(self):
        model = self._base()
        repairer = GlobalModelRepairer(model)
        repaired, relabeled = repairer.add_model(_model(1, [], n_objects=0))
        assert not relabeled
        assert _partition(repaired) == _partition(model)

    def test_repair_matches_rebuild_pinned(self):
        late = _model(1, [_rep(1.8, 0), _rep(9.2, 0), _rep(30, 0)])
        repairer = GlobalModelRepairer(self._base())
        repaired, __ = repairer.add_model(late)
        base = _model(0, [_rep(0, 0), _rep(1, 0), _rep(10, 0), _rep(11, 0)])
        rebuilt, __ = build_global_model([base, late], eps_global=1.0)
        assert _partition(repaired) == _partition(rebuilt)


class TestRepairEquivalenceProperties:
    """Because MinPts_global = 2 every non-noise representative is core,
    so incremental maintenance is *exactly* partition-equivalent to a
    from-scratch rebuild — for any split into base and late models."""

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_repair_equals_rebuild(self, data):
        n_total = data.draw(st.integers(3, 14), label="n_total")
        coords = data.draw(
            st.lists(
                st.tuples(st.integers(0, 12), st.integers(0, 12)),
                min_size=n_total,
                max_size=n_total,
                unique=True,
            ),
            label="coords",
        )
        n_base = data.draw(st.integers(1, n_total - 1), label="n_base")
        reps = [
            _rep(1.5 * x, 1.5 * y, site_id=0 if i < n_base else 1)
            for i, (x, y) in enumerate(coords)
        ]
        base = _model(0, reps[:n_base], n_objects=n_base)
        late = _model(1, reps[n_base:], n_objects=n_total - n_base)
        base_model, __ = build_global_model([base], eps_global=2.0)
        repairer = GlobalModelRepairer(base_model)
        repaired, __ = repairer.add_model(late)
        rebuilt, __ = build_global_model([base, late], eps_global=2.0)
        assert _partition(repaired) == _partition(rebuilt)

    @given(data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_incremental_label_stability(self, data):
        """Whatever is inserted, a pre-existing representative's label
        only changes when its cluster merged — and then onto a smaller
        existing id, never onto a fresh one."""
        coords = data.draw(
            st.lists(
                st.tuples(st.integers(0, 10), st.integers(0, 10)),
                min_size=4,
                max_size=12,
                unique=True,
            ),
            label="coords",
        )
        n_base = len(coords) // 2
        reps = [_rep(1.5 * x, 1.5 * y) for x, y in coords]
        base_model, __ = build_global_model(
            [_model(0, reps[:n_base], n_objects=n_base)], eps_global=2.0
        )
        before = base_model.global_labels.copy()
        repairer = GlobalModelRepairer(base_model)
        repaired, relabeled = repairer.add_model(
            _model(1, reps[n_base:], n_objects=len(reps) - n_base)
        )
        after = repaired.global_labels[:n_base]
        if not relabeled:
            np.testing.assert_array_equal(after, before)
        else:
            changed = after != before
            assert changed.any()
            # A changed label merged onto a smaller pre-existing id.
            assert (after[changed] < before[changed]).all()
            assert set(after[changed].tolist()) <= set(before.tolist())


# Small shared workload for the end-to-end determinism property (module
# level: hypothesis forbids function-scoped fixtures).
_SMALL_POINTS, __ = gaussian_blobs(
    [40, 40], np.asarray([[0.0, 0.0], [12.0, 0.0]]), 1.0, seed=3
)
_SMALL_ASSIGNMENT = uniform_random(_SMALL_POINTS.shape[0], 3, seed=4)
_SMALL_SITES = split(_SMALL_POINTS, _SMALL_ASSIGNMENT)


class TestRecoveryDeterminismProperty:
    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=8, deadline=None)
    def test_identical_runs_identical_outcomes(self, seed):
        def run():
            return DistributedRunner(
                DistributedRunConfig(eps_local=1.0, min_pts_local=5),
                fault_plan=FaultPlan.chaos(0.5, seed=seed),
                recovery_policy=RecoveryPolicy(max_recovery_rounds=2),
            ).run_on_sites(_SMALL_SITES, _SMALL_ASSIGNMENT)

        a, b = run(), run()
        np.testing.assert_array_equal(
            a.labels_in_original_order(), b.labels_in_original_order()
        )
        assert a.failed_sites == b.failed_sites
        assert a.recovered_sites == b.recovered_sites
        assert a.quarantined_sites == b.quarantined_sites
        assert a.stale_sites == b.stale_sites
        assert a.recovery_rounds_used == b.recovery_rounds_used
        assert a.network.bytes_total == b.network.bytes_total
        assert a.round_sim_seconds == b.round_sim_seconds
