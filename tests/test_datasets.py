"""Unit tests for the paper data sets A/B/C (Figure 6 reconstructions)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.dbscan import dbscan
from repro.data.datasets import DATASET_NAMES, dataset_a, dataset_b, dataset_c, load_dataset


class TestCardinalities:
    def test_paper_sizes(self):
        assert dataset_a().n == 8700
        assert dataset_b().n == 4000
        assert dataset_c().n == 1021

    def test_cardinality_override(self):
        assert dataset_a(cardinality=2000).n == 2000
        assert load_dataset("A", cardinality=1234).n == 1234


class TestStructureRecovered:
    """Central DBSCAN with the recommended parameters must recover the
    generated structure — this is what calibrated eps/min_pts mean."""

    def test_dataset_a_thirteen_clusters(self):
        data = dataset_a()
        result = dbscan(data.points, data.eps_local, data.min_pts)
        assert result.n_clusters == 13

    def test_dataset_b_five_clusters_heavy_noise(self):
        data = dataset_b()
        result = dbscan(data.points, data.eps_local, data.min_pts)
        assert result.n_clusters >= 5
        assert result.n_noise / data.n > 0.2  # "very noisy data"

    def test_dataset_c_three_clusters(self):
        data = dataset_c()
        result = dbscan(data.points, data.eps_local, data.min_pts)
        assert result.n_clusters == 3

    def test_dataset_c_contains_ring(self):
        data = dataset_c()
        ring_points = data.points[data.truth == 2]
        radii = np.linalg.norm(ring_points - [50.0, 72.0], axis=1)
        assert abs(radii.mean() - 14.0) < 1.0


class TestDeterminism:
    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_same_seed_same_data(self, name):
        a = load_dataset(name)
        b = load_dataset(name)
        np.testing.assert_array_equal(a.points, b.points)
        np.testing.assert_array_equal(a.truth, b.truth)

    def test_seed_override_changes_data(self):
        a = dataset_a(seed=1)
        b = dataset_a(seed=2)
        assert not np.array_equal(a.points, b.points)


class TestLoader:
    def test_case_insensitive(self):
        assert load_dataset("a").name == "A"

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown data set"):
            load_dataset("D")

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_metadata_populated(self, name):
        data = load_dataset(name)
        assert data.points.shape == (data.n, 2)
        assert data.truth.shape == (data.n,)
        assert data.eps_local > 0
        assert data.min_pts >= 1
        assert data.description
