"""Unit tests for the fault-injection runtime (plan + transport)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.distributed.network import SERVER, SimulatedNetwork
from repro.faults import (
    BreakerPolicy,
    FaultPlan,
    LinkFaults,
    ResilientTransport,
    SiteFaults,
    TransportPolicy,
)


class TestFaultPlanValidation:
    def test_probabilities_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="drop_prob"):
            LinkFaults(drop_prob=1.5)
        with pytest.raises(ValueError, match="truncate_prob"):
            LinkFaults(truncate_prob=-0.1)
        with pytest.raises(ValueError, match="crash_before_local_prob"):
            SiteFaults(crash_before_local_prob=2.0)
        with pytest.raises(ValueError, match="straggler_factor"):
            SiteFaults(straggler_factor=0.5)
        with pytest.raises(ValueError, match="jitter_s"):
            LinkFaults(jitter_s=-1.0)
        with pytest.raises(ValueError, match="intensity"):
            FaultPlan.chaos(1.2)

    def test_none_plan_is_inactive(self):
        assert not FaultPlan.none().is_active()
        assert not FaultPlan(seed=9).is_active()

    def test_any_nonzero_rate_activates(self):
        assert FaultPlan.lossy_links(0.1).is_active()
        assert FaultPlan.site_failures(0.1).is_active()
        assert FaultPlan.chaos(0.3).is_active()
        assert FaultPlan(
            link_overrides={2: LinkFaults(drop_prob=0.5)}
        ).is_active()
        assert FaultPlan(
            site_overrides={0: SiteFaults(straggler_prob=1.0)}
        ).is_active()

    def test_overrides_take_precedence(self):
        plan = FaultPlan(
            link=LinkFaults(drop_prob=0.1),
            link_overrides={3: LinkFaults(drop_prob=0.9)},
            site=SiteFaults(straggler_prob=0.2),
            site_overrides={3: SiteFaults(straggler_prob=0.8)},
        )
        assert plan.link_faults_for(3).drop_prob == 0.9
        assert plan.link_faults_for(0).drop_prob == 0.1
        assert plan.site_faults_for(3).straggler_prob == 0.8
        assert plan.site_faults_for(1).straggler_prob == 0.2


class TestFaultPlanDeterminism:
    def test_rng_streams_keyed_not_sequenced(self):
        """The stream for one event does not depend on which other events
        were resolved before it."""
        plan = FaultPlan(seed=5)
        first = plan.rng_for("link", 2, "local_model", 0, 1).random(4)
        plan.rng_for("site", 0).random(10)  # unrelated consumption
        second = plan.rng_for("link", 2, "local_model", 0, 1).random(4)
        assert (first == second).all()

    def test_distinct_keys_distinct_streams(self):
        plan = FaultPlan(seed=5)
        a = plan.rng_for("link", 0, "local_model", 0, 1).random(4)
        b = plan.rng_for("link", 1, "local_model", 0, 1).random(4)
        assert (a != b).any()

    def test_resolve_site_is_stable(self):
        plan = FaultPlan.chaos(0.7, seed=13)
        for site_id in range(20):
            assert plan.resolve_site(site_id) == plan.resolve_site(site_id)

    def test_crash_before_wins_over_crash_after(self):
        plan = FaultPlan(
            seed=1,
            site=SiteFaults(
                crash_before_local_prob=1.0, crash_after_send_prob=1.0
            ),
        )
        behavior = plan.resolve_site(4)
        assert behavior.crashes_before_local
        assert not behavior.crashes_after_send
        assert not behavior.alive_for_broadcast

    def test_certain_straggler_slowdown(self):
        plan = FaultPlan(
            seed=1, site=SiteFaults(straggler_prob=1.0, straggler_factor=6.0)
        )
        assert plan.resolve_site(0).slowdown == 6.0
        clean = FaultPlan.none().resolve_site(0)
        assert clean.slowdown == 1.0
        assert clean.alive_for_broadcast


class TestTransportPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="timeout_s"):
            TransportPolicy(timeout_s=0.0)
        with pytest.raises(ValueError, match="max_attempts"):
            TransportPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="backoff_jitter"):
            TransportPolicy(backoff_jitter=1.5)

    def test_backoff_doubles_then_caps(self):
        policy = TransportPolicy(
            backoff_base_s=0.1, backoff_cap_s=0.35, backoff_jitter=0.0
        )
        assert policy.backoff_seconds(1, 0.0) == pytest.approx(0.1)
        assert policy.backoff_seconds(2, 0.0) == pytest.approx(0.2)
        assert policy.backoff_seconds(3, 0.0) == pytest.approx(0.35)  # capped
        assert policy.backoff_seconds(4, 0.0) == pytest.approx(0.35)

    def test_backoff_jitter_scales(self):
        policy = TransportPolicy(backoff_base_s=0.1, backoff_jitter=0.5)
        assert policy.backoff_seconds(1, 1.0) == pytest.approx(0.15)


class TestResilientTransport:
    def _transport(self, plan, **policy_kwargs):
        network = SimulatedNetwork()
        policy = TransportPolicy(**policy_kwargs) if policy_kwargs else None
        return network, ResilientTransport(network, plan, policy)

    def test_clean_link_first_attempt(self):
        network, transport = self._transport(FaultPlan.none())
        outcome = transport.deliver(0, SERVER, "local_model", b"x" * 64)
        assert outcome.delivered
        assert outcome.attempts == 1
        assert outcome.retries == 0
        assert outcome.bytes_sent == 64
        assert len(network.messages) == 1
        assert transport.stats.n_delivered == 1
        assert transport.stats.n_retries == 0

    def test_certain_drop_exhausts_budget(self):
        network, transport = self._transport(
            FaultPlan.lossy_links(1.0, seed=2), max_attempts=3
        )
        outcome = transport.deliver(0, SERVER, "local_model", b"x" * 10)
        assert not outcome.delivered
        assert outcome.attempts == 3
        assert outcome.n_dropped == 3
        # Every attempt hit the wire and was accounted.
        assert len(network.messages) == 3
        assert outcome.bytes_sent == 30
        assert transport.stats.n_failed == 1
        assert transport.stats.n_attempts == 3

    def test_drop_costs_timeout_and_backoff(self):
        plan = FaultPlan.lossy_links(1.0, seed=2)
        __, transport = self._transport(
            plan,
            timeout_s=2.0,
            max_attempts=2,
            backoff_base_s=0.5,
            backoff_cap_s=0.5,
            backoff_jitter=0.0,
        )
        outcome = transport.deliver(0, SERVER, "local_model", b"x")
        # 2 timeouts + 1 backoff between the attempts, no transfer time.
        assert outcome.sim_seconds == pytest.approx(2.0 + 0.5 + 2.0)
        assert outcome.arrival_s == pytest.approx(outcome.sim_seconds)

    def test_truncated_attempt_retried_and_accounted(self):
        plan = FaultPlan(seed=3, link=LinkFaults(truncate_prob=1.0))
        network, transport = self._transport(plan, max_attempts=2)
        outcome = transport.deliver(0, SERVER, "local_model", b"x" * 100)
        assert not outcome.delivered
        assert outcome.n_truncated == 2
        # Truncated attempts carry a strict prefix of the payload.
        assert all(0 < m.n_bytes < 100 for m in network.messages)
        assert outcome.bytes_sent == sum(m.n_bytes for m in network.messages)

    def test_duplicates_counted_once_delivered(self):
        plan = FaultPlan(seed=4, link=LinkFaults(duplicate_prob=1.0))
        network, transport = self._transport(plan)
        outcome = transport.deliver(0, SERVER, "local_model", b"x" * 50)
        assert outcome.delivered
        assert outcome.n_duplicates == 1
        assert outcome.bytes_sent == 100
        assert len(network.messages) == 2
        assert transport.stats.n_duplicates == 1

    def test_reorder_delays_arrival(self):
        plan = FaultPlan(
            seed=5, link=LinkFaults(reorder_prob=1.0, reorder_delay_s=3.0)
        )
        __, fast = self._transport(FaultPlan.none())
        __, slow = self._transport(plan)
        clean = fast.deliver(0, SERVER, "local_model", b"x" * 50)
        delayed = slow.deliver(0, SERVER, "local_model", b"x" * 50)
        assert delayed.delivered
        assert delayed.arrival_s == pytest.approx(clean.arrival_s + 3.0)

    def test_start_s_offsets_arrival(self):
        __, transport = self._transport(FaultPlan.none())
        outcome = transport.deliver(
            0, SERVER, "local_model", b"x" * 50, start_s=10.0
        )
        assert outcome.arrival_s == pytest.approx(10.0 + outcome.sim_seconds)

    def test_retry_sequence_deterministic_under_fixed_seed(self):
        """Same plan + same message sequence ⇒ identical outcomes,
        attempt counts and byte accounting, run after run."""
        def run() -> list[tuple]:
            network, transport = self._transport(
                FaultPlan.chaos(0.5, seed=11), max_attempts=5
            )
            outcomes = []
            for seq in range(10):
                for site in range(3):
                    outcome = transport.deliver(
                        site, SERVER, "local_model", b"m" * (20 + seq)
                    )
                    outcomes.append(dataclasses.astuple(outcome))
            outcomes.append(
                tuple(m.n_bytes for m in network.messages)
            )
            return outcomes

        assert run() == run()

    def test_different_seeds_differ(self):
        def totals(seed: int) -> int:
            __, transport = self._transport(FaultPlan.lossy_links(0.5, seed=seed))
            for seq in range(20):
                transport.deliver(0, SERVER, "local_model", b"x" * 30)
            return transport.stats.n_dropped

        assert totals(1) != totals(2)

    def test_per_link_sequences_are_independent(self):
        """Message sequence numbers are per (sender, receiver, kind), so
        traffic on one link does not perturb another link's faults."""
        plan = FaultPlan.lossy_links(0.5, seed=6)
        __, lone = self._transport(plan)
        lone_outcome = lone.deliver(1, SERVER, "local_model", b"x" * 30)

        __, busy = self._transport(plan)
        busy.deliver(0, SERVER, "local_model", b"x" * 30)
        busy.deliver(2, SERVER, "other_kind", b"x" * 30)
        busy_outcome = busy.deliver(1, SERVER, "local_model", b"x" * 30)
        assert dataclasses.astuple(busy_outcome) == dataclasses.astuple(
            lone_outcome
        )

    def test_link_identified_by_client_end(self):
        """Broadcast faults key on the receiving site, so a per-site
        override affects both directions of that site's link."""
        plan = FaultPlan(
            seed=7, link_overrides={2: LinkFaults(drop_prob=1.0)}
        )
        __, transport = self._transport(plan, max_attempts=1)
        down_bad = transport.deliver(SERVER, 2, "global_model", b"g" * 10)
        down_ok = transport.deliver(SERVER, 0, "global_model", b"g" * 10)
        assert not down_bad.delivered
        assert down_ok.delivered


class TestPayloadCorruption:
    def _transport(self, plan, **policy_kwargs):
        network = SimulatedNetwork()
        policy = TransportPolicy(**policy_kwargs) if policy_kwargs else None
        return network, ResilientTransport(network, plan, policy)

    def test_certain_corruption_detected_by_checksum(self):
        """A corrupted payload *arrives* (delivered=True) but fails the
        sender-stamped CRC — the receiver must treat it as poison."""
        __, transport = self._transport(FaultPlan.corrupted_payloads(1.0, seed=9))
        sent = b"x" * 80
        outcome = transport.deliver(0, SERVER, "local_model", sent)
        assert outcome.delivered
        assert not outcome.checksum_ok
        assert outcome.payload is not None and outcome.payload != sent
        assert len(outcome.payload) == len(sent)  # flipped, not truncated
        assert outcome.n_corrupted == 1
        assert transport.stats.n_corrupted == 1
        assert transport.stats.n_delivered == 1

    def test_clean_link_checksum_passes(self):
        __, transport = self._transport(FaultPlan.none())
        outcome = transport.deliver(0, SERVER, "local_model", b"x" * 80)
        assert outcome.delivered
        assert outcome.checksum_ok
        assert outcome.payload == b"x" * 80
        assert outcome.n_corrupted == 0

    def test_corruption_is_deterministic(self):
        def flipped() -> bytes:
            __, transport = self._transport(
                FaultPlan.corrupted_payloads(1.0, seed=9)
            )
            return transport.deliver(0, SERVER, "local_model", b"y" * 40).payload

        assert flipped() == flipped()

    def test_enabling_corruption_preserves_other_streams(self):
        """corrupt_prob draws after every other decision in the attempt's
        keyed stream, so switching it on cannot change which messages
        drop/truncate/duplicate."""
        base = FaultPlan.chaos(0.5, seed=11)
        with_corruption = dataclasses.replace(
            base, link=dataclasses.replace(base.link, corrupt_prob=0.0)
        )
        def decisions(plan) -> list[tuple]:
            __, transport = self._transport(plan, max_attempts=4)
            out = []
            for seq in range(15):
                o = transport.deliver(0, SERVER, "local_model", b"m" * 30)
                out.append((o.attempts, o.n_dropped, o.n_truncated,
                            o.n_duplicates, o.sim_seconds))
            return out

        assert decisions(base) == decisions(with_corruption)


class TestCircuitBreaker:
    def _transport(self, plan, breaker=None, **policy_kwargs):
        network = SimulatedNetwork()
        policy = TransportPolicy(**policy_kwargs) if policy_kwargs else None
        return network, ResilientTransport(
            network, plan, policy, breaker_policy=breaker
        )

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            BreakerPolicy(failure_threshold=0)
        with pytest.raises(ValueError, match="cooldown_s"):
            BreakerPolicy(cooldown_s=0.0)

    def test_opens_after_threshold_then_fast_fails(self):
        network, transport = self._transport(
            FaultPlan.none(),
            breaker=BreakerPolicy(failure_threshold=2, cooldown_s=10.0),
            max_attempts=2,
        )
        # Two consecutive failed messages (dead receiver) trip the breaker.
        for __ in range(2):
            outcome = transport.deliver(
                SERVER, 3, "global_model", b"g" * 20, receiver_down=True
            )
            assert not outcome.delivered
            assert outcome.attempts == 2
        assert transport.breaker_state(3) == "open"
        wire_before = len(network.messages)

        # The third message fast-fails: no attempts, no bytes, no time.
        fast = transport.deliver(SERVER, 3, "global_model", b"g" * 20)
        assert fast.fast_failed
        assert not fast.delivered
        assert fast.attempts == 0
        assert fast.bytes_sent == 0
        assert fast.sim_seconds == 0.0
        assert len(network.messages) == wire_before
        assert transport.stats.n_fast_failed == 1

    def test_half_open_probe_closes_on_success(self):
        __, transport = self._transport(
            FaultPlan.none(),
            breaker=BreakerPolicy(failure_threshold=2, cooldown_s=10.0),
            max_attempts=1,
        )
        transport.deliver(SERVER, 3, "global_model", b"g", receiver_down=True)
        transport.deliver(SERVER, 3, "global_model", b"g", receiver_down=True)
        assert transport.breaker_state(3) == "open"

        # Before the cooldown elapses: still fast-failing.
        early = transport.deliver(SERVER, 3, "global_model", b"g", start_s=5.0)
        assert early.fast_failed

        # After the cooldown: the half-open probe goes through and closes
        # the breaker (the receiver recovered).
        probe = transport.deliver(SERVER, 3, "global_model", b"g", start_s=50.0)
        assert probe.delivered
        assert not probe.fast_failed
        assert transport.breaker_state(3) == "closed"
        # closed → open → half_open → closed.
        assert transport.stats.n_breaker_state_changes == 3

    def test_failed_probe_reopens(self):
        __, transport = self._transport(
            FaultPlan.none(),
            breaker=BreakerPolicy(failure_threshold=1, cooldown_s=10.0),
            max_attempts=1,
        )
        transport.deliver(SERVER, 3, "global_model", b"g", receiver_down=True)
        assert transport.breaker_state(3) == "open"
        probe = transport.deliver(
            SERVER, 3, "global_model", b"g", start_s=20.0, receiver_down=True
        )
        assert not probe.fast_failed  # the probe was allowed through
        assert not probe.delivered
        assert transport.breaker_state(3) == "open"

    def test_breakers_are_per_link(self):
        __, transport = self._transport(
            FaultPlan.none(),
            breaker=BreakerPolicy(failure_threshold=1, cooldown_s=10.0),
            max_attempts=1,
        )
        transport.deliver(SERVER, 3, "global_model", b"g", receiver_down=True)
        assert transport.breaker_state(3) == "open"
        assert transport.breaker_state(4) == "closed"
        ok = transport.deliver(SERVER, 4, "global_model", b"g")
        assert ok.delivered

    def test_delivered_but_corrupt_counts_as_link_health_success(self):
        """Corruption is a *payload* problem, not a link problem: the link
        moved bytes end to end, so the breaker must not trip."""
        __, transport = self._transport(
            FaultPlan.corrupted_payloads(1.0, seed=9),
            breaker=BreakerPolicy(failure_threshold=1, cooldown_s=10.0),
        )
        for __ in range(3):
            outcome = transport.deliver(0, SERVER, "local_model", b"x" * 30)
            assert outcome.delivered
            assert not outcome.checksum_ok
        assert transport.breaker_state(0) == "closed"
        assert transport.stats.n_fast_failed == 0

    def test_fast_fail_consumes_no_sequence_number(self):
        """A fast-failed message draws no RNG and takes no sequence slot,
        so the link's later messages are identical to a breaker-less run."""
        plan = FaultPlan.lossy_links(0.5, seed=6)

        __, guarded = self._transport(
            plan,
            breaker=BreakerPolicy(failure_threshold=1, cooldown_s=100.0),
            max_attempts=1,
        )
        guarded.deliver(SERVER, 1, "global_model", b"g" * 30, receiver_down=True)
        assert guarded.breaker_state(1) == "open"
        fast = guarded.deliver(SERVER, 1, "global_model", b"g" * 30)
        assert fast.fast_failed
        after_fast = guarded.deliver(
            SERVER, 1, "global_model", b"g" * 30, start_s=500.0
        )

        __, plain = self._transport(plan, max_attempts=1)
        plain.deliver(SERVER, 1, "global_model", b"g" * 30, receiver_down=True)
        after_plain = plain.deliver(
            SERVER, 1, "global_model", b"g" * 30, start_s=500.0
        )
        assert dataclasses.astuple(after_fast) == dataclasses.astuple(
            after_plain
        )

    def test_disabled_breaker_is_bit_identical(self):
        """breaker_policy=None (the default) must not change any outcome."""
        plan = FaultPlan.chaos(0.6, seed=17)

        def run(breaker) -> list[tuple]:
            __, transport = self._transport(plan, breaker=breaker, max_attempts=3)
            return [
                dataclasses.astuple(
                    transport.deliver(s, SERVER, "local_model", b"m" * 25)
                )
                for __ in range(8)
                for s in range(2)
            ]

        # A breaker with an unreachable threshold never intervenes, so the
        # streams must match the breaker-less transport exactly.
        assert run(None) == run(BreakerPolicy(failure_threshold=10**6))


class TestByteAccountingRegressions:
    """Pins of the retry/duplicate byte accounting audited in the
    observability sweep: bytes_sent on the outcome, bytes_by_kind on the
    network, and the ``transport.bytes[*]`` metric must all agree — no
    path may double-count a duplicated, reordered or dropped attempt."""

    def _transport(self, plan, metrics=None, **policy_kwargs):
        network = SimulatedNetwork()
        policy = TransportPolicy(**policy_kwargs) if policy_kwargs else None
        return network, ResilientTransport(
            network, plan, policy, metrics=metrics
        )

    def test_duplicate_bytes_counted_exactly_once_per_copy(self):
        """A duplicated delivery charges exactly two payloads: one for the
        attempt, one for the extra copy — not three (the historical
        double-count risk: attempt + duplicate + 'delivered' charge)."""
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
        plan = FaultPlan(seed=4, link=LinkFaults(duplicate_prob=1.0))
        network, transport = self._transport(plan, metrics=metrics)
        outcome = transport.deliver(0, SERVER, "local_model", b"x" * 50)
        assert outcome.delivered
        assert outcome.bytes_sent == 100
        assert network.stats().bytes_by_kind["local_model"] == 100
        assert metrics.value("transport.bytes[local_model]") == 100

    def test_reordered_bytes_not_double_counted(self):
        """A reordered message is late, not resent: one payload of bytes."""
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
        plan = FaultPlan(
            seed=5, link=LinkFaults(reorder_prob=1.0, reorder_delay_s=2.0)
        )
        network, transport = self._transport(plan, metrics=metrics)
        outcome = transport.deliver(0, SERVER, "local_model", b"x" * 40)
        assert outcome.delivered
        assert outcome.bytes_sent == 40
        assert network.stats().bytes_by_kind["local_model"] == 40
        assert metrics.value("transport.bytes[local_model]") == 40

    def test_outcome_bytes_match_wire_bytes_under_chaos(self):
        """Across a chaotic mix of drops/truncations/duplicates, the sum
        of per-outcome bytes equals what the network saw on the wire."""
        network, transport = self._transport(
            FaultPlan.chaos(0.5, seed=11), max_attempts=5
        )
        total = 0
        for seq in range(12):
            for site in range(3):
                outcome = transport.deliver(
                    site, SERVER, "local_model", b"m" * (25 + seq)
                )
                total += outcome.bytes_sent
        assert total == network.stats().bytes_total

    def test_receiver_down_still_charges_bytes(self):
        """Sending to a crashed receiver burns the full retry budget and
        charges every attempt's bytes — the sender is not omniscient.
        Regression for the crash-after-send broadcast that historically
        skipped the wire entirely."""
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
        network, transport = self._transport(
            FaultPlan.none(), metrics=metrics, max_attempts=3, timeout_s=1.0
        )
        outcome = transport.deliver(
            SERVER, 2, "global_model", b"g" * 20, receiver_down=True
        )
        assert not outcome.delivered
        assert outcome.attempts == 3
        assert outcome.n_dropped == 3
        assert outcome.bytes_sent == 60
        assert len(network.messages) == 3
        assert network.stats().bytes_by_kind["global_model"] == 60
        assert metrics.value("transport.bytes[global_model]") == 60
        assert metrics.value("transport.failed") == 1
        # Each attempt burns its timeout (plus backoffs between attempts).
        assert outcome.sim_seconds >= 3 * 1.0

    def test_receiver_down_does_not_perturb_other_streams(self):
        """The RNG draws still happen for a receiver-down delivery, so the
        link's *other* messages see identical fault decisions either way."""
        plan = FaultPlan.lossy_links(0.5, seed=6)

        __, a = self._transport(plan)
        a.deliver(SERVER, 1, "global_model", b"g" * 30, receiver_down=True)
        after_down = a.deliver(SERVER, 1, "global_model", b"g" * 30)

        __, b = self._transport(plan)
        b.deliver(SERVER, 1, "global_model", b"g" * 30)  # same seq, alive
        after_alive = b.deliver(SERVER, 1, "global_model", b"g" * 30)

        assert dataclasses.astuple(after_down) == dataclasses.astuple(
            after_alive
        )
