"""Tests for the per-cluster quality breakdown diagnostics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.labels import NOISE
from repro.quality.breakdown import quality_breakdown


class TestMatching:
    def test_identical_clusterings_all_perfect(self, rng):
        labels = rng.integers(-1, 4, size=80)
        breakdown = quality_breakdown(labels, labels)
        for match in breakdown.matches:
            assert match.jaccard == pytest.approx(1.0)
            assert not match.is_split_or_merge
        assert breakdown.unmatched_central == []
        assert breakdown.n_noise_promoted == 0
        assert breakdown.n_noise_lost == 0

    def test_split_detected(self):
        """One central cluster split into two distributed halves."""
        central = np.zeros(20, dtype=int)
        distributed = np.asarray([0] * 10 + [1] * 10)
        breakdown = quality_breakdown(distributed, central)
        assert len(breakdown.matches) == 2
        for match in breakdown.matches:
            assert match.central_id == 0
            assert match.jaccard == pytest.approx(0.5)

    def test_merge_detected(self):
        """Two central clusters merged into one distributed cluster."""
        central = np.asarray([0] * 10 + [1] * 10)
        distributed = np.zeros(20, dtype=int)
        breakdown = quality_breakdown(distributed, central)
        assert len(breakdown.matches) == 1
        match = breakdown.matches[0]
        assert match.jaccard == pytest.approx(0.5)
        assert match.is_split_or_merge
        # The other central cluster has no counterpart of its own.
        assert len(breakdown.unmatched_central) == 1

    def test_matches_sorted_worst_first(self):
        central = np.asarray([0] * 10 + [1] * 10 + [2] * 2)
        distributed = np.asarray([0] * 10 + [1] * 5 + [3] * 5 + [2] * 2)
        breakdown = quality_breakdown(distributed, central)
        jaccards = [m.jaccard for m in breakdown.matches]
        assert jaccards == sorted(jaccards)
        assert breakdown.worst(1)[0].jaccard == jaccards[0]

    def test_pure_noise_cluster_matches_nothing(self):
        """A distributed cluster made entirely of central noise."""
        central = np.full(5, NOISE)
        distributed = np.zeros(5, dtype=int)
        breakdown = quality_breakdown(distributed, central)
        assert breakdown.matches[0].central_id == -1
        assert breakdown.matches[0].jaccard == 0.0
        assert breakdown.n_noise_promoted == 5


class TestNoiseAccounting:
    def test_counts(self):
        distributed = np.asarray([NOISE, NOISE, 0, 0, NOISE])
        central = np.asarray([NOISE, 0, NOISE, 0, NOISE])
        breakdown = quality_breakdown(distributed, central)
        assert breakdown.n_noise_agree == 2
        assert breakdown.n_noise_promoted == 1  # position 2
        assert breakdown.n_noise_lost == 1  # position 1

    def test_report_renders(self, rng):
        labels = rng.integers(-1, 3, size=40)
        other = labels.copy()
        other[:5] = NOISE
        text = quality_breakdown(other, labels).to_text()
        assert "per-cluster quality breakdown" in text
        assert "noise:" in text


class TestOnRealPipeline:
    def test_breakdown_explains_quality(self):
        """The mean matched Jaccard must bound the clustered share of
        P^II from above (noise mismatches only drag it down)."""
        from repro.clustering.dbscan import dbscan
        from repro.core.dbdc import DBDCConfig, run_dbdc_partitioned
        from repro.data.datasets import dataset_c
        from repro.distributed.partition import uniform_random

        data = dataset_c()
        central = dbscan(data.points, data.eps_local, data.min_pts)
        assignment = uniform_random(data.n, 3, seed=0)
        run = run_dbdc_partitioned(
            data.points,
            assignment,
            DBDCConfig(eps_local=data.eps_local, min_pts_local=data.min_pts),
        )
        breakdown = quality_breakdown(run.labels_in_original_order(), central.labels)
        assert len(breakdown.matches) == 3  # data set C's three clusters
        assert all(m.jaccard > 0.9 for m in breakdown.matches)
