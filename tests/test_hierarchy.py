"""Tests for hierarchical DBDC and regional condensation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.dbscan import dbscan
from repro.core.dbdc import DBDCConfig, run_dbdc_partitioned
from repro.core.local import build_rep_scor_model
from repro.core.models import LocalModel
from repro.data.distance import euclidean
from repro.data.generators import gaussian_blobs
from repro.distributed.hierarchy import condense_models, run_hierarchical_dbdc
from repro.distributed.partition import split, uniform_random
from repro.quality import evaluate_quality


@pytest.fixture(scope="module")
def workload():
    points, __ = gaussian_blobs(
        [300, 300, 300],
        np.asarray([[0.0, 0.0], [25.0, 0.0], [12.0, 20.0]]),
        1.2,
        seed=17,
    )
    return points


EPS, MIN_PTS = 1.2, 5


def _regions(points, n_sites=6, n_regions=2, seed=0):
    assignment = uniform_random(points.shape[0], n_sites, seed=seed)
    parts = split(points, assignment)
    per_region = n_sites // n_regions
    regions = [
        parts[r * per_region : (r + 1) * per_region] for r in range(n_regions)
    ]
    return regions, assignment


class TestCondenseModels:
    def _models(self, workload):
        halves = [workload[: len(workload) // 2], workload[len(workload) // 2 :]]
        return [
            build_rep_scor_model(points, EPS, MIN_PTS, site_id=sid).model
            for sid, points in enumerate(halves)
        ]

    def test_reduces_representative_count(self, workload):
        models = self._models(workload)
        condensed = condense_models(models, EPS)
        assert 0 < len(condensed) < sum(len(m) for m in models)

    def test_coverage_preserved(self, workload):
        """Every object covered by some input representative must remain
        covered by some condensed representative — the invariant the
        absorption rule is built around."""
        models = self._models(workload)
        condensed = condense_models(models, EPS)
        for point in workload[::7]:
            covered_before = any(
                rep.covers(point, euclidean)
                for model in models
                for rep in model.representatives
            )
            if covered_before:
                assert any(
                    rep.covers(point, euclidean)
                    for rep in condensed.representatives
                )

    def test_radius_zero_keeps_everything(self, workload):
        models = self._models(workload)
        condensed = condense_models(models, 0.0)
        assert len(condensed) == sum(len(m) for m in models)

    def test_metadata_aggregated(self, workload):
        models = self._models(workload)
        condensed = condense_models(models, EPS, region_id=7)
        assert condensed.site_id == 7
        assert condensed.n_objects == workload.shape[0]
        assert condensed.scheme == models[0].scheme

    def test_empty_input(self):
        condensed = condense_models([], 1.0)
        assert len(condensed) == 0


class TestHierarchicalRun:
    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one region"):
            run_hierarchical_dbdc([], eps_local=1.0, min_pts_local=5)
        with pytest.raises(ValueError, match="at least one region"):
            run_hierarchical_dbdc([[]], eps_local=1.0, min_pts_local=5)

    def test_finds_the_clusters(self, workload):
        regions, __ = _regions(workload)
        report = run_hierarchical_dbdc(
            regions, eps_local=EPS, min_pts_local=MIN_PTS
        )
        assert report.global_model.n_global_clusters == 3

    def test_long_haul_cheaper_than_flat(self, workload):
        regions, __ = _regions(workload)
        report = run_hierarchical_dbdc(
            regions, eps_local=EPS, min_pts_local=MIN_PTS
        )
        assert report.long_haul_bytes < report.flat_equivalent_bytes
        assert 0 < report.long_haul_saving < 1

    def test_condensation_off_forwards_every_representative(self, workload):
        regions, __ = _regions(workload)
        report = run_hierarchical_dbdc(
            regions, eps_local=EPS, min_pts_local=MIN_PTS, condense_radius=0.0
        )
        for region in report.regions:
            assert (
                region.n_forwarded_representatives
                == region.n_received_representatives
            )
        # Traffic differs from flat only by the merged message headers.
        assert (
            report.flat_equivalent_bytes - report.long_haul_bytes
            < 16 * sum(len(r.site_ids) for r in report.regions)
        )

    def test_quality_close_to_flat_dbdc(self, workload):
        regions, assignment = _regions(workload)
        report = run_hierarchical_dbdc(
            regions, eps_local=EPS, min_pts_local=MIN_PTS
        )
        labels = np.empty(workload.shape[0], dtype=np.intp)
        for sid in range(6):
            members = np.flatnonzero(assignment == sid)
            labels[members] = report.sites[sid].global_labels
        central = dbscan(workload, EPS, MIN_PTS)
        hierarchical_q = evaluate_quality(labels, central.labels, qp=MIN_PTS)
        flat = run_dbdc_partitioned(
            workload, assignment, DBDCConfig(eps_local=EPS, min_pts_local=MIN_PTS)
        )
        flat_q = evaluate_quality(
            flat.labels_in_original_order(), central.labels, qp=MIN_PTS
        )
        assert hierarchical_q.q_p2 > flat_q.q_p2 - 0.05

    def test_region_reports_populated(self, workload):
        regions, __ = _regions(workload)
        report = run_hierarchical_dbdc(
            regions, eps_local=EPS, min_pts_local=MIN_PTS
        )
        assert len(report.regions) == 2
        for region in report.regions:
            assert len(region.site_ids) == 3
            assert region.n_forwarded_representatives <= region.n_received_representatives
            assert region.bytes_up_region > 0
            # Healthy sites produce valid models: nothing quarantined.
            assert region.n_quarantined_models == 0
        assert report.n_quarantined_models == 0

    def test_every_site_relabeled(self, workload):
        regions, __ = _regions(workload)
        report = run_hierarchical_dbdc(
            regions, eps_local=EPS, min_pts_local=MIN_PTS
        )
        for labels in report.labels_per_site():
            assert (labels >= -1).all()
            assert (labels >= 0).any()


class TestHierarchyTrafficAccounting:
    def test_network_stats_match_region_reports(self, workload):
        """The network layer's per-kind accounting must agree with the
        per-region bookkeeping the report carries."""
        regions, __ = _regions(workload)
        report = run_hierarchical_dbdc(
            regions, eps_local=EPS, min_pts_local=MIN_PTS
        )
        by_kind = report.network.bytes_by_kind
        assert set(by_kind) == {"local_model", "regional_model", "global_model"}
        assert by_kind["local_model"] == sum(
            r.bytes_up_sites for r in report.regions
        )
        assert by_kind["regional_model"] == sum(
            r.bytes_up_region for r in report.regions
        )
        assert by_kind["regional_model"] == report.long_haul_bytes
        assert sum(by_kind.values()) == report.network.bytes_total

    def test_message_count_matches_topology(self, workload):
        regions, __ = _regions(workload)
        report = run_hierarchical_dbdc(
            regions, eps_local=EPS, min_pts_local=MIN_PTS
        )
        n_sites = len(report.sites)
        n_regions = len(report.regions)
        # site->region uploads + region->top uploads + broadcasts.
        assert report.network.n_messages == n_sites + n_regions + n_sites
