"""Unit tests for label bookkeeping utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.labels import (
    NOISE,
    UNCLASSIFIED,
    cluster_ids,
    cluster_members,
    cluster_sizes,
    compact_labels,
    contingency_table,
    n_clusters,
    noise_mask,
    noise_ratio,
    relabel,
    validate_labels,
)


class TestValidate:
    def test_accepts_finished_labels(self):
        out = validate_labels([0, 1, NOISE, 2])
        assert out.dtype == np.intp

    def test_rejects_unclassified(self):
        with pytest.raises(ValueError, match="UNCLASSIFIED"):
            validate_labels([0, UNCLASSIFIED])

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            validate_labels(np.zeros((2, 2), dtype=int))


class TestQueries:
    LABELS = np.asarray([0, 0, 1, NOISE, 1, 2, NOISE])

    def test_cluster_ids(self):
        np.testing.assert_array_equal(cluster_ids(self.LABELS), [0, 1, 2])

    def test_n_clusters(self):
        assert n_clusters(self.LABELS) == 3

    def test_cluster_sizes(self):
        assert cluster_sizes(self.LABELS) == {0: 2, 1: 2, 2: 1}

    def test_cluster_members(self):
        members = cluster_members(self.LABELS)
        np.testing.assert_array_equal(members[1], [2, 4])

    def test_noise_mask_and_ratio(self):
        np.testing.assert_array_equal(
            noise_mask(self.LABELS), [False, False, False, True, False, False, True]
        )
        assert noise_ratio(self.LABELS) == pytest.approx(2 / 7)

    def test_noise_ratio_empty(self):
        assert noise_ratio(np.empty(0, dtype=int)) == 0.0


class TestTransforms:
    def test_compact_labels_preserves_first_appearance(self):
        out = compact_labels([5, 5, NOISE, 2, 9, 2])
        np.testing.assert_array_equal(out, [0, 0, NOISE, 1, 2, 1])

    def test_relabel_partial_mapping(self):
        out = relabel([0, 1, 2, NOISE], {1: 7})
        np.testing.assert_array_equal(out, [0, 7, 2, NOISE])

    def test_relabel_does_not_touch_noise(self):
        out = relabel([NOISE, 0], {0: 3})
        assert out[0] == NOISE


class TestContingency:
    def test_counts(self):
        left = [0, 0, 1, NOISE]
        right = [1, 1, 1, NOISE]
        table = contingency_table(left, right)
        assert table[(0, 1)] == 2
        assert table[(1, 1)] == 1
        assert table[(NOISE, NOISE)] == 1

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="align"):
            contingency_table([0], [0, 1])
