"""Socket-level fault injection (``repro.service.faulting``).

The seed-keyed :class:`FaultPlan` DSL sabotages *real* TCP traffic:
injected drops and mid-frame truncations drive
:class:`ResilientTransport`'s retry/backoff loop over an actual
connection (with reconnect-and-resync after a torn-down stream),
corrupted frames land in the server's CRC quarantine as a protocol
verdict (not a retry), open circuit breakers fast-fail without touching
the wire, and the whole socket chaos sweep reproduces its counters
run-to-run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults.plan import FaultPlan, LinkFaults
from repro.faults.transport import (
    BreakerPolicy,
    ResilientTransport,
    TransportPolicy,
)
from repro.service import (
    FaultingSocketTransport,
    ServiceConfig,
    ServiceError,
    ServiceHandle,
    SocketTransport,
    wire,
)

#: Tight budgets keep injected timeouts out of the tests' wall clock —
#: backoffs are recorded on the simulated clock but slept via a no-op.
POLICY = TransportPolicy(
    timeout_s=0.05, max_attempts=6, backoff_base_s=0.001, backoff_cap_s=0.002
)


def _tiny_model(site_id: int):
    from repro.core.models import LocalModel, Representative

    return LocalModel(
        site_id=site_id,
        representatives=[
            Representative(
                point=np.asarray([0.0, 0.0]),
                eps_range=1.0,
                site_id=site_id,
                local_cluster_id=0,
            )
        ],
        n_objects=1,
        scheme="rep_scor",
        eps_local=1.0,
        min_pts_local=1,
    )


def _deliver_with_plan(plan, *, breaker_policy=None, n_messages=1):
    """One site's upload (plus optional probes) through the injector
    against a live service; returns what the retry layer saw."""
    outcomes = []
    with ServiceHandle.start(ServiceConfig(metrics_port=None)) as handle:
        with SocketTransport(handle.host, handle.port, site_id=0) as sock:
            injector = FaultingSocketTransport(
                sock, plan, sleep=lambda seconds: None
            )
            resilient = ResilientTransport(
                injector,
                FaultPlan.none(),
                POLICY,
                breaker_policy=breaker_policy,
                retryable_errors=FaultingSocketTransport.RETRYABLE,
                sleep=lambda seconds: None,
            )
            payload = wire.encode_local_model(_tiny_model(0))
            outcomes.append(
                resilient.deliver(0, wire.SERVER_ID, "local_model", payload)
            )
            for __ in range(n_messages - 1):
                outcomes.append(
                    resilient.deliver(0, wire.SERVER_ID, "health", b"")
                )
            admitted = list(handle.service.server.admitted_site_ids)
    return outcomes, injector, resilient, admitted


class TestInjectedDrops:
    def test_drops_drive_the_real_retry_loop(self):
        """A dropped attempt never touches the wire; the retry layer
        charges it a timeout and the next attempt delivers."""
        plan = FaultPlan(seed=5, link=LinkFaults(drop_prob=0.6))
        outcomes, injector, __, admitted = _deliver_with_plan(plan)
        outcome = outcomes[0]
        assert outcome.delivered
        assert outcome.attempts > 1
        assert injector.n_dropped == outcome.attempts - 1
        assert outcome.n_dropped == injector.n_dropped
        assert admitted == [0]

    def test_drop_trace_is_deterministic(self):
        plan = FaultPlan(seed=5, link=LinkFaults(drop_prob=0.6))
        first, inj_a, __, __admitted = _deliver_with_plan(plan)
        second, inj_b, __, __admitted = _deliver_with_plan(plan)
        assert first[0].attempts == second[0].attempts
        assert first[0].n_dropped == second[0].n_dropped
        assert first[0].bytes_sent == second[0].bytes_sent
        assert inj_a.n_dropped == inj_b.n_dropped


class TestInjectedTruncation:
    def test_truncation_tears_the_stream_and_reconnect_resyncs(self):
        """A truncated frame hits the wire for real (the server reads a
        short frame); the injector tears the connection down so the next
        attempt starts on a clean stream — and still gets through."""
        plan = FaultPlan(seed=1, link=LinkFaults(truncate_prob=0.7))
        outcomes, injector, __, admitted = _deliver_with_plan(plan)
        outcome = outcomes[0]
        assert injector.n_truncated >= 1
        assert outcome.delivered
        assert outcome.attempts == injector.n_truncated + 1
        assert admitted == [0]


class TestInjectedCorruption:
    def test_corruption_is_quarantined_not_retried(self):
        """Flipped payload bytes arrive as a complete frame; the server's
        CRC gate quarantines the upload — a protocol verdict the retry
        layer must NOT paper over with another attempt."""
        plan = FaultPlan.corrupted_payloads(1.0, seed=3)
        with ServiceHandle.start(ServiceConfig(metrics_port=None)) as handle:
            with SocketTransport(handle.host, handle.port, site_id=0) as sock:
                injector = FaultingSocketTransport(
                    sock, plan, sleep=lambda seconds: None
                )
                resilient = ResilientTransport(
                    injector,
                    FaultPlan.none(),
                    POLICY,
                    retryable_errors=FaultingSocketTransport.RETRYABLE,
                    sleep=lambda seconds: None,
                )
                payload = wire.encode_local_model(_tiny_model(0))
                with pytest.raises(ServiceError) as excinfo:
                    resilient.deliver(0, wire.SERVER_ID, "local_model", payload)
                assert excinfo.value.status == "quarantined"
                assert injector.n_corrupted == 1
                health = handle.service.health()
        assert health["sites_quarantined"] == 1
        assert health["sites_admitted"] == 0


class TestBreakerOverSockets:
    def test_open_breaker_fast_fails_the_real_link(self):
        plan = FaultPlan(seed=0, link=LinkFaults(drop_prob=1.0))
        outcomes, injector, resilient, admitted = _deliver_with_plan(
            plan,
            breaker_policy=BreakerPolicy(
                failure_threshold=1, cooldown_s=1000.0
            ),
            n_messages=2,
        )
        first, second = outcomes
        assert not first.delivered  # every attempt dropped
        assert first.attempts == POLICY.max_attempts
        assert second.fast_failed  # breaker open: no wire traffic at all
        assert second.attempts == 0
        assert resilient.breaker_state(0) == "open"
        assert resilient.stats.n_fast_failed == 1
        assert resilient.stats.n_breaker_state_changes >= 1
        assert injector.n_sends == POLICY.max_attempts
        assert admitted == []


class TestSocketChaosSweep:
    def test_sweep_counters_reproduce_run_to_run(self):
        from repro.experiments.chaos import (
            flat_socket_metrics,
            run_socket_chaos_sweep,
        )

        kwargs = dict(
            dataset="A",
            cardinality=200,
            n_sites=2,
            failure_probs=(0.6,),
            trials=1,
            mode="links",
            seed=7,
            probe_messages=2,
        )
        first = flat_socket_metrics(run_socket_chaos_sweep(**kwargs))
        second = flat_socket_metrics(run_socket_chaos_sweep(**kwargs))
        assert first["socket_chaos.completed_identical"] == 1.0
        assert first["socket_chaos.retries[p=0.6]"] > 0
        stable = [key for key in first if "seconds" not in key]
        assert {key: first[key] for key in stable} == {
            key: second[key] for key in stable
        }
