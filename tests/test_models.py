"""Unit tests for the model types and their wire serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.models import GlobalModel, LocalModel, Representative
from repro.data.distance import euclidean


def _rep(x, y, eps_range=1.0, site_id=0, local_cluster_id=0):
    return Representative(
        point=np.asarray([x, y]),
        eps_range=eps_range,
        site_id=site_id,
        local_cluster_id=local_cluster_id,
    )


class TestRepresentative:
    def test_rejects_negative_range(self):
        with pytest.raises(ValueError, match="eps_range"):
            _rep(0.0, 0.0, eps_range=-0.1)

    def test_covers(self):
        rep = _rep(0.0, 0.0, eps_range=2.0)
        assert rep.covers(np.asarray([1.0, 1.0]), euclidean)
        assert not rep.covers(np.asarray([3.0, 0.0]), euclidean)

    def test_covers_boundary_inclusive(self):
        rep = _rep(0.0, 0.0, eps_range=1.0)
        assert rep.covers(np.asarray([1.0, 0.0]), euclidean)

    def test_point_coerced_to_float(self):
        rep = Representative(np.asarray([1, 2]), 1.0, 0, 0)
        assert rep.point.dtype == float

    def test_rejects_nan_coordinates(self):
        with pytest.raises(ValueError, match="finite"):
            _rep(float("nan"), 0.0)

    def test_rejects_infinite_coordinates(self):
        with pytest.raises(ValueError, match="finite"):
            _rep(float("inf"), 0.0)

    def test_rejects_zero_range(self):
        with pytest.raises(ValueError, match="eps_range"):
            _rep(0.0, 0.0, eps_range=0.0)

    def test_rejects_nan_range(self):
        with pytest.raises(ValueError, match="eps_range"):
            _rep(0.0, 0.0, eps_range=float("nan"))


class TestLocalModel:
    def _model(self):
        reps = [
            _rep(0.0, 0.0, 1.5, site_id=2, local_cluster_id=0),
            _rep(5.0, 5.0, 2.5, site_id=2, local_cluster_id=0),
            _rep(9.0, 1.0, 1.0, site_id=2, local_cluster_id=1),
        ]
        return LocalModel(
            site_id=2,
            representatives=reps,
            n_objects=500,
            scheme="rep_scor",
            eps_local=1.0,
            min_pts_local=5,
        )

    def test_len_and_cluster_count(self):
        model = self._model()
        assert len(model) == 3
        assert model.n_local_clusters == 2

    def test_max_eps_range(self):
        assert self._model().max_eps_range == 2.5

    def test_points_and_ranges_aligned(self):
        model = self._model()
        pts = model.points()
        ranges = model.eps_ranges()
        assert pts.shape == (3, 2)
        assert ranges.shape == (3,)
        np.testing.assert_allclose(pts[1], [5.0, 5.0])
        assert ranges[1] == 2.5

    def test_empty_model(self):
        model = LocalModel(0, [], 0, "rep_scor", 1.0, 5)
        assert model.max_eps_range == 0.0
        assert model.points().shape[0] == 0

    def test_bytes_roundtrip(self):
        model = self._model()
        payload = model.to_bytes()
        restored = LocalModel.from_bytes(payload)
        assert restored.site_id == 2
        assert len(restored) == 3
        for a, b in zip(model.representatives, restored.representatives):
            np.testing.assert_allclose(a.point, b.point)
            assert a.eps_range == pytest.approx(b.eps_range)
            assert a.local_cluster_id == b.local_cluster_id
            assert b.site_id == 2

    def test_validate_accepts_consistent_model(self):
        assert self._model().validate() == []

    def test_validate_rejects_negative_site_id(self):
        model = self._model()
        model.site_id = -1
        problems = model.validate()
        assert any("site id" in p for p in problems)

    def test_validate_rejects_negative_object_count(self):
        model = self._model()
        model.n_objects = -5
        assert any("object count" in p for p in model.validate())

    def test_validate_rejects_foreign_representatives(self):
        model = self._model()
        model.representatives[1] = _rep(5.0, 5.0, 2.5, site_id=7)
        assert any("claims site" in p for p in model.validate())

    def test_validate_rejects_mixed_dimensionalities(self):
        model = self._model()
        model.representatives.append(
            Representative(np.asarray([1.0, 2.0, 3.0]), 1.0, 2, 1)
        )
        assert any("dimensionalities" in p for p in model.validate())

    def test_validate_rejects_more_reps_than_objects(self):
        model = self._model()
        model.n_objects = 2
        assert any("representatives declared" in p for p in model.validate())

    def test_wire_size_scales_with_reps(self):
        model = self._model()
        single = LocalModel(2, model.representatives[:1], 500, "rep_scor", 1.0, 5)
        assert len(model.to_bytes()) > len(single.to_bytes())
        # Per-representative payload: id (4) + eps (8) + 2 coords (16).
        assert len(model.to_bytes()) - len(single.to_bytes()) == 2 * (4 + 8 + 16)


class TestGlobalModel:
    def test_label_alignment_enforced(self):
        with pytest.raises(ValueError, match="labels"):
            GlobalModel([_rep(0, 0)], np.asarray([0, 1]), eps_global=1.0)

    def test_rejects_noise_labels(self):
        with pytest.raises(ValueError, match="non-negative"):
            GlobalModel([_rep(0, 0)], np.asarray([-1]), eps_global=1.0)

    def test_members_of(self):
        reps = [_rep(0, 0), _rep(1, 1), _rep(9, 9)]
        model = GlobalModel(reps, np.asarray([0, 0, 1]), eps_global=2.0)
        assert len(model.members_of(0)) == 2
        assert len(model.members_of(1)) == 1
        assert model.n_global_clusters == 2

    def test_empty_model(self):
        model = GlobalModel([], np.empty(0, dtype=int), eps_global=1.0)
        assert model.n_global_clusters == 0
        assert len(model) == 0

    def test_to_bytes_nonempty(self):
        reps = [_rep(0, 0), _rep(1, 1)]
        model = GlobalModel(reps, np.asarray([0, 1]), eps_global=2.0)
        payload = model.to_bytes()
        assert len(payload) > 0
