"""Unit tests for the incremental client site and its drift policy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.local import (
    build_rep_scor_from_clustering,
    build_rep_scor_model,
    select_specific_core_points,
    verify_specific_core_set,
)
from repro.data.generators import gaussian_blobs
from repro.distributed.incremental_site import (
    IncrementalClientSite,
    model_drift,
)


@pytest.fixture
def blob(rng):
    points, __ = gaussian_blobs([80], np.asarray([[0.0, 0.0]]), 0.8, seed=42)
    return points


class TestSelectionFromState:
    def test_definition6_holds(self, blob):
        """The state-based selector satisfies Def. 6 like the observer."""
        outcome = build_rep_scor_model(blob, 1.0, 4)
        result = outcome.clustering
        scor_map = select_specific_core_points(
            blob, result.labels, result.core_mask, 1.0
        )
        for cid, scor in scor_map.items():
            assert verify_specific_core_set(blob, result, cid, scor)

    def test_model_from_clustering_equivalent_metadata(self, blob):
        outcome = build_rep_scor_model(blob, 1.0, 4, site_id=2)
        model = build_rep_scor_from_clustering(
            blob,
            outcome.clustering.labels,
            outcome.clustering.core_mask,
            1.0,
            4,
            site_id=2,
        )
        assert model.scheme == "rep_scor"
        assert model.site_id == 2
        assert model.n_local_clusters == outcome.model.n_local_clusters
        # ε-ranges bounded as per Definition 7.
        for rep in model.representatives:
            assert 1.0 <= rep.eps_range <= 2.0 + 1e-9


class TestDriftMeasure:
    def _model(self, points, site_id=0):
        outcome = build_rep_scor_model(points, 1.0, 4, site_id=site_id)
        return outcome.model

    def test_zero_for_identical_models(self, blob):
        model = self._model(blob)
        report = model_drift(model, model)
        assert report.uncovered_fraction == 0.0
        assert report.cluster_count_delta == 0
        assert report.drift == 0.0

    def test_large_for_new_region(self, blob):
        old = self._model(blob)
        far, __ = gaussian_blobs([80], np.asarray([[30.0, 30.0]]), 0.8, seed=1)
        new = self._model(np.concatenate([blob, far]))
        report = model_drift(old, new)
        assert report.uncovered_fraction > 0.2
        assert report.cluster_count_delta == 1
        assert report.drift > 1.0

    def test_symmetricish_direction(self, blob):
        """Removing a cluster is as much drift as adding one."""
        small = self._model(blob)
        far, __ = gaussian_blobs([80], np.asarray([[30.0, 30.0]]), 0.8, seed=1)
        big = self._model(np.concatenate([blob, far]))
        assert model_drift(small, big).drift == pytest.approx(
            model_drift(big, small).drift
        )

    def test_empty_models(self, blob):
        from repro.core.models import LocalModel

        empty = LocalModel(0, [], 0, "rep_scor", 1.0, 4)
        assert model_drift(empty, empty).drift == 0.0
        nonempty = self._model(blob)
        assert model_drift(empty, nonempty).uncovered_fraction == 1.0


class TestIncrementalClientSite:
    def _site(self, **kwargs):
        defaults = dict(
            eps_local=1.0, min_pts_local=4, dim=2, drift_threshold=0.2
        )
        defaults.update(kwargs)
        return IncrementalClientSite(0, **defaults)

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError, match="drift_threshold"):
            self._site(drift_threshold=-0.1)

    def test_first_transmission_always_happens(self, blob):
        site = self._site()
        site.add_objects(blob)
        model = site.maybe_transmit()
        assert model is not None
        assert site.n_transmissions == 1

    def test_no_retransmit_on_same_area_growth(self, blob):
        site = self._site()
        site.add_objects(blob[:60])
        site.maybe_transmit()
        site.add_objects(blob[60:])
        assert site.maybe_transmit() is None
        assert site.n_transmissions == 1

    def test_retransmit_on_new_cluster(self, blob):
        site = self._site()
        site.add_objects(blob)
        site.maybe_transmit()
        far, __ = gaussian_blobs([60], np.asarray([[25.0, 25.0]]), 0.8, seed=2)
        site.add_objects(far)
        assert site.maybe_transmit() is not None
        assert site.n_transmissions == 2

    def test_retransmit_after_mass_deletion(self, blob):
        site = self._site()
        ids = site.add_objects(blob)
        far, __ = gaussian_blobs([60], np.asarray([[25.0, 25.0]]), 0.8, seed=2)
        site.add_objects(far)
        site.maybe_transmit()
        for i in ids:  # the first cluster disappears entirely
            site.remove_object(i)
        report = site.drift_since_transmission()
        assert report.cluster_count_delta >= 1
        assert site.maybe_transmit() is not None

    def test_current_model_is_valid_rep_scor(self, blob):
        site = self._site()
        site.add_objects(blob)
        model = site.current_model()
        assert model.scheme == "rep_scor"
        assert len(model) >= 1
        assert model.n_objects == blob.shape[0]

    def test_counts_track_state(self, blob):
        site = self._site()
        ids = site.add_objects(blob)
        assert site.n_objects == blob.shape[0]
        assert site.n_local_clusters == 1
        site.remove_object(ids[0])
        assert site.n_objects == blob.shape[0] - 1

    def test_model_interoperates_with_server(self, blob):
        """The incremental site's model plugs into the normal server."""
        from repro.distributed.server import CentralServer

        site = self._site()
        site.add_objects(blob)
        server = CentralServer()
        server.receive_local_model(site.maybe_transmit())
        global_model = server.build()
        assert global_model.n_global_clusters >= 1
