"""Tests for the multi-round streaming scenario."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.generators import gaussian_blobs
from repro.distributed.scenario import StreamingScenario


def _arrivals(n_sites, centers, count=25, seed=0):
    rng = np.random.default_rng(seed)
    out = []
    for __ in range(n_sites):
        points, __labels = gaussian_blobs(
            [count] * len(centers), np.asarray(centers), 0.8, seed=rng
        )
        out.append(points)
    return out


class TestValidation:
    def test_rejects_zero_sites(self):
        with pytest.raises(ValueError, match="n_sites"):
            StreamingScenario(0, eps_local=1.0, min_pts_local=4)

    def test_rejects_wrong_arrival_count(self):
        scenario = StreamingScenario(2, eps_local=1.0, min_pts_local=4)
        with pytest.raises(ValueError, match="arrival"):
            scenario.run_round([np.zeros((1, 2))])

    def test_rejects_wrong_departure_count(self):
        scenario = StreamingScenario(2, eps_local=1.0, min_pts_local=4)
        with pytest.raises(ValueError, match="departure"):
            scenario.run_round(
                [np.zeros((0, 2)), np.zeros((0, 2))], departures=[[]]
            )

    def test_global_model_guard(self):
        scenario = StreamingScenario(1, eps_local=1.0, min_pts_local=4)
        with pytest.raises(RuntimeError, match="no round"):
            __ = scenario.global_model


class TestRounds:
    def test_first_round_every_site_uploads(self):
        scenario = StreamingScenario(3, eps_local=1.0, min_pts_local=4)
        stats = scenario.run_round(_arrivals(3, [[0.0, 0.0]]))
        assert stats.sites_transmitted == 3
        assert stats.bytes_up > 0
        assert stats.n_global_clusters >= 1

    def test_stable_rounds_upload_nothing(self):
        scenario = StreamingScenario(3, eps_local=1.0, min_pts_local=4)
        scenario.run_round(_arrivals(3, [[0.0, 0.0]], seed=1))
        stats = scenario.run_round(_arrivals(3, [[0.0, 0.0]], seed=2))
        assert stats.sites_transmitted == 0
        assert stats.bytes_up == 0

    def test_new_region_triggers_uploads(self):
        scenario = StreamingScenario(2, eps_local=1.0, min_pts_local=4)
        scenario.run_round(_arrivals(2, [[0.0, 0.0]], seed=1))
        stats = scenario.run_round(_arrivals(2, [[30.0, 30.0]], seed=2))
        assert stats.sites_transmitted == 2
        assert stats.n_global_clusters >= 2

    def test_departures_processed(self):
        scenario = StreamingScenario(1, eps_local=1.0, min_pts_local=4)
        arrivals = _arrivals(1, [[0.0, 0.0]], count=30)
        scenario.run_round(arrivals)
        stats = scenario.run_round(
            [np.empty((0, 2))], departures=[[0, 1, 2]]
        )
        assert stats.departures == 3
        assert scenario.sites[0].n_objects == 27

    def test_history_accumulates(self):
        scenario = StreamingScenario(1, eps_local=1.0, min_pts_local=4)
        for i in range(3):
            scenario.run_round(_arrivals(1, [[0.0, 0.0]], seed=i))
        assert [s.round_index for s in scenario.history] == [0, 1, 2]

    def test_lazy_cheaper_than_eager(self):
        scenario = StreamingScenario(2, eps_local=1.0, min_pts_local=4)
        for i in range(4):
            scenario.run_round(_arrivals(2, [[0.0, 0.0]], seed=i))
        assert scenario.total_bytes_up() < scenario.eager_bytes_up()

    def test_default_eps_global_is_twice_local(self):
        scenario = StreamingScenario(1, eps_local=1.5, min_pts_local=4)
        assert scenario.eps_global == 3.0

    def test_global_model_merges_across_sites(self):
        """Two sites see the same hotspot: one global cluster."""
        scenario = StreamingScenario(2, eps_local=1.0, min_pts_local=4)
        stats = scenario.run_round(_arrivals(2, [[5.0, 5.0]], seed=3))
        assert stats.n_global_clusters == 1
        assert stats.n_representatives >= 2  # at least one rep per site


class TestScenarioTransport:
    def _scenario(self, plan, **policy_kwargs):
        from repro.distributed.network import SimulatedNetwork
        from repro.faults.transport import ResilientTransport, TransportPolicy

        network = SimulatedNetwork()
        policy = TransportPolicy(**policy_kwargs) if policy_kwargs else None
        return StreamingScenario(
            2,
            eps_local=1.0,
            min_pts_local=4,
            network=network,
            transport=ResilientTransport(network, plan, policy),
        )

    def test_rejects_transport_on_foreign_network(self):
        from repro.distributed.network import SimulatedNetwork
        from repro.faults.plan import FaultPlan
        from repro.faults.transport import ResilientTransport

        with pytest.raises(ValueError, match="network"):
            StreamingScenario(
                2,
                eps_local=1.0,
                min_pts_local=4,
                transport=ResilientTransport(SimulatedNetwork(), FaultPlan.none()),
            )

    def test_clean_transport_matches_plain_rounds(self):
        from repro.faults.plan import FaultPlan

        scenario = self._scenario(FaultPlan.none())
        stats = scenario.run_round(_arrivals(2, [[0.0, 0.0]]))
        assert stats.sites_transmitted == 2
        assert stats.sites_failed == 0
        assert stats.bytes_up > 0

    def test_lost_upload_retried_next_round(self):
        """A site whose upload exhausts its retry budget is served from
        its stale model and re-transmits on the next round."""
        from repro.faults.plan import FaultPlan

        scenario = self._scenario(
            FaultPlan.lossy_links(0.995, seed=5), max_attempts=2
        )
        first = scenario.run_round(_arrivals(2, [[0.0, 0.0]]))
        assert first.sites_failed > 0
        # Failed attempts still hit the wire and were accounted.
        assert first.bytes_up > 0
        # No arrivals, no drift — yet the failed sites retransmit.
        quiet = scenario.run_round([np.zeros((0, 2)), np.zeros((0, 2))])
        assert quiet.sites_transmitted + quiet.sites_failed == first.sites_failed
