"""Tests for the §5 compression trade-off ablation and fig8 repeats."""

from __future__ import annotations

import pytest

from repro.experiments.ablations import run_compression_tradeoff
from repro.experiments.fig8 import run_fig8


class TestCompressionTradeoff:
    @pytest.fixture(scope="class")
    def table(self):
        return run_compression_tradeoff(cardinality=1_600, n_sites=3, seed=1)

    def test_five_eps_settings(self, table):
        assert len(table.rows) == 5

    def test_quality_peaks_at_calibrated_eps(self, table):
        """The plateau sits around the data set's recommended Eps; the
        extremes (fragmenting / merging) score lower."""
        p2 = table.column("P^II Scor [%]")
        middle = max(p2[1:4])
        assert middle >= p2[0]
        assert middle >= p2[-1]

    def test_bytes_track_representative_share(self, table):
        shares = table.column("repr. [%]")
        byte_counts = table.column("bytes up")
        order_by_share = sorted(range(5), key=lambda i: shares[i])
        order_by_bytes = sorted(range(5), key=lambda i: byte_counts[i])
        assert order_by_share == order_by_bytes

    def test_share_reasonable(self, table):
        for share in table.column("repr. [%]"):
            assert 0 < share < 50


class TestFig8Repeats:
    def test_repeats_reported_in_note(self):
        table = run_fig8(sites=(2,), cardinality=2_000, seed=1, repeats=3)
        assert any("fastest of 3" in note for note in table.notes)

    def test_single_repeat_allowed(self):
        table = run_fig8(sites=(2,), cardinality=2_000, seed=1, repeats=1)
        assert len(table.rows) == 1
        assert table.column("speed-up")[0] > 0
