"""Hypothesis property tests for the extension subsystems."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering.dbscan import dbscan
from repro.clustering.optics import extract_dbscan_clustering, optics
from repro.core.local import build_rep_scor_model
from repro.data.distance import euclidean
from repro.data.generators import gaussian_blobs
from repro.distributed.hierarchy import condense_models
from repro.distributed.incremental_site import model_drift


def _site_models(seed: int, n_sites: int, eps: float):
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0, 30, size=(2, 2))
    models = []
    points_per_site = []
    for site_id in range(n_sites):
        pts, __ = gaussian_blobs([40, 40], centers, 1.0, seed=rng)
        points_per_site.append(pts)
        models.append(
            build_rep_scor_model(pts, eps, 4, site_id=site_id).model
        )
    return models, points_per_site


@given(
    seed=st.integers(0, 20_000),
    radius_factor=st.floats(0.3, 2.0),
)
@settings(max_examples=15, deadline=None)
def test_condensation_preserves_coverage(seed, radius_factor):
    """For ANY absorption radius, every object covered before condensation
    stays covered after — the invariant the hierarchy's quality rests on."""
    eps = 1.1
    models, points_per_site = _site_models(seed, 2, eps)
    condensed = condense_models(models, radius_factor * eps)
    assert len(condensed) <= sum(len(m) for m in models)
    for pts in points_per_site:
        for point in pts[::11]:
            before = any(
                rep.covers(point, euclidean)
                for model in models
                for rep in model.representatives
            )
            if before:
                after = any(
                    rep.covers(point, euclidean)
                    for rep in condensed.representatives
                )
                assert after


@given(seed=st.integers(0, 20_000))
@settings(max_examples=15, deadline=None)
def test_condensation_monotone_in_radius(seed):
    """A larger absorption radius never keeps more representatives."""
    models, __ = _site_models(seed, 2, 1.1)
    small = condense_models(models, 0.5)
    large = condense_models(models, 2.0)
    assert len(large) <= len(small)


@given(seed=st.integers(0, 20_000))
@settings(max_examples=15, deadline=None)
def test_drift_is_zero_on_self_and_symmetric(seed):
    models, __ = _site_models(seed, 1, 1.1)
    model = models[0]
    assert model_drift(model, model).drift == 0.0
    other = condense_models([model], 1.1)
    forward = model_drift(model, other)
    backward = model_drift(other, model)
    assert forward.uncovered_fraction == backward.uncovered_fraction


@given(
    seed=st.integers(0, 20_000),
    cut_factor=st.floats(0.3, 1.0),
)
@settings(max_examples=15, deadline=None)
def test_optics_cut_equivalent_to_dbscan(seed, cut_factor):
    """Any OPTICS cut at eps' <= eps matches DBSCAN(eps') as a partition
    of the core points, for random data and cut radii."""
    rng = np.random.default_rng(seed)
    points = np.concatenate(
        [rng.normal(0, 0.8, size=(40, 2)), rng.uniform(-5, 5, size=(30, 2))]
    )
    eps = 1.5
    cut = cut_factor * eps
    ordering = optics(points, eps, 4)
    extracted = extract_dbscan_clustering(ordering, cut)
    reference = dbscan(points, cut, 4)
    core = reference.core_mask
    mapping: dict[int, int] = {}
    reverse: dict[int, int] = {}
    for a, b in zip(extracted[core], reference.labels[core]):
        assert a >= 0 and b >= 0
        assert mapping.setdefault(int(a), int(b)) == int(b)
        assert reverse.setdefault(int(b), int(a)) == int(a)
