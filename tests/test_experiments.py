"""Integration tests for the experiment harness (small-scale runs).

Each test regenerates a scaled-down version of a paper figure and asserts
the *shape* the paper reports — not absolute numbers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    density_sketch,
    run_fig6,
    run_fig7a,
    run_fig8,
    run_fig9,
    run_fig10,
    run_fig11,
    run_index_ablation,
    run_partition_ablation,
    run_transmission_ablation,
)
from repro.experiments.reporting import ExperimentTable


class TestReportingTable:
    def test_add_row_validates_width(self):
        table = ExperimentTable("t", ["a", "b"])
        with pytest.raises(ValueError, match="cells"):
            table.add_row(1)

    def test_text_and_markdown_render(self):
        table = ExperimentTable("Title", ["x", "y"])
        table.add_row(1, 2.5)
        table.add_note("a note")
        text = table.to_text()
        assert "Title" in text and "2.50" in text and "a note" in text
        md = table.to_markdown()
        assert md.count("|") >= 8

    def test_column_accessor(self):
        table = ExperimentTable("t", ["a", "b"])
        table.add_row(1, 10)
        table.add_row(2, 20)
        assert table.column("b") == [10, 20]


class TestFig6:
    def test_table_covers_all_datasets(self):
        table, sketches = run_fig6(sketch=False)
        assert table.column("dataset") == ["A", "B", "C"]
        assert sketches == {}
        ns = table.column("objects")
        assert ns == [8700, 4000, 1021]

    def test_density_sketch_dimensions(self, rng):
        points = rng.normal(size=(200, 2))
        sketch = density_sketch(points, width=30, height=10)
        lines = sketch.split("\n")
        assert len(lines) == 10
        assert all(len(line) == 30 for line in lines)

    def test_density_sketch_rejects_wrong_shape(self, rng):
        with pytest.raises(ValueError, match="\\(n, 2\\)"):
            density_sketch(rng.normal(size=(5, 3)))


class TestFig7:
    def test_speedup_grows_with_cardinality(self):
        table = run_fig7a(cardinalities=(2000, 8000), seed=1)
        speedups = table.column("speed-up Scor")
        assert len(speedups) == 2
        assert speedups[1] > speedups[0] * 0.8  # monotone modulo jitter
        assert speedups[1] > 1.0  # DBDC wins at the larger size


class TestFig8:
    def test_speedup_positive_and_growing(self):
        table = run_fig8(sites=(2, 8), cardinality=8000, seed=1)
        speedups = table.column("speed-up")
        assert all(s > 0 for s in speedups)
        assert speedups[-1] > speedups[0] * 0.7


class TestFig9:
    @pytest.fixture(scope="class")
    def table(self):
        return run_fig9(
            factors=(0.5, 2.0, 10.0), cardinality=3000, n_sites=3, seed=2
        )

    def test_p2_peaks_at_factor_two(self, table):
        p2 = table.column("P^II Scor [%]")
        assert p2[1] > p2[0]  # 2.0 beats 0.5 (too small)
        assert p2[1] > p2[2]  # 2.0 beats 10.0 (too large)

    def test_p1_flat_in_the_relevant_range(self, table):
        """The paper's point: P^I barely reacts to Eps_global."""
        p1 = table.column("P^I Scor [%]")
        assert max(p1) - min(p1) < 15.0


class TestFig10:
    def test_columns_and_decline(self):
        table = run_fig10(sites=(2, 10), cardinality=4000, seed=2)
        assert table.column("sites") == [2, 10]
        p2 = table.column("P^II Scor")
        assert p2[0] > 80.0
        # Representative share stays a small fraction.
        for share in table.column("local repr. [%]"):
            assert 0 < share < 50


class TestFig11:
    def test_all_datasets_reported(self):
        table = run_fig11(names=("C",), n_sites=2, seed=0)
        assert table.column("dataset") == ["C"]
        assert table.column("P^II Scor")[0] > 80.0


class TestAblations:
    def test_index_ablation_identical_clusterings(self):
        table = run_index_ablation(cardinality=1500, seed=1)
        clusters = table.column("clusters")
        assert len(set(clusters)) == 1  # all indexes agree

    def test_partition_ablation_uniform_best_or_close(self):
        table = run_partition_ablation(cardinality=2000, n_sites=3, seed=1)
        strategies = table.column("strategy")
        p2 = dict(zip(strategies, table.column("P^II [%]")))
        assert p2["uniform_random"] >= p2["spatial_blocks"] - 5.0

    def test_transmission_far_below_raw(self):
        table = run_transmission_ablation(cardinality=2000, n_sites=3, seed=1)
        for ratio in table.column("volume ratio [%]"):
            assert ratio < 60.0
