"""Integration tests: the live socket service against the in-process oracle.

The load-bearing guarantee (ISSUE 7): a 4-site workload run over real
sockets — concurrent uploads, await-global, relabel — produces labels
**bit-identical** to the same seed/config run through
``SimulatedNetwork``/``DistributedRunner``.  Around it: the admission
gate quarantines corrupt frames instead of dropping connections, the
fault layer's ``ResilientTransport`` runs unchanged over the socket
transport, every protocol violation surfaces as a typed error, and the
HTTP endpoint serves strict-parseable OpenMetrics.
"""

from __future__ import annotations

import threading
import urllib.request

import numpy as np
import pytest

from repro.data.datasets import load_dataset
from repro.distributed.partition import partition, split
from repro.distributed.runner import DistributedRunConfig, DistributedRunner
from repro.faults import FaultPlan, ResilientTransport
from repro.obs.openmetrics import parse_openmetrics
from repro.service import (
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ServiceHandle,
    SocketTransport,
    Transport,
    wire,
)
from repro.service.worker import run_site_worker

N_SITES = 4
SEED = 0


@pytest.fixture(scope="module")
def workload():
    """Data set + the in-process reference labels (the oracle)."""
    data = load_dataset("A", cardinality=600, seed=SEED)
    config = DistributedRunConfig(
        eps_local=data.eps_local, min_pts_local=data.min_pts, seed=SEED
    )
    report = DistributedRunner(config).run(data.points, N_SITES)
    assignment = partition(
        data.points, N_SITES, config.partition_strategy, SEED
    )
    return {
        "data": data,
        "assignment": assignment,
        "parts": split(data.points, assignment),
        "reference_labels": report.labels_in_original_order(),
        "reference_model": report.global_model,
    }


@pytest.fixture()
def service():
    handle = ServiceHandle.start(ServiceConfig(expected_sites=N_SITES))
    yield handle
    handle.stop()


def run_workers(handle, workload) -> dict:
    data = workload["data"]
    results: dict[int, object] = {}

    def work(site_id: int) -> None:
        results[site_id] = run_site_worker(
            handle.host,
            handle.port,
            site_id,
            workload["parts"][site_id],
            eps_local=data.eps_local,
            min_pts_local=data.min_pts,
        )

    threads = [
        threading.Thread(target=work, args=(site_id,))
        for site_id in range(N_SITES)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return results


class TestEndToEnd:
    def test_socket_run_is_bit_identical_to_in_process_run(
        self, service, workload
    ):
        results = run_workers(service, workload)
        assert sorted(results) == list(range(N_SITES))
        assert all(r.verdict == "admitted" for r in results.values())

        labels = np.empty(workload["data"].points.shape[0], dtype=np.intp)
        for site_id, result in results.items():
            labels[workload["assignment"] == site_id] = result.labels
        assert np.array_equal(labels, workload["reference_labels"])

    def test_label_queries_match_model_coverage(self, service, workload):
        run_workers(service, workload)
        points = workload["data"].points
        with ServiceClient(service.host, service.port) as client:
            served = client.query(points[:50])
        from repro.clustering.labels import NOISE
        from repro.core.relabel import relabel_site

        expected, __ = relabel_site(
            points[:50],
            np.full(50, NOISE, dtype=np.intp),
            workload["reference_model"],
            site_id=None,
            metric="euclidean",
        )
        assert np.array_equal(served, expected)

    def test_health_and_metrics_frames(self, service, workload):
        run_workers(service, workload)
        with ServiceClient(service.host, service.port) as client:
            health = client.health()
            assert health["sites_admitted"] == N_SITES
            assert health["model_built"] is True
            assert health["protocol_version"] == wire.PROTOCOL_VERSION
            exposition = client.metrics_text()
        families = parse_openmetrics(exposition)
        assert families  # strict parse succeeded

    def test_http_openmetrics_endpoint_strict_parses(self, service, workload):
        run_workers(service, workload)
        url = f"http://{service.host}:{service.metrics_port}/metrics"
        with urllib.request.urlopen(url, timeout=10) as response:
            body = response.read().decode("utf-8")
            content_type = response.headers["Content-Type"]
        assert "openmetrics-text" in content_type
        families = parse_openmetrics(body)
        names = set(families)
        assert any("service_connections" in name for name in names)
        assert any("server_models_admitted" in name for name in names)

    def test_http_endpoint_404s_other_paths(self, service):
        url = f"http://{service.host}:{service.metrics_port}/nope"
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(url, timeout=10)
        assert excinfo.value.code == 404


class TestAdmissionGate:
    def test_corrupt_upload_is_quarantined_not_dropped(self, workload):
        """A bit-flipped payload must take the same quarantine path the
        simulated transport takes — and the connection must survive."""
        with ServiceHandle.start(ServiceConfig()) as handle:
            model_payload = wire.encode_local_model(
                _tiny_local_model(site_id=9)
            )
            frame = bytearray(
                wire.encode_frame(
                    wire.FrameKind.LOCAL_MODEL, model_payload, site_id=9
                )
            )
            frame[-1] ^= 0xFF  # flip one payload byte: CRC now fails
            with SocketTransport(handle.host, handle.port, site_id=9) as sock:
                sock.connect()._sock.sendall(bytes(frame))
                response = sock.read_frame()
                assert response.kind == wire.FrameKind.ERROR
                status, __ = wire.decode_status(response.payload)
                assert status == "quarantined"
                # Same connection still serves requests.
                health = wire.decode_json(
                    sock.request(wire.FrameKind.HEALTH).payload
                )
            assert health["sites_quarantined"] == 1
            assert health["sites_admitted"] == 0

    def test_valid_upload_is_admitted(self):
        with ServiceHandle.start(ServiceConfig()) as handle:
            with ServiceClient(handle.host, handle.port, site_id=0) as client:
                assert client.submit(_tiny_local_model(site_id=0)) == "admitted"
                assert client.health()["sites_admitted"] == 1

    def test_query_before_any_model_is_a_typed_error(self):
        with ServiceHandle.start(ServiceConfig()) as handle:
            with ServiceClient(handle.host, handle.port) as client:
                with pytest.raises(ServiceError) as excinfo:
                    client.query(np.zeros((3, 2)))
                assert excinfo.value.status == "no_model"

    def test_await_global_times_out_with_typed_error(self):
        with ServiceHandle.start(ServiceConfig(expected_sites=2)) as handle:
            with ServiceClient(handle.host, handle.port) as client:
                with pytest.raises(ServiceError) as excinfo:
                    client.await_global_model(timeout_s=0.1)
                assert excinfo.value.status == "no_model"


class TestTransportSeam:
    def test_simulated_and_socket_transports_satisfy_the_protocol(self):
        from repro.distributed.network import SimulatedNetwork

        assert isinstance(SimulatedNetwork(), Transport)
        assert isinstance(SocketTransport("h", 1), Transport)

    def test_resilient_transport_runs_unchanged_over_sockets(self):
        """The retry/backoff/breaker layer from the simulated deployments
        delivers over a real socket with zero changes."""
        with ServiceHandle.start(ServiceConfig()) as handle:
            with SocketTransport(handle.host, handle.port, site_id=4) as sock:
                resilient = ResilientTransport(sock, FaultPlan.none())
                payload = wire.encode_local_model(_tiny_local_model(site_id=4))
                outcome = resilient.deliver(4, wire.SERVER_ID, "local_model", payload)
            assert outcome.delivered
            assert outcome.attempts == 1
            assert outcome.checksum_ok  # the shared CRC stamp verified
            assert handle.service.server.admitted_site_ids == [4]

    def test_garbage_bytes_get_a_typed_protocol_error(self):
        with ServiceHandle.start(ServiceConfig()) as handle:
            with SocketTransport(handle.host, handle.port) as sock:
                sock.connect()._sock.sendall(b"not a DBDC frame at all....")
                response = sock.read_frame()
                assert response.kind == wire.FrameKind.ERROR
                status, detail = wire.decode_status(response.payload)
                assert status == "protocol_error"
                assert "magic" in detail  # magic is checked before length

    def test_oversized_declared_payload_is_rejected(self):
        with ServiceHandle.start(
            ServiceConfig(max_frame_bytes=1024)
        ) as handle:
            huge = wire.encode_frame(wire.FrameKind.LABEL_QUERY, b"x" * 2048)
            with SocketTransport(handle.host, handle.port) as sock:
                sock.connect()._sock.sendall(huge)
                response = sock.read_frame()
            assert response.kind == wire.FrameKind.ERROR


class TestLifecycle:
    def test_graceful_shutdown_via_protocol(self):
        handle = ServiceHandle.start(ServiceConfig())
        with ServiceClient(handle.host, handle.port) as client:
            assert client.shutdown()
        handle._thread.join(10.0)
        assert not handle._thread.is_alive()

    def test_worker_against_single_site_round(self, workload):
        data = workload["data"]
        with ServiceHandle.start(ServiceConfig(expected_sites=1)) as handle:
            result = run_site_worker(
                handle.host,
                handle.port,
                0,
                data.points,
                eps_local=data.eps_local,
                min_pts_local=data.min_pts,
            )
        assert result.verdict == "admitted"
        assert result.labels.size == data.points.shape[0]
        assert result.bytes_sent > 0

    def test_serve_worker_cli_roundtrip(self, capsys):
        """The ``serve-worker`` command body against a live service."""
        from repro.service.cli import worker_main

        with ServiceHandle.start(ServiceConfig(expected_sites=1)) as handle:
            status = worker_main(
                [
                    "--port",
                    str(handle.port),
                    "--site-id",
                    "0",
                    "--sites",
                    "1",
                    "--dataset",
                    "A",
                    "--cardinality",
                    "400",
                ]
            )
        assert status == 0
        out = capsys.readouterr().out
        assert '"verdict": "admitted"' in out


def _tiny_local_model(site_id: int):
    from repro.core.models import LocalModel, Representative

    return LocalModel(
        site_id=site_id,
        representatives=[
            Representative(
                point=np.asarray([0.0, 0.0]),
                eps_range=1.0,
                site_id=site_id,
                local_cluster_id=0,
            )
        ],
        n_objects=1,
        scheme="rep_scor",
        eps_local=1.0,
        min_pts_local=1,
    )
