"""Streaming sessions over sockets vs the in-process oracle.

The load-bearing guarantee (ISSUE 8): an N-round (N >= 3) streaming
socket session — ROUND_OPEN, per-round uploads, MODEL_DELTA — produces
labels **bit-identical** to N sequential in-process incremental rounds
through :func:`~repro.distributed.streaming.run_streaming_session`.
Around it: the delta chain reconstructs exactly the model a full
AWAIT_GLOBAL fetch returns, and every round protocol violation surfaces
as a typed error (``bad_round`` / ``no_round_open`` / ``bad_delta``).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.data.datasets import load_dataset
from repro.distributed.streaming import run_streaming_session
from repro.service import (
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ServiceHandle,
    wire,
)
from repro.service.worker import run_site_worker_session

N_SITES = 2
N_ROUNDS = 3
SEED = 0


@pytest.fixture(scope="module")
def stream_workload():
    """Per-round batches + the in-process streaming oracle."""
    data = load_dataset("A", cardinality=480, seed=SEED)
    points = data.points
    chunk = points.shape[0] // N_ROUNDS
    batches = []
    for round_index in range(N_ROUNDS):
        block = points[round_index * chunk : (round_index + 1) * chunk]
        batches.append([block[i::N_SITES] for i in range(N_SITES)])
    oracle = run_streaming_session(
        batches, eps_local=data.eps_local, min_pts_local=data.min_pts
    )
    return {"data": data, "batches": batches, "oracle": oracle}


@pytest.fixture(scope="module")
def socket_session(stream_workload):
    """One N-round streaming session over real sockets, both workers
    concurrent, plus the state an operator observes afterwards."""
    data = stream_workload["data"]
    results: dict[int, object] = {}

    def work(site_id: int) -> None:
        results[site_id] = run_site_worker_session(
            handle.host,
            handle.port,
            site_id,
            [stream_workload["batches"][r][site_id] for r in range(N_ROUNDS)],
            n_sites=N_SITES,
            eps_local=data.eps_local,
            min_pts_local=data.min_pts,
        )

    with ServiceHandle.start(
        ServiceConfig(expected_sites=N_SITES, metrics_port=None)
    ) as handle:
        threads = [
            threading.Thread(target=work, args=(site_id,))
            for site_id in range(N_SITES)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        with ServiceClient(handle.host, handle.port) as client:
            health = client.health()
            full_model = client.await_global_model(timeout_s=5.0)
        gauges = handle.service.metrics.to_dict()["gauges"]
    return {
        "results": results,
        "health": health,
        "full_model": full_model,
        "gauges": gauges,
    }


class TestStreamingBitIdentity:
    def test_three_round_session_matches_in_process_rounds(
        self, stream_workload, socket_session
    ):
        """The pinned guarantee: every (round, site) label array from the
        socket session is bit-identical to the in-process oracle's."""
        oracle = stream_workload["oracle"]
        results = socket_session["results"]
        assert sorted(results) == list(range(N_SITES))
        for site_id, result in results.items():
            assert result.error == ""
            assert result.verdicts == ["admitted"] * N_ROUNDS
            assert result.n_rounds == N_ROUNDS
            assert len(result.labels) == N_ROUNDS
            for round_index in range(N_ROUNDS):
                assert np.array_equal(
                    result.labels[round_index],
                    oracle.labels[round_index][site_id],
                ), f"round {round_index}, site {site_id} labels diverge"

    def test_final_session_model_matches_oracle(
        self, stream_workload, socket_session
    ):
        oracle = stream_workload["oracle"]
        for result in socket_session["results"].values():
            model = result.model
            assert model is not None
            assert model.eps_global == oracle.model.eps_global
            assert np.array_equal(
                model.global_labels, oracle.model.global_labels
            )
            assert len(model.representatives) == len(
                oracle.model.representatives
            )
            for a, b in zip(
                model.representatives, oracle.model.representatives
            ):
                assert a.site_id == b.site_id
                assert a.local_cluster_id == b.local_cluster_id
                assert np.array_equal(a.point, b.point)

    def test_delta_chain_equals_full_fetch(self, socket_session):
        """A fresh AWAIT_GLOBAL fetch returns exactly the model the
        per-round MODEL_DELTA chain assembled client-side."""
        full = socket_session["full_model"]
        for result in socket_session["results"].values():
            assert np.array_equal(
                full.global_labels, result.model.global_labels
            )
            assert len(full.representatives) == len(
                result.model.representatives
            )

    def test_session_bookkeeping(self, stream_workload, socket_session):
        health = socket_session["health"]
        assert health["session_active"] is True
        assert health["rounds_committed"] == N_ROUNDS
        assert health["round_open"] is None
        gauges = socket_session["gauges"]
        assert gauges["service.rounds_committed"] == N_ROUNDS
        # Rounds beyond the first repair once per admitted model.
        oracle = stream_workload["oracle"]
        assert oracle.n_repairs == (N_ROUNDS - 1) * N_SITES
        assert gauges["service.model_repairs"] == oracle.n_repairs


class TestRoundProtocolErrors:
    def test_opening_the_wrong_round_is_bad_round(self):
        with ServiceHandle.start(ServiceConfig(metrics_port=None)) as handle:
            with ServiceClient(handle.host, handle.port, site_id=0) as client:
                with pytest.raises(ServiceError) as excinfo:
                    client.open_round(2)
                assert excinfo.value.status == "bad_round"

    def test_upload_outside_an_open_round_is_typed(self):
        with ServiceHandle.start(
            ServiceConfig(expected_sites=1, metrics_port=None)
        ) as handle:
            with ServiceClient(handle.host, handle.port, site_id=0) as client:
                assert client.open_round(0) == "round_open"
                # expected_sites=1: this upload auto-commits round 0.
                assert client.submit(_tiny_model(0)) == "admitted"
                with pytest.raises(ServiceError) as excinfo:
                    client.submit(_tiny_model(1))
                assert excinfo.value.status == "no_round_open"

    def test_session_cannot_retrofit_one_shot_uploads(self):
        with ServiceHandle.start(ServiceConfig(metrics_port=None)) as handle:
            with ServiceClient(handle.host, handle.port, site_id=0) as client:
                assert client.submit(_tiny_model(0)) == "admitted"
                with pytest.raises(ServiceError) as excinfo:
                    client.open_round(0)
                assert excinfo.value.status == "bad_round"

    def test_explicit_commit_closes_a_partial_round(self):
        """Without ``expected_sites`` a round only closes on an explicit
        ROUND_COMMIT — the degraded path when some sites are known lost."""
        with ServiceHandle.start(ServiceConfig(metrics_port=None)) as handle:
            with ServiceClient(handle.host, handle.port, site_id=0) as client:
                assert client.open_round(0) == "round_open"
                assert client.open_round(0) == "round_open"  # idempotent
                assert client.submit(_tiny_model(0)) == "admitted"
                with pytest.raises(ServiceError) as excinfo:
                    client.commit_round(1)
                assert excinfo.value.status == "bad_round"
                assert client.commit_round(0) == "round_committed"
                assert client.commit_round(0) == "round_committed"  # idem.
                model = client.await_model_delta(0, None, timeout_s=5.0)
                assert len(model.representatives) == 1

    def test_delta_claiming_unknown_reps_is_bad_delta(self):
        with ServiceHandle.start(
            ServiceConfig(expected_sites=1, metrics_port=None)
        ) as handle:
            with ServiceClient(handle.host, handle.port, site_id=0) as client:
                assert client.open_round(0) == "round_open"
                assert client.submit(_tiny_model(0)) == "admitted"
                with pytest.raises(ServiceError) as excinfo:
                    client.transport.request(
                        wire.FrameKind.MODEL_DELTA,
                        wire.encode_delta_request(0, 50, 1.0),
                    )
                assert excinfo.value.status == "bad_delta"

    def test_delta_for_uncommitted_round_times_out_typed(self):
        with ServiceHandle.start(ServiceConfig(metrics_port=None)) as handle:
            with ServiceClient(handle.host, handle.port, site_id=0) as client:
                with pytest.raises(ServiceError) as excinfo:
                    client.await_model_delta(0, None, timeout_s=0.1)
                assert excinfo.value.status == "no_model"


def _tiny_model(site_id: int):
    from repro.core.models import LocalModel, Representative

    return LocalModel(
        site_id=site_id,
        representatives=[
            Representative(
                point=np.asarray([0.0, 0.0]),
                eps_range=1.0,
                site_id=site_id,
                local_cluster_id=0,
            )
        ],
        n_objects=1,
        scheme="rep_scor",
        eps_local=1.0,
        min_pts_local=1,
    )
