"""Shared fixtures and reference oracles for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.labels import NOISE
from repro.data.generators import gaussian_blobs, uniform_noise


@pytest.fixture
def rng():
    """A fresh, seeded random generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_blobs():
    """Three well-separated 2-D blobs + a little noise (n=330)."""
    points, truth = gaussian_blobs(
        [100, 100, 100],
        np.asarray([[0.0, 0.0], [20.0, 0.0], [10.0, 18.0]]),
        1.0,
        seed=7,
    )
    noise = uniform_noise(30, (-10.0, 30.0), dim=2, seed=8)
    all_points = np.concatenate([points, noise])
    all_truth = np.concatenate([truth, np.full(30, NOISE, dtype=np.intp)])
    return all_points, all_truth


@pytest.fixture
def tiny_grid_points():
    """A deterministic 7-point layout with known DBSCAN structure.

    With eps=1.5, min_pts=3:
      * points 0-3 form a dense square (all core),
      * point 4 hangs off point 3 (border),
      * points 5, 6 are far away and isolated (noise).
    """
    return np.asarray(
        [
            [0.0, 0.0],
            [1.0, 0.0],
            [0.0, 1.0],
            [1.0, 1.0],
            [2.2, 1.0],
            [10.0, 10.0],
            [20.0, -5.0],
        ]
    )


def brute_force_neighbors(points: np.ndarray, i: int, eps: float) -> np.ndarray:
    """Oracle N_Eps: plain distance scan (used to check every index)."""
    diff = points - points[i]
    dist = np.sqrt((diff * diff).sum(axis=1))
    return np.flatnonzero(dist <= eps)


def partitions_equal_up_to_borders(
    labels_a: np.ndarray,
    labels_b: np.ndarray,
    core_mask: np.ndarray,
) -> bool:
    """Whether two DBSCAN labelings agree as partitions of the core points.

    DBSCAN's clusters are unique on core points; border points may be
    claimed by either adjacent cluster depending on processing order, and
    noise must match exactly.  This helper checks exactly that.
    """
    labels_a = np.asarray(labels_a)
    labels_b = np.asarray(labels_b)
    # Core points: the induced partitions must be identical.
    core_a = labels_a[core_mask]
    core_b = labels_b[core_mask]
    mapping: dict[int, int] = {}
    reverse: dict[int, int] = {}
    for a, b in zip(core_a, core_b):
        if a < 0 or b < 0:
            return False
        if mapping.setdefault(int(a), int(b)) != int(b):
            return False
        if reverse.setdefault(int(b), int(a)) != int(a):
            return False
    # Non-core points: noise on one side must be noise or border on the
    # other only if it is border-ambiguous; we require noise to match.
    noise_a = (labels_a == NOISE) & ~core_mask
    noise_b = (labels_b == NOISE) & ~core_mask
    return bool(np.array_equal(noise_a, noise_b))
