"""Tests for the noise-share and site-failure ablations."""

from __future__ import annotations

import pytest

from repro.experiments.ablations import run_noise_ablation, run_site_failure_ablation


class TestNoiseAblation:
    @pytest.fixture(scope="class")
    def table(self):
        return run_noise_ablation(cardinality=1_600, n_sites=3, seed=1)

    def test_noise_levels_swept(self, table):
        assert table.column("noise [%]") == [0.0, 5.0, 15.0, 30.0, 45.0]

    def test_quality_degrades_gracefully(self, table):
        p2 = table.column("P^II Scor")
        # Clean data scores near-perfect; heavy noise still above 70 %.
        assert p2[0] > 95.0
        assert p2[-1] > 70.0
        # Monotone trend modulo small jitter.
        assert p2[0] >= p2[-1]

    def test_both_schemes_reported(self, table):
        assert len(table.column("P^II kMeans")) == 5


class TestSiteFailureAblation:
    @pytest.fixture(scope="class")
    def table(self):
        return run_site_failure_ablation(cardinality=1_600, n_sites=8, seed=1)

    def test_failure_counts(self, table):
        assert table.column("failed sites") == [0, 1, 2, 4]

    def test_surviving_quality_stays_high(self, table):
        """Losing sites must not hurt the clustering of surviving sites."""
        surviving = table.column("P^II surviving [%]")
        assert min(surviving) > surviving[0] - 10.0
        assert surviving[0] > 85.0

    def test_overall_quality_tracks_lost_data(self, table):
        overall = table.column("P^II overall [%]")
        assert overall[0] > overall[1] > overall[3]

    def test_clusters_survive_failures(self, table):
        """Every cluster has members on all sites (uniform split), so the
        global structure survives as long as any site lives."""
        counts = table.column("global clusters")
        assert len(set(counts)) <= 2  # essentially stable
