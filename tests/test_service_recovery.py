"""Crash-restart recovery and overload protection (ISSUE 10).

The pinned guarantee: kill the server (event loop torn down, no
shutdown grace) after round ``k`` of an N-round streaming socket
session, restart it from the write-ahead journal on the same port, let
the workers reconnect and finish — and every per-round label array plus
the final global model is **bit-identical** to an uninterrupted
in-process streaming run.  Around it: epoch surfacing, idempotent
resubmission, snapshot-compaction equivalence, and the typed
``overloaded`` shed path under a query storm.
"""

from __future__ import annotations

import socket
import threading

import numpy as np
import pytest

from repro.data.datasets import load_dataset
from repro.distributed.site import ClientSite
from repro.distributed.streaming import run_streaming_session
from repro.service import ServiceClient, ServiceConfig, ServiceHandle
from repro.service.recovery_smoke import run_overload_storm
from repro.service.worker import run_site_worker_session

N_SITES = 2
N_ROUNDS = 3
SEED = 0


def _free_port() -> int:
    """A port the OS just handed out — free to bind again immediately,
    and stable across the kill/restart pair (the server must come back
    on the address the workers are retrying)."""
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _models_identical(model, oracle_model) -> bool:
    if model is None:
        return False
    if model.eps_global != oracle_model.eps_global:
        return False
    if not np.array_equal(model.global_labels, oracle_model.global_labels):
        return False
    if len(model.representatives) != len(oracle_model.representatives):
        return False
    return all(
        a.site_id == b.site_id
        and a.local_cluster_id == b.local_cluster_id
        and np.array_equal(a.point, b.point)
        for a, b in zip(model.representatives, oracle_model.representatives)
    )


@pytest.fixture(scope="module")
def stream_workload():
    """Per-round batches + the in-process streaming oracle."""
    data = load_dataset("A", cardinality=480, seed=SEED)
    points = data.points
    chunk = points.shape[0] // N_ROUNDS
    batches = []
    for round_index in range(N_ROUNDS):
        block = points[round_index * chunk : (round_index + 1) * chunk]
        batches.append([block[i::N_SITES] for i in range(N_SITES)])
    oracle = run_streaming_session(
        batches, eps_local=data.eps_local, min_pts_local=data.min_pts
    )
    return {"data": data, "batches": batches, "oracle": oracle}


def _run_crash_session(
    workload, journal_dir, *, kill_after_round=0, snapshot_bytes=4 * 1024 * 1024
):
    """An N-round session with an in-flight server kill + journal restart.

    All workers rendezvous at the end of round ``kill_after_round``
    (round committed, nothing in flight), worker 0 kills the server's
    event loop and restarts it on the same port from the same journal
    directory, and everyone resumes through the reconnect seam.
    """
    data = workload["data"]
    config = ServiceConfig(
        expected_sites=N_SITES,
        metrics_port=None,
        port=_free_port(),
        journal_dir=str(journal_dir),
        journal_snapshot_bytes=snapshot_bytes,
    )
    handles = [ServiceHandle.start(config)]
    barrier = threading.Barrier(N_SITES, timeout=60)
    restarted = threading.Event()
    hook_errors: list[BaseException] = []

    def make_hook(site_id: int):
        def hook(round_index: int, model) -> None:
            if round_index != kill_after_round:
                return
            try:
                barrier.wait()
                if site_id == 0:
                    handles[-1].kill()
                    handles.append(ServiceHandle.start(config))
                    restarted.set()
                else:
                    assert restarted.wait(60), "restart never happened"
            except BaseException as exc:
                hook_errors.append(exc)
                raise

        return hook

    results: dict[int, object] = {}

    def work(site_id: int) -> None:
        results[site_id] = run_site_worker_session(
            config.host,
            config.port,
            site_id,
            [workload["batches"][r][site_id] for r in range(N_ROUNDS)],
            n_sites=N_SITES,
            eps_local=data.eps_local,
            min_pts_local=data.min_pts,
            timeout_s=10.0,
            max_reconnects=60,
            round_hook=make_hook(site_id),
        )

    threads = [
        threading.Thread(target=work, args=(site_id,))
        for site_id in range(N_SITES)
    ]
    try:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        with ServiceClient(config.host, config.port) as client:
            health = client.health()
            full_model = client.await_global_model(timeout_s=5.0)
        gauges = handles[-1].service.metrics.to_dict()["gauges"]
    finally:
        for handle in handles:
            handle.stop()
    assert not hook_errors
    return {
        "results": results,
        "health": health,
        "full_model": full_model,
        "gauges": gauges,
    }


@pytest.fixture(scope="module")
def crash_session(stream_workload, tmp_path_factory):
    """Kill after round 0 of 3, restart from the journal, finish."""
    return _run_crash_session(
        stream_workload, tmp_path_factory.mktemp("wal-crash")
    )


class TestCrashRestartBitIdentity:
    def test_per_round_labels_match_oracle(self, stream_workload, crash_session):
        """The ISSUE's pinned acceptance: every (round, site) label
        array from the killed-and-recovered session is bit-identical to
        the uninterrupted in-process oracle."""
        oracle = stream_workload["oracle"]
        results = crash_session["results"]
        assert sorted(results) == list(range(N_SITES))
        for site_id, result in results.items():
            assert result.error == ""
            assert result.verdicts == ["admitted"] * N_ROUNDS
            for round_index in range(N_ROUNDS):
                assert np.array_equal(
                    result.labels[round_index],
                    oracle.labels[round_index][site_id],
                ), f"round {round_index}, site {site_id} labels diverge"

    def test_final_model_matches_oracle(self, stream_workload, crash_session):
        oracle = stream_workload["oracle"]
        for result in crash_session["results"].values():
            assert _models_identical(result.model, oracle.model)
        assert _models_identical(crash_session["full_model"], oracle.model)

    def test_workers_crossed_the_epoch_boundary(self, crash_session):
        """Each worker saw both server generations and survived at least
        one reconnect — the kill really severed live connections."""
        for result in crash_session["results"].values():
            assert result.epochs == [1, 2]
            assert result.reconnects >= 1

    def test_recovered_server_state(self, crash_session):
        health = crash_session["health"]
        assert health["epoch"] == 2
        assert health["journal_enabled"] is True
        # Round 0 had one admitted model per site to replay.
        assert health["recovered_models"] == N_SITES
        gauges = crash_session["gauges"]
        assert gauges["service.epoch"] == 2.0
        assert gauges["service.recovered_models"] == float(N_SITES)
        assert gauges["service.recovered_rounds"] == 1.0
        assert gauges["service.journal_records"] > 0
        assert gauges["service.journal_bytes"] > 0
        assert gauges["service.recovery_wall_seconds"] >= 0.0
        assert gauges["service.journal_truncated_bytes"] == 0.0


class TestSnapshotCompactionEquivalence:
    def test_recovery_through_snapshot_is_bit_identical(
        self, stream_workload, tmp_path_factory
    ):
        """With a tiny snapshot cap every commit compacts, so the
        restart replays snapshot + log instead of a bare log — and the
        outcome must not change by a bit."""
        session = _run_crash_session(
            stream_workload,
            tmp_path_factory.mktemp("wal-compact"),
            kill_after_round=1,
            snapshot_bytes=64,
        )
        oracle = stream_workload["oracle"]
        for site_id, result in session["results"].items():
            assert result.verdicts == ["admitted"] * N_ROUNDS
            for round_index in range(N_ROUNDS):
                assert np.array_equal(
                    result.labels[round_index],
                    oracle.labels[round_index][site_id],
                )
            assert _models_identical(result.model, oracle.model)
        assert session["gauges"]["service.journal_compactions"] >= 1.0
        # Killing after round 1 replays both committed rounds.
        assert session["health"]["recovered_models"] == 2 * N_SITES


class TestIdempotentResubmission:
    def test_duplicate_upload_reacknowledged_not_readmitted(
        self, stream_workload, tmp_path
    ):
        """A resubmission after a lost ACK (the crash window) is
        re-acknowledged ``admitted`` without double-admitting."""
        data = stream_workload["data"]
        config = ServiceConfig(
            expected_sites=N_SITES, metrics_port=None, journal_dir=str(tmp_path)
        )
        with ServiceHandle.start(config) as handle:
            site = ClientSite(
                0,
                stream_workload["batches"][0][0],
                eps_local=data.eps_local,
                min_pts_local=data.min_pts,
            )
            model = site.run_local_clustering()
            with ServiceClient(handle.host, handle.port) as client:
                assert client.open_round(0) == "round_open"
                assert client.submit(model) == "admitted"
                assert client.submit(model) == "admitted"
                assert client.server_epoch == 1
                health = client.health()
            assert health["duplicate_uploads"] == 1
            gauges = handle.service.metrics.to_dict()["gauges"]
            assert gauges["service.duplicate_uploads"] == 1.0


class TestOverloadProtection:
    def test_storm_sheds_typed_and_every_query_lands(self, stream_workload):
        """With the admission budget capped at one in-flight request, a
        concurrent query storm must shed with *typed* ``overloaded``
        replies carrying ``retry_after`` — never an untyped failure, a
        hung client, or a dropped query."""
        storm = run_overload_storm(
            points=stream_workload["data"].points[:160]
        )
        metrics = storm["metrics"]
        assert metrics["recovery.overload_typed_ok"] == 1.0
        assert metrics["recovery.overload_shed_count"] > 0
        detail = storm["detail"]
        assert detail["untyped"] == 0
        assert metrics["recovery.overload_queries_count"] == float(
            detail["expected_queries"]
        )
