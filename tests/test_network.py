"""Unit tests for the simulated network's byte/time accounting."""

from __future__ import annotations

import pytest

from repro.distributed.network import SERVER, LinkSpec, SimulatedNetwork


class TestLinkSpec:
    def test_transfer_time_formula(self):
        link = LinkSpec(bandwidth_bytes_per_s=1000.0, latency_s=0.1)
        assert link.transfer_seconds(500) == pytest.approx(0.1 + 0.5)

    def test_zero_bytes_costs_latency(self):
        link = LinkSpec(latency_s=0.05)
        assert link.transfer_seconds(0) == pytest.approx(0.05)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError, match="n_bytes"):
            LinkSpec().transfer_seconds(-1)


class TestSimulatedNetwork:
    def test_message_recorded(self):
        net = SimulatedNetwork()
        message = net.send(0, SERVER, "local_model", b"x" * 100)
        assert message.n_bytes == 100
        assert message.kind == "local_model"
        assert len(net.messages) == 1

    def test_sender_stamps_payload_crc(self):
        import zlib

        net = SimulatedNetwork()
        payload = b"model-bytes" * 7
        message = net.send(0, SERVER, "local_model", payload)
        assert message.payload_crc == zlib.crc32(payload)
        # The CRC is of the payload as *sent* — a receiver comparing it
        # against what arrived detects in-flight corruption.
        assert net.send(0, SERVER, "local_model", b"other").payload_crc != (
            message.payload_crc
        )

    def test_stats_directionality(self):
        net = SimulatedNetwork()
        net.send(0, SERVER, "local_model", b"a" * 10)
        net.send(1, SERVER, "local_model", b"b" * 20)
        net.send(SERVER, 0, "global_model", b"c" * 5)
        stats = net.stats()
        assert stats.n_messages == 3
        assert stats.bytes_upstream == 30
        assert stats.bytes_downstream == 5
        assert stats.bytes_total == 35
        assert stats.sim_seconds_total > 0

    def test_raw_data_cost(self):
        net = SimulatedNetwork(LinkSpec(bandwidth_bytes_per_s=1e6, latency_s=0.0))
        n_bytes, seconds = net.raw_data_cost(1000, 2)
        assert n_bytes == 1000 * 2 * 8
        assert seconds == pytest.approx(n_bytes / 1e6)

    def test_empty_network_stats(self):
        stats = SimulatedNetwork().stats()
        assert stats.n_messages == 0
        assert stats.bytes_total == 0

    def test_bytes_by_kind_breakdown(self):
        net = SimulatedNetwork()
        net.send(0, SERVER, "local_model", b"a" * 10)
        net.send(1, SERVER, "local_model", b"b" * 20)
        net.send(SERVER, 0, "global_model", b"c" * 5)
        stats = net.stats()
        assert stats.bytes_by_kind == {"local_model": 30, "global_model": 5}
        assert sum(stats.bytes_by_kind.values()) == stats.bytes_total

    def test_empty_network_has_no_kinds(self):
        assert SimulatedNetwork().stats().bytes_by_kind == {}

    def test_concurrent_sends_all_recorded(self):
        """send() is thread-safe: a parallel local phase must not lose
        or corrupt accounting records."""
        import threading

        net = SimulatedNetwork()
        n_threads, per_thread = 8, 200

        def upload(site_id: int) -> None:
            for __ in range(per_thread):
                net.send(site_id, SERVER, "local_model", b"x" * 10)

        threads = [
            threading.Thread(target=upload, args=(i,)) for i in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = net.stats()
        assert stats.n_messages == n_threads * per_thread
        assert stats.bytes_upstream == n_threads * per_thread * 10
        assert stats.bytes_by_kind == {"local_model": n_threads * per_thread * 10}
