"""Hypothesis property tests: vectorized relabel ≡ the reference kernel.

The vectorized kernel's contract is *bit-identical* labels and stats —
not "close", identical — across datasets, local-model schemes, metrics
and eps ranges, including tie-heavy layouts where several global
representatives cover the same object at exactly equal distance.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.global_model import build_global_model
from repro.core.local import build_local_model
from repro.core.relabel import (
    relabel_site,
    relabel_site_reference,
    resolve_relabel_kernel,
)
from repro.distributed.partition import partition, split


def _random_points(seed: int, n: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    clumped = rng.normal(0, 1.0, size=(n // 2, 2))
    scattered = rng.uniform(-8, 8, size=(n - n // 2, 2))
    return np.concatenate([clumped, scattered])


def _assert_kernels_agree(points, eps, min_pts, *, scheme, metric, n_sites):
    site_points = split(points, partition(points, n_sites, "uniform_random", 0))
    outcomes = [
        build_local_model(
            site, eps, min_pts, scheme=scheme, site_id=i, metric=metric
        )
        for i, site in enumerate(site_points)
    ]
    global_model, __ = build_global_model(
        [o.model for o in outcomes], metric=metric
    )
    for i, (site, outcome) in enumerate(zip(site_points, outcomes)):
        labels = outcome.clustering.labels
        ref_labels, ref_stats = relabel_site_reference(
            site, labels, global_model, site_id=i, metric=metric
        )
        vec_labels, vec_stats = relabel_site(
            site, labels, global_model, site_id=i, metric=metric,
            kernel="vectorized",
        )
        np.testing.assert_array_equal(vec_labels, ref_labels)
        assert vec_stats == ref_stats


@given(
    seed=st.integers(0, 100_000),
    n=st.integers(8, 120),
    eps=st.floats(0.3, 3.0),
    min_pts=st.integers(2, 5),
    scheme=st.sampled_from(["rep_scor", "rep_kmeans"]),
    n_sites=st.integers(1, 3),
)
@settings(max_examples=40, deadline=None)
def test_vectorized_matches_reference(seed, n, eps, min_pts, scheme, n_sites):
    points = _random_points(seed, n)
    _assert_kernels_agree(
        points, eps, min_pts, scheme=scheme, metric="euclidean",
        n_sites=n_sites,
    )


@given(
    seed=st.integers(0, 100_000),
    metric=st.sampled_from(
        ["euclidean", "manhattan", "chebyshev", "squared_euclidean"]
    ),
)
@settings(max_examples=20, deadline=None)
def test_vectorized_matches_reference_per_metric(seed, metric):
    points = _random_points(seed, 60)
    _assert_kernels_agree(
        points, 1.0, 3, scheme="rep_scor", metric=metric, n_sites=2
    )


@given(
    seed=st.integers(0, 100_000),
    n=st.integers(20, 120),
    grid=st.integers(2, 5),
)
@settings(max_examples=30, deadline=None)
def test_tie_heavy_integer_layout(seed, n, grid):
    """Duplicate coordinates force exact distance ties between several
    representatives per object — the tie-break (lowest representative
    index wins) must match bitwise."""
    rng = np.random.default_rng(seed)
    points = rng.integers(0, grid, size=(n, 2)).astype(float)
    _assert_kernels_agree(
        points, 1.0, 2, scheme="rep_scor", metric="euclidean", n_sites=2
    )


class TestKernelDispatch:
    def test_auto_resolves_to_vectorized_for_grid_metrics(self):
        for metric in ("euclidean", "manhattan", "chebyshev",
                       "squared_euclidean"):
            assert resolve_relabel_kernel("auto", metric) == "vectorized"

    def test_explicit_kernels_pass_through(self):
        assert resolve_relabel_kernel("reference", "euclidean") == "reference"
        assert resolve_relabel_kernel("vectorized", "euclidean") == "vectorized"

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="kernel"):
            resolve_relabel_kernel("warp", "euclidean")

    def test_relabel_site_rejects_unknown_kernel(self, rng):
        points = rng.normal(size=(10, 2))
        outcome = build_local_model(points, 1.0, 2, site_id=0)
        model, __ = build_global_model([outcome.model])
        with pytest.raises(ValueError, match="kernel"):
            relabel_site(
                points, outcome.clustering.labels, model, kernel="warp"
            )
