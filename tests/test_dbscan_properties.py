"""Hypothesis property tests: DBSCAN output always satisfies Defs 1-5."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering.dbscan import dbscan
from repro.clustering.labels import NOISE
from tests.conftest import brute_force_neighbors


def _random_points(seed: int, n: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    # Mix of clumps and scattered points exercises all point kinds.
    clumped = rng.normal(0, 1.0, size=(n // 2, 2))
    scattered = rng.uniform(-8, 8, size=(n - n // 2, 2))
    return np.concatenate([clumped, scattered])


@given(
    seed=st.integers(0, 100_000),
    n=st.integers(5, 80),
    eps=st.floats(0.2, 3.0),
    min_pts=st.integers(1, 6),
)
@settings(max_examples=60, deadline=None)
def test_dbscan_satisfies_definitions(seed, n, eps, min_pts):
    points = _random_points(seed, n)
    result = dbscan(points, eps, min_pts)

    labels = result.labels
    core = result.core_mask
    assert labels.shape == (n,)
    assert labels.min() >= NOISE  # no UNCLASSIFIED survivors

    for i in range(n):
        neighbors = brute_force_neighbors(points, i, eps)
        # Definition 1: core-object condition.
        assert bool(core[i]) == (neighbors.size >= min_pts)
        if core[i]:
            # Cores belong to a cluster and pull their core neighbors in.
            assert labels[i] >= 0
            core_neighbors = neighbors[core[neighbors]]
            assert (labels[core_neighbors] == labels[i]).all()
        elif labels[i] >= 0:
            # Border: directly density-reachable from a core of its cluster.
            core_neighbors = neighbors[core[neighbors]]
            assert (labels[core_neighbors] == labels[i]).any()
        else:
            # Noise: not density-reachable from any core object.
            assert not core[neighbors].any()


@given(seed=st.integers(0, 100_000), n=st.integers(5, 60))
@settings(max_examples=40, deadline=None)
def test_cluster_ids_contiguous_and_sized(seed, n):
    points = _random_points(seed, n)
    result = dbscan(points, 1.0, 3)
    ids = np.unique(result.labels[result.labels >= 0])
    np.testing.assert_array_equal(ids, np.arange(ids.size))
    # Every cluster contains at least one core point, hence >= min_pts
    # members in its eps-neighborhood; the cluster itself has >= 1 core.
    for cid in ids:
        assert result.core_points_of(int(cid)).size >= 1


@given(
    seed=st.integers(0, 100_000),
    eps=st.floats(0.3, 2.0),
    min_pts=st.integers(2, 5),
)
@settings(max_examples=30, deadline=None)
def test_noise_monotone_in_min_pts(seed, eps, min_pts):
    """Raising MinPts can only demote points (never create new cores)."""
    points = _random_points(seed, 50)
    low = dbscan(points, eps, min_pts)
    high = dbscan(points, eps, min_pts + 2)
    assert set(np.flatnonzero(high.core_mask)) <= set(np.flatnonzero(low.core_mask))
    assert high.n_noise >= low.n_noise


@given(seed=st.integers(0, 100_000), eps=st.floats(0.3, 2.0))
@settings(max_examples=30, deadline=None)
def test_core_points_monotone_in_eps(seed, eps):
    """Growing Eps can only promote points to core (for fixed MinPts)."""
    points = _random_points(seed, 50)
    small = dbscan(points, eps, 3)
    large = dbscan(points, eps * 1.5, 3)
    assert set(np.flatnonzero(small.core_mask)) <= set(np.flatnonzero(large.core_mask))
