"""Distributed tracing across the socket service.

One traced multi-worker streaming session (module-scoped — real
sockets, real threads) feeds most of the assertions:

* the merged document is ONE trace — schema-valid, one trace id, every
  process (server + each site) present with a clock-offset estimate;
* **attribution** — every round's wall time at every site reconciles
  with the worker's own measurements within 1%, and the phase children
  exactly partition each round span;
* **critical path** — every round names a gating site and phase, plus
  the server-side admission/repair/broadcast split;
* wire context propagation — the server's admission spans carry the
  session trace id that arrived in the frame headers;
* the Chrome export gives every remote process its own pid lane
  (named ``process site-N``);
* ``service.frame_bytes_{sent,received}`` counters keep the same
  payload-byte accounting ``SimulatedNetwork.bytes_by_kind`` does;
* with tracing off the socket path sends plain version-1 frames and the
  service records nothing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.datasets import load_dataset
from repro.distributed.network import SERVER, SimulatedNetwork
from repro.distributed.streaming import run_streaming_session
from repro.obs import MetricsRegistry, to_chrome_trace, validate_trace
from repro.service import wire
from repro.service.client import ServiceClient
from repro.service.server import ServiceConfig, ServiceHandle
from repro.service.tracing import (
    ROUND_PHASES,
    critical_path,
    format_critical_path,
    reconcile_session_trace,
    run_traced_socket_session,
)
from repro.service.transport import ServiceError, SocketTransport

N_SITES = 2
N_ROUNDS = 2
SEED = 0


@pytest.fixture(scope="module")
def session_report():
    """One traced socket session shared by the whole module."""
    return run_traced_socket_session(
        dataset="A",
        cardinality=480,
        n_sites=N_SITES,
        n_rounds=N_ROUNDS,
        seed=SEED,
    )


class TestMergedDocument:
    def test_schema_valid(self, session_report):
        assert validate_trace(session_report.doc) == []

    def test_one_trace_many_processes(self, session_report):
        processes = session_report.doc["processes"]
        expected = {"server"} | {f"site-{i}" for i in range(N_SITES)}
        assert expected <= set(processes)
        # The server anchors the merged timeline: offset exactly zero.
        assert processes["server"]["clock_offset_s"] == 0.0
        for name in expected - {"server"}:
            entry = processes[name]
            assert entry["rtt_s"] >= 0.0
            assert abs(entry["clock_offset_s"]) < 10.0  # same machine
            assert entry["n_spans"] >= 1

    def test_labels_bit_identical_with_tracing_on(self, session_report):
        assert session_report.labels_identical

    def test_every_worker_round_attributed(self, session_report):
        assert reconcile_session_trace(session_report) == []

    def test_phase_children_partition_each_round(self, session_report):
        for result in session_report.results.values():
            assert len(result.round_wall_seconds) == N_ROUNDS
            for round_index in range(N_ROUNDS):
                phases = result.round_phase_seconds[round_index]
                assert set(phases) == set(ROUND_PHASES)
                covered = sum(phases.values())
                wall = result.round_wall_seconds[round_index]
                assert covered == pytest.approx(wall, rel=1e-6)

    def test_server_spans_carry_wire_context(self, session_report):
        trace_hex = f"{session_report.trace_id:032x}"

        def admissions(spans):
            for span in spans:
                if span["name"] == "serve[local_model]":
                    yield span
                yield from admissions(span.get("children", []))

        spans = list(admissions(session_report.doc["spans"]))
        assert len(spans) == N_SITES * N_ROUNDS
        for span in spans:
            assert span["attrs"]["trace_id"] == trace_hex
            # The parent is the worker's live session span, carried in
            # the frame header — present and a real (non-zero) id.
            assert int(span["attrs"]["parent_span_id"], 16) != 0


class TestCriticalPath:
    def test_every_round_names_gating_site_and_phase(self, session_report):
        rows = critical_path(session_report.doc)
        assert [row["round"] for row in rows] == list(range(N_ROUNDS))
        for row in rows:
            assert 0 <= row["gating_site"] < N_SITES
            assert row["gating_phase"] in ROUND_PHASES
            assert row["site_wall_seconds"] > 0.0
            assert row["phase_seconds"] > 0.0
            assert row["server_repair_seconds"] > 0.0
            assert row["server_admission_seconds"] >= 0.0
            assert row["server_broadcast_seconds"] >= 0.0

    def test_report_text_names_every_round(self, session_report):
        text = format_critical_path(critical_path(session_report.doc))
        for round_index in range(N_ROUNDS):
            assert f"round {round_index}:" in text
        assert "gates at" in text


class TestChromeLanes:
    def test_every_process_gets_a_named_pid_lane(self, session_report):
        chrome = to_chrome_trace(session_report.doc)
        events = chrome["traceEvents"]
        lanes = {
            event["args"]["name"]: event["pid"]
            for event in events
            if event["ph"] == "M" and event["name"] == "process_name"
        }
        for name in ["server"] + [f"site-{i}" for i in range(N_SITES)]:
            assert f"process {name}" in lanes
        # Distinct processes, distinct pids — and none collide with the
        # reserved wall (1) / sim (2) lanes.
        pids = [lanes[f"process site-{i}"] for i in range(N_SITES)]
        pids.append(lanes["process server"])
        assert len(set(pids)) == len(pids)
        assert all(pid >= 3 for pid in pids)

    def test_site_spans_land_on_their_process_lane(self, session_report):
        chrome = to_chrome_trace(session_report.doc)
        events = chrome["traceEvents"]
        lanes = {
            event["args"]["name"]: event["pid"]
            for event in events
            if event["ph"] == "M" and event["name"] == "process_name"
        }
        round_events = [
            event
            for event in events
            if event["ph"] == "X" and event["name"] == "round"
        ]
        assert round_events
        site_pids = {lanes[f"process site-{i}"] for i in range(N_SITES)}
        assert {event["pid"] for event in round_events} <= site_pids


class TestFrameByteCounters:
    def test_reconciles_with_simulated_network_accounting(self):
        """Both backends count *payload* bytes per kind, identically."""
        data = load_dataset("A", cardinality=240, seed=SEED)
        payloads = {
            "health": b"",
            "label_query": wire.encode_points(data.points[:64]),
        }
        simulated = SimulatedNetwork()
        for kind, payload in payloads.items():
            simulated.send(0, SERVER, kind, payload)
        by_kind = simulated.stats().bytes_by_kind

        metrics = MetricsRegistry()
        with ServiceHandle.start(
            ServiceConfig(expected_sites=1, metrics_port=None)
        ) as handle:
            transport = SocketTransport(
                handle.host, handle.port, site_id=0, metrics=metrics
            )
            with transport:
                for kind, payload in payloads.items():
                    try:
                        transport.send(0, SERVER, kind, payload)
                    except ServiceError:
                        pass  # "no_model" reply: typed, bytes still counted
        for kind, payload in payloads.items():
            assert metrics.value(f"service.frame_bytes_sent[{kind}]") == (
                by_kind[kind]
            ) == len(payload)
            # And something came back, counted the same way.
        assert metrics.value("service.frame_bytes_received[health_reply]") > 0

    def test_server_counts_received_payload_bytes(self):
        metrics = MetricsRegistry()
        with ServiceHandle.start(
            ServiceConfig(expected_sites=1, metrics_port=None),
            metrics=metrics,
        ) as handle:
            with ServiceClient(handle.host, handle.port) as client:
                client.health()
            received = metrics.value("service.frame_bytes_received[health]")
            sent = metrics.value("service.frame_bytes_sent[health_reply]")
        assert received == 0.0  # HEALTH carries no payload
        assert sent > 0.0  # the JSON health document does


class TestUntracedPathUnchanged:
    def test_no_tracer_means_version1_frames(self):
        transport = SocketTransport("127.0.0.1", 1, site_id=0)
        assert transport.current_context() is None
        data = wire.encode_frame(
            wire.FrameKind.HEALTH, b"", site_id=0,
            context=transport.current_context(),
        )
        assert data[4] == wire.PROTOCOL_VERSION
        assert data == wire.encode_frame(
            wire.FrameKind.HEALTH, b"", site_id=0
        )

    def test_untraced_session_records_no_uploads(self):
        from repro.service.worker import run_site_worker_session

        data = load_dataset("A", cardinality=240, seed=SEED)
        with ServiceHandle.start(
            ServiceConfig(expected_sites=1, metrics_port=None)
        ) as handle:
            result = run_site_worker_session(
                handle.host,
                handle.port,
                0,
                [data.points],
                n_sites=1,
                eps_local=data.eps_local,
                min_pts_local=data.min_pts,
            )
            with ServiceClient(handle.host, handle.port) as client:
                health = client.health()
        assert result.error == ""
        assert health["trace_uploads"] == 0

    def test_traced_labels_match_untraced_oracle(self, session_report):
        """Tracing must be a pure observer: same model, same labels."""
        data = load_dataset("A", cardinality=480, seed=SEED)
        points = data.points
        chunk = points.shape[0] // N_ROUNDS
        batches = [
            [
                points[r * chunk : (r + 1) * chunk][i::N_SITES]
                for i in range(N_SITES)
            ]
            for r in range(N_ROUNDS)
        ]
        oracle = run_streaming_session(
            batches, eps_local=data.eps_local, min_pts_local=data.min_pts
        )
        for site_id, result in session_report.results.items():
            for round_index in range(N_ROUNDS):
                assert np.array_equal(
                    result.labels[round_index],
                    oracle.labels[round_index][site_id],
                )
