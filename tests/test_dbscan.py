"""Unit tests for DBSCAN against the paper's Definitions 1-5."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.dbscan import DBSCAN, dbscan
from repro.clustering.labels import NOISE
from tests.conftest import brute_force_neighbors


class TestParameterValidation:
    def test_rejects_nonpositive_eps(self):
        with pytest.raises(ValueError, match="eps"):
            DBSCAN(0.0, 3)

    def test_rejects_bad_min_pts(self):
        with pytest.raises(ValueError, match="min_pts"):
            DBSCAN(1.0, 0)

    def test_rejects_bad_order(self, tiny_grid_points):
        with pytest.raises(ValueError, match="permutation"):
            DBSCAN(1.5, 3).fit(tiny_grid_points, order=[0, 0, 1, 2, 3, 4, 5])


class TestTinyLayout:
    """The 7-point fixture has a fully known structure (see conftest)."""

    def test_cluster_and_noise_assignment(self, tiny_grid_points):
        result = dbscan(tiny_grid_points, 1.5, 3)
        assert result.n_clusters == 1
        assert result.labels[0] == result.labels[1] == result.labels[2] == result.labels[3]
        assert result.labels[4] == result.labels[0]  # border of the square
        assert result.labels[5] == NOISE
        assert result.labels[6] == NOISE

    def test_core_flags(self, tiny_grid_points):
        result = dbscan(tiny_grid_points, 1.5, 3)
        assert bool(result.core_mask[:4].all())
        assert not result.core_mask[4]  # border: only 2 neighbors
        assert not result.core_mask[5] and not result.core_mask[6]

    def test_members_and_core_points_of(self, tiny_grid_points):
        result = dbscan(tiny_grid_points, 1.5, 3)
        np.testing.assert_array_equal(result.members(0), [0, 1, 2, 3, 4])
        np.testing.assert_array_equal(result.core_points_of(0), [0, 1, 2, 3])

    def test_n_noise(self, tiny_grid_points):
        result = dbscan(tiny_grid_points, 1.5, 3)
        assert result.n_noise == 2


class TestDefinitions:
    """Check Definitions 1-5 directly on random data."""

    @pytest.fixture
    def run(self, rng):
        points = rng.uniform(0, 10, size=(250, 2))
        return points, dbscan(points, 0.9, 4)

    def test_core_condition_definition1(self, run):
        points, result = run
        for i in range(points.shape[0]):
            n_neighbors = brute_force_neighbors(points, i, 0.9).size
            assert bool(result.core_mask[i]) == (n_neighbors >= 4)

    def test_core_points_are_clustered(self, run):
        __, result = run
        assert (result.labels[result.core_mask] >= 0).all()

    def test_noise_has_no_core_neighbor(self, run):
        points, result = run
        for i in np.flatnonzero(result.labels == NOISE):
            neighbors = brute_force_neighbors(points, i, 0.9)
            assert not result.core_mask[neighbors].any()

    def test_border_points_have_core_neighbor_in_cluster(self, run):
        points, result = run
        borders = np.flatnonzero((result.labels >= 0) & ~result.core_mask)
        for i in borders:
            neighbors = brute_force_neighbors(points, i, 0.9)
            core_neighbors = neighbors[result.core_mask[neighbors]]
            assert core_neighbors.size > 0
            assert (result.labels[core_neighbors] == result.labels[i]).any()

    def test_maximality_core_links_stay_in_cluster(self, run):
        """Two core points within eps must share a cluster (Def. 4)."""
        points, result = run
        cores = np.flatnonzero(result.core_mask)
        for i in cores:
            neighbors = brute_force_neighbors(points, i, 0.9)
            core_neighbors = neighbors[result.core_mask[neighbors]]
            assert (result.labels[core_neighbors] == result.labels[i]).all()

    def test_connectivity_within_cluster(self, run):
        """Each cluster's cores form one connected eps-graph component."""
        points, result = run
        for cid in range(result.n_clusters):
            cores = [int(i) for i in result.core_points_of(cid)]
            if not cores:
                continue
            seen = {cores[0]}
            frontier = [cores[0]]
            core_set = set(cores)
            while frontier:
                i = frontier.pop()
                for j in brute_force_neighbors(points, i, 0.9):
                    j = int(j)
                    if j in core_set and j not in seen:
                        seen.add(j)
                        frontier.append(j)
            assert seen == core_set


class TestIndexEquivalence:
    @pytest.mark.parametrize("kind", ["brute", "grid", "kdtree", "rtree"])
    def test_all_indexes_identical_labels(self, kind, small_blobs):
        points, __ = small_blobs
        reference = dbscan(points, 1.2, 5, index_kind="brute")
        other = dbscan(points, 1.2, 5, index_kind=kind)
        np.testing.assert_array_equal(other.labels, reference.labels)
        np.testing.assert_array_equal(other.core_mask, reference.core_mask)


class TestBehaviour:
    def test_blobs_recovered(self, small_blobs):
        points, truth = small_blobs
        result = dbscan(points, 1.2, 5)
        assert result.n_clusters == 3
        # Every generated blob maps to exactly one found cluster.
        for blob in range(3):
            labels = result.labels[truth == blob]
            clustered = labels[labels >= 0]
            assert clustered.size > 90
            assert np.unique(clustered).size == 1

    def test_all_noise_when_sparse(self, rng):
        points = rng.uniform(0, 1000, size=(30, 2))
        result = dbscan(points, 0.5, 3)
        assert result.n_clusters == 0
        assert result.n_noise == 30

    def test_single_cluster_when_dense(self, rng):
        points = rng.normal(0, 0.1, size=(50, 2))
        result = dbscan(points, 1.0, 3)
        assert result.n_clusters == 1
        assert result.n_noise == 0

    def test_min_pts_one_makes_everything_core(self, rng):
        points = rng.uniform(0, 100, size=(20, 2))
        result = dbscan(points, 0.001, 1)
        assert result.core_mask.all()
        assert result.n_clusters == 20  # every point its own cluster

    def test_empty_input(self):
        result = dbscan(np.empty((0, 2)), 1.0, 3)
        assert result.labels.size == 0
        assert result.n_clusters == 0

    def test_duplicate_points_cluster_together(self):
        points = np.asarray([[0.0, 0.0]] * 10)
        result = dbscan(points, 0.5, 5)
        assert result.n_clusters == 1
        assert (result.labels == 0).all()

    def test_processing_order_changes_labels_not_partition(self, small_blobs):
        points, __ = small_blobs
        forward = dbscan(points, 1.2, 5)
        runner = DBSCAN(1.2, 5)
        backward = runner.fit(points, order=list(range(len(points)))[::-1])
        # Same number of clusters and identical core structure.
        assert forward.n_clusters == backward.n_clusters
        np.testing.assert_array_equal(forward.core_mask, backward.core_mask)
        # Core partition identical up to renaming.
        mapping = {}
        for a, b in zip(
            forward.labels[forward.core_mask], backward.labels[backward.core_mask]
        ):
            assert mapping.setdefault(int(a), int(b)) == int(b)

    def test_region_query_count_positive(self, small_blobs):
        points, __ = small_blobs
        result = dbscan(points, 1.2, 5)
        assert result.n_region_queries >= points.shape[0]


class TestObserver:
    class Recorder:
        def __init__(self):
            self.cluster_starts = []
            self.core_events = []

        def on_cluster_start(self, cluster_id, seed_index):
            self.cluster_starts.append((cluster_id, seed_index))

        def on_core_point(self, index, cluster_id, neighbors):
            self.core_events.append((index, cluster_id, np.asarray(neighbors)))

    def test_observer_sees_every_core_point_once(self, small_blobs):
        points, __ = small_blobs
        recorder = self.Recorder()
        result = dbscan(points, 1.2, 5, observer=recorder)
        seen = [idx for idx, __, __ in recorder.core_events]
        assert sorted(seen) == sorted(np.flatnonzero(result.core_mask))
        assert len(seen) == len(set(seen))

    def test_observer_cluster_ids_match_result(self, small_blobs):
        points, __ = small_blobs
        recorder = self.Recorder()
        result = dbscan(points, 1.2, 5, observer=recorder)
        for idx, cid, __ in recorder.core_events:
            assert result.labels[idx] == cid

    def test_observer_neighbors_are_n_eps(self, small_blobs):
        points, __ = small_blobs
        recorder = self.Recorder()
        dbscan(points, 1.2, 5, observer=recorder)
        for idx, __, neighbors in recorder.core_events[:10]:
            np.testing.assert_array_equal(
                np.sort(neighbors), brute_force_neighbors(points, idx, 1.2)
            )

    def test_cluster_start_per_cluster(self, small_blobs):
        points, __ = small_blobs
        recorder = self.Recorder()
        result = dbscan(points, 1.2, 5, observer=recorder)
        assert len(recorder.cluster_starts) == result.n_clusters
        assert [cid for cid, __ in recorder.cluster_starts] == list(
            range(result.n_clusters)
        )
