"""OpenMetrics exporter tests: golden file, ABNF legality, round trips."""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.obs import (
    MetricsRegistry,
    build_run_record,
    parse_openmetrics,
    render_registry,
    render_run_record,
)
from repro.obs.openmetrics import (
    LABEL_NAME_RE,
    METRIC_NAME_RE,
    OPENMETRICS_CONTENT_TYPE,
    escape_label_value,
    sanitize_label_name,
    sanitize_name,
    split_label_suffix,
)

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_openmetrics.txt"


def golden_record() -> dict:
    """A fully pinned RunRecord (no clocks, no git) for the golden test."""
    registry = MetricsRegistry()
    registry.inc("transport.bytes[local_model]", 2048)
    registry.inc("transport.bytes[global_model]", 512)
    registry.inc("transport.retries", 3)
    registry.set("runner.participating_sites", 4)
    registry.observe("index.batch_size", 1.0)
    registry.observe("index.batch_size", 3.0)
    registry.observe("index.batch_size", 100.0)
    return build_run_record(
        "bench",
        config={"cardinality": 2000, "seed": 42},
        metrics={
            "local.wall_seconds": 1.25,
            "quality.q_p2_percent": 99.125,
            "net.bytes[local_model]": 2048.0,
            "net.bytes[global_model]": 512.0,
            "chaos.q_p2_overall_percent[p=0.25]": 88.5,
            "skipped.metric": None,
        },
        metrics_registry=registry.to_dict(),
        environment={
            "git_rev": "deadbeefdeadbeefdeadbeefdeadbeefdeadbeef",
            "git_dirty": False,
            "python": "3.11.0",
            "numpy": "2.0.0",
            "cpu_count": 4,
            "platform": "TestOS-1.0",
        },
        created_utc="2026-08-06T12:00:00Z",
        run_id="20260806T120000Z-bench-00000000",
    )


class TestSanitization:
    def test_dotted_names(self):
        assert sanitize_name("local.wall_seconds") == "dbdc_local_wall_seconds"

    def test_illegal_chars_replaced(self):
        name = sanitize_name("weird name-with.chars!")
        assert METRIC_NAME_RE.match(name)

    def test_label_names(self):
        assert sanitize_label_name("p") == "p"
        assert LABEL_NAME_RE.match(sanitize_label_name("0bad label!"))

    def test_split_kind_bracket(self):
        assert split_label_suffix("transport.bytes[local_model]") == (
            "transport.bytes",
            {"kind": "local_model"},
        )

    def test_split_keyed_bracket(self):
        assert split_label_suffix("q[p=0.25]") == ("q", {"p": "0.25"})

    def test_split_plain_name(self):
        assert split_label_suffix("plain.name") == ("plain.name", {})

    def test_escaping(self):
        assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'


class TestGolden:
    def test_matches_checked_in_exposition(self):
        rendered = render_run_record(golden_record())
        assert rendered == GOLDEN_PATH.read_text(), (
            "OpenMetrics output drifted from the golden file; if the "
            "change is intentional regenerate tests/data/"
            "golden_openmetrics.txt (see the module docstring)"
        )


class TestFormatLegality:
    def test_all_names_and_labels_legal_per_abnf(self):
        families = parse_openmetrics(render_run_record(golden_record()))
        assert families
        for name, family in families.items():
            assert METRIC_NAME_RE.match(name), name
            for sample_name, labels, __ in family["samples"]:
                assert METRIC_NAME_RE.match(sample_name), sample_name
                for label in labels:
                    assert LABEL_NAME_RE.match(label), label

    def test_type_and_help_lines_present(self):
        families = parse_openmetrics(render_run_record(golden_record()))
        for name, family in families.items():
            assert family["type"] in ("gauge", "counter", "histogram"), name
            assert family["help"], name

    def test_ends_with_eof(self):
        assert render_run_record(golden_record()).endswith("# EOF\n")


class TestRoundTrip:
    def test_flat_metrics_survive(self):
        record = golden_record()
        families = parse_openmetrics(render_run_record(record))
        recovered = {}
        for family in families.values():
            for sample_name, labels, value in family["samples"]:
                if sample_name.startswith("dbdc_reg_") or sample_name.endswith(
                    "_info"
                ):
                    continue
                recovered[(sample_name, labels.get("kind"), labels.get("p"))] = (
                    value
                )
        assert recovered[("dbdc_local_wall_seconds", None, None)] == 1.25
        assert recovered[("dbdc_quality_q_p2_percent", None, None)] == 99.125
        assert recovered[("dbdc_net_bytes", "local_model", None)] == 2048.0
        assert recovered[("dbdc_net_bytes", "global_model", None)] == 512.0
        assert (
            recovered[("dbdc_chaos_q_p2_overall_percent", None, "0.25")] == 88.5
        )

    def test_provenance_in_info_labels(self):
        families = parse_openmetrics(render_run_record(golden_record()))
        ((__, labels, value),) = families["dbdc_run_info"]["samples"]
        assert value == 1
        assert labels["git_rev"].startswith("deadbeef")
        assert labels["run_id"] == "20260806T120000Z-bench-00000000"
        assert labels["command"] == "bench"

    def test_registry_histogram_buckets_cumulative(self):
        families = parse_openmetrics(render_run_record(golden_record()))
        family = families["dbdc_reg_index_batch_size"]
        assert family["type"] == "histogram"
        buckets = [
            (labels["le"], value)
            for name, labels, value in family["samples"]
            if name.endswith("_bucket")
        ]
        counts = [value for __, value in buckets]
        assert counts == sorted(counts), "buckets must be cumulative"
        assert buckets[-1][0] == "+Inf"
        assert buckets[-1][1] == 3
        total = next(
            value
            for name, __, value in family["samples"]
            if name.endswith("_count")
        )
        assert total == 3

    def test_live_registry_render_parses(self):
        registry = MetricsRegistry()
        registry.inc("dbscan.runs", 2)
        registry.observe("dbscan.clusters", 7.0)
        families = parse_openmetrics(render_registry(registry.to_dict()))
        assert families["dbdc_dbscan_runs_total"]["type"] == "counter"
        assert families["dbdc_dbscan_clusters"]["type"] == "histogram"


class TestParserStrictness:
    def test_rejects_missing_eof(self):
        with pytest.raises(ValueError, match="EOF"):
            parse_openmetrics("# TYPE x gauge\nx 1\n")

    def test_rejects_duplicate_type(self):
        text = "# TYPE x gauge\n# TYPE x gauge\nx 1\n# EOF"
        with pytest.raises(ValueError, match="duplicate"):
            parse_openmetrics(text)

    def test_rejects_undeclared_family(self):
        with pytest.raises(ValueError, match="no preceding"):
            parse_openmetrics("orphan_metric 1\n# EOF")

    def test_rejects_illegal_label_syntax(self):
        text = '# TYPE x gauge\nx{0bad="1"} 1\n# EOF'
        with pytest.raises(ValueError):
            parse_openmetrics(text)

    def test_label_values_unescape(self):
        text = '# TYPE x gauge\nx{a="q\\"w\\\\e\\nr"} 1\n# EOF'
        families = parse_openmetrics(text)
        ((__, labels, __v),) = families["x"]["samples"]
        assert labels["a"] == 'q"w\\e\nr'

    def test_accepts_openmetrics_content_type(self):
        text = "# TYPE x gauge\nx 1\n# EOF"
        families = parse_openmetrics(
            text, content_type=OPENMETRICS_CONTENT_TYPE
        )
        assert "x" in families
        # Parameter order/casing of the media type must not matter.
        families = parse_openmetrics(
            text, content_type="Application/OpenMetrics-Text; charset=utf-8"
        )
        assert "x" in families

    def test_rejects_non_openmetrics_content_type(self):
        text = "# TYPE x gauge\nx 1\n# EOF"
        with pytest.raises(ValueError, match="content"):
            parse_openmetrics(text, content_type="text/plain; version=0.0.4")
        with pytest.raises(ValueError, match="content"):
            parse_openmetrics(text, content_type="")

    def test_content_type_constant_is_versioned(self):
        assert OPENMETRICS_CONTENT_TYPE.startswith(
            "application/openmetrics-text"
        )
        assert "version=1.0.0" in OPENMETRICS_CONTENT_TYPE
        assert "charset=utf-8" in OPENMETRICS_CONTENT_TYPE


def test_golden_regeneration_helper_is_consistent():
    """The golden file was produced by exactly this call chain."""
    rendered = render_run_record(golden_record())
    # Structural sanity on top of byte equality: every non-comment line is
    # either blank or a sample with a parseable float value.
    for line in rendered.splitlines():
        if not line or line.startswith("#"):
            continue
        assert re.match(r"^\S+ \S+$|^\S+\{.*\} \S+$", line), line
