"""Tests for the distributed aggregate-query layer (§7)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.generators import gaussian_blobs
from repro.distributed.queries import ClusterAggregate, FederationQueries, SitePartial
from repro.distributed.server import CentralServer
from repro.distributed.site import ClientSite


@pytest.fixture(scope="module")
def federation():
    """Three sites over two blobs, fully relabeled."""
    points, __ = gaussian_blobs(
        [240, 240], np.asarray([[0.0, 0.0], [18.0, 0.0]]), 1.0, seed=31
    )
    rng = np.random.default_rng(0)
    assignment = rng.integers(0, 3, size=points.shape[0])
    sites = [
        ClientSite(sid, points[assignment == sid], eps_local=1.0, min_pts_local=5)
        for sid in range(3)
    ]
    server = CentralServer()
    for site in sites:
        server.receive_local_model(site.run_local_clustering())
    model = server.build()
    for site in sites:
        site.receive_global_model(model)
    return points, sites


class TestSitePartial:
    def test_from_points(self, rng):
        points = rng.normal(size=(20, 2))
        partial = SitePartial.from_points(3, points)
        assert partial.count == 20
        np.testing.assert_allclose(partial.coordinate_sum, points.sum(axis=0))
        np.testing.assert_allclose(partial.lower, points.min(axis=0))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            SitePartial.from_points(0, np.empty((0, 2)))

    def test_constant_wire_size(self, rng):
        small = SitePartial.from_points(0, rng.normal(size=(5, 2)))
        large = SitePartial.from_points(0, rng.normal(size=(5000, 2)))
        assert small.n_bytes == large.n_bytes


class TestClusterAggregate:
    def test_combine_matches_direct_computation(self, rng):
        a = rng.normal(0, 1, size=(30, 2))
        b = rng.normal(0, 1, size=(50, 2))
        aggregate = ClusterAggregate.combine(
            7,
            [SitePartial.from_points(0, a), SitePartial.from_points(1, b)],
        )
        union = np.concatenate([a, b])
        assert aggregate.count == 80
        np.testing.assert_allclose(aggregate.centroid, union.mean(axis=0))
        np.testing.assert_allclose(aggregate.std, union.std(axis=0), rtol=1e-9)
        np.testing.assert_allclose(aggregate.lower, union.min(axis=0))
        np.testing.assert_allclose(aggregate.upper, union.max(axis=0))
        assert aggregate.per_site_counts == {0: 30, 1: 50}

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="no partials"):
            ClusterAggregate.combine(1, [])


class TestFederationQueries:
    def test_global_cluster_ids(self, federation):
        __, sites = federation
        queries = FederationQueries(sites)
        assert queries.global_cluster_ids().size == 2

    def test_membership_split_across_sites(self, federation):
        __, sites = federation
        queries = FederationQueries(sites)
        gid = int(queries.global_cluster_ids()[0])
        per_site = queries.objects_of(gid)
        assert sum(v.shape[0] for v in per_site.values()) > 200
        assert all(sid in per_site for sid in (0, 1, 2))

    def test_aggregate_centroid_near_blob_center(self, federation):
        __, sites = federation
        queries = FederationQueries(sites)
        centroids = [agg.centroid for agg in queries.cluster_summary()]
        centroids.sort(key=lambda c: c[0])
        np.testing.assert_allclose(centroids[0], [0.0, 0.0], atol=0.3)
        np.testing.assert_allclose(centroids[1], [18.0, 0.0], atol=0.3)

    def test_aggregate_counts_cover_everything(self, federation):
        points, sites = federation
        queries = FederationQueries(sites)
        clustered = sum(agg.count for agg in queries.cluster_summary())
        assert clustered + queries.noise_count() == points.shape[0]

    def test_unknown_cluster_raises(self, federation):
        __, sites = federation
        queries = FederationQueries(sites)
        with pytest.raises(KeyError, match="no members"):
            queries.aggregate(999)

    def test_aggregate_traffic_far_below_raw(self, federation):
        __, sites = federation
        queries = FederationQueries(sites)
        gid = int(queries.global_cluster_ids()[0])
        traffic = queries.aggregate_traffic_bytes(gid)
        raw = sum(v.shape[0] for v in queries.objects_of(gid).values()) * 2 * 8
        assert 0 < traffic < raw / 5
