"""Property tests: trace invariants hold under arbitrary fault plans.

For any fault plan the degraded-mode runner may face, the exported trace
must stay structurally sound: spans are well-nested (children inside
their parent's window), every span ends at or after its start on every
clock it carries, and — since these runs use ``parallelism=1`` — sibling
durations sum to no more than their parent's duration.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.generators import gaussian_blobs
from repro.distributed.runner import (
    DistributedRunConfig,
    DistributedRunner,
    RoundPolicy,
)
from repro.faults import FaultPlan, LinkFaults, SiteFaults, TransportPolicy
from repro.obs import MetricsRegistry, Tracer, validate_trace

EPSILON = 1e-6


@pytest.fixture(scope="module")
def blobs():
    points, __ = gaussian_blobs(
        [60, 60], np.asarray([[0.0, 0.0], [12.0, 0.0]]), 1.0, seed=17
    )
    return points


def _check_span(span, parent):
    assert span["wall_end"] >= span["wall_start"] - EPSILON, span["name"]
    if span.get("sim_start") is not None and span.get("sim_end") is not None:
        assert span["sim_end"] >= span["sim_start"] - EPSILON, span["name"]
    if parent is not None:
        assert span["wall_start"] >= parent["wall_start"] - EPSILON, (
            f"{span['name']} starts before parent {parent['name']}"
        )
        assert span["wall_end"] <= parent["wall_end"] + EPSILON, (
            f"{span['name']} ends after parent {parent['name']}"
        )
    children = span.get("children", [])
    child_sum = sum(c["wall_end"] - c["wall_start"] for c in children)
    span_duration = span["wall_end"] - span["wall_start"]
    assert child_sum <= span_duration + EPSILON * max(1, len(children)), (
        f"{span['name']}: children sum {child_sum} > duration {span_duration}"
    )
    for child in children:
        _check_span(child, span)


@st.composite
def fault_plans(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    link = LinkFaults(
        drop_prob=draw(st.floats(min_value=0.0, max_value=0.8)),
        duplicate_prob=draw(st.floats(min_value=0.0, max_value=0.5)),
        reorder_prob=draw(st.floats(min_value=0.0, max_value=0.5)),
        truncate_prob=draw(st.floats(min_value=0.0, max_value=0.5)),
        jitter_s=draw(st.floats(min_value=0.0, max_value=0.2)),
    )
    site = SiteFaults(
        crash_before_local_prob=draw(st.floats(min_value=0.0, max_value=0.6)),
        crash_after_send_prob=draw(st.floats(min_value=0.0, max_value=0.6)),
        straggler_prob=draw(st.floats(min_value=0.0, max_value=0.6)),
    )
    return FaultPlan(seed=seed, link=link, site=site)


class TestTraceProperties:
    @settings(max_examples=12, deadline=None)
    @given(plan=fault_plans(), deadline_s=st.floats(min_value=1.0, max_value=100.0))
    def test_any_fault_plan_yields_well_nested_trace(
        self, blobs, plan, deadline_s
    ):
        report = DistributedRunner(
            DistributedRunConfig(eps_local=1.0, min_pts_local=5, seed=3),
            fault_plan=plan,
            transport_policy=TransportPolicy(max_attempts=3),
            round_policy=RoundPolicy(deadline_s=deadline_s, quorum=0.5),
            tracer=Tracer(),
            metrics=MetricsRegistry(),
        ).run(blobs, 3)
        doc = report.trace
        assert validate_trace(doc) == []
        assert len(doc["spans"]) == 1  # one run root
        for root in doc["spans"]:
            _check_span(root, None)
        # The metrics snapshot in the trace is internally consistent.
        counters = doc["metrics"]["counters"]
        if "transport.messages" in counters:
            assert counters["transport.attempts"] >= counters[
                "transport.messages"
            ] - EPSILON
            delivered = counters.get("transport.delivered", 0)
            failed = counters.get("transport.failed", 0)
            assert delivered + failed == counters["transport.messages"]
