"""Tests for the service sustained-load bench (``repro.service.bench``)."""

from __future__ import annotations

import json

import pytest

from repro.obs.regress import detect_regressions, rule_for
from repro.obs.registry import RunRegistry
from repro.service.bench import (
    format_serve_summary,
    main as serve_bench_main,
    record_serve_bench,
    run_serve_bench,
)


@pytest.fixture(scope="module")
def small_report():
    """One real (tiny) bench run shared by the assertions below."""
    return run_serve_bench(
        dataset="A",
        cardinality=500,
        n_sites=2,
        n_clients=3,
        n_queries=9,
        query_batch=64,
        seed=11,
    )


class TestBenchReport:
    def test_correctness_gates_hold(self, small_report):
        metrics = small_report["metrics"]
        assert metrics["serve.labels_identical"] == 1.0
        assert metrics["serve.scrape_roundtrip_ok"] == 1.0
        assert metrics["serve.upload_failed"] == 0.0
        assert metrics["serve.query_failed"] == 0.0

    def test_load_metrics_are_populated(self, small_report):
        metrics = small_report["metrics"]
        assert metrics["serve.queries_count"] == 9.0
        assert metrics["serve.labels_served_count"] == 9.0 * 64
        assert metrics["serve.query_throughput_rps"] > 0
        assert (
            0
            < metrics["serve.query_p50_wall_seconds"]
            <= metrics["serve.query_p95_wall_seconds"]
            <= metrics["serve.query_max_wall_seconds"]
        )
        assert metrics["serve.bytes_up"] > 0

    def test_health_document_rides_along(self, small_report):
        assert small_report["health"]["sites_admitted"] == 2
        assert small_report["health"]["model_built"] is True

    def test_report_is_json_able(self, small_report):
        json.dumps(small_report)

    def test_summary_mentions_the_gates(self, small_report):
        text = format_serve_summary(small_report)
        assert "bit-identical to simulated run: yes" in text
        assert "strict-parsed:      yes" in text


class TestRegressWiring:
    def test_gate_metrics_hit_gating_rules(self):
        # The names are chosen so the default rule table gates them:
        # identity/roundtrip at zero tolerance (survive --ignore-timing),
        # failures as "lower", throughput as timing-tagged "higher".
        assert rule_for("serve.labels_identical").direction == "higher"
        assert rule_for("serve.labels_identical").rel_threshold == 0.0
        assert not rule_for("serve.labels_identical").timing
        assert rule_for("serve.scrape_roundtrip_ok").rel_threshold == 0.0
        assert rule_for("serve.upload_failed").direction == "lower"
        assert rule_for("serve.query_throughput_rps").direction == "higher"
        assert rule_for("serve.query_throughput_rps").timing
        assert rule_for("serve.query_p95_wall_seconds").timing

    def test_identity_loss_is_a_regression_without_timing(self, small_report, tmp_path):
        record = RunRegistry(tmp_path / "runs").record(
            "serve-bench", metrics=small_report["metrics"]
        )
        broken = dict(small_report["metrics"])
        broken["serve.labels_identical"] = 0.0
        candidate = RunRegistry(tmp_path / "runs2").record(
            "serve-bench", metrics=broken
        )
        report = detect_regressions(
            [record], [candidate], include_timing=False
        )
        assert "serve.labels_identical" in report.regressions

    def test_flat_rerun_passes_regress_without_timing(self, small_report, tmp_path):
        record = RunRegistry(tmp_path / "runs").record(
            "serve-bench", metrics=small_report["metrics"]
        )
        report = detect_regressions([record], [record], include_timing=False)
        assert not report.regressions


class TestRecording:
    def test_record_lands_in_registry_with_artifact(self, small_report, tmp_path):
        root = tmp_path / "registry"
        record = record_serve_bench(dict(small_report), str(root))
        assert record["command"] == "serve-bench"
        assert record["metrics"]["serve.labels_identical"] == 1.0
        artifact = (
            root / record["artifacts"]["BENCH_serve.json"]
        )
        assert artifact.exists()
        stored = json.loads(artifact.read_text())
        assert stored["meta"]["n_sites"] == small_report["meta"]["n_sites"]

    def test_cli_main_smoke(self, tmp_path, capsys):
        status = serve_bench_main(
            [
                "--cardinality",
                "400",
                "--sites",
                "2",
                "--clients",
                "2",
                "--queries",
                "4",
                "--query-batch",
                "32",
                "--registry",
                str(tmp_path / "runs"),
            ]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "serve-bench:" in out
        assert "recorded" in out
