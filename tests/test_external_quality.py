"""Unit tests for the classical external measures (cross-checks for P^II)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.quality.external import (
    adjusted_rand_index,
    jaccard_index,
    normalized_mutual_information,
    purity,
    rand_index,
)

MEASURES = [rand_index, adjusted_rand_index, jaccard_index, normalized_mutual_information]

label_arrays = hnp.arrays(np.int64, st.integers(2, 50), elements=st.integers(-1, 5))


class TestKnownValues:
    def test_identical_partitions(self):
        labels = np.asarray([0, 0, 1, 1, 2])
        for measure in MEASURES:
            assert measure(labels, labels) == pytest.approx(1.0)
        assert purity(labels, labels) == pytest.approx(1.0)

    def test_rand_index_hand_computed(self):
        # left: {0,1},{2,3}; right: {0,1,2},{3}
        left = np.asarray([0, 0, 1, 1])
        right = np.asarray([0, 0, 0, 1])
        # pairs: (01) together/together, (23) together/apart,
        # (02),(03),(12),(13): apart-left; of those (02),(12) together-right.
        # a=1, b=1, c=2, d=2 → RI=(1+2)/6
        assert rand_index(left, right) == pytest.approx(3 / 6)

    def test_jaccard_hand_computed(self):
        left = np.asarray([0, 0, 1, 1])
        right = np.asarray([0, 0, 0, 1])
        assert jaccard_index(left, right) == pytest.approx(1 / 4)

    def test_ari_zero_for_antisymmetric_split(self):
        # A classic: one side all-in-one cluster, other side all singletons.
        left = np.zeros(6, dtype=int)
        right = np.arange(6)
        assert adjusted_rand_index(left, right) == pytest.approx(0.0, abs=1e-9)

    def test_purity_asymmetric(self):
        predicted = np.asarray([0, 0, 0, 1, 1])
        reference = np.asarray([0, 0, 1, 1, 1])
        assert purity(predicted, reference) == pytest.approx(4 / 5)

    def test_nmi_independent_labels_near_zero(self, rng):
        left = rng.integers(0, 2, size=2000)
        right = rng.integers(0, 2, size=2000)
        assert normalized_mutual_information(left, right) < 0.01


class TestNoiseConvention:
    def test_noise_objects_are_singletons(self):
        # Two clusterings agreeing except for ids, with matching noise.
        left = np.asarray([0, 0, -1, -1])
        right = np.asarray([5, 5, -1, -1])
        for measure in MEASURES:
            assert measure(left, right) == pytest.approx(1.0)

    def test_noise_vs_cluster_penalized(self):
        left = np.asarray([0, 0, 0, 0])
        right = np.asarray([-1, -1, -1, -1])
        assert rand_index(left, right) < 1.0
        assert jaccard_index(left, right) == pytest.approx(0.0)


class TestProperties:
    @given(labels=label_arrays)
    @settings(max_examples=40, deadline=None)
    def test_self_comparison_perfect(self, labels):
        for measure in MEASURES:
            assert measure(labels, labels) == pytest.approx(1.0)

    @given(left=label_arrays, data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_symmetry(self, left, data):
        right = data.draw(
            hnp.arrays(np.int64, left.size, elements=st.integers(-1, 5))
        )
        for measure in (rand_index, jaccard_index, normalized_mutual_information):
            assert measure(left, right) == pytest.approx(measure(right, left))

    @given(left=label_arrays, data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_bounds(self, left, data):
        right = data.draw(
            hnp.arrays(np.int64, left.size, elements=st.integers(-1, 5))
        )
        assert 0.0 <= rand_index(left, right) <= 1.0
        assert 0.0 <= jaccard_index(left, right) <= 1.0
        assert 0.0 <= normalized_mutual_information(left, right) <= 1.0 + 1e-9
        assert 0.0 <= purity(left, right) <= 1.0
        assert adjusted_rand_index(left, right) <= 1.0 + 1e-9

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="align"):
            rand_index(np.asarray([0]), np.asarray([0, 1]))
