"""Equivalence guard: frontier-batched DBSCAN == classic single-query DBSCAN.

The frontier expansion (``batched=True``, the default) must be
*bit-identical* to the reference one-query-per-seed loop in every
observable: labels, core mask, ``n_region_queries`` and the complete
observer event sequence.  Checked on the paper's A/B/C-style data sets and
on adversarial small layouts (exact-integer coordinates with boundary
distances, custom processing orders).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.dbscan import DBSCAN
from repro.data.datasets import load_dataset
from repro.index import build_index


class RecordingObserver:
    """Captures the full event stream, including neighbor array contents."""

    def __init__(self) -> None:
        self.events: list[tuple] = []

    def on_cluster_start(self, cluster_id: int, seed_index: int) -> None:
        self.events.append(("start", cluster_id, seed_index))

    def on_core_point(self, index, cluster_id, neighbors) -> None:
        self.events.append(("core", index, cluster_id, tuple(neighbors.tolist())))


def _run_both(points, eps, min_pts, *, index_kind="auto", order=None):
    results = []
    for batched in (False, True):
        observer = RecordingObserver()
        runner = DBSCAN(eps, min_pts, index_kind=index_kind, batched=batched)
        result = runner.fit(points, observer=observer, order=order)
        results.append((result, observer))
    return results


def _assert_identical(points, eps, min_pts, *, index_kind="auto", order=None):
    (ref, ref_obs), (bat, bat_obs) = _run_both(
        points, eps, min_pts, index_kind=index_kind, order=order
    )
    assert np.array_equal(ref.labels, bat.labels)
    assert np.array_equal(ref.core_mask, bat.core_mask)
    assert ref.n_region_queries == bat.n_region_queries
    assert ref_obs.events == bat_obs.events


@pytest.mark.parametrize("index_kind", ["brute", "grid", "kdtree"])
@pytest.mark.parametrize("name", ["A", "B", "C"])
def test_equivalence_on_paper_datasets(name, index_kind):
    data = load_dataset(name, cardinality=700)
    _assert_identical(
        data.points, data.eps_local, data.min_pts, index_kind=index_kind
    )


@pytest.mark.parametrize("index_kind", ["brute", "grid", "kdtree", "rtree", "mtree"])
def test_equivalence_exact_boundary_layout(tiny_grid_points, index_kind):
    """Integer coordinates with distances exactly equal to eps."""
    _assert_identical(tiny_grid_points, 1.5, 3, index_kind=index_kind)
    _assert_identical(tiny_grid_points, 1.0, 2, index_kind=index_kind)


def test_equivalence_on_blobs_all_parameters(small_blobs):
    points, __ = small_blobs
    for eps, min_pts in [(0.5, 3), (1.2, 5), (2.5, 10), (8.0, 2)]:
        _assert_identical(points, eps, min_pts)


def test_equivalence_with_custom_order(small_blobs):
    points, __ = small_blobs
    rng = np.random.default_rng(0)
    order = rng.permutation(points.shape[0])
    _assert_identical(points, 1.2, 5, order=list(order))


def test_equivalence_with_prebuilt_shared_index(small_blobs):
    """Both strategies reuse one prebuilt index (the DBDC site pattern)."""
    points, __ = small_blobs
    index = build_index(points, "grid", eps=1.2)
    ref = DBSCAN(1.2, 5, batched=False).fit(points, index=index)
    bat = DBSCAN(1.2, 5, batched=True).fit(points, index=index)
    assert np.array_equal(ref.labels, bat.labels)
    assert np.array_equal(ref.core_mask, bat.core_mask)
    assert ref.n_region_queries == bat.n_region_queries


@pytest.mark.parametrize("seed", range(8))
def test_equivalence_randomized(seed):
    rng = np.random.default_rng(seed)
    points = np.concatenate(
        [
            rng.normal(0, 1.0, size=(60, 2)),
            rng.uniform(-6, 6, size=(60, 2)),
            np.repeat(rng.normal(3, 0.2, size=(5, 2)), 4, axis=0),  # duplicates
        ]
    )
    eps = float(rng.uniform(0.2, 2.0))
    min_pts = int(rng.integers(1, 8))
    _assert_identical(points, eps, min_pts)


@pytest.mark.slow
@pytest.mark.parametrize("index_kind", ["brute", "grid"])
def test_equivalence_at_scale(index_kind):
    data = load_dataset("A", cardinality=5000)
    _assert_identical(
        data.points, data.eps_local, data.min_pts, index_kind=index_kind
    )
