"""Unit tests for repro.data.distance."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.data.distance import (
    Metric,
    available_metrics,
    chebyshev,
    euclidean,
    get_metric,
    manhattan,
    minkowski_metric,
    pairwise_distances,
    register_metric,
    squared_euclidean,
)

ALL_TRUE_METRICS = [euclidean, manhattan, chebyshev, minkowski_metric(3.0)]


class TestPairwiseKernels:
    def test_euclidean_known_value(self):
        assert euclidean.pairwise([0.0, 0.0], [3.0, 4.0]) == pytest.approx(5.0)

    def test_manhattan_known_value(self):
        assert manhattan.pairwise([0.0, 0.0], [3.0, 4.0]) == pytest.approx(7.0)

    def test_chebyshev_known_value(self):
        assert chebyshev.pairwise([0.0, 0.0], [3.0, 4.0]) == pytest.approx(4.0)

    def test_squared_euclidean_known_value(self):
        assert squared_euclidean.pairwise([0.0, 0.0], [3.0, 4.0]) == pytest.approx(25.0)

    def test_minkowski_p2_matches_euclidean(self):
        mink = minkowski_metric(2.0)
        p, q = np.asarray([1.0, 2.0, 3.0]), np.asarray([4.0, 6.0, 3.0])
        assert mink.pairwise(p, q) == pytest.approx(euclidean.pairwise(p, q))

    def test_minkowski_p1_matches_manhattan(self):
        mink = minkowski_metric(1.0)
        p, q = np.asarray([1.0, -2.0]), np.asarray([-3.0, 5.0])
        assert mink.pairwise(p, q) == pytest.approx(manhattan.pairwise(p, q))

    def test_minkowski_rejects_p_below_one(self):
        with pytest.raises(ValueError):
            minkowski_metric(0.5)


class TestToManyConsistency:
    @pytest.mark.parametrize("metric", ALL_TRUE_METRICS, ids=lambda m: m.name)
    def test_to_many_matches_pairwise(self, metric, rng):
        points = rng.normal(size=(40, 3))
        q = rng.normal(size=3)
        vector = metric.to_many(q, points)
        scalar = np.asarray([metric.pairwise(q, p) for p in points])
        np.testing.assert_allclose(vector, scalar, rtol=1e-12, atol=1e-12)

    def test_matrix_shape_and_values(self, rng):
        left = rng.normal(size=(5, 2))
        right = rng.normal(size=(7, 2))
        mat = euclidean.matrix(left, right)
        assert mat.shape == (5, 7)
        assert mat[2, 3] == pytest.approx(euclidean.pairwise(left[2], right[3]))


class TestMetricAxioms:
    @pytest.mark.parametrize("metric", ALL_TRUE_METRICS, ids=lambda m: m.name)
    @given(data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_symmetry_and_identity(self, metric, data):
        dim = data.draw(st.integers(1, 4))
        coords = st.floats(-100, 100, allow_nan=False)
        p = np.asarray(data.draw(st.lists(coords, min_size=dim, max_size=dim)))
        q = np.asarray(data.draw(st.lists(coords, min_size=dim, max_size=dim)))
        assert metric.pairwise(p, q) == pytest.approx(metric.pairwise(q, p))
        assert metric.pairwise(p, p) == pytest.approx(0.0, abs=1e-9)
        assert metric.pairwise(p, q) >= 0.0

    @pytest.mark.parametrize("metric", ALL_TRUE_METRICS, ids=lambda m: m.name)
    @given(
        arr=hnp.arrays(
            float,
            (3, 3),
            elements=st.floats(-50, 50, allow_nan=False, allow_infinity=False),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_triangle_inequality(self, metric, arr):
        p, q, r = arr
        d_pq = metric.pairwise(p, q)
        d_pr = metric.pairwise(p, r)
        d_rq = metric.pairwise(r, q)
        assert d_pq <= d_pr + d_rq + 1e-9


class TestRegistry:
    def test_lookup_by_name(self):
        assert get_metric("euclidean") is euclidean
        assert get_metric("cityblock") is manhattan
        assert get_metric("linf") is chebyshev

    def test_lookup_passthrough(self):
        assert get_metric(euclidean) is euclidean

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown metric"):
            get_metric("no-such-metric")

    def test_register_metric_with_alias(self):
        custom = Metric("custom-test", euclidean.pairwise, euclidean.to_many)
        register_metric(custom, "custom-alias")
        assert get_metric("custom-test") is custom
        assert get_metric("custom-alias") is custom

    def test_available_metrics_sorted(self):
        names = available_metrics()
        assert names == sorted(names)
        assert "euclidean" in names


class TestPairwiseDistances:
    def test_symmetric_zero_diagonal(self, rng):
        points = rng.normal(size=(10, 2))
        mat = pairwise_distances(points)
        np.testing.assert_allclose(mat, mat.T)
        np.testing.assert_allclose(np.diag(mat), 0.0, atol=1e-12)

    def test_accepts_metric_name(self, rng):
        points = rng.normal(size=(6, 2))
        m1 = pairwise_distances(points, "manhattan")
        m2 = manhattan.matrix(points, points)
        np.testing.assert_allclose(m1, m2)
