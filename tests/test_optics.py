"""Unit tests for OPTICS and its DBSCAN-equivalent extraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.dbscan import dbscan
from repro.clustering.labels import NOISE
from repro.clustering.optics import extract_dbscan_clustering, optics


class TestValidation:
    def test_rejects_bad_eps(self, rng):
        with pytest.raises(ValueError, match="eps"):
            optics(rng.normal(size=(5, 2)), 0.0, 3)

    def test_rejects_bad_min_pts(self, rng):
        with pytest.raises(ValueError, match="min_pts"):
            optics(rng.normal(size=(5, 2)), 1.0, 0)

    def test_rejects_cut_above_generating_eps(self, rng):
        result = optics(rng.normal(size=(20, 2)), 1.0, 3)
        with pytest.raises(ValueError, match="exceeds"):
            extract_dbscan_clustering(result, 2.0)


class TestOrderingStructure:
    def test_ordering_is_permutation(self, small_blobs):
        points, __ = small_blobs
        result = optics(points, 2.0, 5)
        np.testing.assert_array_equal(
            np.sort(result.ordering), np.arange(points.shape[0])
        )

    def test_first_visited_has_undefined_reachability(self, small_blobs):
        points, __ = small_blobs
        result = optics(points, 2.0, 5)
        assert np.isinf(result.reachability[result.ordering[0]])

    def test_core_distance_definition(self, small_blobs):
        """Core distance = distance to the min_pts-th nearest neighbor
        (self included), or inf when the eps-neighborhood is too small."""
        points, __ = small_blobs
        eps, min_pts = 2.0, 5
        result = optics(points, eps, min_pts)
        for i in range(0, points.shape[0], 17):
            dist = np.linalg.norm(points - points[i], axis=1)
            inside = np.sort(dist[dist <= eps])
            if inside.size >= min_pts:
                assert result.core_distance[i] == pytest.approx(inside[min_pts - 1])
            else:
                assert np.isinf(result.core_distance[i])

    def test_reachability_plot_alignment(self, small_blobs):
        points, __ = small_blobs
        result = optics(points, 2.0, 5)
        plot = result.reachability_plot()
        assert plot.shape == result.ordering.shape
        assert plot[0] == result.reachability[result.ordering[0]]

    def test_valleys_in_reachability_plot(self, small_blobs):
        """Dense blobs must show up as low-reachability stretches."""
        points, __ = small_blobs
        result = optics(points, 3.0, 5)
        plot = result.reachability_plot()
        finite = plot[np.isfinite(plot)]
        # Most of the data sits inside dense blobs: the median
        # reachability is far below the generating radius.
        assert np.median(finite) < 1.0


class TestExtractDBSCAN:
    @pytest.mark.parametrize("eps_cut", [0.8, 1.2, 2.0])
    def test_extraction_matches_dbscan_partition(self, small_blobs, eps_cut):
        points, __ = small_blobs
        ordering = optics(points, 2.5, 5)
        extracted = extract_dbscan_clustering(ordering, eps_cut)
        reference = dbscan(points, eps_cut, 5)
        # Compare partitions on core points (border points are
        # order-dependent in both algorithms).
        core = reference.core_mask
        mapping: dict[int, int] = {}
        reverse: dict[int, int] = {}
        for a, b in zip(extracted[core], reference.labels[core]):
            assert a >= 0 and b >= 0
            assert mapping.setdefault(int(a), int(b)) == int(b)
            assert reverse.setdefault(int(b), int(a)) == int(a)

    def test_extraction_noise_is_dbscan_noise_superset_free(self, small_blobs):
        """OPTICS extraction marks exactly DBSCAN's non-reachable points
        as noise (up to border ambiguity): no core point is ever noise."""
        points, __ = small_blobs
        ordering = optics(points, 2.5, 5)
        extracted = extract_dbscan_clustering(ordering, 1.2)
        reference = dbscan(points, 1.2, 5)
        assert not (extracted[reference.core_mask] == NOISE).any()

    def test_cut_at_generating_eps(self, small_blobs):
        points, __ = small_blobs
        ordering = optics(points, 1.5, 5)
        extracted = extract_dbscan_clustering(ordering, 1.5)
        reference = dbscan(points, 1.5, 5)
        assert np.unique(extracted[extracted >= 0]).size == reference.n_clusters

    def test_smaller_cut_more_or_equal_noise(self, small_blobs):
        points, __ = small_blobs
        ordering = optics(points, 3.0, 5)
        loose = extract_dbscan_clustering(ordering, 2.5)
        tight = extract_dbscan_clustering(ordering, 0.6)
        assert (tight == NOISE).sum() >= (loose == NOISE).sum()
