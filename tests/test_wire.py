"""Property tests of the service wire protocol (``repro.service.wire``).

Two guarantees, fuzzed per codec:

* **round trip** — ``decode(encode(x))`` reconstructs ``x`` bit for bit
  (float64 coordinates, int ids, labels, strings);
* **typed failure** — every truncated or corrupted buffer raises a
  :class:`~repro.service.wire.WireError` subclass (never a hang, never a
  silently wrong object, never a raw ``struct.error`` escaping).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.models import GlobalModel, LocalModel, Representative
from repro.service import wire

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------

finite = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e12, max_value=1e12
)
positive = st.floats(
    allow_nan=False, allow_infinity=False, min_value=1e-9, max_value=1e9
)
int32 = st.integers(min_value=-(2**31), max_value=2**31 - 1)
uint31 = st.integers(min_value=0, max_value=2**31 - 1)
frame_kinds = st.sampled_from(list(wire.FrameKind))


@st.composite
def representatives(draw, dim: int, site_id: int | None = None):
    point = np.asarray(draw(st.lists(finite, min_size=dim, max_size=dim)))
    return Representative(
        point=point,
        eps_range=draw(positive),
        site_id=draw(int32) if site_id is None else site_id,
        local_cluster_id=draw(int32),
    )


@st.composite
def local_models(draw):
    site_id = draw(st.integers(min_value=0, max_value=2**31 - 1))
    dim = draw(st.integers(min_value=1, max_value=4))
    reps = draw(
        st.lists(representatives(dim, site_id=site_id), min_size=0, max_size=8)
    )
    return LocalModel(
        site_id=site_id,
        representatives=reps,
        n_objects=draw(st.integers(min_value=0, max_value=2**40)),
        scheme=draw(st.sampled_from(["rep_scor", "rep_kmeans", "custom-σ"])),
        eps_local=draw(positive),
        min_pts_local=draw(st.integers(min_value=0, max_value=2**31 - 1)),
    )


@st.composite
def global_models(draw):
    dim = draw(st.integers(min_value=1, max_value=4))
    reps = draw(st.lists(representatives(dim), min_size=0, max_size=8))
    labels = draw(
        st.lists(
            st.integers(min_value=0, max_value=2**40),
            min_size=len(reps),
            max_size=len(reps),
        )
    )
    return GlobalModel(
        representatives=reps,
        global_labels=np.asarray(labels, dtype=np.intp),
        eps_global=draw(positive),
        min_pts_global=draw(st.integers(min_value=1, max_value=100)),
    )


def assert_reps_equal(a: Representative, b: Representative) -> None:
    assert a.site_id == b.site_id
    assert a.local_cluster_id == b.local_cluster_id
    assert a.eps_range == b.eps_range  # exact: float64 both sides
    assert np.array_equal(a.point, b.point)


# ----------------------------------------------------------------------
# frame layer
# ----------------------------------------------------------------------


class TestFrameRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(kind=frame_kinds, site_id=int32, payload=st.binary(max_size=256))
    def test_roundtrip(self, kind, site_id, payload):
        data = wire.encode_frame(kind, payload, site_id=site_id)
        frame, consumed = wire.decode_frame(data)
        assert consumed == len(data)
        assert frame.kind == kind
        assert frame.site_id == site_id
        assert frame.payload == payload
        assert frame.crc_ok

    @settings(max_examples=30, deadline=None)
    @given(
        kind=frame_kinds,
        payload=st.binary(min_size=1, max_size=64),
        trailer=st.binary(min_size=1, max_size=32),
    )
    def test_offset_walks_concatenated_frames(self, kind, payload, trailer):
        data = wire.encode_frame(kind, payload) + wire.encode_frame(
            wire.FrameKind.ACK, trailer, site_id=3
        )
        first, offset = wire.decode_frame(data)
        second, end = wire.decode_frame(data, offset=offset)
        assert first.payload == payload
        assert second.payload == trailer
        assert second.site_id == 3
        assert end == len(data)

    @settings(max_examples=60, deadline=None)
    @given(kind=frame_kinds, payload=st.binary(max_size=128), data=st.data())
    def test_every_truncation_raises_frame_truncated(self, kind, payload, data):
        frame = wire.encode_frame(kind, payload)
        cut = data.draw(st.integers(min_value=0, max_value=len(frame) - 1))
        with pytest.raises(wire.FrameTruncated):
            wire.decode_frame(frame[:cut])

    @settings(max_examples=120, deadline=None)
    @given(kind=frame_kinds, payload=st.binary(max_size=128), data=st.data())
    def test_single_byte_corruption_is_typed_or_visible(self, kind, payload, data):
        frame = bytearray(wire.encode_frame(kind, payload, site_id=7))
        index = data.draw(st.integers(min_value=0, max_value=len(frame) - 1))
        flip = data.draw(st.integers(min_value=1, max_value=255))
        frame[index] ^= flip
        try:
            decoded, __ = wire.decode_frame(bytes(frame))
        except wire.WireError:
            return  # typed rejection is the expected outcome
        # The only survivable flips hit the unchecksummed header fields
        # (kind byte to another valid kind, or the sender site id) — the
        # payload itself is always CRC-guarded.
        assert decoded.payload == payload
        assert (decoded.kind, decoded.site_id) != (wire.FrameKind(kind), 7)

    def test_payload_cap_rejects_before_allocating(self):
        header = wire.encode_frame(wire.FrameKind.ACK, b"x" * 10)[
            : wire.HEADER_SIZE
        ]
        with pytest.raises(wire.FrameTooLarge):
            wire.decode_frame(header + b"x" * 10, max_payload=4)

    def test_verify_crc_false_reports_instead_of_raising(self):
        data = bytearray(wire.encode_frame(wire.FrameKind.LOCAL_MODEL, b"abc"))
        data[-1] ^= 0xFF  # flip a payload byte
        with pytest.raises(wire.ChecksumMismatch):
            wire.decode_frame(bytes(data))
        frame, __ = wire.decode_frame(bytes(data), verify_crc=False)
        assert not frame.crc_ok

    def test_bad_magic_version_kind_are_distinct_errors(self):
        good = wire.encode_frame(wire.FrameKind.ACK, b"")
        with pytest.raises(wire.BadMagic):
            wire.decode_frame(b"XXXX" + good[4:])
        with pytest.raises(wire.UnsupportedVersion):
            wire.decode_frame(good[:4] + b"\xff" + good[5:])
        with pytest.raises(wire.UnknownFrameKind):
            wire.decode_frame(good[:5] + b"\xf7" + good[6:])


# ----------------------------------------------------------------------
# trace context (version-2 frames)
# ----------------------------------------------------------------------

trace_ids = st.integers(min_value=0, max_value=2**128 - 1)
span_ids = st.integers(min_value=0, max_value=2**64 - 1)
flag_bytes = st.integers(min_value=0, max_value=255)


def trace_contexts():
    return st.builds(
        wire.TraceContext, trace_id=trace_ids, span_id=span_ids,
        flags=flag_bytes,
    )


class TestTraceContext:
    @settings(max_examples=80, deadline=None)
    @given(context=trace_contexts())
    def test_codec_roundtrip(self, context):
        block = wire.encode_trace_context(context)
        assert len(block) == wire.TRACE_CONTEXT_SIZE
        decoded = wire.decode_trace_context(block)
        assert decoded == context
        assert decoded.sampled == bool(context.flags & wire.TRACE_FLAG_SAMPLED)

    @settings(max_examples=60, deadline=None)
    @given(
        kind=frame_kinds,
        site_id=int32,
        payload=st.binary(max_size=256),
        context=trace_contexts(),
    )
    def test_context_frame_roundtrip(self, kind, site_id, payload, context):
        data = wire.encode_frame(
            kind, payload, site_id=site_id, context=context
        )
        frame, consumed = wire.decode_frame(data)
        assert consumed == len(data)
        assert frame.kind == kind
        assert frame.site_id == site_id
        assert frame.payload == payload
        assert frame.context == context
        assert frame.crc_ok

    @settings(max_examples=60, deadline=None)
    @given(kind=frame_kinds, payload=st.binary(max_size=256))
    def test_no_context_emits_version1_bits(self, kind, payload):
        # The untraced path must stay byte-identical to the v1 protocol:
        # context=None is not "an empty context", it is the old frame.
        plain = wire.encode_frame(kind, payload, site_id=5)
        explicit = wire.encode_frame(kind, payload, site_id=5, context=None)
        assert plain == explicit
        assert plain[4] == wire.PROTOCOL_VERSION
        frame, __ = wire.decode_frame(plain)
        assert frame.context is None

    @settings(max_examples=80, deadline=None)
    @given(
        kind=frame_kinds,
        payload=st.binary(max_size=128),
        context=trace_contexts(),
        data=st.data(),
    )
    def test_every_truncation_raises_wire_error(
        self, kind, payload, context, data
    ):
        frame = wire.encode_frame(kind, payload, context=context)
        cut = data.draw(st.integers(min_value=0, max_value=len(frame) - 1))
        with pytest.raises(wire.WireError):
            wire.decode_frame(frame[:cut])

    def test_context_survives_crc_quarantine(self):
        # The server decodes with verify_crc=False so corrupted frames
        # still carry their trace context into the quarantine verdict.
        context = wire.TraceContext(trace_id=7, span_id=9, flags=1)
        data = bytearray(
            wire.encode_frame(wire.FrameKind.LOCAL_MODEL, b"abc",
                              context=context)
        )
        data[-1] ^= 0xFF  # flip a payload byte; context block is earlier
        frame, __ = wire.decode_frame(bytes(data), verify_crc=False)
        assert not frame.crc_ok
        assert frame.context == context

    def test_bad_context_length_is_codec_error(self):
        good = wire.encode_frame(
            wire.FrameKind.ACK, b"", context=wire.TraceContext(1, 2, 1)
        )
        bad = bytearray(good)
        bad[wire.HEADER_SIZE] = 7  # ctx_len byte: not TRACE_CONTEXT_SIZE
        with pytest.raises(wire.CodecError):
            wire.decode_frame(bytes(bad))

    def test_out_of_range_ids_raise_value_error(self):
        with pytest.raises(ValueError):
            wire.encode_trace_context(wire.TraceContext(2**128, 0, 0))
        with pytest.raises(ValueError):
            wire.encode_trace_context(wire.TraceContext(0, 2**64, 0))
        with pytest.raises(ValueError):
            wire.encode_trace_context(wire.TraceContext(0, 0, 256))
        with pytest.raises(wire.CodecError):
            wire.decode_trace_context(b"\x00" * 7)


# ----------------------------------------------------------------------
# payload codecs
# ----------------------------------------------------------------------


class TestCodecRoundTrips:
    @settings(max_examples=50, deadline=None)
    @given(model=local_models())
    def test_local_model(self, model):
        decoded = wire.decode_local_model(wire.encode_local_model(model))
        assert decoded.site_id == model.site_id
        assert decoded.n_objects == model.n_objects
        assert decoded.scheme == model.scheme
        assert decoded.eps_local == model.eps_local
        assert decoded.min_pts_local == model.min_pts_local
        assert len(decoded.representatives) == len(model.representatives)
        for a, b in zip(decoded.representatives, model.representatives):
            assert_reps_equal(a, b)

    @settings(max_examples=50, deadline=None)
    @given(model=global_models())
    def test_global_model(self, model):
        decoded = wire.decode_global_model(wire.encode_global_model(model))
        assert decoded.eps_global == model.eps_global
        assert decoded.min_pts_global == model.min_pts_global
        assert np.array_equal(decoded.global_labels, model.global_labels)
        for a, b in zip(decoded.representatives, model.representatives):
            assert_reps_equal(a, b)

    @settings(max_examples=50, deadline=None)
    @given(
        rows=st.integers(min_value=0, max_value=20),
        dim=st.integers(min_value=1, max_value=5),
        data=st.data(),
    )
    def test_points(self, rows, dim, data):
        flat = data.draw(
            st.lists(finite, min_size=rows * dim, max_size=rows * dim)
        )
        points = np.asarray(flat, dtype=float).reshape(rows, dim)
        decoded = wire.decode_points(wire.encode_points(points))
        assert decoded.shape == points.shape
        assert np.array_equal(decoded, points)

    @settings(max_examples=50, deadline=None)
    @given(
        labels=st.lists(
            st.integers(min_value=-1, max_value=2**40), max_size=64
        )
    )
    def test_labels(self, labels):
        array = np.asarray(labels, dtype=np.intp)
        decoded = wire.decode_labels(wire.encode_labels(array))
        assert decoded.dtype == np.intp
        assert np.array_equal(decoded, array)

    @settings(max_examples=50, deadline=None)
    @given(timeout=st.floats(allow_nan=False, min_value=0.0, max_value=1e6))
    def test_await_global(self, timeout):
        assert wire.decode_await_global(wire.encode_await_global(timeout)) == timeout

    @settings(max_examples=40, deadline=None)
    @given(
        document=st.dictionaries(
            st.text(max_size=10),
            st.one_of(st.integers(), st.text(max_size=10), st.booleans(), st.none()),
            max_size=6,
        )
    )
    def test_json(self, document):
        assert wire.decode_json(wire.encode_json(document)) == document

    @settings(max_examples=40, deadline=None)
    @given(status=st.text(max_size=40), detail=st.text(max_size=120))
    def test_status(self, status, detail):
        assert wire.decode_status(wire.encode_status(status, detail)) == (
            status,
            detail,
        )


class TestStatusDurabilityExt:
    """The 16-byte epoch/retry-after status extension (ISSUE 10)."""

    def test_round_trip_both_fields(self):
        payload = wire.encode_status(
            "overloaded", "busy", epoch=3, retry_after_s=0.05
        )
        assert wire.decode_status_ext(payload) == (
            "overloaded",
            "busy",
            3,
            0.05,
        )

    def test_epoch_only(self):
        payload = wire.encode_status("admitted", epoch=1)
        assert wire.decode_status_ext(payload) == ("admitted", "", 1, None)

    def test_retry_after_only(self):
        payload = wire.encode_status("overloaded", retry_after_s=0.25)
        assert wire.decode_status_ext(payload) == (
            "overloaded",
            "",
            None,
            0.25,
        )

    def test_bare_payload_decodes_without_ext(self):
        payload = wire.encode_status("ok", "detail")
        assert wire.decode_status_ext(payload) == ("ok", "detail", None, None)

    def test_plain_decoder_tolerates_and_drops_ext(self):
        """Pre-durability clients keep interoperating: decode_status on
        an extended payload returns just the strings."""
        payload = wire.encode_status("admitted", "d", epoch=5, retry_after_s=0.1)
        assert wire.decode_status(payload) == ("admitted", "d")

    @pytest.mark.parametrize("extra", [1, 8, 15, 17])
    def test_wrong_trailing_byte_count_is_typed(self, extra):
        payload = wire.encode_status("ok", "d") + b"\x00" * extra
        with pytest.raises(wire.CodecError):
            wire.decode_status_ext(payload)
        with pytest.raises(wire.CodecError):
            wire.decode_status(payload)

    def test_epoch_zero_is_the_no_epoch_sentinel(self):
        payload = wire.encode_status("ok", retry_after_s=0.5)
        __, __, epoch, __ = wire.decode_status_ext(payload)
        assert epoch is None

    @settings(max_examples=40, deadline=None)
    @given(
        status=st.text(max_size=40),
        detail=st.text(max_size=120),
        epoch=st.integers(min_value=1, max_value=2**62),
        retry=st.floats(
            allow_nan=False, allow_infinity=False, min_value=0.0, max_value=60.0
        ),
    )
    def test_ext_property(self, status, detail, epoch, retry):
        payload = wire.encode_status(
            status, detail, epoch=epoch, retry_after_s=retry
        )
        got = wire.decode_status_ext(payload)
        assert got[0] == status and got[1] == detail
        assert got[2] == epoch
        assert got[3] == retry
        assert wire.decode_status(payload) == (status, detail)


class TestPeekLocalModelSite:
    @settings(max_examples=40, deadline=None)
    @given(model=local_models())
    def test_peek_matches_full_decode(self, model):
        payload = wire.encode_local_model(model)
        assert wire.peek_local_model_site(payload) == model.site_id

    def test_short_payload_returns_none(self):
        assert wire.peek_local_model_site(b"") is None
        assert wire.peek_local_model_site(b"\x01\x02") is None


# ----------------------------------------------------------------------
# streaming-session codecs (ROUND_OPEN / ROUND_COMMIT / MODEL_DELTA)
# ----------------------------------------------------------------------


class TestSessionCodecs:
    @settings(max_examples=50, deadline=None)
    @given(round_index=int32)
    def test_round_open_and_commit(self, round_index):
        assert (
            wire.decode_round_open(wire.encode_round_open(round_index))
            == round_index
        )
        assert (
            wire.decode_round_commit(wire.encode_round_commit(round_index))
            == round_index
        )

    @settings(max_examples=50, deadline=None)
    @given(
        round_index=int32,
        known=uint31,
        timeout=st.floats(allow_nan=False, min_value=0.0, max_value=1e6),
    )
    def test_delta_request(self, round_index, known, timeout):
        decoded = wire.decode_delta_request(
            wire.encode_delta_request(round_index, known, timeout)
        )
        assert decoded == (round_index, known, timeout)

    @settings(max_examples=50, deadline=None)
    @given(model=global_models(), data=st.data())
    def test_model_delta_reconstructs_the_model(self, model, data):
        known = data.draw(
            st.integers(min_value=0, max_value=len(model.representatives))
        )
        delta = wire.delta_from_model(model, known)
        decoded = wire.decode_model_delta(wire.encode_model_delta(delta))
        assert decoded.base_count == known
        assert decoded.eps_global == delta.eps_global
        assert decoded.min_pts_global == delta.min_pts_global
        assert np.array_equal(decoded.labels, model.global_labels)
        assert len(decoded.new_representatives) == (
            len(model.representatives) - known
        )
        for a, b in zip(
            decoded.new_representatives, model.representatives[known:]
        ):
            assert_reps_equal(a, b)
        known_model = None
        if known:
            known_model = GlobalModel(
                representatives=list(model.representatives[:known]),
                global_labels=np.asarray(
                    model.global_labels[:known], dtype=np.intp
                ),
                eps_global=model.eps_global,
                min_pts_global=model.min_pts_global,
            )
        rebuilt = wire.apply_model_delta(known_model, decoded)
        assert np.array_equal(rebuilt.global_labels, model.global_labels)
        assert rebuilt.eps_global == model.eps_global
        assert len(rebuilt.representatives) == len(model.representatives)
        for a, b in zip(rebuilt.representatives, model.representatives):
            assert_reps_equal(a, b)

    def test_known_reps_out_of_range_rejected_both_ends(self):
        model = _two_rep_model()
        with pytest.raises(ValueError):
            wire.delta_from_model(model, 3)
        with pytest.raises(ValueError):
            wire.delta_from_model(model, -1)

    def test_prefix_mismatch_is_a_typed_error(self):
        model = _two_rep_model()
        delta = wire.delta_from_model(model, 1)
        # A client holding nothing cannot apply a delta built on one rep.
        with pytest.raises(wire.CodecError):
            wire.apply_model_delta(None, delta)

    @settings(max_examples=60, deadline=None)
    @given(kind=frame_kinds, site_id=int32, payload=st.binary(max_size=256))
    def test_declared_payload_len_matches_actual_payload(
        self, kind, site_id, payload
    ):
        frame = wire.encode_frame(kind, payload, site_id=site_id)
        assert wire.declared_payload_len(frame[: wire.HEADER_SIZE]) == len(
            payload
        )

    def test_declared_payload_len_rejects_short_header(self):
        with pytest.raises(wire.FrameTruncated):
            wire.declared_payload_len(b"DBDC\x01")


def _two_rep_model() -> GlobalModel:
    return GlobalModel(
        representatives=[
            Representative(
                point=np.asarray([float(i), 0.0]),
                eps_range=1.0,
                site_id=i,
                local_cluster_id=0,
            )
            for i in range(2)
        ],
        global_labels=np.asarray([0, 1], dtype=np.intp),
        eps_global=2.0,
    )


#: (encoder-of-sample, decoder) pairs driving the shared fuzz cases.
CODEC_SAMPLES = [
    (
        "local_model",
        lambda: wire.encode_local_model(
            LocalModel(
                site_id=1,
                representatives=[
                    Representative(
                        point=np.asarray([0.5, -1.5]),
                        eps_range=0.75,
                        site_id=1,
                        local_cluster_id=0,
                    )
                ],
                n_objects=10,
                scheme="rep_scor",
                eps_local=1.2,
                min_pts_local=4,
            )
        ),
        wire.decode_local_model,
    ),
    (
        "global_model",
        lambda: wire.encode_global_model(
            GlobalModel(
                representatives=[
                    Representative(
                        point=np.asarray([2.0, 3.0]),
                        eps_range=1.5,
                        site_id=0,
                        local_cluster_id=2,
                    )
                ],
                global_labels=np.asarray([0], dtype=np.intp),
                eps_global=3.0,
            )
        ),
        wire.decode_global_model,
    ),
    ("points", lambda: wire.encode_points(np.ones((3, 2))), wire.decode_points),
    (
        "labels",
        lambda: wire.encode_labels(np.asarray([0, 1, -1], dtype=np.intp)),
        wire.decode_labels,
    ),
    (
        "await_global",
        lambda: wire.encode_await_global(5.0),
        wire.decode_await_global,
    ),
    ("status", lambda: wire.encode_status("ok", "detail"), wire.decode_status),
    ("round_open", lambda: wire.encode_round_open(3), wire.decode_round_open),
    (
        "round_commit",
        lambda: wire.encode_round_commit(3),
        wire.decode_round_commit,
    ),
    (
        "delta_request",
        lambda: wire.encode_delta_request(1, 4, 5.0),
        wire.decode_delta_request,
    ),
    (
        "model_delta",
        lambda: wire.encode_model_delta(
            wire.delta_from_model(_two_rep_model(), 1)
        ),
        wire.decode_model_delta,
    ),
]


class TestCodecFuzz:
    @pytest.mark.parametrize(
        "name,encode,decode", CODEC_SAMPLES, ids=[c[0] for c in CODEC_SAMPLES]
    )
    def test_every_truncation_raises_typed(self, name, encode, decode):
        payload = encode()
        for cut in range(len(payload)):
            with pytest.raises(wire.WireError):
                decode(payload[:cut])

    @pytest.mark.parametrize(
        "name,encode,decode", CODEC_SAMPLES, ids=[c[0] for c in CODEC_SAMPLES]
    )
    def test_trailing_garbage_raises_typed(self, name, encode, decode):
        payload = encode() + b"\x00garbage"
        with pytest.raises(wire.WireError):
            decode(payload)

    @settings(max_examples=120, deadline=None)
    @given(junk=st.binary(max_size=200))
    def test_arbitrary_bytes_never_escape_wire_errors(self, junk):
        for __, __encode, decode in CODEC_SAMPLES:
            try:
                decode(junk)
            except wire.WireError:
                pass  # the only acceptable failure mode

    def test_corrupted_representative_is_rejected_not_poisonous(self):
        # A NaN coordinate or non-positive eps_range must never survive
        # decoding — the model layer's validation runs at construction
        # and the codec wraps it in CodecError.
        model = LocalModel(
            site_id=0,
            representatives=[
                Representative(
                    point=np.asarray([1.0, 2.0]),
                    eps_range=1.0,
                    site_id=0,
                    local_cluster_id=0,
                )
            ],
            n_objects=5,
            scheme="rep_scor",
            eps_local=1.0,
            min_pts_local=3,
        )
        payload = bytearray(wire.encode_local_model(model))
        # Overwrite the eps_range float (first record field after the
        # int32 local_cluster_id) with -1.0.
        offset = len(payload) - 3 * 8 - 4 + 4
        payload[offset : offset + 8] = np.float64(-1.0).tobytes()
        with pytest.raises(wire.CodecError):
            wire.decode_local_model(bytes(payload))


class TestSharedIntegrityHelpers:
    @settings(max_examples=60, deadline=None)
    @given(payload=st.binary(max_size=256))
    def test_stamp_and_verify_agree(self, payload):
        from repro.faults.integrity import crc_matches, payload_crc32

        stamp = payload_crc32(payload)
        assert 0 <= stamp <= 0xFFFFFFFF
        assert crc_matches(payload, stamp)
        assert crc_matches(payload, stamp | (1 << 32))  # masked like zlib

    @settings(max_examples=60, deadline=None)
    @given(payload=st.binary(min_size=1, max_size=256), data=st.data())
    def test_any_bit_flip_is_caught(self, payload, data):
        from repro.faults.integrity import crc_matches, payload_crc32

        stamp = payload_crc32(payload)
        index = data.draw(st.integers(min_value=0, max_value=len(payload) - 1))
        flip = data.draw(st.integers(min_value=1, max_value=255))
        corrupted = bytearray(payload)
        corrupted[index] ^= flip
        assert not crc_matches(bytes(corrupted), stamp)

    def test_simulated_network_uses_the_shared_stamp(self):
        from repro.distributed.network import SimulatedNetwork
        from repro.faults.integrity import payload_crc32

        message = SimulatedNetwork().send(0, -1, "local_model", b"payload")
        assert message.payload_crc == payload_crc32(b"payload")
        assert message.payload_crc == wire.payload_crc32(b"payload")
