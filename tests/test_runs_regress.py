"""Regression detector tests — including the ISSUE acceptance cases:
``runs regress`` passes on an identical re-run and fails on a synthetic
2x slowdown or a Q_DBDC drop — plus hypothesis property tests.
"""

from __future__ import annotations

import copy

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    DEFAULT_RULES,
    MetricRule,
    build_run_record,
    detect_regressions,
    diff_records,
)
from repro.obs.regress import classify, metric_medians, rule_for


def _env():
    return {
        "git_rev": "deadbeef",
        "git_dirty": False,
        "python": "3.11.0",
        "numpy": "2.0.0",
        "cpu_count": 4,
        "platform": "TestOS",
    }


BASE_METRICS = {
    "local.wall_seconds": 2.0,
    "overall.wall_seconds": 5.0,
    "local.admitted_sim_seconds": 1.2,
    "quality.q_p2_percent": 97.5,
    "quality.q_p1_percent": 91.0,
    "net.bytes_total": 40960.0,
    "net.bytes[local_model]": 30720.0,
    "transport.retries": 2.0,
    "transmission.cost_ratio": 0.08,
    "local_phase.speedup[threads]": 1.8,
    "model.representatives_count": 120.0,
}


def _record(metrics, command="run"):
    return build_run_record(
        command,
        config={"dataset": "C", "seed": 42},
        metrics=metrics,
        environment=_env(),
    )


def _mutated(**overrides):
    metrics = dict(BASE_METRICS)
    metrics.update(overrides)
    return _record(metrics)


class TestRuleTable:
    def test_first_match_wins(self):
        assert rule_for("local.wall_seconds").direction == "lower"
        assert rule_for("quality.q_p2_percent").direction == "higher"
        assert rule_for("transmission.cost_ratio").direction == "lower"
        assert rule_for("local_phase.speedup[threads]").direction == "higher"

    def test_speedup_beats_generic_patterns(self):
        # "speedup" rules sort before anything else that could match.
        rule = rule_for("region_queries.speedup[batched]")
        assert rule.direction == "higher"
        assert rule.timing

    def test_unknown_names_are_informational(self):
        assert rule_for("model.representatives_count").direction == "ignore"

    def test_timing_tagging(self):
        assert rule_for("local.wall_seconds").timing
        assert rule_for("local.cpu_seconds").timing
        assert not rule_for("local.admitted_sim_seconds").timing
        assert not rule_for("net.bytes_total").timing

    def test_bad_direction_rejected(self):
        with pytest.raises(ValueError):
            MetricRule("*", "sideways")


class TestClassify:
    def test_inside_band_unchanged(self):
        rule = MetricRule("*", "lower", 0.10)
        assert classify(rule, 100.0, 105.0) == "unchanged"

    def test_lower_direction(self):
        rule = MetricRule("*", "lower", 0.10)
        assert classify(rule, 100.0, 150.0) == "regression"
        assert classify(rule, 100.0, 50.0) == "improvement"

    def test_higher_direction(self):
        rule = MetricRule("*", "higher", 0.10)
        assert classify(rule, 100.0, 50.0) == "regression"
        assert classify(rule, 100.0, 150.0) == "improvement"

    def test_abs_threshold_guards_tiny_baselines(self):
        # 1ms -> 2ms is a 2x relative change but inside the absolute band.
        rule = MetricRule("*", "lower", 0.30, abs_threshold=0.005)
        assert classify(rule, 0.001, 0.002) == "unchanged"

    def test_threshold_scale_widens_band(self):
        rule = MetricRule("*", "lower", 0.10)
        assert classify(rule, 100.0, 115.0) == "regression"
        assert classify(rule, 100.0, 115.0, threshold_scale=2.0) == "unchanged"

    def test_missing_sides(self):
        rule = MetricRule("*", "lower")
        assert classify(rule, None, 1.0) == "missing"
        assert classify(rule, 1.0, None) == "missing"


class TestAcceptanceCriteria:
    """The three cases ISSUE.md requires to be covered by tests."""

    def test_identical_rerun_is_ok(self):
        a = _record(BASE_METRICS)
        b = _record(BASE_METRICS)
        report = detect_regressions([a], [b])
        assert report.ok
        assert report.regressions == {}
        assert "verdict: OK" in report.to_text()

    def test_synthetic_2x_slowdown_fails(self):
        baseline = _record(BASE_METRICS)
        slow = _mutated(
            **{
                "local.wall_seconds": 4.0,
                "overall.wall_seconds": 10.0,
            }
        )
        report = detect_regressions([baseline], [slow])
        assert not report.ok
        assert "local.wall_seconds" in report.regressions
        assert "overall.wall_seconds" in report.regressions
        assert "verdict: REGRESSION" in report.to_text()

    def test_q_dbdc_drop_fails(self):
        baseline = _record(BASE_METRICS)
        worse = _mutated(**{"quality.q_p2_percent": 80.0})
        report = detect_regressions([baseline], [worse])
        assert not report.ok
        assert "quality.q_p2_percent" in report.regressions


class TestDirectionAwareness:
    def test_speedup_drop_is_regression(self):
        report = detect_regressions(
            [_record(BASE_METRICS)],
            [_mutated(**{"local_phase.speedup[threads]": 1.0})],
        )
        assert "local_phase.speedup[threads]" in report.regressions

    def test_improvements_do_not_fail(self):
        faster = _mutated(
            **{
                "local.wall_seconds": 1.0,
                "quality.q_p2_percent": 99.5,
                "net.bytes_total": 20480.0,
            }
        )
        report = detect_regressions([_record(BASE_METRICS)], [faster])
        assert report.ok
        assert "local.wall_seconds" in report.improvements
        assert "quality.q_p2_percent" in report.improvements

    def test_cost_ratio_up_is_regression(self):
        report = detect_regressions(
            [_record(BASE_METRICS)],
            [_mutated(**{"transmission.cost_ratio": 0.2})],
        )
        assert "transmission.cost_ratio" in report.regressions

    def test_retries_up_is_regression(self):
        report = detect_regressions(
            [_record(BASE_METRICS)], [_mutated(**{"transport.retries": 9.0})]
        )
        assert "transport.retries" in report.regressions


class TestNoiseAwareness:
    def test_median_of_k_absorbs_one_outlier(self):
        baseline = _record(BASE_METRICS)
        normal = _record(BASE_METRICS)
        outlier = _mutated(**{"local.wall_seconds": 40.0})
        report = detect_regressions(
            [baseline], [normal, outlier, _record(BASE_METRICS)]
        )
        assert report.ok

    def test_metric_medians_drop_none(self):
        records = [
            _record({"x": 1.0}),
            _record({"x": None}),
            _record({"x": 3.0}),
        ]
        assert metric_medians(records) == {"x": 2.0}

    def test_small_jitter_within_band(self):
        jitter = _mutated(
            **{
                "local.wall_seconds": 2.3,
                "net.bytes_total": 41500.0,
                "quality.q_p2_percent": 97.4,
            }
        )
        report = detect_regressions([_record(BASE_METRICS)], [jitter])
        assert report.ok

    def test_ignore_timing_drops_wall_clocks(self):
        slow = _mutated(**{"local.wall_seconds": 40.0})
        report = detect_regressions(
            [_record(BASE_METRICS)], [slow], include_timing=False
        )
        assert report.ok
        assert "local.wall_seconds" not in report.entries
        # Deterministic metrics still gate.
        bad = _mutated(**{"quality.q_p2_percent": 50.0})
        report = detect_regressions(
            [_record(BASE_METRICS)], [bad], include_timing=False
        )
        assert not report.ok

    def test_ignore_patterns(self):
        slow = _mutated(**{"local.wall_seconds": 40.0})
        report = detect_regressions(
            [_record(BASE_METRICS)], [slow], ignore=("local.*",)
        )
        assert report.ok

    def test_empty_sides_rejected(self):
        with pytest.raises(ValueError):
            detect_regressions([], [_record(BASE_METRICS)])
        with pytest.raises(ValueError):
            detect_regressions([_record(BASE_METRICS)], [])


METRIC_NAMES = st.sampled_from(sorted(BASE_METRICS))
FINITE = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
METRICS_DICTS = st.dictionaries(METRIC_NAMES, FINITE, min_size=1, max_size=8)


class TestHypothesisProperties:
    @settings(max_examples=50, deadline=None)
    @given(a=METRICS_DICTS, b=METRICS_DICTS)
    def test_diff_is_antisymmetric_in_delta(self, a, b):
        ra, rb = _record(a), _record(b)
        forward = diff_records(ra, rb)
        backward = diff_records(rb, ra)
        assert set(forward["metrics"]) == set(backward["metrics"])
        for name, entry in forward["metrics"].items():
            mirrored = backward["metrics"][name]
            if entry["delta"] is None:
                assert mirrored["delta"] is None
            else:
                assert mirrored["delta"] == pytest.approx(-entry["delta"])

    @settings(max_examples=50, deadline=None)
    @given(a=METRICS_DICTS, b=METRICS_DICTS)
    def test_detect_regressions_deterministic(self, a, b):
        ra, rb = _record(a), _record(b)
        first = detect_regressions([ra], [rb])
        second = detect_regressions(
            [copy.deepcopy(ra)], [copy.deepcopy(rb)]
        )
        assert first.entries == second.entries
        assert first.ok == second.ok

    @settings(max_examples=50, deadline=None)
    @given(metrics=METRICS_DICTS)
    def test_self_comparison_never_regresses(self, metrics):
        record = _record(metrics)
        assert detect_regressions([record], [record]).ok

    @settings(max_examples=50, deadline=None)
    @given(a=METRICS_DICTS, b=METRICS_DICTS, scale=st.floats(1.0, 10.0))
    def test_widening_thresholds_never_adds_regressions(self, a, b, scale):
        ra, rb = _record(a), _record(b)
        tight = detect_regressions([ra], [rb])
        loose = detect_regressions([ra], [rb], threshold_scale=scale)
        assert set(loose.regressions) <= set(tight.regressions)


class TestRuleCoverage:
    def test_every_default_rule_is_reachable(self):
        # Guard against dead rules shadowed by an earlier pattern.
        samples = {
            "*speedup*": "x.speedup[y]",
            "*percent*": "quality.q_p2_percent",
            "*cost_ratio*": "transmission.cost_ratio",
            "*saving*": "net.saving_fraction",
            "*wall_seconds*": "local.wall_seconds",
            "*cpu_seconds*": "local.cpu_seconds",
            "*sim_seconds*": "round.round_sim_seconds",
            "*seconds*": "seconds.elapsed",
            "*bytes*": "net.bytes_total",
            "*retries*": "transport.retries",
            "*timeouts*": "transport.timeouts",
            "*failed*": "sites.failed",
            "*drops*": "chaos.drops",
            "*identical*": "relabel_kernels.labels_identical",
            "*roundtrip_ok*": "shm.roundtrip_ok",
            "*tracemalloc_peak_mb*": "scale.tracemalloc_peak_mb[20000:local]",
            "*rss_peak_mb*": "scale.rss_peak_mb[20000]",
            "*_rps": "serve.query_throughput_rps",
            "*_ok": "serve_trace.schema_ok",
            "*": "anything.else",
        }
        for rule in DEFAULT_RULES:
            name = samples[rule.pattern]
            assert rule_for(name) == rule, (rule.pattern, name)
