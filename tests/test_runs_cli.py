"""End-to-end tests of the ``python -m repro runs`` CLI family."""

from __future__ import annotations

import json

from repro.cli import main as repro_main
from repro.obs import RunRegistry, build_run_record, parse_openmetrics
from repro.obs.runs_cli import main as runs_main


def _env():
    return {
        "git_rev": "deadbeef",
        "git_dirty": False,
        "python": "3.11.0",
        "numpy": "2.0.0",
        "cpu_count": 4,
        "platform": "TestOS",
    }


def _seed_registry(root, metrics_list):
    registry = RunRegistry(root)
    records = [
        registry.record("run", config={"seed": 42}, metrics=m, environment=_env())
        for m in metrics_list
    ]
    return registry, records


BASELINE_METRICS = {
    "local.wall_seconds": 2.0,
    "quality.q_p2_percent": 97.5,
    "net.bytes_total": 40960.0,
}


class TestListShowDiff:
    def test_list_empty(self, tmp_path, capsys):
        assert runs_main(["--registry", str(tmp_path / ".runs"), "list"]) == 0
        assert "no runs recorded" in capsys.readouterr().out

    def test_list_and_show(self, tmp_path, capsys):
        root = tmp_path / ".runs"
        __, records = _seed_registry(root, [BASELINE_METRICS])
        assert runs_main(["--registry", str(root), "list"]) == 0
        out = capsys.readouterr().out
        assert records[0]["run_id"] in out
        assert runs_main(["--registry", str(root), "show", "latest"]) == 0
        shown = json.loads(capsys.readouterr().out)
        assert shown["run_id"] == records[0]["run_id"]
        assert shown["metrics"]["quality.q_p2_percent"] == 97.5

    def test_show_unresolvable_ref_exits_2(self, tmp_path, capsys):
        root = tmp_path / ".runs"
        _seed_registry(root, [BASELINE_METRICS])
        assert runs_main(["--registry", str(root), "show", "nope"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_diff_reports_deltas(self, tmp_path, capsys):
        root = tmp_path / ".runs"
        changed = dict(BASELINE_METRICS, **{"net.bytes_total": 20480.0})
        _seed_registry(root, [BASELINE_METRICS, changed])
        code = runs_main(["--registry", str(root), "diff", "latest~1", "latest"])
        assert code == 0
        out = capsys.readouterr().out
        assert "net.bytes_total" in out
        assert "-50.0%" in out

    def test_diff_json(self, tmp_path, capsys):
        root = tmp_path / ".runs"
        _seed_registry(root, [BASELINE_METRICS, BASELINE_METRICS])
        code = runs_main(
            ["--registry", str(root), "diff", "latest~1", "latest", "--json"]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["metrics"]["net.bytes_total"]["delta"] == 0


class TestRegressGate:
    def test_identical_rerun_exits_zero(self, tmp_path, capsys):
        root = tmp_path / ".runs"
        _seed_registry(root, [BASELINE_METRICS, BASELINE_METRICS])
        code = runs_main(
            ["--registry", str(root), "regress", "--baseline", "latest~1"]
        )
        assert code == 0
        assert "verdict: OK" in capsys.readouterr().out

    def test_slowdown_exits_nonzero(self, tmp_path, capsys):
        root = tmp_path / ".runs"
        slow = dict(BASELINE_METRICS, **{"local.wall_seconds": 4.0})
        _seed_registry(root, [BASELINE_METRICS, slow])
        code = runs_main(
            ["--registry", str(root), "regress", "--baseline", "latest~1"]
        )
        assert code == 1
        assert "verdict: REGRESSION" in capsys.readouterr().out

    def test_committed_baseline_file(self, tmp_path, capsys):
        root = tmp_path / ".runs"
        _seed_registry(root, [BASELINE_METRICS])
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(
                build_run_record(
                    "run",
                    config={"seed": 42},
                    metrics=BASELINE_METRICS,
                    environment=_env(),
                )
            )
        )
        code = runs_main(
            ["--registry", str(root), "regress", "--baseline", str(baseline)]
        )
        assert code == 0

    def test_ignore_timing_flag(self, tmp_path, capsys):
        root = tmp_path / ".runs"
        slow = dict(BASELINE_METRICS, **{"local.wall_seconds": 40.0})
        _seed_registry(root, [BASELINE_METRICS, slow])
        args = ["--registry", str(root), "regress", "--baseline", "latest~1"]
        assert runs_main(args) == 1
        capsys.readouterr()
        assert runs_main(args + ["--ignore-timing"]) == 0

    def test_ignore_pattern_flag(self, tmp_path, capsys):
        root = tmp_path / ".runs"
        worse = dict(BASELINE_METRICS, **{"quality.q_p2_percent": 50.0})
        _seed_registry(root, [BASELINE_METRICS, worse])
        args = ["--registry", str(root), "regress", "--baseline", "latest~1"]
        assert runs_main(args) == 1
        capsys.readouterr()
        assert runs_main(args + ["--ignore", "quality.*"]) == 0

    def test_last_k_median_absorbs_outlier(self, tmp_path, capsys):
        root = tmp_path / ".runs"
        outlier = dict(BASELINE_METRICS, **{"local.wall_seconds": 40.0})
        _seed_registry(
            root,
            [BASELINE_METRICS, BASELINE_METRICS, outlier, BASELINE_METRICS],
        )
        args = ["--registry", str(root), "regress", "--baseline", "latest~3"]
        # Latest alone is fine, but the outlier one run back would fail;
        # --last 3 medians it away.
        assert runs_main(args + ["--candidate", "latest~1"]) == 1
        capsys.readouterr()
        assert runs_main(args + ["--last", "3"]) == 0

    def test_last_k_ignores_other_configs(self, tmp_path, capsys):
        root = tmp_path / ".runs"
        registry = RunRegistry(root)
        slow = dict(BASELINE_METRICS, **{"local.wall_seconds": 40.0})
        registry.record(
            "run", config={"seed": 42}, metrics=BASELINE_METRICS,
            environment=_env(),
        )
        # Two slow runs under a *different* config: without digest
        # filtering they would dominate the --last 3 median.
        for _ in range(2):
            registry.record(
                "run", config={"seed": 7}, metrics=slow, environment=_env()
            )
        registry.record(
            "run", config={"seed": 42}, metrics=BASELINE_METRICS,
            environment=_env(),
        )
        args = [
            "--registry", str(root), "regress",
            "--baseline", "latest~3", "--last", "3",
        ]
        assert runs_main(args) == 0
        err = capsys.readouterr().err
        assert "only 2 of the requested 3" in err

    def test_last_ignored_for_file_candidate(self, tmp_path, capsys):
        root = tmp_path / ".runs"
        slow = dict(BASELINE_METRICS, **{"local.wall_seconds": 40.0})
        _seed_registry(root, [BASELINE_METRICS, slow])
        cand_file = tmp_path / "candidate.json"
        cand_file.write_text(
            json.dumps(
                build_run_record(
                    "run",
                    config={"seed": 42},
                    metrics=BASELINE_METRICS,
                    environment=_env(),
                )
            )
        )
        # Widening must not replace a file-resolved candidate with
        # registry records (the slow latest run would fail the gate).
        args = [
            "--registry", str(root), "regress",
            "--baseline", "latest~1",
            "--candidate", str(cand_file), "--last", "3",
        ]
        assert runs_main(args) == 0
        assert "--last ignored" in capsys.readouterr().err

    def test_mismatched_commands_warn(self, tmp_path, capsys):
        root = tmp_path / ".runs"
        registry = RunRegistry(root)
        registry.record("run", metrics=BASELINE_METRICS, environment=_env())
        registry.record("bench", metrics={"x": 1.0}, environment=_env())
        runs_main(["--registry", str(root), "regress", "--baseline", "latest~1"])
        assert "different commands" in capsys.readouterr().err


class TestGcAndExport:
    def test_gc_keeps_newest(self, tmp_path, capsys):
        root = tmp_path / ".runs"
        registry, records = _seed_registry(
            root, [BASELINE_METRICS, BASELINE_METRICS, BASELINE_METRICS]
        )
        assert runs_main(["--registry", str(root), "gc", "--keep", "1"]) == 0
        assert "dropped 2" in capsys.readouterr().out
        remaining = registry.load_records()
        assert [r["run_id"] for r in remaining] == [records[-1]["run_id"]]

    def test_export_openmetrics(self, tmp_path, capsys):
        root = tmp_path / ".runs"
        _seed_registry(root, [BASELINE_METRICS])
        out_path = tmp_path / "metrics.om"
        code = runs_main(
            [
                "--registry",
                str(root),
                "export",
                "latest",
                "--out",
                str(out_path),
            ]
        )
        assert code == 0
        families = parse_openmetrics(out_path.read_text())
        assert "dbdc_run_info" in families
        assert "dbdc_quality_q_p2_percent" in families

    def test_export_to_stdout(self, tmp_path, capsys):
        root = tmp_path / ".runs"
        _seed_registry(root, [BASELINE_METRICS])
        assert runs_main(["--registry", str(root), "export", "latest"]) == 0
        out = capsys.readouterr().out
        assert out.endswith("# EOF\n")
        assert parse_openmetrics(out)


class TestTopLevelDispatch:
    def test_repro_cli_routes_runs(self, tmp_path, capsys):
        root = tmp_path / ".runs"
        _seed_registry(root, [BASELINE_METRICS])
        code = repro_main(["runs", "--registry", str(root), "list"])
        assert code == 0
        assert "run" in capsys.readouterr().out

    def test_repro_cli_routes_regress_exit_code(self, tmp_path, capsys):
        root = tmp_path / ".runs"
        slow = dict(BASELINE_METRICS, **{"local.wall_seconds": 4.0})
        _seed_registry(root, [BASELINE_METRICS, slow])
        code = repro_main(
            [
                "runs",
                "--registry",
                str(root),
                "regress",
                "--baseline",
                "latest~1",
            ]
        )
        assert code == 1
