"""Integration tests: the full DBDC pipeline vs central DBSCAN."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.dbscan import dbscan
from repro.core.dbdc import DBDCConfig, run_dbdc, run_dbdc_partitioned
from repro.data.generators import gaussian_blobs, uniform_noise
from repro.distributed.partition import uniform_random
from repro.quality.qdbdc import evaluate_quality


@pytest.fixture(scope="module")
def workload():
    """Four clear blobs plus background noise (n=1030)."""
    points, __ = gaussian_blobs(
        [250, 250, 250, 250],
        np.asarray([[0.0, 0.0], [25.0, 0.0], [0.0, 25.0], [25.0, 25.0]]),
        1.2,
        seed=99,
    )
    noise = uniform_noise(30, (-8.0, 33.0), dim=2, seed=100)
    return np.concatenate([points, noise])


EPS, MIN_PTS = 1.2, 5


class TestConfigValidation:
    def test_rejects_bad_eps(self):
        with pytest.raises(ValueError, match="eps_local"):
            DBDCConfig(eps_local=0, min_pts_local=5)

    def test_rejects_bad_min_pts(self):
        with pytest.raises(ValueError, match="min_pts_local"):
            DBDCConfig(eps_local=1.0, min_pts_local=0)

    def test_rejects_unknown_scheme(self):
        with pytest.raises(ValueError, match="scheme"):
            DBDCConfig(eps_local=1.0, min_pts_local=5, scheme="bogus")

    def test_rejects_bad_eps_global(self):
        with pytest.raises(ValueError, match="eps_global"):
            DBDCConfig(eps_local=1.0, min_pts_local=5, eps_global=-1.0)


class TestRunDbdc:
    def test_requires_sites(self):
        with pytest.raises(ValueError, match="at least one site"):
            run_dbdc([], DBDCConfig(eps_local=1.0, min_pts_local=5))

    @pytest.mark.parametrize("scheme", ["rep_scor", "rep_kmeans"])
    def test_high_quality_vs_central(self, workload, scheme):
        central = dbscan(workload, EPS, MIN_PTS)
        assignment = uniform_random(workload.shape[0], 4, seed=1)
        run = run_dbdc_partitioned(
            workload,
            assignment,
            DBDCConfig(eps_local=EPS, min_pts_local=MIN_PTS, scheme=scheme),
        )
        quality = evaluate_quality(
            run.labels_in_original_order(), central.labels, qp=MIN_PTS
        )
        assert quality.q_p1 > 0.9
        assert quality.q_p2 > 0.85

    def test_finds_all_blobs(self, workload):
        assignment = uniform_random(workload.shape[0], 4, seed=1)
        run = run_dbdc_partitioned(
            workload, assignment, DBDCConfig(eps_local=EPS, min_pts_local=MIN_PTS)
        )
        assert run.result.n_global_clusters == 4

    def test_default_eps_global_close_to_double(self, workload):
        assignment = uniform_random(workload.shape[0], 4, seed=1)
        run = run_dbdc_partitioned(
            workload, assignment, DBDCConfig(eps_local=EPS, min_pts_local=MIN_PTS)
        )
        # Section 6: the ε_r-derived default is "generally close to
        # 2·Eps_local" (and never exceeds it for REP_Scor).
        assert EPS < run.result.eps_global_used <= 2 * EPS + 1e-9

    def test_representative_fraction_small(self, workload):
        assignment = uniform_random(workload.shape[0], 4, seed=1)
        run = run_dbdc_partitioned(
            workload, assignment, DBDCConfig(eps_local=EPS, min_pts_local=MIN_PTS)
        )
        assert 0 < run.result.representative_fraction < 0.5

    def test_transmission_bytes_positive_and_small(self, workload):
        assignment = uniform_random(workload.shape[0], 4, seed=1)
        run = run_dbdc_partitioned(
            workload, assignment, DBDCConfig(eps_local=EPS, min_pts_local=MIN_PTS)
        )
        raw = workload.shape[0] * workload.shape[1] * 8
        assert 0 < run.result.bytes_up < raw

    def test_single_site_degenerates_to_central(self, workload):
        """With one site and Eps_global small, DBDC reproduces the local
        (== central) clustering up to relabeling."""
        central = dbscan(workload, EPS, MIN_PTS)
        run = run_dbdc(
            [workload], DBDCConfig(eps_local=EPS, min_pts_local=MIN_PTS)
        )
        quality = evaluate_quality(
            run.sites[0].global_labels, central.labels, qp=MIN_PTS
        )
        assert quality.q_p2 > 0.95

    def test_timings_populated(self, workload):
        run = run_dbdc(
            [workload[:500], workload[500:]],
            DBDCConfig(eps_local=EPS, min_pts_local=MIN_PTS),
        )
        assert run.max_local_seconds > 0
        assert run.overall_seconds >= run.max_local_seconds
        for site in run.sites:
            assert site.local_seconds > 0
            assert site.relabel_seconds >= 0

    def test_labels_and_points_aligned(self, workload):
        run = run_dbdc(
            [workload[:500], workload[500:]],
            DBDCConfig(eps_local=EPS, min_pts_local=MIN_PTS),
        )
        assert run.labels().shape == (workload.shape[0],)
        assert run.points().shape == workload.shape

    def test_local_labels_offsets_disjoint(self, workload):
        run = run_dbdc(
            [workload[:500], workload[500:]],
            DBDCConfig(eps_local=EPS, min_pts_local=MIN_PTS),
        )
        local = run.local_labels()
        first = local[:500]
        second = local[500:]
        assert set(first[first >= 0]).isdisjoint(set(second[second >= 0]))


class TestPartitionedWrapper:
    def test_assignment_validation(self, workload):
        config = DBDCConfig(eps_local=EPS, min_pts_local=MIN_PTS)
        with pytest.raises(ValueError, match="assignments"):
            run_dbdc_partitioned(workload, np.asarray([0, 1]), config)
        bad = np.zeros(workload.shape[0], dtype=int)
        bad[0] = -1
        with pytest.raises(ValueError, match="non-negative"):
            run_dbdc_partitioned(workload, bad, config)

    def test_realignment_roundtrip(self, workload):
        config = DBDCConfig(eps_local=EPS, min_pts_local=MIN_PTS)
        assignment = uniform_random(workload.shape[0], 3, seed=5)
        run = run_dbdc_partitioned(workload, assignment, config)
        labels = run.labels_in_original_order()
        # Site-by-site, the realigned labels equal the site labels.
        for site_id in range(3):
            members = np.flatnonzero(assignment == site_id)
            np.testing.assert_array_equal(
                labels[members], run.result.sites[site_id].global_labels
            )

    def test_more_sites_than_needed_still_works(self, workload):
        config = DBDCConfig(eps_local=EPS, min_pts_local=MIN_PTS)
        assignment = uniform_random(workload.shape[0], 10, seed=5)
        run = run_dbdc_partitioned(workload, assignment, config)
        assert run.result.n_sites == 10
        assert run.result.n_global_clusters >= 4  # may split, never vanish
