"""Tests for the M-tree — the paper's metric-space access method."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering.dbscan import dbscan
from repro.data.distance import Metric, register_metric
from repro.index import BruteForceIndex, MTreeIndex, build_index


def _haversine_pair(p, q):
    """Great-circle distance on the unit sphere (lat, lon in radians) —
    a genuine non-L_p metric that still obeys the triangle inequality."""
    p, q = np.asarray(p, dtype=float), np.asarray(q, dtype=float)
    dlat = q[0] - p[0]
    dlon = q[1] - p[1]
    a = np.sin(dlat / 2) ** 2 + np.cos(p[0]) * np.cos(q[0]) * np.sin(dlon / 2) ** 2
    return float(2 * np.arcsin(np.sqrt(np.clip(a, 0, 1))))


def _haversine_many(p, points):
    p = np.asarray(p, dtype=float)
    points = np.asarray(points, dtype=float)
    dlat = points[:, 0] - p[0]
    dlon = points[:, 1] - p[1]
    a = np.sin(dlat / 2) ** 2 + np.cos(p[0]) * np.cos(points[:, 0]) * np.sin(dlon / 2) ** 2
    return 2 * np.arcsin(np.sqrt(np.clip(a, 0, 1)))


haversine = Metric("haversine", _haversine_pair, _haversine_many)
register_metric(haversine)


class TestConstruction:
    def test_rejects_bad_capacity(self, rng):
        with pytest.raises(ValueError, match="node_capacity"):
            MTreeIndex(rng.normal(size=(5, 2)), node_capacity=1)

    def test_empty(self):
        index = MTreeIndex(np.empty((0, 2)))
        assert index.range_query(np.zeros(2), 1.0).size == 0
        assert index.height == 0

    def test_height_grows(self, rng):
        small = MTreeIndex(rng.normal(size=(10, 2)), node_capacity=4)
        large = MTreeIndex(rng.normal(size=(2000, 2)), node_capacity=4)
        assert large.height > small.height >= 1

    def test_all_identical_points(self):
        points = np.zeros((100, 2))
        index = MTreeIndex(points, node_capacity=8)
        assert index.range_query(np.zeros(2), 0.0).size == 100


class TestEuclideanOracle:
    def test_matches_bruteforce(self, rng):
        points = rng.uniform(-5, 5, size=(300, 2))
        index = MTreeIndex(points, node_capacity=8)
        oracle = BruteForceIndex(points)
        for eps in (0.3, 1.0, 4.0):
            for qi in range(0, 300, 41):
                np.testing.assert_array_equal(
                    index.range_query(points[qi], eps),
                    oracle.range_query(points[qi], eps),
                )

    def test_external_query(self, rng):
        points = rng.uniform(-5, 5, size=(150, 3))
        index = MTreeIndex(points, node_capacity=8)
        oracle = BruteForceIndex(points)
        q = np.asarray([7.0, -2.0, 1.0])
        np.testing.assert_array_equal(
            index.range_query(q, 5.0), oracle.range_query(q, 5.0)
        )

    @given(seed=st.integers(0, 10_000), eps=st.floats(0.05, 3.0))
    @settings(max_examples=30, deadline=None)
    def test_property_random(self, seed, eps):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 80))
        points = rng.uniform(-3, 3, size=(n, 2))
        index = MTreeIndex(points, node_capacity=4)
        oracle = BruteForceIndex(points)
        q = rng.uniform(-4, 4, size=2)
        np.testing.assert_array_equal(
            index.range_query(q, eps), oracle.range_query(q, eps)
        )


class TestNonVectorMetric:
    """The reason the M-tree exists: metrics with no coordinate structure."""

    @pytest.fixture
    def stations(self, rng):
        # Weather stations: (lat, lon) in radians, clustered around hubs.
        hubs = np.asarray([[0.85, 0.2], [0.1, -1.4], [-0.6, 2.2]])
        points = np.concatenate(
            [hub + rng.normal(0, 0.02, size=(60, 2)) for hub in hubs]
        )
        return points

    def test_matches_bruteforce_under_haversine(self, stations, rng):
        index = MTreeIndex(stations, metric=haversine, node_capacity=8)
        oracle = BruteForceIndex(stations, metric=haversine)
        for qi in (0, 50, 100, 170):
            np.testing.assert_array_equal(
                index.range_query(stations[qi], 0.05),
                oracle.range_query(stations[qi], 0.05),
            )

    def test_dbscan_on_sphere_via_mtree(self, stations):
        """End-to-end §4 claim: DBSCAN in a non-vector metric space."""
        result = dbscan(stations, eps=0.06, min_pts=5, metric=haversine, index_kind="mtree")
        assert result.n_clusters == 3
        # Each hub forms one cluster.
        for start in (0, 60, 120):
            block = result.labels[start : start + 60]
            clustered = block[block >= 0]
            assert np.unique(clustered).size == 1

    def test_auto_factory_uses_mtree_for_unknown_metric(self, rng):
        points = rng.normal(0, 0.3, size=(500, 2))
        index = build_index(points, "auto", metric=haversine)
        assert isinstance(index, MTreeIndex)

    def test_factory_explicit_mtree(self, rng):
        index = build_index(rng.normal(size=(20, 2)), "mtree")
        assert isinstance(index, MTreeIndex)
