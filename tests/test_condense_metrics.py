"""Cross-cutting edge cases: condensation under other metrics, empty sites
in the runner, duplicate-heavy data through the whole pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dbdc import DBDCConfig, run_dbdc
from repro.core.local import build_rep_scor_model
from repro.data.distance import manhattan
from repro.data.generators import gaussian_blobs
from repro.distributed.hierarchy import condense_models


class TestCondenseUnderManhattan:
    def test_coverage_preserved(self, rng):
        points, __ = gaussian_blobs([120], np.asarray([[0.0, 0.0]]), 1.0, seed=3)
        model = build_rep_scor_model(points, 1.2, 4, metric="manhattan").model
        condensed = condense_models([model], 1.2, metric="manhattan")
        assert len(condensed) <= len(model)
        for point in points[::5]:
            before = any(
                rep.covers(point, manhattan) for rep in model.representatives
            )
            if before:
                assert any(
                    rep.covers(point, manhattan)
                    for rep in condensed.representatives
                )


class TestDegenerateData:
    def test_all_duplicate_points_pipeline(self):
        """Thousands of identical objects: one cluster, one representative
        per site, quality 100 %."""
        points = np.zeros((300, 2))
        run = run_dbdc(
            [points[:150], points[150:]],
            DBDCConfig(eps_local=1.0, min_pts_local=5),
        )
        assert run.n_global_clusters == 1
        assert run.n_representatives == 2  # one specific core point per site
        assert (run.labels() >= 0).all()

    def test_single_point_sites(self):
        """Sites holding a single object each: everything is noise."""
        run = run_dbdc(
            [np.asarray([[0.0, 0.0]]), np.asarray([[50.0, 50.0]])],
            DBDCConfig(eps_local=1.0, min_pts_local=3),
        )
        assert run.n_global_clusters == 0
        assert (run.labels() == -1).all()

    def test_collinear_points(self):
        """A perfect line — degenerate bounding boxes everywhere."""
        points = np.column_stack([np.linspace(0, 10, 200), np.zeros(200)])
        run = run_dbdc(
            [points[::2], points[1::2]],
            DBDCConfig(eps_local=0.3, min_pts_local=4),
        )
        assert run.n_global_clusters == 1

    def test_one_dimensional_data(self):
        """d = 1 must work end to end (indexes, models, relabel)."""
        rng = np.random.default_rng(4)
        points = np.concatenate(
            [rng.normal(0, 0.5, size=(100, 1)), rng.normal(20, 0.5, size=(100, 1))]
        )
        run = run_dbdc(
            [points[::2], points[1::2]],
            DBDCConfig(eps_local=0.8, min_pts_local=4),
        )
        assert run.n_global_clusters == 2
