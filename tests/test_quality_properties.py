"""Hypothesis property tests for the quality framework."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.quality.pfunctions import per_object_p1, per_object_p2
from repro.quality.qdbdc import q_dbdc_p1, q_dbdc_p2

label_arrays = hnp.arrays(
    np.int64, st.integers(1, 60), elements=st.integers(-1, 6)
)


@given(labels=label_arrays)
@settings(max_examples=60, deadline=None)
def test_self_comparison_is_perfect(labels):
    """'If we compare a reference clustering to itself, the quality should
    be 100%' (Section 8)."""
    assert q_dbdc_p1(labels, labels, 1) == 1.0
    assert q_dbdc_p2(labels, labels) == 1.0


@given(distributed=label_arrays, data=st.data())
@settings(max_examples=60, deadline=None)
def test_scores_bounded(distributed, data):
    central = data.draw(
        hnp.arrays(np.int64, distributed.size, elements=st.integers(-1, 6))
    )
    p1 = per_object_p1(distributed, central, 2)
    p2 = per_object_p2(distributed, central)
    assert ((p1 == 0) | (p1 == 1)).all()
    assert (p2 >= 0.0).all() and (p2 <= 1.0).all()


@given(distributed=label_arrays, data=st.data())
@settings(max_examples=60, deadline=None)
def test_p2_is_symmetric(distributed, data):
    """P^II is a Jaccard-based measure: swapping the roles of the
    distributed and central clusterings cannot change the score."""
    central = data.draw(
        hnp.arrays(np.int64, distributed.size, elements=st.integers(-1, 6))
    )
    assert q_dbdc_p2(distributed, central) == q_dbdc_p2(central, distributed)


@given(distributed=label_arrays, data=st.data(), qp=st.integers(1, 5))
@settings(max_examples=60, deadline=None)
def test_p1_monotone_in_qp(distributed, data, qp):
    """Raising the quality parameter can only lower P^I scores."""
    central = data.draw(
        hnp.arrays(np.int64, distributed.size, elements=st.integers(-1, 6))
    )
    loose = per_object_p1(distributed, central, qp)
    strict = per_object_p1(distributed, central, qp + 1)
    assert (strict <= loose).all()


@given(distributed=label_arrays, data=st.data())
@settings(max_examples=60, deadline=None)
def test_noise_mismatch_always_zero_under_both(distributed, data):
    central = data.draw(
        hnp.arrays(np.int64, distributed.size, elements=st.integers(-1, 6))
    )
    p1 = per_object_p1(distributed, central, 1)
    p2 = per_object_p2(distributed, central)
    mismatch = (distributed == -1) ^ (central == -1)
    assert (p1[mismatch] == 0).all()
    assert (p2[mismatch] == 0.0).all()


@given(distributed=label_arrays, data=st.data())
@settings(max_examples=60, deadline=None)
def test_p1_with_qp1_dominates_p2(distributed, data):
    """With qp=1, P^I(x)=1 whenever the clusters intersect at all, so it
    upper-bounds the Jaccard-based P^II pointwise."""
    central = data.draw(
        hnp.arrays(np.int64, distributed.size, elements=st.integers(-1, 6))
    )
    p1 = per_object_p1(distributed, central, 1).astype(float)
    p2 = per_object_p2(distributed, central)
    assert (p2 <= p1 + 1e-12).all()


@given(labels=label_arrays, renumber_offset=st.integers(1, 100))
@settings(max_examples=40, deadline=None)
def test_invariant_under_cluster_renaming(labels, renumber_offset):
    """Quality depends on the partition, not on the id values."""
    renamed = np.where(labels >= 0, labels + renumber_offset, labels)
    assert q_dbdc_p2(renamed, labels) == 1.0
    assert q_dbdc_p1(renamed, labels, 1) == 1.0
