"""Unit tests for the persistence helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.local import build_rep_scor_model
from repro.core.global_model import build_global_model
from repro.data.generators import gaussian_blobs
from repro.data.io import (
    global_model_from_dict,
    global_model_to_dict,
    load_global_model,
    load_labels_csv,
    load_local_model,
    load_points,
    local_model_from_dict,
    local_model_to_dict,
    save_global_model,
    save_labels_csv,
    save_local_model,
    save_points,
)


@pytest.fixture
def local_model():
    points, __ = gaussian_blobs([60], np.asarray([[0.0, 0.0]]), 0.8, seed=9)
    return build_rep_scor_model(points, 1.0, 4, site_id=3).model


class TestPointsNpz:
    def test_roundtrip_with_labels(self, tmp_path, rng):
        points = rng.normal(size=(40, 2))
        labels = rng.integers(-1, 4, size=40)
        path = tmp_path / "data.npz"
        save_points(path, points, labels)
        loaded_points, loaded_labels = load_points(path)
        np.testing.assert_array_equal(loaded_points, points)
        np.testing.assert_array_equal(loaded_labels, labels)

    def test_roundtrip_without_labels(self, tmp_path, rng):
        points = rng.normal(size=(10, 3))
        path = tmp_path / "data.npz"
        save_points(path, points)
        loaded_points, loaded_labels = load_points(path)
        np.testing.assert_array_equal(loaded_points, points)
        assert loaded_labels is None

    def test_length_mismatch_rejected(self, tmp_path, rng):
        with pytest.raises(ValueError, match="labels"):
            save_points(tmp_path / "x.npz", rng.normal(size=(5, 2)), [0, 1])


class TestLabelsCsv:
    def test_roundtrip(self, tmp_path, rng):
        labels = rng.integers(-1, 5, size=30)
        path = tmp_path / "labels.csv"
        save_labels_csv(path, labels)
        np.testing.assert_array_equal(load_labels_csv(path), labels)

    def test_header_validated(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n0,1\n")
        with pytest.raises(ValueError, match="header"):
            load_labels_csv(path)

    def test_gap_in_indices_rejected(self, tmp_path):
        path = tmp_path / "gap.csv"
        path.write_text("index,label\n0,1\n2,1\n")
        with pytest.raises(ValueError, match="contiguous"):
            load_labels_csv(path)


class TestLocalModelJson:
    def test_dict_roundtrip(self, local_model):
        restored = local_model_from_dict(local_model_to_dict(local_model))
        assert restored.site_id == local_model.site_id
        assert restored.scheme == local_model.scheme
        assert len(restored) == len(local_model)
        for a, b in zip(local_model.representatives, restored.representatives):
            np.testing.assert_allclose(a.point, b.point)
            assert a.eps_range == pytest.approx(b.eps_range)

    def test_file_roundtrip(self, tmp_path, local_model):
        path = tmp_path / "model.json"
        save_local_model(path, local_model)
        restored = load_local_model(path)
        assert restored.n_objects == local_model.n_objects
        assert restored.max_eps_range == pytest.approx(local_model.max_eps_range)

    def test_wrong_kind_rejected(self, local_model):
        payload = local_model_to_dict(local_model)
        payload["kind"] = "global_model"
        with pytest.raises(ValueError, match="not a local model"):
            local_model_from_dict(payload)


class TestGlobalModelJson:
    def test_roundtrip(self, tmp_path, local_model):
        model, __ = build_global_model([local_model], eps_global=2.0)
        path = tmp_path / "global.json"
        save_global_model(path, model)
        restored = load_global_model(path)
        assert restored.eps_global == model.eps_global
        assert restored.n_global_clusters == model.n_global_clusters
        np.testing.assert_array_equal(restored.global_labels, model.global_labels)

    def test_wrong_kind_rejected(self, local_model):
        model, __ = build_global_model([local_model], eps_global=2.0)
        payload = global_model_to_dict(model)
        payload["kind"] = "local_model"
        with pytest.raises(ValueError, match="not a global model"):
            global_model_from_dict(payload)

    def test_restored_model_usable_for_relabel(self, tmp_path, local_model):
        """A reloaded global model must drive the §7 update unchanged."""
        from repro.core.relabel import relabel_site
        from repro.data.generators import gaussian_blobs

        model, __ = build_global_model([local_model], eps_global=2.0)
        path = tmp_path / "global.json"
        save_global_model(path, model)
        restored = load_global_model(path)
        points, __truth = gaussian_blobs([20], np.asarray([[0.0, 0.0]]), 0.5, seed=1)
        local_labels = np.zeros(20, dtype=np.intp)
        original, __ = relabel_site(points, local_labels, model, site_id=3)
        reloaded, __ = relabel_site(points, local_labels, restored, site_id=3)
        np.testing.assert_array_equal(original, reloaded)
