"""Unit tests for ClientSite, CentralServer and IncrementalServer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.labels import NOISE
from repro.core.global_model import build_global_model
from repro.data.generators import gaussian_blobs
from repro.distributed.server import CentralServer, IncrementalServer
from repro.distributed.site import ClientSite


@pytest.fixture
def two_sites():
    """Two sites each holding half of two blobs (split uniformly)."""
    points, __ = gaussian_blobs(
        [120, 120], np.asarray([[0.0, 0.0], [12.0, 0.0]]), 1.0, seed=21
    )
    rng = np.random.default_rng(0)
    mask = rng.random(points.shape[0]) < 0.5
    make = lambda sid, pts: ClientSite(
        sid, pts, eps_local=1.0, min_pts_local=5, scheme="rep_scor"
    )
    return make(0, points[mask]), make(1, points[~mask])


class TestClientSite:
    def test_protocol_order_enforced(self, two_sites):
        site, __ = two_sites
        with pytest.raises(RuntimeError, match="local clustering"):
            __ = site.local_outcome
        with pytest.raises(RuntimeError, match="run_local_clustering"):
            site.receive_global_model(None)

    def test_local_model_produced(self, two_sites):
        site, __ = two_sites
        model = site.run_local_clustering()
        assert model.site_id == 0
        assert len(model) > 0
        assert site.times.local_seconds > 0

    def test_global_labels_unavailable_before_update(self, two_sites):
        site, __ = two_sites
        site.run_local_clustering()
        with pytest.raises(RuntimeError, match="global model"):
            __ = site.global_labels

    def test_full_protocol_and_membership_query(self, two_sites):
        site_a, site_b = two_sites
        server = CentralServer()
        for site in (site_a, site_b):
            server.receive_local_model(site.run_local_clustering())
        model = server.build()
        for site in (site_a, site_b):
            stats = site.receive_global_model(model)
            assert stats.n_objects == site.points.shape[0]
        # Both halves of each blob share a global id across sites.
        gid = site_a.global_labels[0]
        assert gid >= 0
        objects_a = site_a.objects_of_global_cluster(gid)
        objects_b = site_b.objects_of_global_cluster(gid)
        assert objects_a.shape[0] > 0 and objects_b.shape[0] > 0
        # The two returned sets stem from the same spatial blob.
        centroid_a = objects_a.mean(axis=0)
        centroid_b = objects_b.mean(axis=0)
        assert np.linalg.norm(centroid_a - centroid_b) < 2.0

    def test_noise_objects_query(self, two_sites):
        site_a, site_b = two_sites
        server = CentralServer()
        for site in (site_a, site_b):
            server.receive_local_model(site.run_local_clustering())
        model = server.build()
        site_a.receive_global_model(model)
        noise = site_a.noise_objects()
        assert noise.shape[0] == int(np.sum(site_a.global_labels == NOISE))


class TestCentralServer:
    def test_build_requires_models(self):
        with pytest.raises(RuntimeError, match="no local models"):
            CentralServer().build()

    def test_model_property_guard(self):
        server = CentralServer()
        with pytest.raises(RuntimeError, match="not been built"):
            __ = server.model
        with pytest.raises(RuntimeError, match="not been built"):
            __ = server.stats

    def test_explicit_eps_global_respected(self, two_sites):
        site_a, site_b = two_sites
        models = [site_a.run_local_clustering(), site_b.run_local_clustering()]
        server = CentralServer(eps_global=2.5)
        for model in models:
            server.receive_local_model(model)
        built = server.build()
        assert built.eps_global == 2.5
        assert server.global_seconds > 0


class TestIncrementalServer:
    def test_rejects_bad_eps(self):
        with pytest.raises(ValueError, match="eps_global"):
            IncrementalServer(0.0, dim=2)

    def test_snapshot_matches_batch_cluster_count(self, two_sites):
        site_a, site_b = two_sites
        models = [site_a.run_local_clustering(), site_b.run_local_clustering()]
        eps_global = 2.0
        batch, __ = build_global_model(models, eps_global=eps_global)
        streaming = IncrementalServer(eps_global, dim=2)
        for model in models:
            streaming.receive_local_model(model)
        snapshot = streaming.snapshot()
        assert snapshot.n_global_clusters == batch.n_global_clusters
        assert len(snapshot) == len(batch)

    def test_snapshot_available_mid_stream(self, two_sites):
        site_a, site_b = two_sites
        model_a = site_a.run_local_clustering()
        streaming = IncrementalServer(2.0, dim=2)
        streaming.receive_local_model(model_a)
        early = streaming.snapshot()
        assert len(early) == len(model_a)
        assert (early.global_labels >= 0).all()
        # Second site arrives later; snapshot grows consistently.
        streaming.receive_local_model(site_b.run_local_clustering())
        late = streaming.snapshot()
        assert len(late) == len(model_a) + streaming.n_representatives - len(model_a)

    def test_snapshot_arrival_order_invariant(self, two_sites):
        site_a, site_b = two_sites
        model_a = site_a.run_local_clustering()
        model_b = site_b.run_local_clustering()
        forward = IncrementalServer(2.0, dim=2)
        forward.receive_local_model(model_a)
        forward.receive_local_model(model_b)
        backward = IncrementalServer(2.0, dim=2)
        backward.receive_local_model(model_b)
        backward.receive_local_model(model_a)
        assert (
            forward.snapshot().n_global_clusters
            == backward.snapshot().n_global_clusters
        )
