"""Unit tests for the seeded k-means used by REP_kMeans."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering.kmeans import KMeansResult, kmeans, lloyd_iterations
from repro.data.generators import gaussian_blobs


class TestLloydIterations:
    def test_converges_on_separated_blobs(self):
        points, truth = gaussian_blobs(
            [50, 50], np.asarray([[0.0, 0.0], [10.0, 0.0]]), 0.5, seed=1
        )
        seeds = np.asarray([[1.0, 1.0], [9.0, -1.0]])
        result = lloyd_iterations(points, seeds)
        assert result.converged
        assert result.k == 2
        # Each blob maps to one centroid.
        for blob in range(2):
            assert np.unique(result.labels[truth == blob]).size == 1

    def test_centroids_near_blob_means(self):
        points, __ = gaussian_blobs(
            [200, 200], np.asarray([[0.0, 0.0], [8.0, 8.0]]), 0.3, seed=2
        )
        seeds = np.asarray([[0.5, 0.5], [7.5, 7.5]])
        result = lloyd_iterations(points, seeds)
        sorted_centroids = result.centroids[np.argsort(result.centroids[:, 0])]
        np.testing.assert_allclose(sorted_centroids[0], [0.0, 0.0], atol=0.15)
        np.testing.assert_allclose(sorted_centroids[1], [8.0, 8.0], atol=0.15)

    def test_k_equals_n_zero_inertia(self):
        points = np.asarray([[0.0, 0.0], [5.0, 0.0], [0.0, 5.0]])
        result = lloyd_iterations(points, points.copy())
        assert result.inertia == pytest.approx(0.0)
        assert sorted(result.labels) == [0, 1, 2]

    def test_k_one_centroid_is_mean(self, rng):
        points = rng.normal(3.0, 1.0, size=(100, 2))
        result = lloyd_iterations(points, points[:1])
        np.testing.assert_allclose(result.centroids[0], points.mean(axis=0), rtol=1e-9)

    def test_empty_cluster_keeps_seed_position(self):
        # Second seed is far from all points: nothing is assigned to it.
        points = np.asarray([[0.0, 0.0], [0.1, 0.0], [0.0, 0.1]])
        seeds = np.asarray([[0.0, 0.0], [100.0, 100.0]])
        result = lloyd_iterations(points, seeds)
        np.testing.assert_allclose(result.centroids[1], [100.0, 100.0])
        assert (result.labels == 0).all()

    def test_max_iter_respected(self):
        points, __ = gaussian_blobs(
            [100, 100], np.asarray([[0.0, 0.0], [1.0, 0.0]]), 2.0, seed=3
        )
        seeds = points[:2]
        result = lloyd_iterations(points, seeds, max_iter=1)
        assert result.n_iterations == 1

    def test_rejects_empty_points(self):
        with pytest.raises(ValueError, match="points"):
            lloyd_iterations(np.empty((0, 2)), np.zeros((1, 2)))

    def test_rejects_empty_seeds(self):
        with pytest.raises(ValueError, match="seeds"):
            lloyd_iterations(np.zeros((3, 2)), np.empty((0, 2)))

    def test_rejects_dim_mismatch(self):
        with pytest.raises(ValueError, match="dimension mismatch"):
            lloyd_iterations(np.zeros((3, 2)), np.zeros((1, 3)))

    def test_radius_of_matches_definition(self, rng):
        """radius_of is the ε_c of Section 5.2: max member distance."""
        points = rng.normal(size=(50, 2))
        result = lloyd_iterations(points, points[:3])
        for cid in range(3):
            members = points[result.labels == cid]
            if members.size == 0:
                assert result.radius_of(cid, points) == 0.0
                continue
            expected = np.linalg.norm(members - result.centroids[cid], axis=1).max()
            assert result.radius_of(cid, points) == pytest.approx(expected)

    @given(seed=st.integers(0, 10_000), k=st.integers(1, 5))
    @settings(max_examples=25, deadline=None)
    def test_property_labels_in_range_and_assignment_optimal(self, seed, k):
        rng = np.random.default_rng(seed)
        points = rng.normal(size=(30, 2))
        seeds = points[rng.choice(30, size=k, replace=False)]
        result = lloyd_iterations(points, seeds)
        assert result.labels.min() >= 0 and result.labels.max() < k
        # Every point sits with its nearest centroid (post-convergence).
        diff = points[:, None, :] - result.centroids[None, :, :]
        dist = np.sqrt((diff * diff).sum(axis=2))
        np.testing.assert_array_equal(result.labels, dist.argmin(axis=1))


class TestKMeansWrapper:
    def test_basic_run(self):
        points, __ = gaussian_blobs(
            [60, 60, 60],
            np.asarray([[0.0, 0.0], [10.0, 0.0], [5.0, 9.0]]),
            0.5,
            seed=4,
        )
        result = kmeans(points, 3, seed=0, n_init=5)
        assert isinstance(result, KMeansResult)
        assert result.k == 3
        assert result.inertia < 200.0

    def test_rejects_bad_k(self, rng):
        points = rng.normal(size=(10, 2))
        with pytest.raises(ValueError, match="k must be"):
            kmeans(points, 0)
        with pytest.raises(ValueError, match="k must be"):
            kmeans(points, 11)

    def test_deterministic_for_fixed_seed(self, rng):
        points = rng.normal(size=(50, 2))
        r1 = kmeans(points, 3, seed=42)
        r2 = kmeans(points, 3, seed=42)
        np.testing.assert_array_equal(r1.labels, r2.labels)

    def test_more_restarts_never_worse(self, rng):
        points = rng.normal(size=(80, 2)) * np.asarray([5.0, 1.0])
        single = kmeans(points, 4, seed=9, n_init=1)
        multi = kmeans(points, 4, seed=9, n_init=8)
        assert multi.inertia <= single.inertia + 1e-9
