"""Unit tests for the CLI."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_single_command(self):
        args = build_parser().parse_args(["fig6"])
        assert args.commands == ["fig6"]

    def test_multiple_commands(self):
        args = build_parser().parse_args(["fig9", "fig10"])
        assert args.commands == ["fig9", "fig10"]

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_options(self):
        args = build_parser().parse_args(
            ["run", "--dataset", "C", "--sites", "7", "--scheme", "rep_kmeans", "--seed", "5"]
        )
        assert args.dataset == "C"
        assert args.sites == 7
        assert args.scheme == "rep_kmeans"
        assert args.seed == 5

    def test_bad_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scheme", "medoid"])


class TestExecution:
    def test_fig6_without_sketch(self, capsys):
        assert main(["fig6", "--no-sketch"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 6" in out
        assert "8700" in out

    def test_baselines_command(self, capsys):
        assert main(["baselines"]) == 0
        out = capsys.readouterr().out
        assert "single-link" in out
        assert "concentric" in out

    def test_figures_option_accepted(self):
        args = build_parser().parse_args(["figures", "--out", "/tmp/x"])
        assert args.out == "/tmp/x"
        assert args.commands == ["figures"]

    def test_run_command_small(self, capsys):
        assert (
            main(
                [
                    "run",
                    "--dataset",
                    "C",
                    "--sites",
                    "2",
                    "--cardinality",
                    "600",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "quality: P^I" in out
        assert "DBDC(rep_scor)" in out
