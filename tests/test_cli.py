"""Unit tests for the CLI."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_single_command(self):
        args = build_parser().parse_args(["fig6"])
        assert args.commands == ["fig6"]

    def test_multiple_commands(self):
        args = build_parser().parse_args(["fig9", "fig10"])
        assert args.commands == ["fig9", "fig10"]

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_options(self):
        args = build_parser().parse_args(
            ["run", "--dataset", "C", "--sites", "7", "--scheme", "rep_kmeans", "--seed", "5"]
        )
        assert args.dataset == "C"
        assert args.sites == 7
        assert args.scheme == "rep_kmeans"
        assert args.seed == 5

    def test_bad_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scheme", "medoid"])

    def test_trace_options(self):
        args = build_parser().parse_args(
            ["trace", "--smoke", "--trace-out", "/tmp/t.json",
             "--chrome-out", "/tmp/c.json", "--fault-intensity", "0.3"]
        )
        assert args.commands == ["trace"]
        assert args.smoke is True
        assert args.trace_out == "/tmp/t.json"
        assert args.chrome_out == "/tmp/c.json"
        assert args.fault_intensity == 0.3


class TestExecution:
    def test_fig6_without_sketch(self, capsys):
        assert main(["fig6", "--no-sketch"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 6" in out
        assert "8700" in out

    def test_baselines_command(self, capsys):
        assert main(["baselines"]) == 0
        out = capsys.readouterr().out
        assert "single-link" in out
        assert "concentric" in out

    def test_figures_option_accepted(self):
        args = build_parser().parse_args(["figures", "--out", "/tmp/x"])
        assert args.out == "/tmp/x"
        assert args.commands == ["figures"]

    def test_run_command_small(self, capsys):
        assert (
            main(
                [
                    "run",
                    "--dataset",
                    "C",
                    "--sites",
                    "2",
                    "--cardinality",
                    "600",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "quality: P^I" in out
        assert "DBDC(rep_scor)" in out

    def test_trace_smoke_command(self, capsys):
        assert main(["trace", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "trace smoke: ok" in out

    def test_trace_recording_failure_does_not_abort(self, tmp_path, capsys):
        # Point the registry at an existing *file*: the record append
        # fails, but recording is best-effort so the trace still lands.
        blocker = tmp_path / "blocked"
        blocker.write_text("not a directory")
        trace_path = tmp_path / "trace.json"
        code = main(
            [
                "trace",
                "--dataset", "C",
                "--cardinality", "600",
                "--sites", "2",
                "--trace-out", str(trace_path),
                "--registry", str(blocker),
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "warning: could not record run" in captured.err
        assert trace_path.exists()

    def test_bench_recording_failure_does_not_abort(self, tmp_path, capsys):
        from repro.perf.hotpaths import main as hotpaths_main

        blocker = tmp_path / "blocked"
        blocker.write_text("not a directory")
        report_path = tmp_path / "bench.json"
        code = hotpaths_main(
            [
                "--cardinality", "300",
                "--sites", "2",
                "--parallelism", "1",
                "--out", str(report_path),
                "--registry", str(blocker),
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "warning: could not record run" in captured.err
        assert report_path.exists()

    def test_trace_writes_valid_documents(self, tmp_path, capsys):
        import json

        from repro.obs import validate_trace

        trace_path = tmp_path / "trace.json"
        chrome_path = tmp_path / "chrome.json"
        assert (
            main(
                [
                    "trace",
                    "--dataset", "C",
                    "--cardinality", "600",
                    "--sites", "2",
                    "--trace-out", str(trace_path),
                    "--chrome-out", str(chrome_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "per-phase totals" in out
        doc = json.loads(trace_path.read_text())
        assert validate_trace(doc) == []
        chrome = json.loads(chrome_path.read_text())
        assert any(e.get("ph") == "X" for e in chrome["traceEvents"])
