"""Unit tests for single-link agglomerative clustering (the §4 baseline)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering.labels import NOISE
from repro.clustering.singlelink import (
    cut_by_count,
    cut_by_distance,
    single_link,
)


class TestDendrogram:
    def test_mst_has_n_minus_one_edges(self, rng):
        points = rng.normal(size=(30, 2))
        result = single_link(points)
        assert len(result.edges) == 29
        assert result.n == 30

    def test_edges_sorted_ascending(self, rng):
        points = rng.normal(size=(40, 2))
        result = single_link(points)
        weights = [w for w, __, __ in result.edges]
        assert weights == sorted(weights)

    def test_empty_and_single(self):
        assert single_link(np.empty((0, 2))).edges == []
        assert single_link(np.asarray([[1.0, 2.0]])).edges == []

    def test_mst_total_weight_matches_bruteforce(self, rng):
        """Compare against an O(n^2 log n) Kruskal reference."""
        points = rng.normal(size=(25, 2))
        result = single_link(points)
        prim_total = sum(w for w, __, __ in result.edges)

        # Kruskal reference.
        n = points.shape[0]
        all_edges = []
        for i in range(n):
            for j in range(i + 1, n):
                all_edges.append((float(np.linalg.norm(points[i] - points[j])), i, j))
        all_edges.sort()
        parent = list(range(n))

        def find(x):
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        kruskal_total, used = 0.0, 0
        for w, u, v in all_edges:
            if find(u) != find(v):
                parent[find(u)] = find(v)
                kruskal_total += w
                used += 1
                if used == n - 1:
                    break
        assert prim_total == pytest.approx(kruskal_total)


class TestCutByDistance:
    def test_two_separated_blobs(self, rng):
        a = rng.normal(0, 0.3, size=(20, 2))
        b = rng.normal(0, 0.3, size=(20, 2)) + [10.0, 0.0]
        labels = cut_by_distance(single_link(np.concatenate([a, b])), 2.0)
        assert np.unique(labels[:20]).size == 1
        assert np.unique(labels[20:]).size == 1
        assert labels[0] != labels[20]

    def test_threshold_zero_all_singletons(self, rng):
        points = rng.normal(size=(10, 2))
        labels = cut_by_distance(single_link(points), 0.0)
        assert np.unique(labels).size == 10

    def test_huge_threshold_one_cluster(self, rng):
        points = rng.normal(size=(10, 2))
        labels = cut_by_distance(single_link(points), 1e9)
        assert np.unique(labels).size == 1

    def test_min_cluster_size_suppression(self):
        points = np.asarray(
            [[0.0, 0.0], [0.1, 0.0], [0.2, 0.0], [50.0, 50.0]]
        )
        labels = cut_by_distance(single_link(points), 0.5, min_cluster_size=2)
        assert labels[3] == NOISE
        assert (labels[:3] >= 0).all()

    def test_chaining_effect(self):
        """Single-link's defining (mis)behaviour: a chain of stepping
        stones merges two groups that are far apart."""
        left = np.asarray([[0.0, 0.0], [0.5, 0.0]])
        right = np.asarray([[10.0, 0.0], [10.5, 0.0]])
        bridge = np.asarray([[i * 1.0 + 1.0, 0.0] for i in range(9)])
        points = np.concatenate([left, right, bridge])
        labels = cut_by_distance(single_link(points), 1.1)
        assert np.unique(labels).size == 1  # everything chained together


class TestCutByCount:
    def test_exact_component_count(self, rng):
        points = rng.normal(size=(30, 2))
        for k in (1, 3, 7, 30):
            labels = cut_by_count(single_link(points), k)
            assert np.unique(labels).size == k
            assert (labels >= 0).all()

    def test_rejects_bad_k(self, rng):
        result = single_link(rng.normal(size=(5, 2)))
        with pytest.raises(ValueError, match="k must be"):
            cut_by_count(result, 0)
        with pytest.raises(ValueError, match="k must be"):
            cut_by_count(result, 6)

    def test_k_respects_structure(self, rng):
        a = rng.normal(0, 0.3, size=(15, 2))
        b = rng.normal(0, 0.3, size=(15, 2)) + [8.0, 0.0]
        c = rng.normal(0, 0.3, size=(15, 2)) + [0.0, 8.0]
        labels = cut_by_count(single_link(np.concatenate([a, b, c])), 3)
        for block in (labels[:15], labels[15:30], labels[30:]):
            assert np.unique(block).size == 1
        assert np.unique(labels).size == 3

    @given(seed=st.integers(0, 10_000), k=st.integers(1, 10))
    @settings(max_examples=30, deadline=None)
    def test_property_partition_valid(self, seed, k):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(10, 40))
        points = rng.uniform(-5, 5, size=(n, 2))
        k = min(k, n)
        labels = cut_by_count(single_link(points), k)
        assert labels.shape == (n,)
        assert np.unique(labels).size == k

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_property_nested_cuts(self, seed):
        """A looser distance cut never has more components."""
        rng = np.random.default_rng(seed)
        points = rng.uniform(-5, 5, size=(25, 2))
        dendrogram = single_link(points)
        tight = cut_by_distance(dendrogram, 0.5)
        loose = cut_by_distance(dendrogram, 2.0)
        assert np.unique(loose).size <= np.unique(tight).size
