"""Unit + property tests for the dynamic grid index."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.dynamic import DynamicGridIndex


def _oracle(live_points: dict[int, np.ndarray], query: np.ndarray, eps: float) -> list[int]:
    hits = []
    for idx, point in live_points.items():
        if np.linalg.norm(point - query) <= eps:
            hits.append(idx)
    return sorted(hits)


class TestConstruction:
    def test_rejects_bad_dim(self):
        with pytest.raises(ValueError, match="dim"):
            DynamicGridIndex(0, cell_size=1.0)

    def test_rejects_bad_cell(self):
        with pytest.raises(ValueError, match="cell_size"):
            DynamicGridIndex(2, cell_size=-1.0)

    def test_rejects_unsupported_metric(self):
        from repro.data.distance import Metric, euclidean

        weird = Metric("weird2", euclidean.pairwise, euclidean.to_many)
        with pytest.raises(ValueError, match="supports"):
            DynamicGridIndex(2, cell_size=1.0, metric=weird)


class TestInsertRemove:
    def test_insert_returns_stable_indices(self):
        grid = DynamicGridIndex(2, cell_size=1.0)
        a = grid.insert([0.0, 0.0])
        b = grid.insert([1.0, 1.0])
        assert (a, b) == (0, 1)
        assert len(grid) == 2
        assert a in grid and b in grid

    def test_insert_wrong_shape_raises(self):
        grid = DynamicGridIndex(2, cell_size=1.0)
        with pytest.raises(ValueError, match="expected"):
            grid.insert([1.0, 2.0, 3.0])

    def test_remove_tombstones(self):
        grid = DynamicGridIndex(2, cell_size=1.0)
        a = grid.insert([0.0, 0.0])
        grid.insert([2.0, 2.0])
        grid.remove(a)
        assert len(grid) == 1
        assert a not in grid
        assert grid.range_query(np.zeros(2), 0.5).size == 0

    def test_remove_twice_raises(self):
        grid = DynamicGridIndex(2, cell_size=1.0)
        a = grid.insert([0.0, 0.0])
        grid.remove(a)
        with pytest.raises(KeyError):
            grid.remove(a)

    def test_point_accessor(self):
        grid = DynamicGridIndex(2, cell_size=1.0)
        a = grid.insert([3.0, 4.0])
        np.testing.assert_array_equal(grid.point(a), [3.0, 4.0])
        grid.remove(a)
        with pytest.raises(KeyError):
            grid.point(a)

    def test_indices_never_reused(self):
        grid = DynamicGridIndex(2, cell_size=1.0)
        a = grid.insert([0.0, 0.0])
        grid.remove(a)
        b = grid.insert([0.0, 0.0])
        assert b != a

    def test_live_indices_sorted(self):
        grid = DynamicGridIndex(1, cell_size=1.0)
        ids = [grid.insert([float(i)]) for i in range(5)]
        grid.remove(ids[2])
        np.testing.assert_array_equal(grid.live_indices(), [0, 1, 3, 4])


class TestQueries:
    def test_region_query_includes_self(self):
        grid = DynamicGridIndex(2, cell_size=1.0)
        a = grid.insert([0.0, 0.0])
        assert a in grid.region_query(a, 0.0)

    def test_matches_oracle_after_churn(self, rng):
        grid = DynamicGridIndex(2, cell_size=0.8)
        live: dict[int, np.ndarray] = {}
        for __ in range(300):
            if live and rng.random() < 0.3:
                victim = int(rng.choice(list(live)))
                grid.remove(victim)
                del live[victim]
            else:
                p = rng.uniform(-4, 4, size=2)
                live[grid.insert(p)] = p
        for __ in range(20):
            q = rng.uniform(-5, 5, size=2)
            eps = float(rng.uniform(0.1, 3.0))
            assert list(grid.range_query(q, eps)) == _oracle(live, q, eps)

    @given(seed=st.integers(0, 5000))
    @settings(max_examples=20, deadline=None)
    def test_property_random_ops(self, seed):
        rng = np.random.default_rng(seed)
        grid = DynamicGridIndex(2, cell_size=1.0)
        live: dict[int, np.ndarray] = {}
        for __ in range(int(rng.integers(5, 60))):
            if live and rng.random() < 0.4:
                victim = int(rng.choice(list(live)))
                grid.remove(victim)
                del live[victim]
            else:
                p = rng.uniform(-3, 3, size=2)
                live[grid.insert(p)] = p
        q = rng.uniform(-3, 3, size=2)
        eps = float(rng.uniform(0.2, 2.0))
        assert list(grid.range_query(q, eps)) == _oracle(live, q, eps)
        assert grid.count_in_range(q, eps) == len(_oracle(live, q, eps))
