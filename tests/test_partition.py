"""Unit + property tests for the data partitioners."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed.partition import (
    PARTITIONERS,
    partition,
    round_robin,
    skewed_sizes,
    spatial_blocks,
    split,
    uniform_random,
)


class TestUniformRandom:
    def test_equal_sizes(self):
        assignment = uniform_random(100, 4, seed=0)
        counts = np.bincount(assignment)
        np.testing.assert_array_equal(counts, [25, 25, 25, 25])

    def test_remainder_spread(self):
        assignment = uniform_random(10, 3, seed=0)
        counts = np.bincount(assignment)
        assert counts.max() - counts.min() <= 1

    def test_deterministic_per_seed(self):
        a = uniform_random(50, 5, seed=7)
        b = uniform_random(50, 5, seed=7)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = uniform_random(50, 5, seed=1)
        b = uniform_random(50, 5, seed=2)
        assert not np.array_equal(a, b)

    def test_rejects_more_sites_than_objects(self):
        with pytest.raises(ValueError, match="cannot spread"):
            uniform_random(3, 5)

    def test_rejects_zero_sites(self):
        with pytest.raises(ValueError, match="n_sites"):
            uniform_random(10, 0)


class TestRoundRobin:
    def test_pattern(self):
        np.testing.assert_array_equal(round_robin(6, 3), [0, 1, 2, 0, 1, 2])


class TestSpatialBlocks:
    def test_blocks_are_contiguous_in_space(self, rng):
        points = rng.uniform(0, 100, size=(200, 2))
        assignment = spatial_blocks(points, 4, axis=0)
        maxima = [points[assignment == s, 0].max() for s in range(3)]
        minima = [points[assignment == s, 0].min() for s in range(1, 4)]
        for hi, lo in zip(maxima, minima):
            assert hi <= lo + 1e-9

    def test_axis_selection(self, rng):
        points = rng.uniform(0, 100, size=(100, 2))
        a0 = spatial_blocks(points, 2, axis=0)
        a1 = spatial_blocks(points, 2, axis=1)
        assert not np.array_equal(a0, a1)


class TestSkewedSizes:
    def test_sizes_decay(self):
        assignment = skewed_sizes(1000, 4, ratio=4.0, seed=0)
        counts = np.bincount(assignment, minlength=4)
        assert (counts > 0).all()
        assert counts[0] > counts[1] > counts[2]

    def test_rejects_bad_ratio(self):
        with pytest.raises(ValueError, match="ratio"):
            skewed_sizes(100, 3, ratio=1.0)


class TestSplit:
    def test_partition_reassembles(self, rng):
        points = rng.normal(size=(60, 2))
        assignment = uniform_random(60, 3, seed=1)
        parts = split(points, assignment)
        assert sum(p.shape[0] for p in parts) == 60
        for site, part in enumerate(parts):
            np.testing.assert_allclose(part, points[assignment == site])

    def test_length_mismatch(self, rng):
        with pytest.raises(ValueError, match="assignments"):
            split(rng.normal(size=(5, 2)), np.asarray([0, 1]))


class TestDispatch:
    @pytest.mark.parametrize("strategy", PARTITIONERS)
    def test_each_strategy_covers_all_objects(self, strategy, rng):
        points = rng.uniform(0, 10, size=(80, 2))
        assignment = partition(points, 4, strategy, seed=3)
        assert assignment.shape == (80,)
        assert set(np.unique(assignment)) == {0, 1, 2, 3}

    def test_unknown_strategy(self, rng):
        with pytest.raises(ValueError, match="unknown strategy"):
            partition(rng.normal(size=(10, 2)), 2, "hash_ring")

    @given(
        n=st.integers(8, 200),
        n_sites=st.integers(1, 8),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_every_object_assigned_once(self, n, n_sites, seed):
        if n < n_sites:
            return
        assignment = uniform_random(n, n_sites, seed=seed)
        assert assignment.shape == (n,)
        assert assignment.min() >= 0 and assignment.max() < n_sites
        counts = np.bincount(assignment, minlength=n_sites)
        assert counts.sum() == n
        assert counts.max() - counts.min() <= 1
