"""Unit tests for the synthetic data generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.generators import (
    as_rng,
    gaussian_blobs,
    random_cluster_dataset,
    ring,
    two_moons,
    uniform_noise,
)


class TestAsRng:
    def test_int_seed(self):
        rng = as_rng(5)
        assert isinstance(rng, np.random.Generator)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert as_rng(rng) is rng


class TestGaussianBlobs:
    def test_counts_and_labels(self):
        points, labels = gaussian_blobs(
            [10, 20], np.asarray([[0.0, 0.0], [5.0, 5.0]]), 0.5, seed=0
        )
        assert points.shape == (30, 2)
        assert (labels[:10] == 0).all() and (labels[10:] == 1).all()

    def test_blobs_near_centers(self):
        points, labels = gaussian_blobs(
            [500], np.asarray([[3.0, -2.0]]), 0.5, seed=1
        )
        np.testing.assert_allclose(points.mean(axis=0), [3.0, -2.0], atol=0.1)

    def test_count_mismatch_raises(self):
        with pytest.raises(ValueError, match="counts"):
            gaussian_blobs([10], np.zeros((2, 2)), 1.0)

    def test_std_mismatch_raises(self):
        with pytest.raises(ValueError, match="stds"):
            gaussian_blobs([10, 10], np.zeros((2, 2)), [1.0])

    def test_deterministic(self):
        a, __ = gaussian_blobs([10], np.zeros((1, 2)), 1.0, seed=7)
        b, __ = gaussian_blobs([10], np.zeros((1, 2)), 1.0, seed=7)
        np.testing.assert_array_equal(a, b)


class TestUniformNoise:
    def test_bounds_respected(self):
        points = uniform_noise(500, (2.0, 4.0), dim=3, seed=0)
        assert points.shape == (500, 3)
        assert points.min() >= 2.0 and points.max() <= 4.0

    def test_per_axis_bounds(self):
        bounds = np.asarray([[0.0, 1.0], [10.0, 20.0]])
        points = uniform_noise(200, bounds, seed=0)
        assert points[:, 0].max() <= 1.0
        assert points[:, 1].min() >= 10.0


class TestRing:
    def test_radii_near_target(self):
        points = ring(1000, center=(5.0, 5.0), radius=10.0, width=0.3, seed=0)
        radii = np.linalg.norm(points - [5.0, 5.0], axis=1)
        assert abs(radii.mean() - 10.0) < 0.2
        assert radii.std() < 1.0

    def test_hole_in_middle(self):
        points = ring(500, center=(0.0, 0.0), radius=8.0, width=0.5, seed=0)
        radii = np.linalg.norm(points, axis=1)
        assert radii.min() > 4.0


class TestTwoMoons:
    def test_shape_and_labels(self):
        points, labels = two_moons(301, seed=0)
        assert points.shape == (301, 2)
        assert set(np.unique(labels)) == {0, 1}
        assert abs(int((labels == 0).sum()) - 150) <= 1

    def test_scale(self):
        small, __ = two_moons(100, scale=1.0, seed=1)
        large, __ = two_moons(100, scale=10.0, seed=1)
        np.testing.assert_allclose(large, small * 10.0)


class TestRandomClusterDataset:
    def test_total_count_exact(self):
        points, labels = random_cluster_dataset(997, 7, noise_fraction=0.1, seed=0)
        assert points.shape == (997, 2)
        assert labels.shape == (997,)

    def test_noise_fraction_respected(self):
        __, labels = random_cluster_dataset(1000, 5, noise_fraction=0.2, seed=0)
        assert int((labels == -1).sum()) == 200

    def test_all_clusters_present(self):
        __, labels = random_cluster_dataset(1000, 6, seed=0)
        assert set(np.unique(labels[labels >= 0])) == set(range(6))

    def test_centers_separated(self):
        points, labels = random_cluster_dataset(
            2000, 8, min_separation=15.0, noise_fraction=0.0, seed=3
        )
        centers = np.asarray(
            [points[labels == c].mean(axis=0) for c in range(8)]
        )
        for i in range(8):
            for j in range(i + 1, 8):
                assert np.linalg.norm(centers[i] - centers[j]) > 8.0

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError, match="noise_fraction"):
            random_cluster_dataset(100, 3, noise_fraction=1.0)

    def test_rejects_bad_cluster_count(self):
        with pytest.raises(ValueError, match="n_clusters"):
            random_cluster_dataset(100, 0)

    def test_shuffled_output(self):
        __, labels = random_cluster_dataset(500, 4, seed=0)
        # Labels must not be sorted runs (the generator shuffles).
        assert (np.diff(labels) != 0).sum() > 100
