"""Shared fixtures for the benchmark suite.

Benchmarks are sized to finish in minutes on a laptop while preserving the
paper's shapes; the CLI (``python -m repro.cli``) runs the full-size
experiments.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.datasets import dataset_a


@pytest.fixture(scope="session")
def bench_dataset_small():
    """Data set A at 2 000 points (micro benchmarks)."""
    return dataset_a(cardinality=2_000, seed=42)


@pytest.fixture(scope="session")
def bench_dataset_medium():
    """Data set A at 8 700 points (the paper's original size)."""
    return dataset_a(cardinality=8_700, seed=42)


@pytest.fixture(scope="session")
def bench_labels(bench_dataset_medium):
    """A central clustering of the medium data set, reused across benches."""
    from repro.clustering.dbscan import dbscan

    data = bench_dataset_medium
    return dbscan(data.points, data.eps_local, data.min_pts)
