"""Index ablation benchmark — region-query throughput per index kind.

DESIGN.md's index ablation: the uniform grid should dominate for DBSCAN's
fixed-radius workload, with kd-tree and R-tree in the middle and the brute
scan last — while all four return identical results.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.dbscan import dbscan
from repro.index import build_index

N_POINTS = 5_000
N_QUERIES = 200
EPS = 2.4


@pytest.fixture(scope="module")
def query_workload(bench_dataset_medium):
    points = bench_dataset_medium.points[:N_POINTS]
    rng = np.random.default_rng(0)
    queries = points[rng.choice(points.shape[0], size=N_QUERIES, replace=False)]
    return points, queries


@pytest.mark.parametrize("kind", ["grid", "kdtree", "rtree", "mtree", "brute"])
def test_index_build(benchmark, kind, query_workload):
    points, __ = query_workload
    index = benchmark(build_index, points, kind, eps=EPS)
    assert len(index) == N_POINTS


@pytest.mark.parametrize("kind", ["grid", "kdtree", "rtree", "mtree", "brute"])
def test_index_range_queries(benchmark, kind, query_workload):
    points, queries = query_workload
    index = build_index(points, kind, eps=EPS)

    def run_queries():
        total = 0
        for q in queries:
            total += index.range_query(q, EPS).size
        return total

    total = benchmark(run_queries)
    assert total > 0


@pytest.mark.parametrize("kind", ["grid", "kdtree", "rtree", "brute"])
def test_dbscan_by_index(benchmark, kind, bench_dataset_small):
    data = bench_dataset_small
    result = benchmark.pedantic(
        dbscan,
        args=(data.points, data.eps_local, data.min_pts),
        kwargs={"index_kind": kind},
        rounds=3,
        iterations=1,
    )
    assert result.n_clusters > 0


def test_indexes_agree_exactly(query_workload):
    """Correctness backstop inside the benchmark suite."""
    points, queries = query_workload
    indexes = {kind: build_index(points, kind, eps=EPS) for kind in
               ("grid", "kdtree", "rtree", "mtree", "brute")}
    for q in queries[:20]:
        reference = indexes["brute"].range_query(q, EPS)
        for kind in ("grid", "kdtree", "rtree", "mtree"):
            np.testing.assert_array_equal(
                indexes[kind].range_query(q, EPS), reference
            )
