"""Component micro-benchmarks: local models, global merge, relabel, quality.

These time the four DBDC protocol steps in isolation, plus the quality
framework — useful to see where the pipeline's time goes (the paper only
reports end-to-end numbers).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.global_model import build_global_model
from repro.core.local import build_rep_kmeans_model, build_rep_scor_model
from repro.core.relabel import relabel_site
from repro.quality.qdbdc import evaluate_quality


@pytest.fixture(scope="module")
def site_points(bench_dataset_medium):
    """One simulated site: a quarter of data set A."""
    rng = np.random.default_rng(1)
    points = bench_dataset_medium.points
    chosen = rng.choice(points.shape[0], size=points.shape[0] // 4, replace=False)
    return points[chosen], bench_dataset_medium


def test_local_model_rep_scor(benchmark, site_points):
    points, data = site_points
    outcome = benchmark.pedantic(
        build_rep_scor_model,
        args=(points, data.eps_local, data.min_pts),
        rounds=3,
        iterations=1,
    )
    assert len(outcome.model) > 0


def test_local_model_rep_kmeans(benchmark, site_points):
    points, data = site_points
    outcome = benchmark.pedantic(
        build_rep_kmeans_model,
        args=(points, data.eps_local, data.min_pts),
        rounds=3,
        iterations=1,
    )
    assert len(outcome.model) > 0


@pytest.fixture(scope="module")
def models_and_site(site_points):
    points, data = site_points
    outcome = build_rep_scor_model(points, data.eps_local, data.min_pts)
    return points, outcome, data


def test_global_model_merge(benchmark, models_and_site):
    __, outcome, __data = models_and_site
    models = [outcome.model] * 4  # four identical sites' worth of reps
    model, stats = benchmark(build_global_model, models)
    assert stats.n_representatives == 4 * len(outcome.model)


def test_relabel_step(benchmark, models_and_site):
    points, outcome, __data = models_and_site
    global_model, __ = build_global_model([outcome.model])
    labels, stats = benchmark(
        relabel_site,
        points,
        outcome.clustering.labels,
        global_model,
        site_id=0,
    )
    assert stats.n_objects == points.shape[0]


def test_quality_evaluation(benchmark, bench_labels):
    labels = bench_labels.labels
    shuffled = labels.copy()
    rng = np.random.default_rng(2)
    flip = rng.choice(labels.size, size=labels.size // 20, replace=False)
    shuffled[flip] = -1
    report = benchmark(evaluate_quality, shuffled, labels, qp=6)
    assert 0.0 < report.q_p2 < 1.0


def test_serialization_roundtrip(benchmark, models_and_site):
    __, outcome, __data = models_and_site
    model = outcome.model

    def roundtrip():
        from repro.core.models import LocalModel

        return LocalModel.from_bytes(model.to_bytes())

    restored = benchmark(roundtrip)
    assert len(restored) == len(model)
