"""Figure 9 benchmark — quality vs Eps_global.

Times one full quality evaluation (DBDC run + both quality functions) and
asserts the figure's shape: ``P^II`` peaks at ``Eps_global = 2·Eps_local``
while ``P^I`` stays flat.
"""

from __future__ import annotations

import pytest

from repro.experiments.fig9 import run_fig9


@pytest.fixture(scope="module")
def fig9_table():
    return run_fig9(
        factors=(0.5, 1.0, 2.0, 4.0, 10.0), cardinality=3_000, n_sites=4, seed=42
    )


def test_fig9_sweep(benchmark):
    table = benchmark.pedantic(
        run_fig9,
        kwargs={"factors": (1.0, 2.0), "cardinality": 2_000, "n_sites": 3, "seed": 42},
        rounds=2,
        iterations=1,
    )
    assert len(table.rows) == 2


def test_fig9_shape_p2_peaks_at_two(fig9_table):
    p2 = fig9_table.column("P^II Scor [%]")
    factors = fig9_table.column("Eps_global / Eps_local")
    best = factors[p2.index(max(p2))]
    assert best in (1.0, 2.0)  # the paper's default region
    assert p2[factors.index(2.0)] > p2[factors.index(0.5)]
    assert p2[factors.index(2.0)] > p2[factors.index(10.0)]


def test_fig9_shape_p1_flat(fig9_table):
    p1 = fig9_table.column("P^I Scor [%]")
    assert max(p1) - min(p1) < 20.0
