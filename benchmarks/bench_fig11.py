"""Figure 11 benchmark — quality across data sets A, B and C.

Times the per-data-set trial and asserts the figure's shape: every
data set scores high, and the very noisy B scores lowest under ``P^II``.
"""

from __future__ import annotations

import pytest

from repro.experiments.fig11 import run_fig11


@pytest.fixture(scope="module")
def fig11_table():
    return run_fig11(n_sites=4, seed=0)


def test_fig11_dataset_c(benchmark):
    table = benchmark.pedantic(
        run_fig11, kwargs={"names": ("C",), "n_sites": 4, "seed": 0},
        rounds=2, iterations=1,
    )
    assert table.column("dataset") == ["C"]


def test_fig11_shape_all_high(fig11_table):
    for column in ("P^II kMeans", "P^II Scor", "P^I kMeans", "P^I Scor"):
        for value in fig11_table.column(column):
            assert value > 80.0


def test_fig11_shape_noisy_b_lowest_p2(fig11_table):
    names = fig11_table.column("dataset")
    p2 = fig11_table.column("P^II Scor")
    scores = dict(zip(names, p2))
    assert scores["B"] <= scores["A"]
    assert scores["B"] <= scores["C"]
