"""Incremental DBSCAN benchmark — streaming maintenance vs re-clustering.

The extension the paper motivates in §4/§6: inserting representatives one
at a time into an incremental clustering should beat re-running DBSCAN from
scratch per arrival by a wide margin.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.dbscan import dbscan
from repro.clustering.incremental import IncrementalDBSCAN

N_STREAM = 400
EPS, MIN_PTS = 1.2, 5


@pytest.fixture(scope="module")
def stream(bench_dataset_small):
    rng = np.random.default_rng(3)
    points = bench_dataset_small.points
    chosen = rng.choice(points.shape[0], size=N_STREAM, replace=False)
    return points[chosen]


def test_incremental_insert_stream(benchmark, stream):
    def run():
        inc = IncrementalDBSCAN(EPS, MIN_PTS, 2)
        for p in stream:
            inc.insert(p)
        return inc

    inc = benchmark.pedantic(run, rounds=3, iterations=1)
    assert inc.cluster_count() > 0


def test_repeated_batch_reclustering(benchmark, stream):
    """The naive alternative: re-run DBSCAN after every tenth arrival."""

    def run():
        last = None
        for end in range(10, N_STREAM + 1, 10):
            last = dbscan(stream[:end], EPS, MIN_PTS)
        return last

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.n_clusters > 0


def test_incremental_mixed_workload(benchmark, stream):
    def run():
        inc = IncrementalDBSCAN(EPS, MIN_PTS, 2)
        live = []
        rng = np.random.default_rng(4)
        for p in stream:
            live.append(inc.insert(p))
            if len(live) > 50 and rng.random() < 0.2:
                inc.delete(live.pop(int(rng.integers(len(live)))))
        return inc

    inc = benchmark.pedantic(run, rounds=2, iterations=1)
    assert len(inc) > 0


def test_incremental_final_state_matches_batch(stream):
    """Correctness backstop: the streamed clustering equals a batch run."""
    inc = IncrementalDBSCAN(EPS, MIN_PTS, 2)
    for p in stream:
        inc.insert(p)
    batch = dbscan(stream, EPS, MIN_PTS)
    assert inc.cluster_count() == batch.n_clusters
