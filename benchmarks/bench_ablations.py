"""Ablation benchmarks — partition strategies and transmission volume.

Shapes under test (DESIGN.md §5):

* the paper's uniform-random split is the friendly case; spatially
  correlated sites must not *improve* quality;
* the transmitted model volume stays far below the raw data volume for
  both local model schemes.
"""

from __future__ import annotations

import pytest

from repro.experiments.ablations import (
    run_partition_ablation,
    run_transmission_ablation,
)


def test_partition_ablation(benchmark):
    table = benchmark.pedantic(
        run_partition_ablation,
        kwargs={"cardinality": 2_000, "n_sites": 4, "seed": 42},
        rounds=2,
        iterations=1,
    )
    strategies = table.column("strategy")
    p2 = dict(zip(strategies, table.column("P^II [%]")))
    assert p2["uniform_random"] >= p2["spatial_blocks"] - 5.0


def test_transmission_ablation(benchmark):
    table = benchmark.pedantic(
        run_transmission_ablation,
        kwargs={"cardinality": 4_000, "n_sites": 4, "seed": 42},
        rounds=2,
        iterations=1,
    )
    for ratio in table.column("volume ratio [%]"):
        assert ratio < 60.0


@pytest.mark.parametrize("strategy", ["uniform_random", "spatial_blocks", "skewed_sizes"])
def test_dbdc_by_partition_strategy(benchmark, strategy, bench_dataset_small):
    from repro.core.dbdc import DBDCConfig, run_dbdc_partitioned
    from repro.distributed.partition import partition

    data = bench_dataset_small
    assignment = partition(data.points, 4, strategy, seed=0)
    config = DBDCConfig(eps_local=data.eps_local, min_pts_local=data.min_pts)
    run = benchmark.pedantic(
        run_dbdc_partitioned,
        args=(data.points, assignment, config),
        rounds=3,
        iterations=1,
    )
    assert run.result.n_global_clusters > 0
