"""Figure 7 benchmark — central DBSCAN vs DBDC runtime vs cardinality.

Paper shape under test: DBDC's overall runtime (max local + global) beats
central DBSCAN as the cardinality grows, and ``REP_Scor`` is cheaper than
``REP_kMeans``; at small cardinalities the two approaches are comparable
(Figures 7a/7b).
"""

from __future__ import annotations

import pytest

from repro.clustering.dbscan import dbscan
from repro.core.dbdc import DBDCConfig, run_dbdc_partitioned
from repro.data.datasets import dataset_a
from repro.distributed.partition import uniform_random

N_SITES = 4


def _dbdc_once(points, eps, min_pts, scheme, n_sites=N_SITES):
    assignment = uniform_random(points.shape[0], n_sites, seed=0)
    config = DBDCConfig(eps_local=eps, min_pts_local=min_pts, scheme=scheme)
    return run_dbdc_partitioned(points, assignment, config)


@pytest.mark.parametrize("cardinality", [2_000, 8_700], ids=["small", "paper-size"])
def test_fig7_central_dbscan(benchmark, cardinality):
    data = dataset_a(cardinality=cardinality, seed=42)
    result = benchmark.pedantic(
        dbscan,
        args=(data.points, data.eps_local, data.min_pts),
        rounds=3,
        iterations=1,
    )
    assert result.n_clusters > 0


@pytest.mark.parametrize("cardinality", [2_000, 8_700], ids=["small", "paper-size"])
@pytest.mark.parametrize("scheme", ["rep_scor", "rep_kmeans"])
def test_fig7_dbdc(benchmark, cardinality, scheme):
    data = dataset_a(cardinality=cardinality, seed=42)
    run = benchmark.pedantic(
        _dbdc_once,
        args=(data.points, data.eps_local, data.min_pts, scheme),
        rounds=3,
        iterations=1,
    )
    assert run.result.n_global_clusters > 0
    # Transmission stays a small fraction of the data (Section 1's claim).
    assert run.result.representative_fraction < 0.5


def test_fig7_shape_dbdc_beats_central_at_scale():
    """Non-timing assertion of the figure's headline: at the paper's
    cardinality DBDC's accounted runtime undercuts central DBSCAN."""
    import time

    data = dataset_a(cardinality=8_700, seed=42)
    start = time.perf_counter()
    dbscan(data.points, data.eps_local, data.min_pts)
    central_seconds = time.perf_counter() - start
    run = _dbdc_once(data.points, data.eps_local, data.min_pts, "rep_scor")
    assert run.result.overall_seconds < central_seconds
