"""Figure 8 benchmark — DBDC runtime vs number of sites.

Paper shape under test: with the cardinality fixed, DBDC's overall runtime
(max local + global) shrinks as sites are added, i.e. the speed-up over a
central run grows with the number of sites.
"""

from __future__ import annotations

import pytest

from repro.core.dbdc import DBDCConfig, run_dbdc_partitioned
from repro.data.datasets import dataset_a
from repro.distributed.partition import uniform_random

CARDINALITY = 8_700


def _dbdc(points, eps, min_pts, n_sites):
    assignment = uniform_random(points.shape[0], n_sites, seed=0)
    config = DBDCConfig(eps_local=eps, min_pts_local=min_pts, scheme="rep_scor")
    return run_dbdc_partitioned(points, assignment, config)


@pytest.mark.parametrize("n_sites", [1, 2, 4, 8, 16])
def test_fig8_dbdc_by_sites(benchmark, n_sites):
    data = dataset_a(cardinality=CARDINALITY, seed=42)
    run = benchmark.pedantic(
        _dbdc,
        args=(data.points, data.eps_local, data.min_pts, n_sites),
        rounds=3,
        iterations=1,
    )
    assert run.result.n_sites == n_sites


def test_fig8_shape_speedup_grows_with_sites():
    """The accounted runtime at 16 sites undercuts the 2-site run."""
    data = dataset_a(cardinality=CARDINALITY, seed=42)
    few = _dbdc(data.points, data.eps_local, data.min_pts, 2)
    many = _dbdc(data.points, data.eps_local, data.min_pts, 16)
    assert many.result.overall_seconds < few.result.overall_seconds
