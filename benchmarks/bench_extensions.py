"""Benchmarks for the extension systems: hierarchy, streaming, baselines.

Shapes under test:

* hierarchical DBDC sends less long-haul traffic than the flat topology
  at comparable quality;
* the streaming scenario's lazy retransmission uploads less than an eager
  per-round policy;
* the §4 baseline comparison keeps its claim matrix.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.datasets import dataset_a
from repro.distributed.hierarchy import run_hierarchical_dbdc
from repro.distributed.partition import split, uniform_random
from repro.distributed.scenario import StreamingScenario
from repro.experiments.baselines import run_baseline_comparison


@pytest.fixture(scope="module")
def hierarchy_workload():
    data = dataset_a(cardinality=4_000, seed=42)
    assignment = uniform_random(data.n, 6, seed=0)
    parts = split(data.points, assignment)
    return data, [parts[:3], parts[3:]]


def test_hierarchical_run(benchmark, hierarchy_workload):
    data, regions = hierarchy_workload
    report = benchmark.pedantic(
        run_hierarchical_dbdc,
        args=(regions,),
        kwargs={"eps_local": data.eps_local, "min_pts_local": data.min_pts},
        rounds=3,
        iterations=1,
    )
    assert report.long_haul_bytes < report.flat_equivalent_bytes
    assert report.global_model.n_global_clusters > 0


def test_streaming_scenario_rounds(benchmark):
    rng = np.random.default_rng(0)
    hotspots = np.asarray([[10.0, 10.0], [40.0, 15.0]])

    def run():
        scenario = StreamingScenario(3, eps_local=1.8, min_pts_local=5)
        for __ in range(5):
            arrivals = [
                np.concatenate(
                    [hub + rng.normal(0, 1.2, size=(20, 2)) for hub in hotspots]
                )
                for __site in range(3)
            ]
            scenario.run_round(arrivals)
        return scenario

    scenario = benchmark.pedantic(run, rounds=2, iterations=1)
    assert scenario.total_bytes_up() < scenario.eager_bytes_up()
    # Lazy policy: after the first round, stable rounds upload nothing.
    assert sum(s.sites_transmitted for s in scenario.history[1:]) <= 3


def test_baseline_comparison(benchmark):
    table = benchmark.pedantic(
        run_baseline_comparison, kwargs={"seed": 0}, rounds=2, iterations=1
    )
    scores = dict(zip(table.column("workload"), table.column("k-means")))
    assert scores["concentric"] < 0.5  # the §4 claim matrix holds
