"""Figure 10 benchmark — quality vs number of client sites.

Times the per-row trial and asserts the table's shape: quality stays high,
with a mild ``P^II`` decline as the site count grows, and the
representative share stays a small fraction of the data volume.
"""

from __future__ import annotations

import pytest

from repro.experiments.fig10 import run_fig10


@pytest.fixture(scope="module")
def fig10_table():
    return run_fig10(sites=(2, 5, 10, 20), cardinality=4_000, seed=42)


def test_fig10_sweep(benchmark):
    table = benchmark.pedantic(
        run_fig10,
        kwargs={"sites": (2, 8), "cardinality": 2_000, "seed": 42},
        rounds=2,
        iterations=1,
    )
    assert len(table.rows) == 2


def test_fig10_shape_quality_high_and_declining(fig10_table):
    p2 = fig10_table.column("P^II Scor")
    assert p2[0] > 90.0
    assert p2[0] >= p2[-1] - 1.0  # mild decline (never a big jump up)


def test_fig10_shape_representative_share_small(fig10_table):
    for share in fig10_table.column("local repr. [%]"):
        assert 0.0 < share < 40.0


def test_fig10_shape_p1_insensitive(fig10_table):
    """The paper: P^I barely reacts to the site count (its weakness)."""
    p1 = fig10_table.column("P^I Scor")
    assert max(p1) - min(p1) < 10.0
