"""Hot-path benchmark driver: single vs. batched vs. parallel execution.

Thin wrapper over :mod:`repro.perf.hotpaths` so the benchmark lives next to
the other ``bench_*`` modules.  Unlike its pytest-benchmark siblings this is
a plain script — it times whole pipeline paths and writes the
machine-readable ``BENCH_hotpaths.json`` trajectory file::

    PYTHONPATH=src python benchmarks/bench_hotpaths.py --cardinality 20000
    PYTHONPATH=src python benchmarks/bench_hotpaths.py \
        --cardinality 20000,200000,1000000   # memory-budgeted scale sweep

or, equivalently, ``python -m repro.cli bench`` (which spells the sweep
``--bench-cardinality``).  See docs/performance.md for how to read the
output.
"""

from __future__ import annotations

import sys

from repro.perf.hotpaths import (  # noqa: F401  (re-exported for importers)
    format_summary,
    main,
    run_hotpath_bench,
    write_report,
)

if __name__ == "__main__":
    sys.exit(main())
