"""Figure 7 — overall runtime vs cardinality (central vs DBDC).

The paper scales data set A to various cardinalities and compares a
central DBSCAN run against DBDC with both local models on 4 sites:

* **7a** (large cardinalities, up to 100 000): DBDC wins by more than an
  order of magnitude at 100 000 points; ``REP_Scor``'s local model is
  cheaper to compute than ``REP_kMeans``'s.
* **7b** (small cardinalities): DBDC is slightly *slower* than central
  clustering (distribution overhead), but the overhead is almost
  negligible.

DBDC's runtime uses the paper's accounting: max(local) + global.
"""

from __future__ import annotations

from repro.data.datasets import dataset_a
from repro.experiments.common import central_reference, run_trial
from repro.experiments.reporting import ExperimentTable

__all__ = ["run_fig7a", "run_fig7b", "FIG7A_CARDINALITIES", "FIG7B_CARDINALITIES"]

FIG7A_CARDINALITIES = (10_000, 25_000, 50_000, 100_000)
FIG7B_CARDINALITIES = (500, 1_000, 2_000, 5_000, 10_000)

_N_SITES = 4


def _sweep(cardinalities, *, n_sites: int, seed: int) -> ExperimentTable:
    table = ExperimentTable(
        "runtime vs cardinality (data set A structure)",
        [
            "objects",
            "central DBSCAN [s]",
            "DBDC(REP_Scor) [s]",
            "DBDC(REP_kMeans) [s]",
            "speed-up Scor",
            "speed-up kMeans",
        ],
    )
    for n in cardinalities:
        data = dataset_a(cardinality=n, seed=seed)
        central, central_seconds = central_reference(
            data.points, data.eps_local, data.min_pts
        )
        times = {}
        for scheme in ("rep_scor", "rep_kmeans"):
            trial = run_trial(
                data.points,
                n_sites=n_sites,
                eps_local=data.eps_local,
                min_pts=data.min_pts,
                scheme=scheme,
                seed=seed,
                evaluate=False,
            )
            times[scheme] = trial.overall_seconds
        table.add_row(
            n,
            central_seconds,
            times["rep_scor"],
            times["rep_kmeans"],
            central_seconds / times["rep_scor"] if times["rep_scor"] else float("inf"),
            central_seconds / times["rep_kmeans"] if times["rep_kmeans"] else float("inf"),
        )
    table.add_note(f"{n_sites} sites, sequential simulation, overall = max(local) + global")
    return table


def run_fig7a(
    cardinalities=FIG7A_CARDINALITIES, *, n_sites: int = _N_SITES, seed: int = 42
) -> ExperimentTable:
    """Regenerate Figure 7a (high cardinalities).

    Args:
        cardinalities: point counts to sweep.
        n_sites: client sites for DBDC.
        seed: data generation / partitioning seed.

    Returns:
        The runtime table; expected shape: DBDC ≫ central at the top end.
    """
    table = _sweep(cardinalities, n_sites=n_sites, seed=seed)
    table.title = "Fig. 7a — " + table.title + " (high cardinalities)"
    return table


def run_fig7b(
    cardinalities=FIG7B_CARDINALITIES, *, n_sites: int = _N_SITES, seed: int = 42
) -> ExperimentTable:
    """Regenerate Figure 7b (small cardinalities).

    Args: as :func:`run_fig7a`.

    Returns:
        The runtime table; expected shape: small-n overhead for DBDC.
    """
    table = _sweep(cardinalities, n_sites=n_sites, seed=seed)
    table.title = "Fig. 7b — " + table.title + " (small cardinalities)"
    return table
