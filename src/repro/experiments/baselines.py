"""Baseline comparison — why DBDC clusters locally with DBSCAN (Section 4).

The paper justifies its choice of local algorithm qualitatively:

* "K-means ... does not perform well on data with outliers or with
  clusters of different sizes or non-globular shapes",
* "the single link agglomerative clustering method is suitable for
  capturing clusters with non-globular shapes, but ... very sensitive to
  noise and cannot handle clusters of varying density".

This experiment makes those claims quantitative with one purpose-built
workload per claim:

* ``concentric``  — a ring enclosing a blob (non-globular shapes),
* ``noise bridge`` — two clusters connected by dense background noise
  (outliers / noise sensitivity),
* ``varying density`` — a tight and a diffuse cluster at moderate
  distance (no single merge threshold fits both).

Each algorithm is scored against the generator's ground truth with the
adjusted Rand index.  Expected shape: DBSCAN stays high everywhere;
k-means collapses on ``concentric``; single-link collapses on
``noise bridge`` and ``varying density``.
"""

from __future__ import annotations

import numpy as np

from repro.clustering.dbscan import dbscan
from repro.clustering.kmeans import kmeans
from repro.clustering.labels import NOISE
from repro.clustering.singlelink import cut_by_count, single_link
from repro.data.generators import gaussian_blobs, ring, uniform_noise
from repro.experiments.reporting import ExperimentTable
from repro.quality.external import adjusted_rand_index

__all__ = ["run_baseline_comparison", "baseline_workloads"]


def baseline_workloads(seed: int = 0) -> dict[str, dict]:
    """The three pathological workloads, keyed by name.

    Each value holds ``points``, ``truth`` (noise = -1), the DBSCAN
    parameters ``eps``/``min_pts`` and the true cluster count ``k``.
    """
    rng = np.random.default_rng(seed)
    workloads: dict[str, dict] = {}

    # Non-globular: a ring enclosing a central blob — every centroid-based
    # method must cut the ring into wedges.
    ring_points = ring(400, center=(0.0, 0.0), radius=10.0, width=0.4, seed=rng)
    blob_points, __ = gaussian_blobs([200], np.asarray([[0.0, 0.0]]), 1.0, rng)
    workloads["concentric"] = {
        "points": np.concatenate([ring_points, blob_points]),
        "truth": np.concatenate(
            [np.zeros(400, dtype=np.intp), np.ones(200, dtype=np.intp)]
        ),
        "eps": 1.6,
        "min_pts": 5,
        "k": 2,
    }

    # Noise sensitivity: two blobs with dense uniform background — the
    # single-link chain walks right through the noise floor.
    blobs, blob_truth = gaussian_blobs(
        [200, 200], np.asarray([[0.0, 0.0], [14.0, 0.0]]), 1.0, rng
    )
    noise = uniform_noise(500, np.asarray([[-6.0, 20.0], [-6.0, 6.0]]), seed=rng)
    workloads["noise bridge"] = {
        "points": np.concatenate([blobs, noise]),
        "truth": np.concatenate([blob_truth, np.full(500, NOISE, dtype=np.intp)]),
        "eps": 1.2,
        "min_pts": 8,
        "k": 2,
    }

    # Varying density: two tight clusters close together plus one diffuse
    # cluster — the diffuse cluster's internal gaps exceed the tight
    # pair's separation, so single-link shatters the diffuse cluster
    # before it separates the tight pair.
    tight_a, __ = gaussian_blobs([200], np.asarray([[0.0, 0.0]]), 0.4, rng)
    tight_b, __ = gaussian_blobs([200], np.asarray([[4.0, 0.0]]), 0.4, rng)
    diffuse, __ = gaussian_blobs([200], np.asarray([[18.0, 0.0]]), 2.5, rng)
    workloads["varying density"] = {
        "points": np.concatenate([tight_a, tight_b, diffuse]),
        "truth": np.concatenate(
            [
                np.zeros(200, dtype=np.intp),
                np.ones(200, dtype=np.intp),
                np.full(200, 2, dtype=np.intp),
            ]
        ),
        "eps": 0.9,
        "min_pts": 5,
        "k": 3,
    }
    return workloads


def _score(labels: np.ndarray, truth: np.ndarray) -> float:
    """ARI on the generator's clustered objects (truth noise excluded —
    every algorithm is judged on how it groups the real clusters)."""
    mask = truth != NOISE
    return adjusted_rand_index(labels[mask], truth[mask])


def run_baseline_comparison(*, seed: int = 0) -> ExperimentTable:
    """Score DBSCAN vs k-means vs single-link on the three workloads.

    Args:
        seed: workload generation seed.

    Returns:
        Table of adjusted Rand indexes vs ground truth.
    """
    table = ExperimentTable(
        "Baselines — why the local algorithm is DBSCAN (§4)",
        ["workload", "DBSCAN", "k-means", "single-link"],
    )
    for name, spec in baseline_workloads(seed).items():
        points, truth = spec["points"], spec["truth"]
        db = dbscan(points, spec["eps"], spec["min_pts"]).labels
        km = kmeans(points, spec["k"], seed=seed, n_init=5).labels
        sl = cut_by_count(single_link(points), spec["k"])
        table.add_row(name, _score(db, truth), _score(km, truth), _score(sl, truth))
    table.add_note(
        "adjusted Rand index vs generated truth (noise excluded from "
        "scoring); k-means and single-link both receive the true cluster "
        "count k — DBSCAN discovers it"
    )
    return table
