"""Experiment harness: one module per table/figure of the paper's §9.

Every ``run_figN`` function regenerates the corresponding figure's rows as
an :class:`~repro.experiments.reporting.ExperimentTable`; the CLI
(``python -m repro.cli``) prints them and ``benchmarks/`` wraps them in
pytest-benchmark targets.
"""

from repro.experiments.ablations import (
    run_compression_tradeoff,
    run_dimension_ablation,
    run_index_ablation,
    run_metric_ablation,
    run_noise_ablation,
    run_partition_ablation,
    run_site_failure_ablation,
    run_transmission_ablation,
)
from repro.experiments.baselines import baseline_workloads, run_baseline_comparison
from repro.experiments.chaos import (
    chaos_table,
    run_chaos_sweep,
    write_chaos_report,
)
from repro.experiments.common import (
    DistributedTrial,
    central_reference,
    dataset_trial,
    run_trial,
    timed,
)
from repro.experiments.fig6 import cluster_sketch, density_sketch, run_fig6
from repro.experiments.fig7 import run_fig7a, run_fig7b
from repro.experiments.fig8 import run_fig8
from repro.experiments.fig9 import run_fig9
from repro.experiments.fig10 import run_fig10
from repro.experiments.fig11 import run_fig11
from repro.experiments.reporting import ExperimentTable

__all__ = [
    "ExperimentTable",
    "DistributedTrial",
    "central_reference",
    "dataset_trial",
    "run_trial",
    "timed",
    "cluster_sketch",
    "density_sketch",
    "run_fig6",
    "run_fig7a",
    "run_fig7b",
    "run_fig8",
    "run_fig9",
    "run_fig10",
    "run_fig11",
    "run_index_ablation",
    "run_metric_ablation",
    "run_dimension_ablation",
    "run_partition_ablation",
    "run_transmission_ablation",
    "run_noise_ablation",
    "run_site_failure_ablation",
    "run_compression_tradeoff",
    "baseline_workloads",
    "run_baseline_comparison",
    "chaos_table",
    "run_chaos_sweep",
    "write_chaos_report",
]
