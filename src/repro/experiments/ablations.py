"""Ablation studies beyond the paper's reported figures.

These probe the design choices DESIGN.md calls out:

* **index ablation** — DBSCAN runtime under each neighbor index (grid,
  kd-tree, R-tree, brute force); the paper's complexity discussion
  (Section 9.1) hinges on the index making region queries sub-linear.
* **partition ablation** — DBDC quality under the paper's uniform-random
  split versus spatially correlated and size-skewed splits; the paper
  only evaluates the uniform case.
* **transmission ablation** — model bytes versus shipping the raw data,
  the quantified version of the paper's "low transmission cost" claim.
"""

from __future__ import annotations

import numpy as np

from repro.clustering.dbscan import dbscan
from repro.core.dbdc import DBDCConfig, run_dbdc_partitioned
from repro.data.datasets import dataset_a
from repro.distributed.network import LinkSpec
from repro.distributed.partition import partition
from repro.experiments.common import central_reference, timed
from repro.experiments.reporting import ExperimentTable
from repro.quality.qdbdc import evaluate_quality

__all__ = [
    "run_index_ablation",
    "run_partition_ablation",
    "run_transmission_ablation",
    "run_metric_ablation",
    "run_dimension_ablation",
    "run_noise_ablation",
    "run_site_failure_ablation",
    "run_compression_tradeoff",
]


def run_index_ablation(
    *, cardinality: int = 10_000, seed: int = 42
) -> ExperimentTable:
    """DBSCAN runtime and query counts under each neighbor index.

    Args:
        cardinality: data set A size.
        seed: generation seed.

    Returns:
        Table over index kinds; all must produce the identical clustering.
    """
    data = dataset_a(cardinality=cardinality, seed=seed)
    table = ExperimentTable(
        f"Ablation — neighbor index inside DBSCAN ({cardinality} objects)",
        ["index", "runtime [s]", "clusters", "noise", "region queries"],
    )
    reference_labels = None
    for kind in ("grid", "kdtree", "rtree", "brute"):
        result, seconds = timed(
            dbscan, data.points, data.eps_local, data.min_pts, index_kind=kind
        )
        if reference_labels is None:
            reference_labels = result.labels
        elif not np.array_equal(result.labels, reference_labels):
            raise AssertionError(f"index {kind!r} changed the DBSCAN output")
        table.add_row(kind, seconds, result.n_clusters, result.n_noise, result.n_region_queries)
    table.add_note("all indexes are exact: identical labels, different speed")
    return table


def run_partition_ablation(
    *,
    cardinality: int = 8_700,
    n_sites: int = 4,
    seed: int = 42,
) -> ExperimentTable:
    """DBDC quality under different data-to-site assignments.

    The paper assumes an equal random split; spatially correlated sites
    are the adversarial case (local clusters ≠ global clusters).

    Args:
        cardinality: data set A size.
        n_sites: client sites.
        seed: generation / partitioning seed.

    Returns:
        Table over partition strategies with ``P^I``/``P^II``.
    """
    data = dataset_a(cardinality=cardinality, seed=seed)
    central, __ = central_reference(data.points, data.eps_local, data.min_pts)
    table = ExperimentTable(
        f"Ablation — partition strategy ({n_sites} sites, REP_Scor)",
        ["strategy", "P^I [%]", "P^II [%]", "repr. [%]"],
    )
    for strategy in ("uniform_random", "round_robin", "spatial_blocks", "skewed_sizes"):
        assignment = partition(data.points, n_sites, strategy, seed)
        config = DBDCConfig(
            eps_local=data.eps_local, min_pts_local=data.min_pts, scheme="rep_scor"
        )
        run = run_dbdc_partitioned(data.points, assignment, config)
        quality = evaluate_quality(
            run.labels_in_original_order(), central.labels, qp=data.min_pts
        )
        table.add_row(
            strategy,
            quality.q_p1_percent,
            quality.q_p2_percent,
            100.0 * run.result.representative_fraction,
        )
    table.add_note("the paper evaluates only the uniform_random setting")
    return table


def run_metric_ablation(
    *,
    cardinality: int = 4_000,
    n_sites: int = 4,
    seed: int = 42,
) -> ExperimentTable:
    """DBDC under different metrics (§4: DBSCAN works in any metric space).

    The whole pipeline — local DBSCAN, specific ε-ranges, global merge,
    relabeling — is metric-generic; this ablation runs it under three
    ``L_p`` metrics and scores each against a central run *under the same
    metric*.

    Args:
        cardinality: data set A size.
        n_sites: client sites.
        seed: generation / partitioning seed.

    Returns:
        Table over metrics with quality and cluster counts.
    """
    data = dataset_a(cardinality=cardinality, seed=seed)
    table = ExperimentTable(
        f"Ablation — metric-generic pipeline ({cardinality} objects, {n_sites} sites)",
        ["metric", "central clusters", "DBDC clusters", "P^I [%]", "P^II [%]"],
    )
    for metric in ("euclidean", "manhattan", "chebyshev"):
        central, __ = timed(
            dbscan, data.points, data.eps_local, data.min_pts, metric=metric
        )
        assignment = partition(data.points, n_sites, "uniform_random", seed)
        config = DBDCConfig(
            eps_local=data.eps_local,
            min_pts_local=data.min_pts,
            scheme="rep_scor",
            metric=metric,
        )
        run = run_dbdc_partitioned(data.points, assignment, config)
        quality = evaluate_quality(
            run.labels_in_original_order(), central.labels, qp=data.min_pts
        )
        table.add_row(
            metric,
            central.n_clusters,
            run.result.n_global_clusters,
            quality.q_p1_percent,
            quality.q_p2_percent,
        )
    table.add_note(
        "Eps is held constant across metrics; chebyshev balls are larger "
        "and manhattan balls smaller than euclidean, so cluster counts may "
        "differ — the distributed/central agreement is what is under test"
    )
    return table


def run_dimension_ablation(
    *,
    n_per_cluster: int = 400,
    n_clusters: int = 6,
    n_sites: int = 4,
    seed: int = 42,
) -> ExperimentTable:
    """DBDC beyond 2-D: quality and runtime as dimensionality grows.

    The paper evaluates on 2-D point sets only; the algorithm itself is
    dimension-agnostic.  Gaussian clusters are placed on a scaled simplex
    in ``d`` dimensions; ``Eps`` is re-calibrated per dimension (ball
    volume shrinks relative to the data spread as ``d`` grows).

    Args:
        n_per_cluster: objects per generated cluster.
        n_clusters: number of clusters.
        n_sites: client sites.
        seed: generation / partitioning seed.

    Returns:
        Table over dimensions with quality and the DBDC/central runtimes.
    """
    import numpy as np

    from repro.data.generators import gaussian_blobs

    table = ExperimentTable(
        f"Ablation — dimensionality ({n_clusters} clusters × {n_per_cluster} objects)",
        ["dim", "Eps", "central [s]", "DBDC [s]", "P^I [%]", "P^II [%]"],
    )
    rng = np.random.default_rng(seed)
    for dim, eps in ((2, 1.2), (3, 1.5), (5, 2.2), (8, 3.0)):
        centers = rng.uniform(0, 40, size=(n_clusters, dim))
        points, __truth = gaussian_blobs(
            [n_per_cluster] * n_clusters, centers, 1.0, seed=rng
        )
        central, central_seconds = timed(dbscan, points, eps, 6)
        assignment = partition(points, n_sites, "uniform_random", seed)
        config = DBDCConfig(eps_local=eps, min_pts_local=6, scheme="rep_scor")
        run, dbdc_wall = timed(run_dbdc_partitioned, points, assignment, config)
        quality = evaluate_quality(
            run.labels_in_original_order(), central.labels, qp=6
        )
        table.add_row(
            dim,
            eps,
            central_seconds,
            run.result.overall_seconds,
            quality.q_p1_percent,
            quality.q_p2_percent,
        )
    table.add_note("Eps grows with dim to keep the core-object rate comparable")
    return table


def run_compression_tradeoff(
    *,
    cardinality: int = 4_000,
    n_sites: int = 4,
    seed: int = 42,
) -> ExperimentTable:
    """The §5 trade-off made explicit: fewer representatives vs accuracy.

    "We have to find an optimum trade-off between ... a small number of
    representatives [and] an accurate description of a local cluster."
    The number of specific core points is controlled by ``Eps_local``
    (larger balls cover the cluster with fewer representatives), so this
    ablation sweeps ``Eps_local`` and reports the representative share,
    the transmitted bytes, and the quality each setting achieves — with
    the central reference re-clustered at the same ``Eps`` so the
    comparison stays apples-to-apples.

    Args:
        cardinality: data set A size.
        n_sites: client sites.
        seed: generation / partitioning seed.

    Returns:
        Table over ``Eps_local`` values; expected shape: representative
        share falls monotonically with ``Eps_local`` while quality stays
        high over a broad plateau.
    """
    from repro.data.datasets import dataset_a

    data = dataset_a(cardinality=cardinality, seed=seed)
    table = ExperimentTable(
        f"Ablation — representatives vs accuracy (§5 trade-off, {n_sites} sites)",
        ["Eps_local", "repr. [%]", "bytes up", "P^II Scor [%]", "central clusters"],
    )
    assignment = partition(data.points, n_sites, "uniform_random", seed)
    for factor in (0.5, 0.75, 1.0, 1.5, 2.0):
        eps = factor * data.eps_local
        central, __ = timed(dbscan, data.points, eps, data.min_pts)
        config = DBDCConfig(
            eps_local=eps, min_pts_local=data.min_pts, scheme="rep_scor"
        )
        run = run_dbdc_partitioned(data.points, assignment, config)
        quality = evaluate_quality(
            run.labels_in_original_order(), central.labels, qp=data.min_pts
        )
        table.add_row(
            eps,
            100.0 * run.result.representative_fraction,
            run.result.bytes_up,
            quality.q_p2_percent,
            central.n_clusters,
        )
    table.add_note(
        "each row compares against a central DBSCAN run at the same Eps"
    )
    return table


def run_noise_ablation(
    *,
    cardinality: int = 4_000,
    n_sites: int = 4,
    seed: int = 42,
) -> ExperimentTable:
    """DBDC quality as the noise share grows (generalizing data set B).

    The paper shows one "very noisy" data set (B) scoring lowest under
    ``P^II``; this ablation sweeps the noise fraction of the data set A
    structure to trace the whole degradation curve for both local models.

    Args:
        cardinality: total objects.
        n_sites: client sites.
        seed: generation / partitioning seed.

    Returns:
        Table over noise fractions with ``P^I``/``P^II`` per scheme.
    """
    from repro.data.generators import random_cluster_dataset

    eps, min_pts = 2.4, 6
    table = ExperimentTable(
        f"Ablation — noise share ({cardinality} objects, {n_sites} sites)",
        ["noise [%]", "P^I Scor", "P^II Scor", "P^I kMeans", "P^II kMeans"],
    )
    for noise_fraction in (0.0, 0.05, 0.15, 0.30, 0.45):
        points, __truth = random_cluster_dataset(
            cardinality,
            n_clusters=10,
            noise_fraction=noise_fraction,
            min_separation=20.0,
            seed=seed,
        )
        central, __ = timed(dbscan, points, eps, min_pts)
        assignment = partition(points, n_sites, "uniform_random", seed)
        row = [100.0 * noise_fraction]
        for scheme in ("rep_scor", "rep_kmeans"):
            config = DBDCConfig(
                eps_local=eps, min_pts_local=min_pts, scheme=scheme
            )
            run = run_dbdc_partitioned(points, assignment, config)
            quality = evaluate_quality(
                run.labels_in_original_order(), central.labels, qp=min_pts
            )
            row.extend([quality.q_p1_percent, quality.q_p2_percent])
        table.add_row(*row)
    table.add_note("same cluster layout per row; only the uniform background grows")
    return table


def run_site_failure_ablation(
    *,
    cardinality: int = 4_000,
    n_sites: int = 8,
    seed: int = 42,
) -> ExperimentTable:
    """Failure injection: some sites never deliver their local model.

    The paper's server simply clusters whatever models arrived; this
    ablation measures how gracefully the global clustering degrades when
    1, 2 or 4 of 8 sites are unreachable.  Surviving sites still relabel
    with the partial global model; the failed sites' objects count as
    "noise" in the comparison (they got no labels at all).

    Args:
        cardinality: total objects.
        n_sites: client sites.
        seed: generation / partitioning seed.

    Returns:
        Table over failure counts; quality is measured twice — over the
        surviving sites' objects only, and over all objects (failed sites'
        objects scored as unlabeled noise).
    """
    import numpy as np

    from repro.clustering.labels import NOISE
    from repro.core.global_model import build_global_model
    from repro.core.local import build_local_model
    from repro.core.relabel import relabel_site
    from repro.data.datasets import dataset_a
    from repro.distributed.partition import split

    data = dataset_a(cardinality=cardinality, seed=seed)
    central, __ = timed(dbscan, data.points, data.eps_local, data.min_pts)
    assignment = partition(data.points, n_sites, "uniform_random", seed)
    parts = split(data.points, assignment)
    outcomes = [
        build_local_model(
            parts[sid], data.eps_local, data.min_pts, scheme="rep_scor", site_id=sid
        )
        for sid in range(n_sites)
    ]
    table = ExperimentTable(
        f"Ablation — site failures ({n_sites} sites, REP_Scor)",
        [
            "failed sites",
            "global clusters",
            "P^II surviving [%]",
            "P^II overall [%]",
        ],
    )
    for n_failed in (0, 1, 2, 4):
        alive = list(range(n_failed, n_sites))
        models = [outcomes[sid].model for sid in alive]
        global_model, __stats = build_global_model(models)
        labels = np.full(data.n, NOISE, dtype=np.intp)
        surviving_mask = np.zeros(data.n, dtype=bool)
        for sid in alive:
            members = np.flatnonzero(assignment == sid)
            site_labels, __r = relabel_site(
                parts[sid],
                outcomes[sid].clustering.labels,
                global_model,
                site_id=sid,
            )
            labels[members] = site_labels
            surviving_mask[members] = True
        surviving = evaluate_quality(
            labels[surviving_mask], central.labels[surviving_mask], qp=data.min_pts
        )
        overall = evaluate_quality(labels, central.labels, qp=data.min_pts)
        table.add_row(
            n_failed,
            int(np.unique(labels[labels >= 0]).size),
            surviving.q_p2_percent,
            overall.q_p2_percent,
        )
    table.add_note(
        "surviving sites keep near-central quality — lost sites cost only "
        "their own objects, never the others' clustering"
    )
    return table


def run_transmission_ablation(
    *,
    cardinality: int = 8_700,
    n_sites: int = 4,
    seed: int = 42,
) -> ExperimentTable:
    """Model bytes vs raw-data bytes, per scheme (the §1 cost claim).

    Args:
        cardinality: data set A size.
        n_sites: client sites.
        seed: generation / partitioning seed.

    Returns:
        Table with upstream volume, raw baseline and simulated WAN times.
    """
    data = dataset_a(cardinality=cardinality, seed=seed)
    link = LinkSpec()
    table = ExperimentTable(
        f"Ablation — transmission volume ({cardinality} objects, {n_sites} sites)",
        [
            "scheme",
            "model bytes (up)",
            "raw bytes",
            "volume ratio [%]",
            "model WAN [s]",
            "raw WAN [s]",
        ],
    )
    raw_bytes = data.n * data.points.shape[1] * 8
    for scheme in ("rep_scor", "rep_kmeans"):
        assignment = partition(data.points, n_sites, "uniform_random", seed)
        config = DBDCConfig(
            eps_local=data.eps_local, min_pts_local=data.min_pts, scheme=scheme
        )
        run = run_dbdc_partitioned(data.points, assignment, config)
        up = run.result.bytes_up
        table.add_row(
            scheme,
            up,
            raw_bytes,
            100.0 * up / raw_bytes,
            link.transfer_seconds(up),
            link.transfer_seconds(raw_bytes),
        )
    table.add_note("WAN times simulated at 10 Mbit/s, 50 ms latency")
    return table
