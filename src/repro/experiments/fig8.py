"""Figure 8 — overall runtime and speed-up vs number of sites.

The paper fixes a 203 000-point data set (A's structure) and varies the
number of client sites, comparing ``DBDC(REP_Scor)`` to one central DBSCAN
run.  The observed speed-up grows with the number of sites, "somewhere
between O(n) and O(n²)" in their flavor, because DBSCAN itself is
super-linear in the input size.

The default cardinality here is 50 000 so the harness stays laptop-fast;
pass ``cardinality=203_000`` for the paper's full setting.
"""

from __future__ import annotations

from repro.data.datasets import dataset_a
from repro.experiments.common import central_reference, run_trial
from repro.experiments.reporting import ExperimentTable

__all__ = ["run_fig8", "FIG8_SITES"]

FIG8_SITES = (1, 2, 4, 6, 8, 12, 16, 20)


def run_fig8(
    sites=FIG8_SITES,
    *,
    cardinality: int = 50_000,
    seed: int = 42,
    scheme: str = "rep_scor",
    repeats: int = 2,
) -> ExperimentTable:
    """Regenerate Figure 8 (runtime + speed-up vs #sites).

    Args:
        sites: site counts to sweep.
        cardinality: data set size (paper: 203 000).
        seed: data / partitioning seed.
        scheme: local model (paper uses ``REP_Scor`` here).
        repeats: runs per site count; the fastest is reported (at many
            sites the per-site times are tiny and scheduling jitter would
            otherwise dominate the column).

    Returns:
        Table with DBDC runtime and the speed-up over central DBSCAN;
        expected shape: speed-up grows monotonically with #sites.
    """
    data = dataset_a(cardinality=cardinality, seed=seed)
    central, central_seconds = central_reference(
        data.points, data.eps_local, data.min_pts
    )
    table = ExperimentTable(
        f"Fig. 8 — runtime vs number of sites ({cardinality} objects, {scheme})",
        ["sites", "central DBSCAN [s]", "DBDC [s]", "speed-up"],
    )
    for n_sites in sites:
        dbdc_seconds = min(
            run_trial(
                data.points,
                n_sites=n_sites,
                eps_local=data.eps_local,
                min_pts=data.min_pts,
                scheme=scheme,
                seed=seed + attempt,
                evaluate=False,
            ).overall_seconds
            for attempt in range(max(1, repeats))
        )
        table.add_row(
            n_sites,
            central_seconds,
            dbdc_seconds,
            central_seconds / dbdc_seconds if dbdc_seconds else float("inf"),
        )
    table.add_note(
        "overall DBDC runtime = max(local clustering) + global clustering; "
        f"fastest of {repeats} runs per row"
    )
    return table
