"""Figure 11 — quality across the three data sets A, B and C.

For each data set (4 sites, ``Eps_global = 2·Eps_local``) the paper reports
``Q_DBDC`` under both quality functions for both local models.  Expected
shape: all values high; the noisy data set B scores visibly lower under
``P^II`` (matching an experienced user's intuition — the paper's argument
for ``P^II`` over ``P^I``).
"""

from __future__ import annotations

from repro.data.datasets import DATASET_NAMES, load_dataset
from repro.experiments.common import central_reference, dataset_trial
from repro.experiments.reporting import ExperimentTable

__all__ = ["run_fig11"]


def run_fig11(
    names=DATASET_NAMES,
    *,
    n_sites: int = 4,
    seed: int = 0,
) -> ExperimentTable:
    """Regenerate Figure 11.

    Args:
        names: data set names to evaluate.
        n_sites: client sites.
        seed: partitioning seed.

    Returns:
        Table with ``P^I``/``P^II`` per data set and local model.
    """
    table = ExperimentTable(
        f"Fig. 11 — quality for data sets A, B, C ({n_sites} sites, "
        "Eps_global = 2·Eps_local)",
        [
            "dataset",
            "P^I kMeans",
            "P^II kMeans",
            "P^I Scor",
            "P^II Scor",
        ],
    )
    for name in names:
        data = load_dataset(name)
        central, central_seconds = central_reference(
            data.points, data.eps_local, data.min_pts
        )
        eps_global = 2.0 * data.eps_local
        quality = {}
        for scheme in ("rep_kmeans", "rep_scor"):
            trial = dataset_trial(
                data,
                n_sites=n_sites,
                scheme=scheme,
                eps_global=eps_global,
                seed=seed,
                central=central,
                central_seconds=central_seconds,
            )
            quality[scheme] = trial.quality
        table.add_row(
            name,
            quality["rep_kmeans"].q_p1_percent,
            quality["rep_kmeans"].q_p2_percent,
            quality["rep_scor"].q_p1_percent,
            quality["rep_scor"].q_p2_percent,
        )
    table.add_note("noisy data set B is expected to score lowest under P^II")
    return table
