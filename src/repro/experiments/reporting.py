"""Plain-text table rendering for the experiment harness.

Every experiment module produces an :class:`ExperimentTable` whose rows
mirror the corresponding table/figure of the paper; the CLI and the
benchmark harness print them, and EXPERIMENTS.md embeds the markdown form.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

__all__ = ["ExperimentTable"]


def _format_cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


@dataclass
class ExperimentTable:
    """A titled table of experiment results.

    Attributes:
        title: table caption (usually the paper figure id).
        columns: header names.
        rows: row tuples (mixed str/int/float; floats render with 2
            decimals).
        notes: free-form footnotes appended under the table.
    """

    title: str
    columns: list[str]
    rows: list[tuple] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values) -> None:
        """Append one row (must match the column count)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(values)}"
            )
        self.rows.append(tuple(values))

    def add_note(self, note: str) -> None:
        """Append a footnote."""
        self.notes.append(note)

    def _rendered_rows(self) -> list[list[str]]:
        return [[_format_cell(cell) for cell in row] for row in self.rows]

    def to_text(self) -> str:
        """Fixed-width text rendering."""
        rendered = self._rendered_rows()
        widths = [len(col) for col in self.columns]
        for row in rendered:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(self.columns))
        lines.append(header)
        lines.append("-" * len(header))
        for row in rendered:
            lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """GitHub-flavored markdown rendering."""
        rendered = self._rendered_rows()
        lines = [f"**{self.title}**", ""]
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---" for __ in self.columns) + "|")
        for row in rendered:
            lines.append("| " + " | ".join(row) + " |")
        for note in self.notes:
            lines.append(f"\n_{note}_")
        return "\n".join(lines)

    def column(self, name: str) -> list:
        """All raw values of one column (for assertions in tests/benches)."""
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]


def print_tables(tables: Iterable[ExperimentTable]) -> None:
    """Print several tables separated by blank lines."""
    for table in tables:
        print(table.to_text())
        print()
