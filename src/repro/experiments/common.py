"""Shared plumbing for the per-figure experiment modules.

The experiments all follow the paper's §9 protocol:

* the data set is *equally distributed* onto the client sites
  (uniform-random assignment),
* all local clusterings run sequentially on one machine,
* the reported overall runtime is ``max(local) + global``,
* quality compares the distributed labels against a central DBSCAN run
  over the complete data with the local parameters.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.clustering.dbscan import DBSCANResult, dbscan
from repro.core.dbdc import DBDCConfig, PartitionedDBDCResult, run_dbdc_partitioned
from repro.data.datasets import Dataset
from repro.distributed.partition import uniform_random
from repro.quality.qdbdc import QualityReport, evaluate_quality

__all__ = [
    "timed",
    "central_reference",
    "DistributedTrial",
    "run_trial",
    "dataset_trial",
]


def timed(fn, *args, **kwargs):
    """Run ``fn`` and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


def central_reference(
    points: np.ndarray, eps: float, min_pts: int, *, index_kind: str = "auto"
) -> tuple[DBSCANResult, float]:
    """Central DBSCAN over the complete data set, timed.

    Returns:
        ``(result, seconds)``.
    """
    return timed(dbscan, points, eps, min_pts, index_kind=index_kind)


@dataclass
class DistributedTrial:
    """One DBDC run compared against a central reference.

    Attributes:
        run: the partitioned DBDC run.
        labels: distributed labels in original object order.
        quality: both quality criteria vs the central reference (``None``
            when no reference was evaluated — efficiency-only trials).
        central_seconds: central reference runtime (0 when skipped).
    """

    run: PartitionedDBDCResult
    labels: np.ndarray
    quality: QualityReport | None
    central_seconds: float

    @property
    def overall_seconds(self) -> float:
        """The paper's DBDC runtime accounting (max local + global)."""
        return self.run.result.overall_seconds

    @property
    def representative_percent(self) -> float:
        """Representative share of the data volume, in percent."""
        return 100.0 * self.run.result.representative_fraction


def run_trial(
    points: np.ndarray,
    *,
    n_sites: int,
    eps_local: float,
    min_pts: int,
    scheme: str = "rep_scor",
    eps_global: float | None = None,
    seed: int = 0,
    central: DBSCANResult | None = None,
    central_seconds: float = 0.0,
    evaluate: bool = True,
) -> DistributedTrial:
    """Run DBDC once and (optionally) score it against a central run.

    Args:
        points: the complete data set.
        n_sites: number of client sites.
        eps_local: local DBSCAN ``Eps``.
        min_pts: local DBSCAN ``MinPts``.
        scheme: local model scheme.
        eps_global: server radius (``None`` → paper default, ≈2·eps_local).
        seed: partitioning seed.
        central: pre-computed central reference (computed here if
            ``evaluate`` and missing).
        central_seconds: runtime of the supplied reference.
        evaluate: whether to compute quality at all.

    Returns:
        A :class:`DistributedTrial`.
    """
    points = np.asarray(points, dtype=float)
    assignment = uniform_random(points.shape[0], n_sites, seed=seed)
    config = DBDCConfig(
        eps_local=eps_local,
        min_pts_local=min_pts,
        scheme=scheme,
        eps_global=eps_global,
    )
    run = run_dbdc_partitioned(points, assignment, config)
    labels = run.labels_in_original_order()
    quality = None
    if evaluate:
        if central is None:
            central, central_seconds = central_reference(points, eps_local, min_pts)
        quality = evaluate_quality(labels, central.labels, qp=min_pts)
    return DistributedTrial(
        run=run,
        labels=labels,
        quality=quality,
        central_seconds=central_seconds,
    )


def dataset_trial(
    data: Dataset,
    *,
    n_sites: int,
    scheme: str = "rep_scor",
    eps_global: float | None = None,
    seed: int = 0,
    central: DBSCANResult | None = None,
    central_seconds: float = 0.0,
) -> DistributedTrial:
    """:func:`run_trial` with a data set's recommended parameters."""
    return run_trial(
        data.points,
        n_sites=n_sites,
        eps_local=data.eps_local,
        min_pts=data.min_pts,
        scheme=scheme,
        eps_global=eps_global,
        seed=seed,
        central=central,
        central_seconds=central_seconds,
    )
