"""Figure 9 — quality vs the ``Eps_global`` parameter.

The paper varies ``Eps_global`` (as a multiple of ``Eps_local``) on data
set A with both local models and reports ``Q_DBDC`` under both object
quality functions:

* **9a** (``P^I``): the curve is flat and high — the discrete criterion is
  insensitive to ``Eps_global``, one of the arguments that it is
  *unsuitable*;
* **9b** (``P^II``): quality peaks around ``Eps_global = 2·Eps_local``
  (the paper's derived default) and degrades for very small and very
  large radii.
"""

from __future__ import annotations

from repro.data.datasets import dataset_a
from repro.experiments.common import central_reference, dataset_trial
from repro.experiments.reporting import ExperimentTable

__all__ = ["run_fig9", "FIG9_FACTORS"]

FIG9_FACTORS = (0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 10.0)


def run_fig9(
    factors=FIG9_FACTORS,
    *,
    cardinality: int = 8_700,
    n_sites: int = 4,
    seed: int = 42,
) -> ExperimentTable:
    """Regenerate Figures 9a + 9b in one table.

    Args:
        factors: ``Eps_global / Eps_local`` multipliers to sweep.
        cardinality: data set A size.
        n_sites: client sites.
        seed: data / partitioning seed.

    Returns:
        Table with ``P^I`` and ``P^II`` columns for both local models;
        expected shape: ``P^I`` flat, ``P^II`` peaked near factor 2.
    """
    data = dataset_a(cardinality=cardinality, seed=seed)
    central, central_seconds = central_reference(
        data.points, data.eps_local, data.min_pts
    )
    table = ExperimentTable(
        "Fig. 9 — quality vs Eps_global (data set A)",
        [
            "Eps_global / Eps_local",
            "P^I kMeans [%]",
            "P^I Scor [%]",
            "P^II kMeans [%]",
            "P^II Scor [%]",
        ],
    )
    for factor in factors:
        eps_global = factor * data.eps_local
        quality = {}
        for scheme in ("rep_kmeans", "rep_scor"):
            trial = dataset_trial(
                data,
                n_sites=n_sites,
                scheme=scheme,
                eps_global=eps_global,
                seed=seed,
                central=central,
                central_seconds=central_seconds,
            )
            quality[scheme] = trial.quality
        table.add_row(
            factor,
            quality["rep_kmeans"].q_p1_percent,
            quality["rep_scor"].q_p1_percent,
            quality["rep_kmeans"].q_p2_percent,
            quality["rep_scor"].q_p2_percent,
        )
    table.add_note("paper's default Eps_global = max ε_r ≈ 2·Eps_local")
    return table
