"""Figure 6 — the test data sets A, B and C.

The paper shows scatter plots of the three 2-D evaluation sets.  This
module reports their statistics (cardinality, clusters found by a central
DBSCAN with the recommended parameters, noise share) and renders an ASCII
density sketch so the reconstructed structure can be eyeballed in a
terminal.
"""

from __future__ import annotations

import numpy as np

from repro.clustering.dbscan import dbscan
from repro.data.datasets import DATASET_NAMES, load_dataset
from repro.experiments.reporting import ExperimentTable

__all__ = ["density_sketch", "cluster_sketch", "run_fig6"]

_SHADES = " .:-=+*#%@"
_CLUSTER_GLYPHS = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"


def density_sketch(points: np.ndarray, width: int = 60, height: int = 24) -> str:
    """Render a 2-D point set as an ASCII density plot.

    Args:
        points: array of shape ``(n, 2)``.
        width: character columns.
        height: character rows.

    Returns:
        A multi-line string; darker glyphs mean denser cells.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError(f"need (n, 2) points, got shape {points.shape}")
    if points.shape[0] == 0:
        return ""
    low = points.min(axis=0)
    span = points.max(axis=0) - low
    span[span == 0] = 1.0
    cols = np.minimum((width - 1), ((points[:, 0] - low[0]) / span[0] * (width - 1)).astype(int))
    rows = np.minimum((height - 1), ((points[:, 1] - low[1]) / span[1] * (height - 1)).astype(int))
    grid = np.zeros((height, width), dtype=int)
    np.add.at(grid, (rows, cols), 1)
    peak = grid.max()
    lines = []
    for r in range(height - 1, -1, -1):  # y grows upward
        line = "".join(
            _SHADES[min(len(_SHADES) - 1, int(np.ceil(grid[r, c] / peak * (len(_SHADES) - 1))))]
            for c in range(width)
        )
        lines.append(line)
    return "\n".join(lines)


def cluster_sketch(
    points: np.ndarray,
    labels: np.ndarray,
    width: int = 60,
    height: int = 24,
) -> str:
    """Render a labeled 2-D clustering as ASCII art.

    Each cluster id maps to a letter/digit glyph (majority vote per cell);
    noise renders as ``·`` and empty cells as spaces.  Useful to eyeball a
    DBDC result in a terminal.

    Args:
        points: array of shape ``(n, 2)``.
        labels: cluster labels (noise = -1).
        width: character columns.
        height: character rows.

    Returns:
        A multi-line string.
    """
    points = np.asarray(points, dtype=float)
    labels = np.asarray(labels)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError(f"need (n, 2) points, got shape {points.shape}")
    if labels.shape != (points.shape[0],):
        raise ValueError(
            f"{points.shape[0]} points but {labels.shape} labels"
        )
    if points.shape[0] == 0:
        return ""
    low = points.min(axis=0)
    span = points.max(axis=0) - low
    span[span == 0] = 1.0
    cols = np.minimum(width - 1, ((points[:, 0] - low[0]) / span[0] * (width - 1)).astype(int))
    rows = np.minimum(height - 1, ((points[:, 1] - low[1]) / span[1] * (height - 1)).astype(int))
    # Majority label per cell (noise only wins an otherwise-empty cell).
    from collections import Counter, defaultdict

    cell_votes: dict[tuple[int, int], Counter] = defaultdict(Counter)
    for r, c, label in zip(rows, cols, labels):
        cell_votes[(int(r), int(c))][int(label)] += 1
    glyph_of: dict[int, str] = {}
    lines = []
    for r in range(height - 1, -1, -1):
        chars = []
        for c in range(width):
            votes = cell_votes.get((r, c))
            if not votes:
                chars.append(" ")
                continue
            clustered = Counter({k: v for k, v in votes.items() if k >= 0})
            if not clustered:
                chars.append("·")
                continue
            label = clustered.most_common(1)[0][0]
            if label not in glyph_of:
                glyph_of[label] = _CLUSTER_GLYPHS[len(glyph_of) % len(_CLUSTER_GLYPHS)]
            chars.append(glyph_of[label])
        lines.append("".join(chars))
    return "\n".join(lines)


def run_fig6(
    *, sketch: bool = True, labeled: bool = True
) -> tuple[ExperimentTable, dict[str, str]]:
    """Regenerate Figure 6's content: data set statistics (+ sketches).

    Args:
        sketch: also render ASCII sketches.
        labeled: render cluster-labeled sketches (glyph per cluster,
            colored by the central DBSCAN run) instead of raw density.

    Returns:
        ``(table, sketches)`` where ``sketches`` maps data set name to its
        ASCII rendering (empty when ``sketch`` is false).
    """
    table = ExperimentTable(
        "Fig. 6 — test data sets",
        ["dataset", "objects", "clusters (central DBSCAN)", "noise [%]", "Eps_local", "MinPts"],
    )
    sketches: dict[str, str] = {}
    for name in DATASET_NAMES:
        data = load_dataset(name)
        result = dbscan(data.points, data.eps_local, data.min_pts)
        table.add_row(
            name,
            data.n,
            result.n_clusters,
            100.0 * result.n_noise / data.n,
            data.eps_local,
            data.min_pts,
        )
        if sketch:
            if labeled:
                sketches[name] = cluster_sketch(data.points, result.labels)
            else:
                sketches[name] = density_sketch(data.points)
    table.add_note(
        "seeded reconstructions; the paper's original point sets were never published"
    )
    return table, sketches
