"""Figure 10 (table) — quality vs number of client sites.

The paper's only numeric table: data set A distributed over
{2, 4, 5, 8, 10, 14, 20} sites with ``Eps_global = 2·Eps_local``, reporting
the representative share of the data volume and ``Q_DBDC`` under ``P^I``
and ``P^II`` for both local models.  Expected shape:

* representative share roughly constant (~16-17 % in the paper),
* ``P^I`` high and flat regardless of the site count (again: unsuitable),
* ``P^II`` high with a mild decline at many sites (14-20).
"""

from __future__ import annotations

from repro.data.datasets import dataset_a
from repro.experiments.common import central_reference, dataset_trial
from repro.experiments.reporting import ExperimentTable

__all__ = ["run_fig10", "FIG10_SITES"]

FIG10_SITES = (2, 4, 5, 8, 10, 14, 20)


def run_fig10(
    sites=FIG10_SITES,
    *,
    cardinality: int = 8_700,
    seed: int = 42,
) -> ExperimentTable:
    """Regenerate the Figure 10 table.

    Args:
        sites: site counts to sweep (paper: 2, 4, 5, 8, 10, 14, 20).
        cardinality: data set A size.
        seed: data / partitioning seed.

    Returns:
        Table matching the paper's columns: representative share and
        ``P^I``/``P^II`` for ``REP_kMeans`` and ``REP_Scor``.
    """
    data = dataset_a(cardinality=cardinality, seed=seed)
    central, central_seconds = central_reference(
        data.points, data.eps_local, data.min_pts
    )
    eps_global = 2.0 * data.eps_local
    table = ExperimentTable(
        "Fig. 10 — quality vs number of sites (data set A, Eps_global = 2·Eps_local)",
        [
            "sites",
            "local repr. [%]",
            "P^I kMeans",
            "P^II kMeans",
            "P^I Scor",
            "P^II Scor",
        ],
    )
    for n_sites in sites:
        row: dict[str, float] = {}
        repr_percent = 0.0
        for scheme in ("rep_kmeans", "rep_scor"):
            trial = dataset_trial(
                data,
                n_sites=n_sites,
                scheme=scheme,
                eps_global=eps_global,
                seed=seed,
                central=central,
                central_seconds=central_seconds,
            )
            row[f"p1_{scheme}"] = trial.quality.q_p1_percent
            row[f"p2_{scheme}"] = trial.quality.q_p2_percent
            repr_percent = trial.representative_percent
        table.add_row(
            n_sites,
            repr_percent,
            row["p1_rep_kmeans"],
            row["p2_rep_kmeans"],
            row["p1_rep_scor"],
            row["p2_rep_scor"],
        )
    table.add_note(
        "both schemes transmit one representative per specific core point, "
        "so the representative share column applies to both"
    )
    return table
