"""Chaos experiment: Q_DBDC under site failures and lossy links.

The paper argues DBDC tolerates a loosely-coupled federation — the server
clusters whatever representatives it receives.  This experiment puts a
number on that: it sweeps a failure probability, runs the degraded-mode
protocol (``repro.faults`` + :class:`~repro.distributed.runner
.DistributedRunner`), and reports both quality criteria (``P^I``,
``P^II``) against the failure-free central reference — overall *and*
restricted to the surviving sites.  The expected picture: overall quality
falls roughly with the fraction of failed sites (their objects degrade to
local labels or noise) while surviving-site quality stays near the
healthy run's — lost sites cost their own objects, not the others'.

``python -m repro chaos`` runs the sweep and writes a machine-readable
``BENCH_chaos.json`` next to the repo's other benchmark artifacts.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, replace

import numpy as np

from repro.data.datasets import load_dataset
from repro.distributed.runner import (
    DistributedRunConfig,
    DistributedRunner,
    RecoveryPolicy,
    RoundPolicy,
)
from repro.experiments.common import central_reference
from repro.experiments.reporting import ExperimentTable
from repro.faults import FaultPlan, TransportPolicy
from repro.obs import MetricsRegistry, Tracer, phase_totals
from repro.obs.registry import run_environment, utc_now_iso
from repro.quality.degraded import evaluate_degraded_quality

__all__ = [
    "ChaosTrial",
    "run_chaos_sweep",
    "run_socket_chaos_sweep",
    "flat_metrics",
    "flat_socket_metrics",
    "record_chaos_run",
    "record_socket_chaos_run",
    "chaos_table",
    "socket_chaos_table",
    "write_chaos_report",
    "DEFAULT_CHAOS_PATH",
    "DEFAULT_SOCKET_CHAOS_PATH",
]

DEFAULT_CHAOS_PATH = "BENCH_chaos.json"
DEFAULT_SOCKET_CHAOS_PATH = "BENCH_socket_chaos.json"

_MODES = ("sites", "links", "chaos")

# Protocol phases whose wall-clock totals the report breaks out per trial.
_REPORTED_PHASES = (
    "local_phase",
    "global_phase",
    "broadcast",
    "relabel",
    "degraded_fallback",
)


def _phase_breakdown(trace: dict | None) -> dict[str, float]:
    """Per-phase wall seconds of one traced run (empty without a trace)."""
    if trace is None:
        return {}
    totals = phase_totals(trace)
    return {
        name: totals[name]["wall_seconds"]
        for name in _REPORTED_PHASES
        if name in totals
    }


@dataclass(frozen=True)
class ChaosTrial:
    """One degraded run at one failure probability.

    Attributes:
        failure_prob: the swept probability.
        fault_seed: seed of the trial's :class:`FaultPlan`.
        n_failed_sites: sites that missed the round.
        n_participating: sites whose model entered the global model.
        failed_fraction: ``n_failed_sites / n_sites``.
        retries: transport retries across the round.
        degraded: the report's degraded flag.
        q_p1_overall: ``Q_DBDC`` (``P^I``) over all objects, percent.
        q_p2_overall: ``Q_DBDC`` (``P^II``) over all objects, percent.
        q_p2_surviving: ``P^II`` over surviving sites' objects, percent
            (``nan`` when every site failed).
        bytes_total: bytes the round put on the wire (retries included).
        phase_wall_seconds: per-phase wall-clock breakdown from the
            run's trace (``local_phase`` / ``global_phase`` / …).
        n_recovered: sites healed by recovery rounds.
        n_quarantined: sites whose model the integrity gate refused at
            least once.
        recovery_rounds_used: recovery rounds the run actually executed.
        q_p2_overall_abandoned: ``P^II`` of the *same* faulted run with
            recovery disabled (``nan`` when recovery is off) — the
            recovered-vs-abandoned comparison column.
    """

    failure_prob: float
    fault_seed: int
    n_failed_sites: int
    n_participating: int
    failed_fraction: float
    retries: int
    degraded: bool
    q_p1_overall: float
    q_p2_overall: float
    q_p2_surviving: float
    bytes_total: int
    phase_wall_seconds: dict
    n_recovered: int = 0
    n_quarantined: int = 0
    recovery_rounds_used: int = 0
    q_p2_overall_abandoned: float = float("nan")


def _plan_for(
    mode: str, prob: float, seed: int, corrupt_rate: float = 0.0
) -> FaultPlan:
    if mode == "sites":
        plan = FaultPlan.site_failures(prob, seed=seed)
    elif mode == "links":
        plan = FaultPlan.lossy_links(prob, seed=seed)
    elif mode == "chaos":
        plan = FaultPlan.chaos(prob, seed=seed)
    else:
        raise ValueError(f"unknown chaos mode {mode!r}; known: {_MODES}")
    if corrupt_rate > 0.0:
        # An explicit corruption axis rides on top of whatever the mode
        # injects (never below the mode's own corruption rate).
        plan = replace(
            plan,
            link=replace(
                plan.link,
                corrupt_prob=max(plan.link.corrupt_prob, corrupt_rate),
            ),
        )
    return plan


def run_chaos_sweep(
    *,
    dataset: str = "A",
    cardinality: int | None = None,
    n_sites: int = 8,
    failure_probs: tuple[float, ...] = (0.0, 0.125, 0.25, 0.375, 0.5),
    trials: int = 3,
    mode: str = "sites",
    scheme: str = "rep_scor",
    seed: int = 42,
    transport_policy: TransportPolicy | None = None,
    round_policy: RoundPolicy | None = None,
    recovery_rounds: int = 0,
    corrupt_rate: float = 0.0,
) -> dict:
    """Sweep a failure probability and measure quality degradation.

    Args:
        dataset: one of the paper's data sets (A/B/C, Figure 6).
        cardinality: optional data set size override.
        n_sites: client sites per run.
        failure_probs: the swept probabilities.
        trials: independent fault seeds per probability (averaged).
        mode: what fails — ``"sites"`` (crash before local), ``"links"``
            (message drops, retried) or ``"chaos"`` (everything at once).
        scheme: local model scheme.
        seed: partitioning/dataset seed; fault seeds derive from it.
        transport_policy: retry/backoff override.
        round_policy: deadline/quorum override.
        recovery_rounds: recovery rounds per run (0 = abandon failed
            sites, today's behavior).  With recovery enabled every trial
            also runs the identical plan *without* recovery, so the
            report carries a recovered-vs-abandoned quality column.
        corrupt_rate: payload corruption probability layered on top of
            the mode's link faults (exercises checksum + quarantine).

    Returns:
        A machine-readable report dict (``write_chaos_report`` writes it,
        ``chaos_table`` renders it).
    """
    if mode not in _MODES:
        raise ValueError(f"unknown chaos mode {mode!r}; known: {_MODES}")
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    if recovery_rounds < 0:
        raise ValueError(f"recovery_rounds must be >= 0, got {recovery_rounds}")
    if not 0.0 <= corrupt_rate <= 1.0:
        raise ValueError(f"corrupt_rate must be in [0, 1], got {corrupt_rate}")
    recovery_policy = RecoveryPolicy(max_recovery_rounds=recovery_rounds)
    data = load_dataset(dataset, cardinality=cardinality)
    central, central_seconds = central_reference(
        data.points, data.eps_local, data.min_pts
    )
    config = DistributedRunConfig(
        eps_local=data.eps_local,
        min_pts_local=data.min_pts,
        scheme=scheme,
        seed=seed,
    )
    sweep = []
    for prob_index, prob in enumerate(failure_probs):
        rows: list[ChaosTrial] = []
        for trial in range(trials):
            fault_seed = seed + 1000 * prob_index + trial
            plan = _plan_for(mode, prob, fault_seed, corrupt_rate)
            runner = DistributedRunner(
                config,
                fault_plan=plan,
                transport_policy=transport_policy,
                round_policy=round_policy,
                recovery_policy=recovery_policy,
                tracer=Tracer(),
                metrics=MetricsRegistry(),
            )
            report = runner.run(data.points, n_sites)
            quality = evaluate_degraded_quality(
                report.labels_in_original_order(),
                central.labels,
                assignment=report.assignment,
                failed_sites=report.failed_sites,
                n_sites=n_sites,
                qp=data.min_pts,
            )
            q_abandoned = float("nan")
            if recovery_rounds > 0:
                # Same plan, recovery off: what the round would have
                # looked like had the failed sites been abandoned.
                abandoned = DistributedRunner(
                    config,
                    fault_plan=plan,
                    transport_policy=transport_policy,
                    round_policy=round_policy,
                ).run(data.points, n_sites)
                q_abandoned = evaluate_degraded_quality(
                    abandoned.labels_in_original_order(),
                    central.labels,
                    assignment=abandoned.assignment,
                    failed_sites=abandoned.failed_sites,
                    n_sites=n_sites,
                    qp=data.min_pts,
                ).overall.q_p2_percent
            rows.append(
                ChaosTrial(
                    failure_prob=prob,
                    fault_seed=fault_seed,
                    n_failed_sites=len(report.failed_sites),
                    n_participating=len(report.participating_sites),
                    failed_fraction=quality.failed_fraction,
                    retries=report.retries,
                    degraded=report.degraded,
                    q_p1_overall=quality.overall.q_p1_percent,
                    q_p2_overall=quality.overall.q_p2_percent,
                    q_p2_surviving=(
                        quality.surviving.q_p2_percent
                        if quality.surviving is not None
                        else float("nan")
                    ),
                    bytes_total=report.network.bytes_total,
                    phase_wall_seconds=_phase_breakdown(report.trace),
                    n_recovered=len(report.recovered_sites),
                    n_quarantined=len(report.quarantined_sites),
                    recovery_rounds_used=report.recovery_rounds_used,
                    q_p2_overall_abandoned=q_abandoned,
                )
            )
        surviving_values = [
            t.q_p2_surviving for t in rows if not np.isnan(t.q_p2_surviving)
        ]
        abandoned_values = [
            t.q_p2_overall_abandoned
            for t in rows
            if not np.isnan(t.q_p2_overall_abandoned)
        ]
        sweep.append(
            {
                "failure_prob": float(prob),
                "trials": [
                    {
                        "fault_seed": t.fault_seed,
                        "n_failed_sites": t.n_failed_sites,
                        "n_participating": t.n_participating,
                        "failed_fraction": t.failed_fraction,
                        "retries": t.retries,
                        "degraded": t.degraded,
                        "q_p1_overall": t.q_p1_overall,
                        "q_p2_overall": t.q_p2_overall,
                        "q_p2_surviving": (
                            None
                            if np.isnan(t.q_p2_surviving)
                            else t.q_p2_surviving
                        ),
                        "bytes_total": t.bytes_total,
                        "phase_wall_seconds": t.phase_wall_seconds,
                        "n_recovered": t.n_recovered,
                        "n_quarantined": t.n_quarantined,
                        "recovery_rounds_used": t.recovery_rounds_used,
                        "q_p2_overall_abandoned": (
                            None
                            if np.isnan(t.q_p2_overall_abandoned)
                            else t.q_p2_overall_abandoned
                        ),
                    }
                    for t in rows
                ],
                "mean_failed_fraction": float(
                    np.mean([t.failed_fraction for t in rows])
                ),
                "mean_q_p1_overall": float(np.mean([t.q_p1_overall for t in rows])),
                "mean_q_p2_overall": float(np.mean([t.q_p2_overall for t in rows])),
                "mean_q_p2_surviving": (
                    float(np.mean(surviving_values)) if surviving_values else None
                ),
                "total_retries": int(sum(t.retries for t in rows)),
                "n_degraded": int(sum(t.degraded for t in rows)),
                "total_recovered": int(sum(t.n_recovered for t in rows)),
                "total_quarantined": int(sum(t.n_quarantined for t in rows)),
                "mean_q_p2_overall_abandoned": (
                    float(np.mean(abandoned_values))
                    if abandoned_values
                    else None
                ),
                "mean_phase_wall_seconds": {
                    name: float(
                        np.mean(
                            [t.phase_wall_seconds.get(name, 0.0) for t in rows]
                        )
                    )
                    for name in sorted(
                        {k for t in rows for k in t.phase_wall_seconds}
                    )
                },
            }
        )
    environment = run_environment()
    return {
        "bench": "chaos",
        # Provenance rides in every report (shared RunRecord helper), so
        # trajectory comparisons across machines/checkouts stay meaningful.
        "meta": {
            "dataset": data.name,
            "cardinality": int(data.n),
            "n_sites": int(n_sites),
            "mode": mode,
            "scheme": scheme,
            "trials": int(trials),
            "seed": int(seed),
            "recovery_rounds": int(recovery_rounds),
            "corrupt_rate": float(corrupt_rate),
            "central_seconds": float(central_seconds),
            "created_utc": utc_now_iso(),
            "git_rev": environment["git_rev"],
            "git_dirty": environment["git_dirty"],
            "cpu_count": environment["cpu_count"],
            "python": environment["python"],
            "numpy": environment["numpy"],
            "platform": environment["platform"],
        },
        "sweep": sweep,
    }


def run_socket_chaos_sweep(
    *,
    dataset: str = "A",
    cardinality: int | None = None,
    n_sites: int = 4,
    failure_probs: tuple[float, ...] = (0.0, 0.25, 0.5),
    trials: int = 1,
    mode: str = "chaos",
    scheme: str = "rep_scor",
    seed: int = 42,
    transport_policy: TransportPolicy | None = None,
    breaker_policy=None,
    corrupt_rate: float = 0.0,
    probe_messages: int = 2,
    server_crashes: int = 0,
) -> dict:
    """The chaos sweep against a *live* socket service.

    Each trial boots a fresh :class:`~repro.service.server.DBDCService`
    and runs every site sequentially through
    :class:`~repro.service.faulting.FaultingSocketTransport` +
    :class:`~repro.faults.transport.ResilientTransport`, so the same
    seed-keyed :class:`FaultPlan` DSL that drives the simulated sweeps
    sabotages actual TCP connections: injected drops and truncations
    drive the real retry loop, corrupted frames hit the server's CRC
    quarantine, and per-link circuit breakers trip on the real link.
    Sites run in site-id order and injection is keyed by per-link call
    counters, so retry/drop/breaker counts reproduce across machines —
    only wall-clock metrics are machine-bound.

    Args:
        dataset: one of the paper's data sets (A/B/C).
        cardinality: optional data set size override.
        n_sites: client sites per trial.
        failure_probs: the swept probabilities.
        trials: independent fault seeds per probability.
        mode: ``"sites"`` / ``"links"`` / ``"chaos"``.
        scheme: local model scheme.
        seed: partitioning/dataset seed; fault seeds derive from it.
        transport_policy: retry/backoff override (default: a tight
            socket-friendly policy — short timeouts, small real sleeps).
        breaker_policy: optional per-link circuit breaker
            (:class:`~repro.faults.transport.BreakerPolicy`).
        corrupt_rate: corruption probability layered on the mode's link
            faults.
        probe_messages: extra health probes per site through the same
            resilient transport (gives breakers enough traffic to trip
            and recover).
        server_crashes: per trial, hard-kill and restart the service
            this many times between site uploads (before sites 1..N).
            The trial runs with a write-ahead journal, so every crash
            exercises the full recovery path: admitted models survive
            and the end-of-trial quality must match the crash-free run.

    Returns:
        A machine-readable report dict shaped like the simulated sweep's.
    """
    import tempfile
    import time as _time

    from repro.clustering.labels import NOISE
    from repro.distributed.partition import partition, split
    from repro.distributed.site import ClientSite
    from repro.faults.transport import ResilientTransport
    from repro.service import wire
    from repro.service.client import ServiceClient
    from repro.service.faulting import FaultingSocketTransport
    from repro.service.server import ServiceConfig, ServiceHandle
    from repro.service.transport import ServiceError, SocketTransport

    if mode not in _MODES:
        raise ValueError(f"unknown chaos mode {mode!r}; known: {_MODES}")
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    if not 0.0 <= corrupt_rate <= 1.0:
        raise ValueError(f"corrupt_rate must be in [0, 1], got {corrupt_rate}")
    if server_crashes < 0:
        raise ValueError(f"server_crashes must be >= 0, got {server_crashes}")
    policy = transport_policy or TransportPolicy(
        timeout_s=0.2,
        max_attempts=4,
        backoff_base_s=0.01,
        backoff_cap_s=0.05,
    )
    data = load_dataset(dataset, cardinality=cardinality)
    central, central_seconds = central_reference(
        data.points, data.eps_local, data.min_pts
    )
    assignment = partition(data.points, n_sites, seed=seed)
    parts = split(data.points, assignment)

    sweep = []
    for prob_index, prob in enumerate(failure_probs):
        rows = []
        for trial in range(trials):
            fault_seed = seed + 1000 * prob_index + trial
            plan = _plan_for(mode, prob, fault_seed, corrupt_rate)
            trial_start = _time.perf_counter()
            # Crash trials journal the service state so the kills have
            # something to recover from; crash-free trials keep the
            # journal off (identical to the historical sweep).
            journal_tmp = (
                tempfile.TemporaryDirectory(prefix="dbdc-chaos-wal-")
                if server_crashes > 0
                else None
            )
            service_config = ServiceConfig(
                metrics_port=None,
                journal_dir=(
                    journal_tmp.name if journal_tmp is not None else None
                ),
            )
            handle = ServiceHandle.start(service_config)
            sites: dict[int, ClientSite] = {}
            verdicts: dict[int, str] = {}
            retries = drops = truncations = corruptions = 0
            fast_fails = breaker_changes = 0
            n_crashed = n_stragglers = n_silent = 0
            n_server_restarts = 0
            try:
                for site_id in range(n_sites):
                    if 1 <= site_id <= server_crashes:
                        # Hard-kill the service between uploads and boot
                        # a fresh one on the same journal — the admitted
                        # models so far must survive the restart.
                        handle.kill()
                        handle = ServiceHandle.start(service_config)
                        n_server_restarts += 1
                    behavior = plan.resolve_site(site_id)
                    if behavior.crashes_before_local:
                        verdicts[site_id] = "crashed"
                        n_crashed += 1
                        continue
                    if behavior.slowdown > 1.0:
                        n_stragglers += 1
                    site = ClientSite(
                        site_id,
                        parts[site_id],
                        eps_local=data.eps_local,
                        min_pts_local=data.min_pts,
                        scheme=scheme,
                    )
                    model = site.run_local_clustering()
                    socket_transport = SocketTransport(
                        handle.host,
                        handle.port,
                        site_id=site_id,
                        timeout_s=10.0,
                    )
                    with socket_transport:
                        injector = FaultingSocketTransport(
                            socket_transport, plan
                        )
                        resilient = ResilientTransport(
                            injector,
                            FaultPlan.none(),
                            policy,
                            breaker_policy=breaker_policy,
                            retryable_errors=FaultingSocketTransport.RETRYABLE,
                            sleep=_time.sleep,
                        )
                        clock = 0.0
                        verdict = "failed"
                        try:
                            outcome = resilient.deliver(
                                site_id,
                                wire.SERVER_ID,
                                "local_model",
                                wire.encode_local_model(model),
                                start_s=clock,
                            )
                            clock += outcome.sim_seconds
                            verdict = (
                                "admitted" if outcome.delivered else "failed"
                            )
                        except ServiceError as error:
                            # A protocol verdict (quarantine), not a
                            # transport failure: no retry, by design.
                            verdict = error.status
                            clock += policy.timeout_s
                        # Probe traffic on the same link: enough messages
                        # for breakers to trip (and recover) on links the
                        # plan keeps sabotaging.
                        for __probe in range(probe_messages):
                            probe = resilient.deliver(
                                site_id,
                                wire.SERVER_ID,
                                "health",
                                b"",
                                start_s=clock,
                            )
                            clock += probe.sim_seconds
                        stats = resilient.stats
                        retries += stats.n_retries
                        drops += injector.n_dropped
                        truncations += injector.n_truncated
                        corruptions += injector.n_corrupted
                        fast_fails += stats.n_fast_failed
                        breaker_changes += stats.n_breaker_state_changes
                    verdicts[site_id] = verdict
                    if verdict == "admitted":
                        if behavior.crashes_after_send:
                            verdicts[site_id] = "crashed_after_send"
                            n_silent += 1
                        else:
                            sites[site_id] = site
                # One operator fetch; relabel the surviving sites.
                global_model = None
                if sites:
                    with ServiceClient(
                        handle.host, handle.port, timeout_s=10.0
                    ) as client:
                        global_model = client.await_global_model(
                            timeout_s=10.0
                        )
                labels = np.full(data.points.shape[0], NOISE, dtype=np.intp)
                if global_model is not None:
                    for site_id, site in sites.items():
                        site.receive_global_model(global_model)
                        labels[np.flatnonzero(assignment == site_id)] = (
                            site.global_labels
                        )
            finally:
                handle.stop()
                if journal_tmp is not None:
                    journal_tmp.cleanup()
            failed_sites = sorted(
                site_id
                for site_id in range(n_sites)
                if site_id not in sites
            )
            quality = evaluate_degraded_quality(
                labels,
                central.labels,
                assignment=assignment,
                failed_sites=failed_sites,
                n_sites=n_sites,
                qp=data.min_pts,
            )
            n_admitted = sum(
                1
                for verdict in verdicts.values()
                if verdict in ("admitted", "crashed_after_send")
            )
            rows.append(
                {
                    "fault_seed": fault_seed,
                    "verdicts": {
                        str(site_id): verdicts[site_id]
                        for site_id in sorted(verdicts)
                    },
                    "n_admitted": n_admitted,
                    "n_quarantined": sum(
                        1
                        for verdict in verdicts.values()
                        if verdict == "quarantined"
                    ),
                    "n_failed_sites": len(failed_sites),
                    "n_crashed": n_crashed,
                    "n_stragglers": n_stragglers,
                    "retries": retries,
                    "drops": drops,
                    "truncations": truncations,
                    "corruptions": corruptions,
                    "fast_fails": fast_fails,
                    "breaker_state_changes": breaker_changes,
                    "server_restarts": n_server_restarts,
                    "q_p1_overall": quality.overall.q_p1_percent,
                    "q_p2_overall": quality.overall.q_p2_percent,
                    "q_p2_surviving": (
                        quality.surviving.q_p2_percent
                        if quality.surviving is not None
                        else None
                    ),
                    "wall_seconds": _time.perf_counter() - trial_start,
                }
            )
        surviving_values = [
            row["q_p2_surviving"]
            for row in rows
            if row["q_p2_surviving"] is not None
        ]
        sweep.append(
            {
                "failure_prob": float(prob),
                "trials": rows,
                "mean_q_p1_overall": float(
                    np.mean([row["q_p1_overall"] for row in rows])
                ),
                "mean_q_p2_overall": float(
                    np.mean([row["q_p2_overall"] for row in rows])
                ),
                "mean_q_p2_surviving": (
                    float(np.mean(surviving_values))
                    if surviving_values
                    else None
                ),
                "total_retries": int(sum(row["retries"] for row in rows)),
                "total_drops": int(sum(row["drops"] for row in rows)),
                "total_truncations": int(
                    sum(row["truncations"] for row in rows)
                ),
                "total_corruptions": int(
                    sum(row["corruptions"] for row in rows)
                ),
                "total_fast_fails": int(
                    sum(row["fast_fails"] for row in rows)
                ),
                "total_breaker_state_changes": int(
                    sum(row["breaker_state_changes"] for row in rows)
                ),
                "total_failed_sites": int(
                    sum(row["n_failed_sites"] for row in rows)
                ),
                "total_quarantined": int(
                    sum(row["n_quarantined"] for row in rows)
                ),
            }
        )
    environment = run_environment()
    return {
        "bench": "socket_chaos",
        "meta": {
            "dataset": data.name,
            "cardinality": int(data.n),
            "n_sites": int(n_sites),
            "mode": mode,
            "scheme": scheme,
            "trials": int(trials),
            "seed": int(seed),
            "corrupt_rate": float(corrupt_rate),
            "probe_messages": int(probe_messages),
            "server_crashes": int(server_crashes),
            "transport": "socket",
            "central_seconds": float(central_seconds),
            "created_utc": utc_now_iso(),
            "git_rev": environment["git_rev"],
            "git_dirty": environment["git_dirty"],
            "cpu_count": environment["cpu_count"],
            "python": environment["python"],
            "numpy": environment["numpy"],
            "platform": environment["platform"],
        },
        "sweep": sweep,
    }


def flat_metrics(report: dict) -> dict[str, float]:
    """Flatten a chaos sweep into RunRecord metrics.

    One entry per swept probability, the probability as a bracketed
    label (``"chaos.q_p2_overall_percent[p=0.25]"``); quality names end
    in ``percent`` so the regression gate treats a drop as a regression.
    """
    out: dict[str, float] = {}
    for point in report["sweep"]:
        p = f"p={point['failure_prob']:g}"
        out[f"chaos.q_p1_overall_percent[{p}]"] = point["mean_q_p1_overall"]
        out[f"chaos.q_p2_overall_percent[{p}]"] = point["mean_q_p2_overall"]
        if point["mean_q_p2_surviving"] is not None:
            out[f"chaos.q_p2_surviving_percent[{p}]"] = point[
                "mean_q_p2_surviving"
            ]
        out[f"chaos.failed_fraction[{p}]"] = point["mean_failed_fraction"]
        out[f"chaos.retries[{p}]"] = point["total_retries"]
        out[f"chaos.degraded_runs[{p}]"] = point["n_degraded"]
        out[f"chaos.recovered_sites[{p}]"] = point.get("total_recovered", 0)
        out[f"chaos.quarantined_models[{p}]"] = point.get(
            "total_quarantined", 0
        )
        if point.get("mean_q_p2_overall_abandoned") is not None:
            out[f"chaos.q_p2_overall_abandoned_percent[{p}]"] = point[
                "mean_q_p2_overall_abandoned"
            ]
    out["chaos.central_wall_seconds"] = report["meta"]["central_seconds"]
    return out


def record_chaos_run(report: dict, registry_root: str) -> dict:
    """Append one chaos report to the run registry.

    The registry is the durable history; ``BENCH_chaos.json`` remains
    the generated "latest" view, stamped with the record's run id.
    """
    from repro.obs.registry import RunRegistry

    meta = report["meta"]
    record = RunRegistry(registry_root).record(
        "chaos",
        config={
            key: meta[key]
            for key in (
                "dataset", "cardinality", "n_sites", "mode", "scheme",
                "trials", "seed",
            )
        },
        metrics=flat_metrics(report),
        artifacts={"BENCH_chaos.json": report},
    )
    meta["run_id"] = record["run_id"]
    return record


def flat_socket_metrics(report: dict) -> dict[str, float]:
    """Flatten a socket-chaos sweep into RunRecord metrics.

    Retry/drop/failure counters are deterministic (injection is keyed
    by per-link call counters and sites run sequentially), so the
    regression gate's count rules bite cross-machine; only the
    ``wall_seconds`` entries are timing-tagged away by
    ``--ignore-timing``.  ``socket_chaos.completed_identical`` is the
    zero-tolerance flag that the sweep ran to completion.
    """
    out: dict[str, float] = {}
    for point in report["sweep"]:
        p = f"p={point['failure_prob']:g}"
        out[f"socket_chaos.q_p1_overall_percent[{p}]"] = point[
            "mean_q_p1_overall"
        ]
        out[f"socket_chaos.q_p2_overall_percent[{p}]"] = point[
            "mean_q_p2_overall"
        ]
        if point["mean_q_p2_surviving"] is not None:
            out[f"socket_chaos.q_p2_surviving_percent[{p}]"] = point[
                "mean_q_p2_surviving"
            ]
        out[f"socket_chaos.retries[{p}]"] = point["total_retries"]
        out[f"socket_chaos.drops[{p}]"] = point["total_drops"]
        out[f"socket_chaos.truncations[{p}]"] = point["total_truncations"]
        out[f"socket_chaos.corruptions[{p}]"] = point["total_corruptions"]
        out[f"socket_chaos.breaker_fast_fails[{p}]"] = point[
            "total_fast_fails"
        ]
        out[f"socket_chaos.breaker_state_changes[{p}]"] = point[
            "total_breaker_state_changes"
        ]
        out[f"socket_chaos.failed_sites[{p}]"] = point["total_failed_sites"]
        out[f"socket_chaos.quarantined[{p}]"] = point["total_quarantined"]
        out[f"socket_chaos.wall_seconds[{p}]"] = float(
            sum(row["wall_seconds"] for row in point["trials"])
        )
    out["socket_chaos.completed_identical"] = 1.0
    return out


def record_socket_chaos_run(report: dict, registry_root: str) -> dict:
    """Append one socket-chaos report to the run registry."""
    from repro.obs.registry import RunRegistry

    meta = report["meta"]
    record = RunRegistry(registry_root).record(
        "socket-chaos",
        config={
            key: meta[key]
            for key in (
                "dataset", "cardinality", "n_sites", "mode", "scheme",
                "trials", "seed", "corrupt_rate", "probe_messages",
            )
        },
        metrics=flat_socket_metrics(report),
        artifacts={"BENCH_socket_chaos.json": report},
    )
    meta["run_id"] = record["run_id"]
    return record


def socket_chaos_table(report: dict) -> ExperimentTable:
    """Render a socket-chaos sweep as an experiment table."""
    meta = report["meta"]
    table = ExperimentTable(
        f"Socket chaos — data set {meta['dataset']} ({meta['n_sites']} "
        f"sites, mode={meta['mode']}, {meta['trials']} trials/point, "
        "real TCP)",
        [
            "failure prob",
            "P^II overall [%]",
            "P^II surviving [%]",
            "failed sites",
            "retries",
            "drops",
            "trunc",
            "corrupt",
            "fast-fails",
            "breaker transitions",
        ],
    )
    for point in report["sweep"]:
        surviving = point["mean_q_p2_surviving"]
        table.add_row(
            point["failure_prob"],
            point["mean_q_p2_overall"],
            surviving if surviving is not None else float("nan"),
            point["total_failed_sites"],
            point["total_retries"],
            point["total_drops"],
            point["total_truncations"],
            point["total_corruptions"],
            point["total_fast_fails"],
            point["total_breaker_state_changes"],
        )
    table.add_note(
        "faults injected into real TCP connections; retries/breaker "
        "transitions are deterministic per seed, wall time is not"
    )
    return table


def chaos_table(report: dict) -> ExperimentTable:
    """Render a chaos sweep as an experiment table."""
    meta = report["meta"]
    table = ExperimentTable(
        f"Chaos — data set {meta['dataset']} ({meta['n_sites']} sites, "
        f"mode={meta['mode']}, {meta['trials']} trials/point)",
        [
            "failure prob",
            "failed sites [%]",
            "P^I overall [%]",
            "P^II overall [%]",
            "P^II surviving [%]",
            "P^II abandoned [%]",
            "recovered",
            "retries",
            "degraded runs",
        ],
    )
    for point in report["sweep"]:
        surviving = point["mean_q_p2_surviving"]
        abandoned = point.get("mean_q_p2_overall_abandoned")
        table.add_row(
            point["failure_prob"],
            100.0 * point["mean_failed_fraction"],
            point["mean_q_p1_overall"],
            point["mean_q_p2_overall"],
            surviving if surviving is not None else float("nan"),
            abandoned if abandoned is not None else float("nan"),
            point.get("total_recovered", 0),
            point["total_retries"],
            point["n_degraded"],
        )
    table.add_note(
        "overall quality degrades with the failed-site fraction; surviving "
        "sites keep near-healthy quality (lost sites cost only their own "
        "objects)"
    )
    return table


def write_chaos_report(report: dict, path: str = DEFAULT_CHAOS_PATH) -> str:
    """Write the chaos report as pretty-printed JSON (makes parent dirs)."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
