"""Chaos experiment: Q_DBDC under site failures and lossy links.

The paper argues DBDC tolerates a loosely-coupled federation — the server
clusters whatever representatives it receives.  This experiment puts a
number on that: it sweeps a failure probability, runs the degraded-mode
protocol (``repro.faults`` + :class:`~repro.distributed.runner
.DistributedRunner`), and reports both quality criteria (``P^I``,
``P^II``) against the failure-free central reference — overall *and*
restricted to the surviving sites.  The expected picture: overall quality
falls roughly with the fraction of failed sites (their objects degrade to
local labels or noise) while surviving-site quality stays near the
healthy run's — lost sites cost their own objects, not the others'.

``python -m repro chaos`` runs the sweep and writes a machine-readable
``BENCH_chaos.json`` next to the repo's other benchmark artifacts.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, replace

import numpy as np

from repro.data.datasets import load_dataset
from repro.distributed.runner import (
    DistributedRunConfig,
    DistributedRunner,
    RecoveryPolicy,
    RoundPolicy,
)
from repro.experiments.common import central_reference
from repro.experiments.reporting import ExperimentTable
from repro.faults import FaultPlan, TransportPolicy
from repro.obs import MetricsRegistry, Tracer, phase_totals
from repro.obs.registry import run_environment, utc_now_iso
from repro.quality.degraded import evaluate_degraded_quality

__all__ = [
    "ChaosTrial",
    "run_chaos_sweep",
    "flat_metrics",
    "record_chaos_run",
    "chaos_table",
    "write_chaos_report",
    "DEFAULT_CHAOS_PATH",
]

DEFAULT_CHAOS_PATH = "BENCH_chaos.json"

_MODES = ("sites", "links", "chaos")

# Protocol phases whose wall-clock totals the report breaks out per trial.
_REPORTED_PHASES = (
    "local_phase",
    "global_phase",
    "broadcast",
    "relabel",
    "degraded_fallback",
)


def _phase_breakdown(trace: dict | None) -> dict[str, float]:
    """Per-phase wall seconds of one traced run (empty without a trace)."""
    if trace is None:
        return {}
    totals = phase_totals(trace)
    return {
        name: totals[name]["wall_seconds"]
        for name in _REPORTED_PHASES
        if name in totals
    }


@dataclass(frozen=True)
class ChaosTrial:
    """One degraded run at one failure probability.

    Attributes:
        failure_prob: the swept probability.
        fault_seed: seed of the trial's :class:`FaultPlan`.
        n_failed_sites: sites that missed the round.
        n_participating: sites whose model entered the global model.
        failed_fraction: ``n_failed_sites / n_sites``.
        retries: transport retries across the round.
        degraded: the report's degraded flag.
        q_p1_overall: ``Q_DBDC`` (``P^I``) over all objects, percent.
        q_p2_overall: ``Q_DBDC`` (``P^II``) over all objects, percent.
        q_p2_surviving: ``P^II`` over surviving sites' objects, percent
            (``nan`` when every site failed).
        bytes_total: bytes the round put on the wire (retries included).
        phase_wall_seconds: per-phase wall-clock breakdown from the
            run's trace (``local_phase`` / ``global_phase`` / …).
        n_recovered: sites healed by recovery rounds.
        n_quarantined: sites whose model the integrity gate refused at
            least once.
        recovery_rounds_used: recovery rounds the run actually executed.
        q_p2_overall_abandoned: ``P^II`` of the *same* faulted run with
            recovery disabled (``nan`` when recovery is off) — the
            recovered-vs-abandoned comparison column.
    """

    failure_prob: float
    fault_seed: int
    n_failed_sites: int
    n_participating: int
    failed_fraction: float
    retries: int
    degraded: bool
    q_p1_overall: float
    q_p2_overall: float
    q_p2_surviving: float
    bytes_total: int
    phase_wall_seconds: dict
    n_recovered: int = 0
    n_quarantined: int = 0
    recovery_rounds_used: int = 0
    q_p2_overall_abandoned: float = float("nan")


def _plan_for(
    mode: str, prob: float, seed: int, corrupt_rate: float = 0.0
) -> FaultPlan:
    if mode == "sites":
        plan = FaultPlan.site_failures(prob, seed=seed)
    elif mode == "links":
        plan = FaultPlan.lossy_links(prob, seed=seed)
    elif mode == "chaos":
        plan = FaultPlan.chaos(prob, seed=seed)
    else:
        raise ValueError(f"unknown chaos mode {mode!r}; known: {_MODES}")
    if corrupt_rate > 0.0:
        # An explicit corruption axis rides on top of whatever the mode
        # injects (never below the mode's own corruption rate).
        plan = replace(
            plan,
            link=replace(
                plan.link,
                corrupt_prob=max(plan.link.corrupt_prob, corrupt_rate),
            ),
        )
    return plan


def run_chaos_sweep(
    *,
    dataset: str = "A",
    cardinality: int | None = None,
    n_sites: int = 8,
    failure_probs: tuple[float, ...] = (0.0, 0.125, 0.25, 0.375, 0.5),
    trials: int = 3,
    mode: str = "sites",
    scheme: str = "rep_scor",
    seed: int = 42,
    transport_policy: TransportPolicy | None = None,
    round_policy: RoundPolicy | None = None,
    recovery_rounds: int = 0,
    corrupt_rate: float = 0.0,
) -> dict:
    """Sweep a failure probability and measure quality degradation.

    Args:
        dataset: one of the paper's data sets (A/B/C, Figure 6).
        cardinality: optional data set size override.
        n_sites: client sites per run.
        failure_probs: the swept probabilities.
        trials: independent fault seeds per probability (averaged).
        mode: what fails — ``"sites"`` (crash before local), ``"links"``
            (message drops, retried) or ``"chaos"`` (everything at once).
        scheme: local model scheme.
        seed: partitioning/dataset seed; fault seeds derive from it.
        transport_policy: retry/backoff override.
        round_policy: deadline/quorum override.
        recovery_rounds: recovery rounds per run (0 = abandon failed
            sites, today's behavior).  With recovery enabled every trial
            also runs the identical plan *without* recovery, so the
            report carries a recovered-vs-abandoned quality column.
        corrupt_rate: payload corruption probability layered on top of
            the mode's link faults (exercises checksum + quarantine).

    Returns:
        A machine-readable report dict (``write_chaos_report`` writes it,
        ``chaos_table`` renders it).
    """
    if mode not in _MODES:
        raise ValueError(f"unknown chaos mode {mode!r}; known: {_MODES}")
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    if recovery_rounds < 0:
        raise ValueError(f"recovery_rounds must be >= 0, got {recovery_rounds}")
    if not 0.0 <= corrupt_rate <= 1.0:
        raise ValueError(f"corrupt_rate must be in [0, 1], got {corrupt_rate}")
    recovery_policy = RecoveryPolicy(max_recovery_rounds=recovery_rounds)
    data = load_dataset(dataset, cardinality=cardinality)
    central, central_seconds = central_reference(
        data.points, data.eps_local, data.min_pts
    )
    config = DistributedRunConfig(
        eps_local=data.eps_local,
        min_pts_local=data.min_pts,
        scheme=scheme,
        seed=seed,
    )
    sweep = []
    for prob_index, prob in enumerate(failure_probs):
        rows: list[ChaosTrial] = []
        for trial in range(trials):
            fault_seed = seed + 1000 * prob_index + trial
            plan = _plan_for(mode, prob, fault_seed, corrupt_rate)
            runner = DistributedRunner(
                config,
                fault_plan=plan,
                transport_policy=transport_policy,
                round_policy=round_policy,
                recovery_policy=recovery_policy,
                tracer=Tracer(),
                metrics=MetricsRegistry(),
            )
            report = runner.run(data.points, n_sites)
            quality = evaluate_degraded_quality(
                report.labels_in_original_order(),
                central.labels,
                assignment=report.assignment,
                failed_sites=report.failed_sites,
                n_sites=n_sites,
                qp=data.min_pts,
            )
            q_abandoned = float("nan")
            if recovery_rounds > 0:
                # Same plan, recovery off: what the round would have
                # looked like had the failed sites been abandoned.
                abandoned = DistributedRunner(
                    config,
                    fault_plan=plan,
                    transport_policy=transport_policy,
                    round_policy=round_policy,
                ).run(data.points, n_sites)
                q_abandoned = evaluate_degraded_quality(
                    abandoned.labels_in_original_order(),
                    central.labels,
                    assignment=abandoned.assignment,
                    failed_sites=abandoned.failed_sites,
                    n_sites=n_sites,
                    qp=data.min_pts,
                ).overall.q_p2_percent
            rows.append(
                ChaosTrial(
                    failure_prob=prob,
                    fault_seed=fault_seed,
                    n_failed_sites=len(report.failed_sites),
                    n_participating=len(report.participating_sites),
                    failed_fraction=quality.failed_fraction,
                    retries=report.retries,
                    degraded=report.degraded,
                    q_p1_overall=quality.overall.q_p1_percent,
                    q_p2_overall=quality.overall.q_p2_percent,
                    q_p2_surviving=(
                        quality.surviving.q_p2_percent
                        if quality.surviving is not None
                        else float("nan")
                    ),
                    bytes_total=report.network.bytes_total,
                    phase_wall_seconds=_phase_breakdown(report.trace),
                    n_recovered=len(report.recovered_sites),
                    n_quarantined=len(report.quarantined_sites),
                    recovery_rounds_used=report.recovery_rounds_used,
                    q_p2_overall_abandoned=q_abandoned,
                )
            )
        surviving_values = [
            t.q_p2_surviving for t in rows if not np.isnan(t.q_p2_surviving)
        ]
        abandoned_values = [
            t.q_p2_overall_abandoned
            for t in rows
            if not np.isnan(t.q_p2_overall_abandoned)
        ]
        sweep.append(
            {
                "failure_prob": float(prob),
                "trials": [
                    {
                        "fault_seed": t.fault_seed,
                        "n_failed_sites": t.n_failed_sites,
                        "n_participating": t.n_participating,
                        "failed_fraction": t.failed_fraction,
                        "retries": t.retries,
                        "degraded": t.degraded,
                        "q_p1_overall": t.q_p1_overall,
                        "q_p2_overall": t.q_p2_overall,
                        "q_p2_surviving": (
                            None
                            if np.isnan(t.q_p2_surviving)
                            else t.q_p2_surviving
                        ),
                        "bytes_total": t.bytes_total,
                        "phase_wall_seconds": t.phase_wall_seconds,
                        "n_recovered": t.n_recovered,
                        "n_quarantined": t.n_quarantined,
                        "recovery_rounds_used": t.recovery_rounds_used,
                        "q_p2_overall_abandoned": (
                            None
                            if np.isnan(t.q_p2_overall_abandoned)
                            else t.q_p2_overall_abandoned
                        ),
                    }
                    for t in rows
                ],
                "mean_failed_fraction": float(
                    np.mean([t.failed_fraction for t in rows])
                ),
                "mean_q_p1_overall": float(np.mean([t.q_p1_overall for t in rows])),
                "mean_q_p2_overall": float(np.mean([t.q_p2_overall for t in rows])),
                "mean_q_p2_surviving": (
                    float(np.mean(surviving_values)) if surviving_values else None
                ),
                "total_retries": int(sum(t.retries for t in rows)),
                "n_degraded": int(sum(t.degraded for t in rows)),
                "total_recovered": int(sum(t.n_recovered for t in rows)),
                "total_quarantined": int(sum(t.n_quarantined for t in rows)),
                "mean_q_p2_overall_abandoned": (
                    float(np.mean(abandoned_values))
                    if abandoned_values
                    else None
                ),
                "mean_phase_wall_seconds": {
                    name: float(
                        np.mean(
                            [t.phase_wall_seconds.get(name, 0.0) for t in rows]
                        )
                    )
                    for name in sorted(
                        {k for t in rows for k in t.phase_wall_seconds}
                    )
                },
            }
        )
    environment = run_environment()
    return {
        "bench": "chaos",
        # Provenance rides in every report (shared RunRecord helper), so
        # trajectory comparisons across machines/checkouts stay meaningful.
        "meta": {
            "dataset": data.name,
            "cardinality": int(data.n),
            "n_sites": int(n_sites),
            "mode": mode,
            "scheme": scheme,
            "trials": int(trials),
            "seed": int(seed),
            "recovery_rounds": int(recovery_rounds),
            "corrupt_rate": float(corrupt_rate),
            "central_seconds": float(central_seconds),
            "created_utc": utc_now_iso(),
            "git_rev": environment["git_rev"],
            "git_dirty": environment["git_dirty"],
            "cpu_count": environment["cpu_count"],
            "python": environment["python"],
            "numpy": environment["numpy"],
            "platform": environment["platform"],
        },
        "sweep": sweep,
    }


def flat_metrics(report: dict) -> dict[str, float]:
    """Flatten a chaos sweep into RunRecord metrics.

    One entry per swept probability, the probability as a bracketed
    label (``"chaos.q_p2_overall_percent[p=0.25]"``); quality names end
    in ``percent`` so the regression gate treats a drop as a regression.
    """
    out: dict[str, float] = {}
    for point in report["sweep"]:
        p = f"p={point['failure_prob']:g}"
        out[f"chaos.q_p1_overall_percent[{p}]"] = point["mean_q_p1_overall"]
        out[f"chaos.q_p2_overall_percent[{p}]"] = point["mean_q_p2_overall"]
        if point["mean_q_p2_surviving"] is not None:
            out[f"chaos.q_p2_surviving_percent[{p}]"] = point[
                "mean_q_p2_surviving"
            ]
        out[f"chaos.failed_fraction[{p}]"] = point["mean_failed_fraction"]
        out[f"chaos.retries[{p}]"] = point["total_retries"]
        out[f"chaos.degraded_runs[{p}]"] = point["n_degraded"]
        out[f"chaos.recovered_sites[{p}]"] = point.get("total_recovered", 0)
        out[f"chaos.quarantined_models[{p}]"] = point.get(
            "total_quarantined", 0
        )
        if point.get("mean_q_p2_overall_abandoned") is not None:
            out[f"chaos.q_p2_overall_abandoned_percent[{p}]"] = point[
                "mean_q_p2_overall_abandoned"
            ]
    out["chaos.central_wall_seconds"] = report["meta"]["central_seconds"]
    return out


def record_chaos_run(report: dict, registry_root: str) -> dict:
    """Append one chaos report to the run registry.

    The registry is the durable history; ``BENCH_chaos.json`` remains
    the generated "latest" view, stamped with the record's run id.
    """
    from repro.obs.registry import RunRegistry

    meta = report["meta"]
    record = RunRegistry(registry_root).record(
        "chaos",
        config={
            key: meta[key]
            for key in (
                "dataset", "cardinality", "n_sites", "mode", "scheme",
                "trials", "seed",
            )
        },
        metrics=flat_metrics(report),
        artifacts={"BENCH_chaos.json": report},
    )
    meta["run_id"] = record["run_id"]
    return record


def chaos_table(report: dict) -> ExperimentTable:
    """Render a chaos sweep as an experiment table."""
    meta = report["meta"]
    table = ExperimentTable(
        f"Chaos — data set {meta['dataset']} ({meta['n_sites']} sites, "
        f"mode={meta['mode']}, {meta['trials']} trials/point)",
        [
            "failure prob",
            "failed sites [%]",
            "P^I overall [%]",
            "P^II overall [%]",
            "P^II surviving [%]",
            "P^II abandoned [%]",
            "recovered",
            "retries",
            "degraded runs",
        ],
    )
    for point in report["sweep"]:
        surviving = point["mean_q_p2_surviving"]
        abandoned = point.get("mean_q_p2_overall_abandoned")
        table.add_row(
            point["failure_prob"],
            100.0 * point["mean_failed_fraction"],
            point["mean_q_p1_overall"],
            point["mean_q_p2_overall"],
            surviving if surviving is not None else float("nan"),
            abandoned if abandoned is not None else float("nan"),
            point.get("total_recovered", 0),
            point["total_retries"],
            point["n_degraded"],
        )
    table.add_note(
        "overall quality degrades with the failed-site fraction; surviving "
        "sites keep near-healthy quality (lost sites cost only their own "
        "objects)"
    )
    return table


def write_chaos_report(report: dict, path: str = DEFAULT_CHAOS_PATH) -> str:
    """Write the chaos report as pretty-printed JSON (makes parent dirs)."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
