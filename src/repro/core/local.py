"""Local clustering and local-model determination (Sections 4 and 5).

Each site clusters its objects with DBSCAN and condenses every local cluster
into few representatives.  Both schemes of the paper are implemented:

* ``REP_Scor`` (§5.1) — a *complete set of specific core points* per cluster
  (Definition 6), each with its *specific ε-range* (Definition 7),
* ``REP_kMeans`` (§5.2) — k-means centroids seeded by the specific core
  points, each with the max distance of its assigned objects as ε-range.

The specific core points are collected **on the fly during the DBSCAN run**
through the observer hook, exactly as the paper describes ("all information
which is comprised within the local model ... is computed on-the-fly during
the DBSCAN run"): a core point enters ``Scor`` iff, at the moment it is
identified, it is not within ``Eps`` of an already-selected specific core
point of its cluster.  This greedy rule satisfies all three conditions of
Definition 6 and makes the selection a function of the processing order,
which the paper points out explicitly.
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.clustering.dbscan import DBSCAN, DBSCANResult
from repro.clustering.kmeans import lloyd_iterations
from repro.core.models import LocalModel, Representative
from repro.data.distance import Metric, get_metric
from repro.index import NeighborIndex

__all__ = [
    "SpecificCorePointCollector",
    "specific_eps_range",
    "verify_specific_core_set",
    "build_rep_scor_model",
    "build_rep_kmeans_model",
    "build_local_model",
    "build_rep_scor_from_clustering",
    "select_specific_core_points",
    "LocalClusteringOutcome",
    "LOCAL_MODEL_SCHEMES",
]

LOCAL_MODEL_SCHEMES = ("rep_scor", "rep_kmeans")


class SpecificCorePointCollector:
    """DBSCAN observer that greedily picks specific core points (Def. 6).

    Args:
        points: the site's point array (shape ``(n, d)``).
        eps: the local DBSCAN ``Eps``.
        metric: distance metric (must match the DBSCAN run's).
    """

    def __init__(
        self, points: np.ndarray, eps: float, metric: str | Metric = "euclidean"
    ) -> None:
        self._points = np.asarray(points, dtype=float)
        self._eps = float(eps)
        self._metric = get_metric(metric)
        self._scor: dict[int, list[int]] = defaultdict(list)

    def on_cluster_start(self, cluster_id: int, seed_index: int) -> None:
        """No-op; selection happens per core point."""

    def on_core_point(
        self, index: int, cluster_id: int, neighbors: np.ndarray
    ) -> None:
        """Admit ``index`` into ``Scor`` iff no chosen point covers it."""
        chosen = self._scor[cluster_id]
        if chosen:
            distances = self._metric.to_many(
                self._points[index], self._points[chosen]
            )
            if bool((distances <= self._eps).any()):
                return
        chosen.append(index)

    def specific_core_points(self) -> dict[int, np.ndarray]:
        """Mapping ``local cluster id -> Scor index array`` (selection order)."""
        return {
            cid: np.asarray(idx, dtype=np.intp) for cid, idx in self._scor.items()
        }


def specific_eps_range(
    point_index: int,
    result: DBSCANResult,
    *,
    metric: Metric,
) -> float:
    """Specific ε-range of a core point (Definition 7).

    ``ε_s = Eps + max{dist(s, s_i) | s_i ∈ Cor ∧ s_i ∈ N_Eps(s)}`` — the
    maximum runs over *core* points inside ``s``'s ``Eps``-neighborhood, so
    ``s`` also covers the neighborhoods of the core points it suppressed.
    With no other core point nearby the range degenerates to ``Eps``.

    Args:
        point_index: index of the specific core point ``s``.
        result: the finished DBSCAN run (provides core flags and the index).
        metric: distance metric.

    Returns:
        The ε_s value.
    """
    neighbors = result.index.region_query(point_index, result.eps)
    core_neighbors = neighbors[result.core_mask[neighbors]]
    core_neighbors = core_neighbors[core_neighbors != point_index]
    if core_neighbors.size == 0:
        return result.eps
    points = result.index.points
    distances = metric.to_many(points[point_index], points[core_neighbors])
    return float(result.eps + distances.max())


def verify_specific_core_set(
    points: np.ndarray,
    result: DBSCANResult,
    cluster_id: int,
    scor: np.ndarray,
    *,
    metric: str | Metric = "euclidean",
) -> bool:
    """Check the three conditions of Definition 6 for one cluster.

    Used by the test suite (and available to users as an invariant check):

    1. ``Scor_C ⊆ Cor_C`` — every chosen point is a core point of ``C``;
    2. chosen points are pairwise farther than ``Eps`` apart;
    3. every core point of ``C`` lies within ``Eps`` of a chosen point.

    Returns:
        ``True`` iff all conditions hold.
    """
    resolved = get_metric(metric)
    points = np.asarray(points, dtype=float)
    scor = np.asarray(scor, dtype=np.intp)
    cores = set(map(int, result.core_points_of(cluster_id)))
    if not set(map(int, scor)) <= cores:
        return False
    for i, s in enumerate(scor):
        others = scor[i + 1 :]
        if others.size:
            distances = resolved.to_many(points[s], points[others])
            if bool((distances <= result.eps).any()):
                return False
    if cores:
        core_idx = np.asarray(sorted(cores), dtype=np.intp)
        covered = np.zeros(core_idx.size, dtype=bool)
        for s in scor:
            covered |= resolved.to_many(points[s], points[core_idx]) <= result.eps
        if not covered.all():
            return False
    return True


@dataclass
class LocalClusteringOutcome:
    """A site's local clustering plus the model derived from it.

    Attributes:
        model: the transmitted :class:`~repro.core.models.LocalModel`.
        clustering: the full local DBSCAN result (stays on the site).
        specific_core_points: per local cluster, the chosen ``Scor`` indices.
    """

    model: LocalModel
    clustering: DBSCANResult
    specific_core_points: dict[int, np.ndarray] = field(default_factory=dict)


def _run_local_dbscan(
    points: np.ndarray,
    eps: float,
    min_pts: int,
    metric: Metric,
    index_kind: str,
    index: NeighborIndex | None,
    tracer=None,
    metrics=None,
) -> tuple[DBSCANResult, dict[int, np.ndarray]]:
    collector = SpecificCorePointCollector(points, eps, metric)
    runner = DBSCAN(eps, min_pts, metric=metric, index_kind=index_kind)
    if tracer is None and metrics is None:
        result = runner.fit(points, observer=collector, index=index)
        return result, collector.specific_core_points()
    query_s0 = metrics.value("index.query_seconds") if metrics is not None else 0.0
    start = time.perf_counter()
    result = runner.fit(points, observer=collector, index=index, metrics=metrics)
    end = time.perf_counter()
    if tracer is not None:
        span = tracer.record(
            "dbscan",
            wall_start=start,
            wall_end=end,
            attrs={
                "n_points": int(points.shape[0]),
                "n_region_queries": result.n_region_queries,
                "n_clusters": result.n_clusters,
            },
        )
        if metrics is not None and span is not None:
            # A synthetic child summarizing the time spent inside the
            # index: anchored at the dbscan start, its duration is the
            # accumulated per-query seconds measured during this fit
            # (clamped so it can never outgrow its parent).
            query_seconds = metrics.value("index.query_seconds") - query_s0
            tracer.record(
                "region_queries",
                wall_start=start,
                wall_end=min(end, start + query_seconds),
                attrs={"n_queries": result.n_region_queries},
                parent=span,
            )
    return result, collector.specific_core_points()


def _record_derive_span(tracer, start: float, scheme: str, n: int) -> None:
    """Close a ``derive_model`` span opened at ``start`` (no-op untraced)."""
    if tracer is not None:
        tracer.record(
            "derive_model",
            wall_start=start,
            wall_end=time.perf_counter(),
            attrs={"scheme": scheme, "n_representatives": n},
        )


def build_rep_scor_model(
    points: np.ndarray,
    eps: float,
    min_pts: int,
    *,
    site_id: int = 0,
    metric: str | Metric = "euclidean",
    index_kind: str = "auto",
    index: NeighborIndex | None = None,
    tracer=None,
    metrics=None,
) -> LocalClusteringOutcome:
    """Cluster a site's data and build its ``REP_Scor`` local model (§5.1).

    Args:
        points: the site's objects, shape ``(n, d)``.
        eps: local DBSCAN ``Eps``.
        min_pts: local DBSCAN ``MinPts``.
        site_id: identifier stamped on the representatives.
        metric: distance metric.
        index_kind: neighbor index kind.
        index: optional pre-built index over ``points``.
        tracer: optional :class:`~repro.obs.Tracer`; records ``dbscan``
            (with a ``region_queries`` child) and ``derive_model`` spans.
        metrics: optional :class:`~repro.obs.MetricsRegistry`.

    Returns:
        A :class:`LocalClusteringOutcome` whose model holds, per local
        cluster, the specific core points with their specific ε-ranges.
    """
    resolved = get_metric(metric)
    points = np.asarray(points, dtype=float)
    result, scor_map = _run_local_dbscan(
        points, eps, min_pts, resolved, index_kind, index, tracer, metrics
    )
    derive_start = time.perf_counter() if tracer is not None else 0.0
    representatives = []
    for cid in sorted(scor_map):
        for s in scor_map[cid]:
            representatives.append(
                Representative(
                    point=points[s].copy(),
                    eps_range=specific_eps_range(int(s), result, metric=resolved),
                    site_id=site_id,
                    local_cluster_id=cid,
                )
            )
    _record_derive_span(tracer, derive_start, "rep_scor", len(representatives))
    model = LocalModel(
        site_id=site_id,
        representatives=representatives,
        n_objects=points.shape[0],
        scheme="rep_scor",
        eps_local=float(eps),
        min_pts_local=int(min_pts),
    )
    return LocalClusteringOutcome(model, result, scor_map)


def build_rep_kmeans_model(
    points: np.ndarray,
    eps: float,
    min_pts: int,
    *,
    site_id: int = 0,
    metric: str | Metric = "euclidean",
    index_kind: str = "auto",
    index: NeighborIndex | None = None,
    max_iter: int = 100,
    tracer=None,
    metrics=None,
) -> LocalClusteringOutcome:
    """Cluster a site's data and build its ``REP_kMeans`` local model (§5.2).

    Per local DBSCAN cluster ``C``: run k-means over ``C``'s members with
    ``k = |Scor_C|`` seeded by the specific core points; every centroid
    becomes a representative whose ε-range is the maximum distance of its
    assigned objects ``ε_c = max{dist(o, c) | o ∈ O_c}``.

    Args: as :func:`build_rep_scor_model`, plus ``max_iter`` for Lloyd.

    Returns:
        A :class:`LocalClusteringOutcome`.
    """
    resolved = get_metric(metric)
    points = np.asarray(points, dtype=float)
    result, scor_map = _run_local_dbscan(
        points, eps, min_pts, resolved, index_kind, index, tracer, metrics
    )
    derive_start = time.perf_counter() if tracer is not None else 0.0
    representatives = []
    for cid in sorted(scor_map):
        members = result.members(cid)
        seeds = points[scor_map[cid]]
        km = lloyd_iterations(
            points[members], seeds, metric=resolved, max_iter=max_iter
        )
        for j in range(km.k):
            # A degenerate cell (empty, or every member exactly on the
            # centroid) has radius 0, which Representative rejects; the
            # smallest positive float keeps the old "covers only exact
            # coincidences" semantics while satisfying ε_r > 0.
            radius = max(km.radius_of(j, points[members]), np.finfo(float).tiny)
            representatives.append(
                Representative(
                    point=km.centroids[j].copy(),
                    eps_range=radius,
                    site_id=site_id,
                    local_cluster_id=cid,
                )
            )
    _record_derive_span(tracer, derive_start, "rep_kmeans", len(representatives))
    model = LocalModel(
        site_id=site_id,
        representatives=representatives,
        n_objects=points.shape[0],
        scheme="rep_kmeans",
        eps_local=float(eps),
        min_pts_local=int(min_pts),
    )
    return LocalClusteringOutcome(model, result, scor_map)


def select_specific_core_points(
    points: np.ndarray,
    labels: np.ndarray,
    core_mask: np.ndarray,
    eps: float,
    *,
    metric: str | Metric = "euclidean",
) -> dict[int, np.ndarray]:
    """Greedy Def.-6 selection from an already-finished clustering.

    The observer-based collector needs a live DBSCAN run; incremental
    sites maintain their clustering with insert/delete operations instead
    and re-derive ``Scor`` from the current state.  Core points are
    scanned in ascending index order (the "processing order" of this
    selection), admitted iff no already-chosen point of the same cluster
    covers them — the same greedy rule, hence the same guarantees.

    Args:
        points: the site's objects.
        labels: finished cluster labels.
        core_mask: per-object core flags.
        eps: the clustering's ``Eps``.
        metric: distance metric.

    Returns:
        Mapping ``cluster id -> Scor index array``.
    """
    resolved = get_metric(metric)
    points = np.asarray(points, dtype=float)
    chosen: dict[int, list[int]] = defaultdict(list)
    for i in np.flatnonzero(core_mask):
        cid = int(labels[i])
        current = chosen[cid]
        if current:
            distances = resolved.to_many(points[i], points[current])
            if bool((distances <= eps).any()):
                continue
        current.append(int(i))
    return {cid: np.asarray(idx, dtype=np.intp) for cid, idx in chosen.items()}


def build_rep_scor_from_clustering(
    points: np.ndarray,
    labels: np.ndarray,
    core_mask: np.ndarray,
    eps: float,
    min_pts: int,
    *,
    site_id: int = 0,
    metric: str | Metric = "euclidean",
) -> LocalModel:
    """Build a ``REP_Scor`` local model from clustering state.

    Used by incremental sites (whose clustering is maintained, not
    re-run).  Equivalent to :func:`build_rep_scor_model` up to the
    specific-core-point processing order.

    Args:
        points: the site's objects.
        labels: finished cluster labels.
        core_mask: per-object core flags.
        eps: the clustering's ``Eps``.
        min_pts: the clustering's ``MinPts`` (model metadata).
        site_id: identifier stamped on the representatives.
        metric: distance metric.

    Returns:
        The :class:`~repro.core.models.LocalModel`.
    """
    resolved = get_metric(metric)
    points = np.asarray(points, dtype=float)
    labels = np.asarray(labels, dtype=np.intp)
    core_mask = np.asarray(core_mask, dtype=bool)
    scor_map = select_specific_core_points(
        points, labels, core_mask, eps, metric=resolved
    )
    representatives = []
    for cid in sorted(scor_map):
        for s in scor_map[cid]:
            # Definition 7 without a prebuilt index: scan for core
            # neighbors directly (the Scor sets are small).
            distances = resolved.to_many(points[s], points)
            nearby_cores = np.flatnonzero(
                (distances <= eps) & core_mask & (np.arange(points.shape[0]) != s)
            )
            eps_range = eps + (distances[nearby_cores].max() if nearby_cores.size else 0.0)
            representatives.append(
                Representative(
                    point=points[s].copy(),
                    eps_range=float(eps_range),
                    site_id=site_id,
                    local_cluster_id=int(cid),
                )
            )
    return LocalModel(
        site_id=site_id,
        representatives=representatives,
        n_objects=points.shape[0],
        scheme="rep_scor",
        eps_local=float(eps),
        min_pts_local=int(min_pts),
    )


def build_local_model(
    points: np.ndarray,
    eps: float,
    min_pts: int,
    *,
    scheme: str = "rep_scor",
    site_id: int = 0,
    metric: str | Metric = "euclidean",
    index_kind: str = "auto",
    index: NeighborIndex | None = None,
    tracer=None,
    metrics=None,
) -> LocalClusteringOutcome:
    """Dispatch to the configured local-model scheme.

    Args:
        points: the site's objects.
        eps: local ``Eps``.
        min_pts: local ``MinPts``.
        scheme: ``"rep_scor"`` or ``"rep_kmeans"``.
        site_id: identifier stamped on representatives.
        metric: distance metric.
        index_kind: neighbor index kind.
        index: optional pre-built index.
        tracer: optional :class:`~repro.obs.Tracer`.
        metrics: optional :class:`~repro.obs.MetricsRegistry`.

    Returns:
        A :class:`LocalClusteringOutcome`.

    Raises:
        ValueError: for unknown schemes.
    """
    if scheme == "rep_scor":
        return build_rep_scor_model(
            points,
            eps,
            min_pts,
            site_id=site_id,
            metric=metric,
            index_kind=index_kind,
            index=index,
            tracer=tracer,
            metrics=metrics,
        )
    if scheme == "rep_kmeans":
        return build_rep_kmeans_model(
            points,
            eps,
            min_pts,
            site_id=site_id,
            metric=metric,
            index_kind=index_kind,
            index=index,
            tracer=tracer,
            metrics=metrics,
        )
    raise ValueError(
        f"unknown local model scheme {scheme!r}; known: {LOCAL_MODEL_SCHEMES}"
    )
