"""The paper's primary contribution: the DBDC algorithm.

* :mod:`repro.core.local` — local clustering and local models
  (``REP_Scor``, ``REP_kMeans``; Sections 4-5),
* :mod:`repro.core.models` — the ``(r, ε_r)`` model types on the wire,
* :mod:`repro.core.global_model` — server-side merge (Section 6),
* :mod:`repro.core.relabel` — the local update step (Section 7),
* :mod:`repro.core.dbdc` — the one-call pipeline with the paper's timing
  and transmission accounting.
"""

from repro.core.dbdc import (
    DBDCConfig,
    DBDCResult,
    PartitionedDBDCResult,
    SiteOutcome,
    run_dbdc,
    run_dbdc_partitioned,
)
from repro.core.global_model import (
    GlobalClusteringStats,
    build_global_model,
    build_global_model_via_optics,
    default_eps_global,
)
from repro.core.local import (
    LOCAL_MODEL_SCHEMES,
    LocalClusteringOutcome,
    SpecificCorePointCollector,
    build_local_model,
    build_rep_kmeans_model,
    build_rep_scor_model,
    specific_eps_range,
    verify_specific_core_set,
)
from repro.core.models import GlobalModel, LocalModel, Representative
from repro.core.relabel import (
    RELABEL_KERNELS,
    RelabelStats,
    relabel_site,
    relabel_site_reference,
)
from repro.core.shm import ShmArrayPool, ShmArrayRef, attach_array

__all__ = [
    "DBDCConfig",
    "DBDCResult",
    "PartitionedDBDCResult",
    "SiteOutcome",
    "run_dbdc",
    "run_dbdc_partitioned",
    "GlobalClusteringStats",
    "build_global_model",
    "build_global_model_via_optics",
    "default_eps_global",
    "LOCAL_MODEL_SCHEMES",
    "LocalClusteringOutcome",
    "SpecificCorePointCollector",
    "build_local_model",
    "build_rep_kmeans_model",
    "build_rep_scor_model",
    "specific_eps_range",
    "verify_specific_core_set",
    "GlobalModel",
    "LocalModel",
    "Representative",
    "RELABEL_KERNELS",
    "RelabelStats",
    "relabel_site",
    "relabel_site_reference",
    "ShmArrayPool",
    "ShmArrayRef",
    "attach_array",
]
