"""The DBDC pipeline: local clustering → local models → global model →
relabeling (Figure 2 of the paper), executed in-process.

This module is the library's main entry point for single-call use.  It
simulates the distributed protocol the way the paper's own evaluation does
(Section 9): all local clusterings are carried out sequentially on one
machine, and the *overall runtime* is accounted as

    ``max(local clustering times) + global clustering time``

because real sites would run concurrently.  Transmission volume is measured
in representatives and serialized bytes.

For an explicit sites/server/network simulation (message passing, byte and
latency accounting per link), use :mod:`repro.distributed` — it shares all
of the model-building code below.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.clustering.labels import NOISE
from repro.core.global_model import (
    GlobalClusteringStats,
    build_global_model,
    default_eps_global,
)
from repro.core.local import LOCAL_MODEL_SCHEMES, LocalClusteringOutcome, build_local_model
from repro.core.models import GlobalModel, LocalModel
from repro.core.relabel import RELABEL_KERNELS, RelabelStats, relabel_site
from repro.data.distance import Metric, get_metric

__all__ = [
    "DBDCConfig",
    "SiteOutcome",
    "DBDCResult",
    "PartitionedDBDCResult",
    "run_dbdc",
    "run_dbdc_partitioned",
]


@dataclass(frozen=True)
class DBDCConfig:
    """Parameters of a DBDC run.

    Attributes:
        eps_local: DBSCAN ``Eps`` on every site.
        min_pts_local: DBSCAN ``MinPts`` on every site.
        scheme: local model scheme, ``"rep_scor"`` or ``"rep_kmeans"``.
        eps_global: server merge radius; ``None`` selects the paper's
            default (max ε_r over all representatives ≈ ``2·eps_local``).
        metric: distance metric name or instance.
        index_kind: neighbor index used by all DBSCAN runs.
        relabel_kernel: coverage kernel of the update step —
            ``"auto"``, ``"vectorized"`` or ``"reference"``.  All kernels
            produce bit-identical labels; the knob trades constants only.
    """

    eps_local: float
    min_pts_local: int
    scheme: str = "rep_scor"
    eps_global: float | None = None
    metric: str | Metric = "euclidean"
    index_kind: str = "auto"
    relabel_kernel: str = "auto"

    def __post_init__(self) -> None:
        if self.eps_local <= 0:
            raise ValueError(f"eps_local must be positive, got {self.eps_local}")
        if self.min_pts_local < 1:
            raise ValueError(
                f"min_pts_local must be >= 1, got {self.min_pts_local}"
            )
        if self.scheme not in LOCAL_MODEL_SCHEMES:
            raise ValueError(
                f"unknown scheme {self.scheme!r}; known: {LOCAL_MODEL_SCHEMES}"
            )
        if self.eps_global is not None and self.eps_global <= 0:
            raise ValueError(
                f"eps_global must be positive or None, got {self.eps_global}"
            )
        if self.relabel_kernel not in RELABEL_KERNELS:
            raise ValueError(
                f"unknown relabel_kernel {self.relabel_kernel!r}; "
                f"known: {RELABEL_KERNELS}"
            )


@dataclass
class SiteOutcome:
    """Per-site artifacts of a DBDC run.

    Attributes:
        site_id: the site's identifier.
        points: the site's objects (kept for inspection; sites never
            transmit them).
        local: local clustering + local model.
        global_labels: the site's objects relabeled with global ids.
        relabel_stats: bookkeeping of the update step.
        local_seconds: wall time of local clustering + model building.
        relabel_seconds: wall time of the update step.
    """

    site_id: int
    points: np.ndarray
    local: LocalClusteringOutcome
    global_labels: np.ndarray
    relabel_stats: RelabelStats
    local_seconds: float
    relabel_seconds: float


@dataclass
class DBDCResult:
    """Everything a DBDC run produces.

    Attributes:
        config: the run's configuration.
        sites: per-site outcomes (ordered by site id).
        global_model: the server's model.
        global_stats: server-side clustering statistics.
        eps_global_used: the actual merge radius (after defaulting).
        global_seconds: wall time of the server clustering.
        n_objects: total objects across sites.
        bytes_up: serialized local-model bytes (sites → server).
        bytes_down: serialized global-model bytes (server → each site,
            counted once; multiply by #sites for total broadcast volume).
    """

    config: DBDCConfig
    sites: list[SiteOutcome]
    global_model: GlobalModel
    global_stats: GlobalClusteringStats
    eps_global_used: float
    global_seconds: float
    n_objects: int
    bytes_up: int
    bytes_down: int

    # ------------------------------------------------------------------
    # paper-style accounting
    # ------------------------------------------------------------------
    @property
    def n_sites(self) -> int:
        """Number of client sites."""
        return len(self.sites)

    @property
    def n_representatives(self) -> int:
        """Total representatives transmitted to the server."""
        return len(self.global_model)

    @property
    def representative_fraction(self) -> float:
        """Share of objects transmitted as representatives.

        This is the "number of local repr. [%]" column of the paper's
        Figure 10 (as a fraction, multiply by 100 for percent).
        """
        if self.n_objects == 0:
            return 0.0
        return self.n_representatives / self.n_objects

    @property
    def max_local_seconds(self) -> float:
        """Slowest site's local phase (sites run concurrently in reality)."""
        if not self.sites:
            return 0.0
        return max(site.local_seconds for site in self.sites)

    @property
    def overall_seconds(self) -> float:
        """The paper's overall runtime: max local + global (Section 9)."""
        return self.max_local_seconds + self.global_seconds

    def labels(self) -> np.ndarray:
        """Global labels of all objects, sites concatenated in order."""
        if not self.sites:
            return np.empty(0, dtype=np.intp)
        return np.concatenate([site.global_labels for site in self.sites])

    def local_labels(self) -> np.ndarray:
        """Pre-update local labels, sites concatenated in order.

        Local cluster ids are offset per site so they do not collide —
        useful for comparing "no-merge" against the relabeled outcome.
        """
        parts = []
        offset = 0
        for site in self.sites:
            labels = site.local.clustering.labels.copy()
            mask = labels >= 0
            labels[mask] += offset
            if mask.any():
                offset = int(labels[mask].max()) + 1
            parts.append(labels)
        return np.concatenate(parts) if parts else np.empty(0, dtype=np.intp)

    def points(self) -> np.ndarray:
        """All objects, sites concatenated in order (aligned with labels)."""
        return np.concatenate([site.points for site in self.sites])

    @property
    def n_global_clusters(self) -> int:
        """Distinct global clusters that actually contain objects."""
        labels = self.labels()
        return int(np.unique(labels[labels != NOISE]).size) if labels.size else 0


def run_dbdc(
    site_points: list[np.ndarray],
    config: DBDCConfig,
) -> DBDCResult:
    """Execute the full DBDC protocol over explicitly partitioned data.

    Args:
        site_points: one point array per client site.
        config: run parameters.

    Returns:
        A :class:`DBDCResult`.

    Raises:
        ValueError: if no sites are given.
    """
    if not site_points:
        raise ValueError("at least one site is required")
    # Step 1 + 2: local clustering and local model determination.
    outcomes: list[LocalClusteringOutcome] = []
    local_times: list[float] = []
    for site_id, points in enumerate(site_points):
        start = time.perf_counter()
        outcome = build_local_model(
            np.asarray(points, dtype=float),
            config.eps_local,
            config.min_pts_local,
            scheme=config.scheme,
            site_id=site_id,
            metric=config.metric,
            index_kind=config.index_kind,
        )
        local_times.append(time.perf_counter() - start)
        outcomes.append(outcome)
    local_models: list[LocalModel] = [outcome.model for outcome in outcomes]
    bytes_up = sum(len(model.to_bytes()) for model in local_models)

    # Step 3: global model.
    eps_global = (
        config.eps_global
        if config.eps_global is not None
        else default_eps_global(local_models)
    )
    start = time.perf_counter()
    global_model, global_stats = build_global_model(
        local_models,
        eps_global=eps_global if eps_global > 0 else None,
        metric=config.metric,
        index_kind=config.index_kind,
    )
    global_seconds = time.perf_counter() - start
    bytes_down = len(global_model.to_bytes())

    # Step 4: relabeling on every site.
    metric = get_metric(config.metric)
    sites: list[SiteOutcome] = []
    for site_id, (points, outcome) in enumerate(zip(site_points, outcomes)):
        points = np.asarray(points, dtype=float)
        start = time.perf_counter()
        labels, stats = relabel_site(
            points,
            outcome.clustering.labels,
            global_model,
            site_id=site_id,
            metric=metric,
            kernel=config.relabel_kernel,
        )
        relabel_seconds = time.perf_counter() - start
        sites.append(
            SiteOutcome(
                site_id=site_id,
                points=points,
                local=outcome,
                global_labels=labels,
                relabel_stats=stats,
                local_seconds=local_times[site_id],
                relabel_seconds=relabel_seconds,
            )
        )
    return DBDCResult(
        config=config,
        sites=sites,
        global_model=global_model,
        global_stats=global_stats,
        eps_global_used=global_model.eps_global,
        global_seconds=global_seconds,
        n_objects=sum(site.points.shape[0] for site in sites),
        bytes_up=bytes_up,
        bytes_down=bytes_down,
    )


@dataclass
class PartitionedDBDCResult:
    """A :class:`DBDCResult` plus the mapping back to the original order.

    Attributes:
        result: the underlying run.
        assignment: per original object, the site it was placed on.
        positions: per original object, its row within its site.
    """

    result: DBDCResult
    assignment: np.ndarray
    positions: np.ndarray

    def labels_in_original_order(self) -> np.ndarray:
        """Global labels aligned with the original (pre-partition) order."""
        out = np.empty(self.assignment.size, dtype=np.intp)
        for i, (site, pos) in enumerate(zip(self.assignment, self.positions)):
            out[i] = self.result.sites[site].global_labels[pos]
        return out


def run_dbdc_partitioned(
    points: np.ndarray,
    assignment: np.ndarray,
    config: DBDCConfig,
) -> PartitionedDBDCResult:
    """Run DBDC on a dataset split by an explicit site assignment.

    Args:
        points: the complete dataset, shape ``(n, d)``.
        assignment: per object, the site id in ``0..k-1``.
        config: run parameters.

    Returns:
        A :class:`PartitionedDBDCResult` that can realign labels with the
        original object order — which the quality functions need, because
        they compare against a central clustering of ``points``.
    """
    points = np.asarray(points, dtype=float)
    assignment = np.asarray(assignment, dtype=np.intp)
    if assignment.size != points.shape[0]:
        raise ValueError(
            f"{points.shape[0]} points but {assignment.size} assignments"
        )
    if assignment.size and assignment.min() < 0:
        raise ValueError("site assignments must be non-negative")
    n_sites = int(assignment.max()) + 1 if assignment.size else 0
    site_points = []
    positions = np.empty(assignment.size, dtype=np.intp)
    for site in range(n_sites):
        members = np.flatnonzero(assignment == site)
        positions[members] = np.arange(members.size)
        site_points.append(points[members])
    result = run_dbdc(site_points, config)
    return PartitionedDBDCResult(result, assignment, positions)
