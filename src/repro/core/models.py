"""Model types exchanged between DBDC sites and the server.

A *local model* (Sections 5-6) is the aggregated information a client site
transmits instead of its raw data: a set of pairs ``(r, ε_r)`` where ``r``
is a representative point and ``ε_r`` the specific ε-range describing the
area ``r`` stands for.  The *global model* is the server's clustering of all
representatives: every representative carries a global cluster id.

Both models know how to serialize themselves to bytes — not for real
networking (the sites are simulated in-process) but because the paper's
efficiency argument is about *transmission volume*; the byte sizes feed the
network-cost accounting in :mod:`repro.distributed.network`.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

__all__ = ["Representative", "LocalModel", "GlobalModel"]

_HEADER = struct.Struct("<III")  # site id, number of reps, dimensionality


@dataclass(frozen=True)
class Representative:
    """One ``(r, ε_r)`` pair of a local model.

    Attributes:
        point: the representative's coordinates (a concrete local object for
            ``REP_Scor``, a k-means centroid for ``REP_kMeans``).
        eps_range: the specific ε-range ``ε_r`` — radius of the area this
            representative describes (Definitions 7 / Section 5.2).
        site_id: originating site.
        local_cluster_id: id of the local cluster the representative
            describes (site-scoped).
    """

    point: np.ndarray
    eps_range: float
    site_id: int
    local_cluster_id: int

    def __post_init__(self) -> None:
        point = np.asarray(self.point, dtype=float)
        object.__setattr__(self, "point", point)
        # Corrupt payloads must fail loudly at construction, not poison the
        # global DBSCAN: NaN/inf coordinates break every distance function,
        # and a non-positive ε-range describes no area at all (Def. 7 gives
        # every representative a strictly positive specific ε-range).
        if not np.isfinite(point).all():
            raise ValueError(
                f"representative coordinates must be finite, got {point!r}"
            )
        if not np.isfinite(self.eps_range) or self.eps_range <= 0:
            raise ValueError(f"eps_range must be > 0, got {self.eps_range}")

    def covers(self, point: np.ndarray, metric) -> bool:
        """Whether ``point`` lies in this representative's ε_r-neighborhood."""
        return bool(metric.pairwise(self.point, point) <= self.eps_range)


@dataclass
class LocalModel:
    """Everything one site sends to the server.

    Attributes:
        site_id: originating site.
        representatives: the ``(r, ε_r)`` pairs (``LocalModel_k`` in §5).
        n_objects: number of objects on the site (reporting only; the paper
            quotes the representative share of the data volume).
        scheme: ``"rep_scor"`` or ``"rep_kmeans"``.
        eps_local: the site's DBSCAN ``Eps``.
        min_pts_local: the site's DBSCAN ``MinPts``.
    """

    site_id: int
    representatives: list[Representative]
    n_objects: int
    scheme: str
    eps_local: float
    min_pts_local: int

    def __len__(self) -> int:
        return len(self.representatives)

    @property
    def n_local_clusters(self) -> int:
        """Number of local clusters the model describes."""
        return len({rep.local_cluster_id for rep in self.representatives})

    @property
    def max_eps_range(self) -> float:
        """Largest ε_r in the model (feeds the ``Eps_global`` default)."""
        if not self.representatives:
            return 0.0
        return max(rep.eps_range for rep in self.representatives)

    def points(self) -> np.ndarray:
        """Representative coordinates stacked into an ``(m, d)`` array."""
        if not self.representatives:
            return np.empty((0, 0))
        return np.asarray([rep.point for rep in self.representatives])

    def eps_ranges(self) -> np.ndarray:
        """The ε_r values aligned with :meth:`points`."""
        return np.asarray([rep.eps_range for rep in self.representatives])

    def validate(self) -> list[str]:
        """Semantic admission checks beyond what construction enforces.

        :class:`Representative` already rejects NaN/inf coordinates and
        non-positive ε-ranges at construction; this method covers the
        cross-field consistency a server must check before merging a model
        it did not build itself (see ``CentralServer.admit``):

        * the site id is a valid client id (non-negative),
        * every representative claims the model's site id,
        * all representatives share one dimensionality,
        * the declared object count can actually produce this many
          representatives (each representative stands for at least one
          object, so ``len(representatives) <= n_objects`` whenever a
          count is declared).

        Returns:
            A list of human-readable problems; empty means admissible.
        """
        problems: list[str] = []
        if self.site_id < 0:
            problems.append(f"negative site id {self.site_id}")
        if self.n_objects < 0:
            problems.append(f"negative object count {self.n_objects}")
        dims = {rep.point.size for rep in self.representatives}
        if len(dims) > 1:
            problems.append(f"mixed representative dimensionalities {sorted(dims)}")
        for rep in self.representatives:
            if rep.site_id != self.site_id:
                problems.append(
                    f"representative claims site {rep.site_id}, "
                    f"model claims site {self.site_id}"
                )
                break
        if self.n_objects > 0 and len(self.representatives) > self.n_objects:
            problems.append(
                f"{len(self.representatives)} representatives declared for "
                f"only {self.n_objects} objects"
            )
        return problems

    def to_bytes(self) -> bytes:
        """Serialize for transmission-size accounting.

        Layout: header (site id, count, dim) then per representative the
        local cluster id (uint32), ε_r (float64) and coordinates (float64
        each) — the minimal wire content of ``LocalModel_k``.
        """
        dim = self.representatives[0].point.size if self.representatives else 0
        chunks = [_HEADER.pack(self.site_id, len(self.representatives), dim)]
        record = struct.Struct(f"<Id{dim}d")
        for rep in self.representatives:
            chunks.append(
                record.pack(rep.local_cluster_id, rep.eps_range, *rep.point)
            )
        return b"".join(chunks)

    @classmethod
    def from_bytes(
        cls,
        payload: bytes,
        *,
        n_objects: int = 0,
        scheme: str = "unknown",
        eps_local: float = 0.0,
        min_pts_local: int = 0,
    ) -> "LocalModel":
        """Inverse of :meth:`to_bytes` (metadata fields are not on the wire)."""
        site_id, count, dim = _HEADER.unpack_from(payload, 0)
        record = struct.Struct(f"<Id{dim}d")
        offset = _HEADER.size
        reps = []
        for __ in range(count):
            values = record.unpack_from(payload, offset)
            offset += record.size
            reps.append(
                Representative(
                    point=np.asarray(values[2:], dtype=float),
                    eps_range=values[1],
                    site_id=site_id,
                    local_cluster_id=values[0],
                )
            )
        return cls(
            site_id=site_id,
            representatives=reps,
            n_objects=n_objects,
            scheme=scheme,
            eps_local=eps_local,
            min_pts_local=min_pts_local,
        )


@dataclass
class GlobalModel:
    """The server's clustering of all local representatives (§6).

    Attributes:
        representatives: all representatives from all sites, in server
            processing order.
        global_labels: global cluster id per representative (no noise —
            every representative belongs to a global cluster, singletons
            included: "each specific local representative forms a cluster
            on its own").
        eps_global: the ``Eps_global`` the server clustered with.
        min_pts_global: always 2 in the paper.
    """

    representatives: list[Representative]
    global_labels: np.ndarray
    eps_global: float
    min_pts_global: int = 2

    def __post_init__(self) -> None:
        self.global_labels = np.asarray(self.global_labels, dtype=np.intp)
        if len(self.representatives) != self.global_labels.size:
            raise ValueError(
                f"{len(self.representatives)} representatives but "
                f"{self.global_labels.size} labels"
            )
        if self.global_labels.size and self.global_labels.min() < 0:
            raise ValueError("global labels must be non-negative (no noise)")

    def __len__(self) -> int:
        return len(self.representatives)

    @property
    def n_global_clusters(self) -> int:
        """Number of distinct global clusters."""
        return int(np.unique(self.global_labels).size) if len(self) else 0

    def points(self) -> np.ndarray:
        """Representative coordinates stacked into an ``(m, d)`` array."""
        if not self.representatives:
            return np.empty((0, 0))
        return np.asarray([rep.point for rep in self.representatives])

    def eps_ranges(self) -> np.ndarray:
        """The ε_r values aligned with :meth:`points`."""
        return np.asarray([rep.eps_range for rep in self.representatives])

    def members_of(self, global_id: int) -> list[Representative]:
        """Representatives assigned to ``global_id``."""
        return [
            rep
            for rep, label in zip(self.representatives, self.global_labels)
            if label == global_id
        ]

    def to_bytes(self) -> bytes:
        """Serialize for transmission-size accounting (broadcast payload)."""
        dim = self.representatives[0].point.size if self.representatives else 0
        chunks = [_HEADER.pack(0, len(self.representatives), dim)]
        record = struct.Struct(f"<Id{dim}d")
        for rep, label in zip(self.representatives, self.global_labels):
            chunks.append(record.pack(int(label), rep.eps_range, *rep.point))
        return b"".join(chunks)
