"""Updating the local clustering based on the global model (Section 7).

After the server broadcasts the global model, every site relabels its
objects independently:

* an object in the ``ε_r``-neighborhood of a global representative ``r``
  joins ``r``'s global cluster (when several representatives cover an
  object, the nearest one wins) — this is how former *local noise* becomes
  part of a global cluster, as in the paper's Figure 5 example;
* objects of a local cluster that no representative happens to cover still
  inherit the global id of their own cluster's representatives (the local
  cluster as a whole is part of that global cluster);
* everything else stays noise.

Two formerly independent local clusters end up with the same global id iff
the server merged their representatives — the "merge two local clusters to
one" effect of Section 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clustering.labels import NOISE, validate_labels
from repro.core.models import GlobalModel
from repro.data.distance import Metric, get_metric

__all__ = ["RelabelStats", "relabel_site"]


@dataclass(frozen=True)
class RelabelStats:
    """Bookkeeping of one site's relabeling pass.

    Attributes:
        n_objects: objects on the site.
        n_covered: objects covered by some representative's ε_r-range.
        n_noise_promoted: former local-noise objects assigned to a global
            cluster (Figure 5's A and B).
        n_inherited: uncovered cluster members that inherited their local
            cluster's global id.
        n_still_noise: objects that remain noise after the update.
        n_local_clusters_merged: local clusters that shared their global id
            with another local cluster of the same site after the update.
    """

    n_objects: int
    n_covered: int
    n_noise_promoted: int
    n_inherited: int
    n_still_noise: int
    n_local_clusters_merged: int


def relabel_site(
    points: np.ndarray,
    local_labels: np.ndarray,
    global_model: GlobalModel,
    *,
    site_id: int | None = None,
    metric: str | Metric = "euclidean",
) -> tuple[np.ndarray, RelabelStats]:
    """Relabel one site's objects with global cluster ids.

    Args:
        points: the site's objects, shape ``(n, d)``.
        local_labels: the site's local DBSCAN labels (noise = -1).
        global_model: the broadcast global model.
        site_id: this site's id — used for the inheritance fallback (maps
            the site's local clusters to their representatives' global ids).
            ``None`` disables inheritance by site (pure coverage relabel).
        metric: distance metric.

    Returns:
        ``(global_labels, stats)`` where ``global_labels`` holds global
        cluster ids (noise = -1).
    """
    resolved = get_metric(metric)
    points = np.asarray(points, dtype=float)
    local_labels = validate_labels(local_labels)
    n = points.shape[0]
    if local_labels.size != n:
        raise ValueError(
            f"{n} points but {local_labels.size} local labels"
        )
    out = np.full(n, NOISE, dtype=np.intp)
    m = len(global_model)
    if m == 0 or n == 0:
        stats = RelabelStats(
            n_objects=n,
            n_covered=0,
            n_noise_promoted=0,
            n_inherited=0,
            n_still_noise=int(np.count_nonzero(out == NOISE)),
            n_local_clusters_merged=0,
        )
        return out, stats

    rep_points = global_model.points()
    rep_ranges = global_model.eps_ranges()
    rep_labels = global_model.global_labels

    # Nearest covering representative per object (vectorized per rep: the
    # model is small by construction, the site's data may be large).
    best_distance = np.full(n, np.inf)
    for j in range(m):
        distances = resolved.to_many(rep_points[j], points)
        covered = (distances <= rep_ranges[j]) & (distances < best_distance)
        if covered.any():
            out[covered] = rep_labels[j]
            best_distance[covered] = distances[covered]
    n_covered = int(np.count_nonzero(np.isfinite(best_distance)))
    was_noise = local_labels == NOISE
    n_noise_promoted = int(np.count_nonzero(was_noise & (out != NOISE)))

    # Inheritance fallback: members of a local cluster that no ε_r-range
    # covers still belong to the global cluster their representatives
    # joined.
    n_inherited = 0
    if site_id is not None:
        own_global_by_local: dict[int, list[int]] = {}
        for rep, label in zip(global_model.representatives, rep_labels):
            if rep.site_id == site_id:
                own_global_by_local.setdefault(rep.local_cluster_id, []).append(
                    int(label)
                )
        uncovered_members = np.flatnonzero((out == NOISE) & ~was_noise)
        for i in uncovered_members:
            candidates = own_global_by_local.get(int(local_labels[i]))
            if not candidates:
                continue
            if len(candidates) == 1:
                out[i] = candidates[0]
            else:
                # The local cluster's representatives split across several
                # global clusters: follow the nearest own representative.
                own_reps = [
                    (j, rep)
                    for j, rep in enumerate(global_model.representatives)
                    if rep.site_id == site_id
                    and rep.local_cluster_id == int(local_labels[i])
                ]
                rep_coords = np.asarray([rep.point for __, rep in own_reps])
                distances = resolved.to_many(points[i], rep_coords)
                out[i] = rep_labels[own_reps[int(np.argmin(distances))][0]]
            n_inherited += 1

    # Merge accounting: how many of this site's local clusters now share a
    # global id with another local cluster of the same site.
    merged = 0
    if site_id is not None:
        global_of_local: dict[int, set[int]] = {}
        for i in range(n):
            if local_labels[i] >= 0 and out[i] != NOISE:
                global_of_local.setdefault(int(out[i]), set()).add(
                    int(local_labels[i])
                )
        merged = sum(
            len(locals_) - 1 for locals_ in global_of_local.values() if len(locals_) > 1
        )
    stats = RelabelStats(
        n_objects=n,
        n_covered=n_covered,
        n_noise_promoted=n_noise_promoted,
        n_inherited=n_inherited,
        n_still_noise=int(np.count_nonzero(out == NOISE)),
        n_local_clusters_merged=merged,
    )
    return out, stats
