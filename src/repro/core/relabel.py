"""Updating the local clustering based on the global model (Section 7).

After the server broadcasts the global model, every site relabels its
objects independently:

* an object in the ``ε_r``-neighborhood of a global representative ``r``
  joins ``r``'s global cluster (when several representatives cover an
  object, the nearest one wins) — this is how former *local noise* becomes
  part of a global cluster, as in the paper's Figure 5 example;
* objects of a local cluster that no representative happens to cover still
  inherit the global id of their own cluster's representatives (the local
  cluster as a whole is part of that global cluster);
* everything else stays noise.

Two formerly independent local clusters end up with the same global id iff
the server merged their representatives — the "merge two local clusters to
one" effect of Section 1.

Two interchangeable kernels implement the coverage step, selected by the
``kernel=`` knob of :func:`relabel_site`:

* ``"reference"`` (:func:`relabel_site_reference`) sweeps a dense
  ``(m, n)`` distance matrix in chunks — O(n·m) work regardless of how
  little of the site each representative actually covers;
* ``"vectorized"`` builds a uniform grid over the site's points once and
  answers **one batched range query for all representatives** (the PR-1
  batched query plan), then assigns labels with pure-numpy sorting: the
  per-object nearest covering representative falls out of a single
  ``lexsort``/``searchsorted`` pass over the (object, distance,
  representative) hit triplets.  Work is proportional to the number of
  actual coverage hits, which is what makes 10^6-point relabels feasible.

Both kernels are **bit-identical**: the batched path computes every
surviving distance with the same float kernel (`Metric.to_many`) and
breaks distance ties toward the lowest representative index, exactly like
the reference argmin.  ``"auto"`` picks the vectorized kernel whenever the
metric supports grid indexing and falls back to the reference otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clustering.labels import NOISE, validate_labels
from repro.core.models import GlobalModel
from repro.data.distance import Metric, get_metric

__all__ = [
    "RELABEL_KERNELS",
    "RelabelStats",
    "relabel_site",
    "relabel_site_reference",
]

RELABEL_KERNELS = ("auto", "reference", "vectorized")

#: Metrics whose ε-balls are bounded by L_inf cubes — the grid-index
#: family (mirrors ``repro.index.grid._GRID_METRICS``).
_GRID_METRICS = {"euclidean", "manhattan", "chebyshev", "squared_euclidean"}


@dataclass(frozen=True)
class RelabelStats:
    """Bookkeeping of one site's relabeling pass.

    Attributes:
        n_objects: objects on the site.
        n_covered: objects covered by some representative's ε_r-range.
        n_noise_promoted: former local-noise objects assigned to a global
            cluster (Figure 5's A and B).
        n_inherited: uncovered cluster members that inherited their local
            cluster's global id.
        n_still_noise: objects that remain noise after the update.
        n_local_clusters_merged: local clusters that shared their global id
            with another local cluster of the same site after the update.
    """

    n_objects: int
    n_covered: int
    n_noise_promoted: int
    n_inherited: int
    n_still_noise: int
    n_local_clusters_merged: int


def _empty_stats(n: int, out: np.ndarray) -> RelabelStats:
    return RelabelStats(
        n_objects=n,
        n_covered=0,
        n_noise_promoted=0,
        n_inherited=0,
        n_still_noise=int(np.count_nonzero(out == NOISE)),
        n_local_clusters_merged=0,
    )


def _apply_inheritance(
    points: np.ndarray,
    local_labels: np.ndarray,
    out: np.ndarray,
    was_noise: np.ndarray,
    global_model: GlobalModel,
    site_id: int | None,
    metric: Metric,
) -> int:
    """Inheritance fallback shared by both kernels.

    Members of a local cluster that no ε_r-range covers still belong to
    the global cluster their representatives joined.  Vectorized per local
    cluster, not per object: clusters with a single own representative
    inherit its global id directly, clusters whose representatives split
    across global clusters follow the nearest own representative.

    Returns:
        The number of objects that inherited a label (``out`` is updated
        in place).
    """
    if site_id is None:
        return 0
    rep_labels = global_model.global_labels
    own = [
        j
        for j, rep in enumerate(global_model.representatives)
        if rep.site_id == site_id
    ]
    uncovered = np.flatnonzero((out == NOISE) & ~was_noise)
    if not own or not uncovered.size:
        return 0
    own_local = np.asarray(
        [global_model.representatives[j].local_cluster_id for j in own],
        dtype=np.intp,
    )
    own_labels = rep_labels[own]
    own_points = np.asarray(
        [global_model.representatives[j].point for j in own], dtype=float
    )
    n_inherited = 0
    uncovered_locals = local_labels[uncovered]
    for local_id in np.unique(uncovered_locals):
        members = uncovered[uncovered_locals == local_id]
        reps_of_cluster = np.flatnonzero(own_local == local_id)
        if reps_of_cluster.size == 0:
            continue
        if reps_of_cluster.size == 1:
            out[members] = own_labels[reps_of_cluster[0]]
        else:
            distances = metric.matrix(
                points[members], own_points[reps_of_cluster]
            )
            nearest = reps_of_cluster[np.argmin(distances, axis=1)]
            out[members] = own_labels[nearest]
        n_inherited += int(members.size)
    return n_inherited


def _count_merged(
    local_labels: np.ndarray, out: np.ndarray, site_id: int | None
) -> int:
    """Merge accounting: how many of this site's local clusters now share
    a global id with another local cluster of the same site.  The summed
    ``(len(locals) - 1)`` over shared globals equals the number of
    distinct (global, local) pairs minus the number of distinct globals.
    """
    if site_id is None:
        return 0
    counted = (local_labels >= 0) & (out != NOISE)
    if not np.any(counted):
        return 0
    pairs = np.unique(np.stack([out[counted], local_labels[counted]]), axis=1)
    return int(pairs.shape[1] - np.unique(pairs[0]).size)


def _finish(
    points: np.ndarray,
    local_labels: np.ndarray,
    out: np.ndarray,
    n_covered: int,
    global_model: GlobalModel,
    site_id: int | None,
    metric: Metric,
) -> tuple[np.ndarray, RelabelStats]:
    """Shared tail of both kernels: inheritance, merge and noise stats."""
    was_noise = local_labels == NOISE
    n_noise_promoted = int(np.count_nonzero(was_noise & (out != NOISE)))
    n_inherited = _apply_inheritance(
        points, local_labels, out, was_noise, global_model, site_id, metric
    )
    stats = RelabelStats(
        n_objects=points.shape[0],
        n_covered=n_covered,
        n_noise_promoted=n_noise_promoted,
        n_inherited=n_inherited,
        n_still_noise=int(np.count_nonzero(out == NOISE)),
        n_local_clusters_merged=_count_merged(local_labels, out, site_id),
    )
    return out, stats


def relabel_site_reference(
    points: np.ndarray,
    local_labels: np.ndarray,
    global_model: GlobalModel,
    *,
    site_id: int | None = None,
    metric: str | Metric = "euclidean",
) -> tuple[np.ndarray, RelabelStats]:
    """The historical dense-sweep relabel kernel (kept as the oracle).

    Nearest covering representative per object via one vectorized
    distance-matrix sweep, chunked over the (possibly large) site data so
    the ``(m, chunk)`` matrix stays small.  Distance ties pick the lowest
    representative index (argmin), matching the historical first-wins
    scan.  See :func:`relabel_site` for the argument contract.
    """
    resolved = get_metric(metric)
    points = np.asarray(points, dtype=float)
    local_labels = validate_labels(local_labels)
    n = points.shape[0]
    if local_labels.size != n:
        raise ValueError(f"{n} points but {local_labels.size} local labels")
    out = np.full(n, NOISE, dtype=np.intp)
    m = len(global_model)
    if m == 0 or n == 0:
        return out, _empty_stats(n, out)

    rep_points = global_model.points()
    rep_ranges = global_model.eps_ranges()
    rep_labels = global_model.global_labels

    best_distance = np.full(n, np.inf)
    chunk = max(1, 4_000_000 // max(m, 1))
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        distances = resolved.matrix(rep_points, points[start:stop])
        masked = np.where(distances <= rep_ranges[:, None], distances, np.inf)
        best_rep = np.argmin(masked, axis=0)
        best = masked[best_rep, np.arange(stop - start)]
        covered = np.isfinite(best)
        out[start:stop][covered] = rep_labels[best_rep[covered]]
        best_distance[start:stop] = best
    n_covered = int(np.count_nonzero(np.isfinite(best_distance)))
    return _finish(
        points, local_labels, out, n_covered, global_model, site_id, resolved
    )


def _relabel_site_vectorized(
    points: np.ndarray,
    local_labels: np.ndarray,
    global_model: GlobalModel,
    *,
    site_id: int | None,
    metric: Metric,
) -> tuple[np.ndarray, RelabelStats]:
    """Batched broadcast-relabel kernel (see the module docstring).

    One grid-index build over the site's points, one batched range query
    for all representatives at the maximum ε_r, then a per-representative
    exact filter and a single lexsort pass assigning every covered object
    its nearest representative's global label.
    """
    from repro.index.grid import GridIndex

    n = points.shape[0]
    out = np.full(n, NOISE, dtype=np.intp)
    m = len(global_model)
    if m == 0 or n == 0:
        return out, _empty_stats(n, out)

    rep_points = np.ascontiguousarray(global_model.points(), dtype=float)
    rep_ranges = global_model.eps_ranges()
    rep_labels = global_model.global_labels
    max_eps = float(rep_ranges.max())

    # One batched range-query plan answers every representative's
    # max-ε_r neighborhood at once and hands back the hit distances it
    # already evaluated (a `Metric.matrix` row is bitwise equal to the
    # `to_many` row the dense reference sweep computes, so no recompute
    # is needed); representatives with a smaller ε_r are then filtered
    # exactly in one vectorized pass.
    index = GridIndex(points, metric, cell_size=max_eps)
    neighborhoods, neighborhood_distances = index.range_query_batch(
        rep_points, max_eps, return_distances=True
    )

    counts = np.asarray([members.size for members in neighborhoods])
    objects = np.concatenate(neighborhoods) if counts.sum() else np.empty(0, np.intp)
    distances = np.concatenate(neighborhood_distances) if counts.sum() else np.empty(0)
    reps = np.repeat(np.arange(m, dtype=np.intp), counts)
    keep = distances <= rep_ranges[reps]
    objects, distances, reps = objects[keep], distances[keep], reps[keep]

    n_covered = 0
    if objects.size > 0:
        # Group hits by object with one stable integer sort.  The hit
        # stream is representative-major, so after the stable sort each
        # object's hits still appear in ascending representative index —
        # the reference kernel's tie-break order.
        order = np.argsort(objects, kind="stable")
        objects = objects[order]
        distances = distances[order]
        starts = np.flatnonzero(
            np.concatenate(([True], objects[1:] != objects[:-1]))
        )
        sizes = np.diff(np.append(starts, objects.size))
        # Per-object minimum distance (a comparison, not arithmetic — no
        # rounding), then the first hit matching it per group: the
        # nearest representative, exact ties toward the lowest index,
        # bitwise the reference kernel's masked argmin.
        nearest = np.minimum.reduceat(distances, starts)
        is_nearest = np.flatnonzero(distances == np.repeat(nearest, sizes))
        nearest_objects = objects[is_nearest]
        first = np.flatnonzero(
            np.concatenate(
                ([True], nearest_objects[1:] != nearest_objects[:-1])
            )
        )
        winners = is_nearest[first]
        out[objects[winners]] = rep_labels[reps[order[winners]]]
        n_covered = int(starts.size)
    return _finish(
        points, local_labels, out, n_covered, global_model, site_id, metric
    )


def resolve_relabel_kernel(
    kernel: str, metric: str | Metric = "euclidean"
) -> str:
    """Resolve a kernel knob value to a concrete kernel name.

    ``"auto"`` selects the vectorized kernel for grid-compatible metrics
    (the paper's L_p family) and the reference sweep otherwise.

    Raises:
        ValueError: for unknown kernel names.
    """
    if kernel not in RELABEL_KERNELS:
        raise ValueError(
            f"unknown relabel kernel {kernel!r}; known: {RELABEL_KERNELS}"
        )
    if kernel != "auto":
        return kernel
    resolved = get_metric(metric)
    return "vectorized" if resolved.name in _GRID_METRICS else "reference"


def relabel_site(
    points: np.ndarray,
    local_labels: np.ndarray,
    global_model: GlobalModel,
    *,
    site_id: int | None = None,
    metric: str | Metric = "euclidean",
    kernel: str = "auto",
) -> tuple[np.ndarray, RelabelStats]:
    """Relabel one site's objects with global cluster ids.

    Args:
        points: the site's objects, shape ``(n, d)``.
        local_labels: the site's local DBSCAN labels (noise = -1).
        global_model: the broadcast global model.
        site_id: this site's id — used for the inheritance fallback (maps
            the site's local clusters to their representatives' global ids).
            ``None`` disables inheritance by site (pure coverage relabel).
        metric: distance metric.
        kernel: coverage kernel — ``"auto"`` (default), ``"vectorized"``
            or ``"reference"``.  All kernels produce bit-identical labels
            and stats; the knob only trades constant factors.

    Returns:
        ``(global_labels, stats)`` where ``global_labels`` holds global
        cluster ids (noise = -1).

    Raises:
        ValueError: for unknown kernels or mismatched label counts.
    """
    chosen = resolve_relabel_kernel(kernel, metric)
    if chosen == "reference":
        return relabel_site_reference(
            points, local_labels, global_model, site_id=site_id, metric=metric
        )
    resolved = get_metric(metric)
    points = np.asarray(points, dtype=float)
    local_labels = validate_labels(local_labels)
    if local_labels.size != points.shape[0]:
        raise ValueError(
            f"{points.shape[0]} points but {local_labels.size} local labels"
        )
    return _relabel_site_vectorized(
        points, local_labels, global_model, site_id=site_id, metric=resolved
    )
