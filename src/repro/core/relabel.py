"""Updating the local clustering based on the global model (Section 7).

After the server broadcasts the global model, every site relabels its
objects independently:

* an object in the ``ε_r``-neighborhood of a global representative ``r``
  joins ``r``'s global cluster (when several representatives cover an
  object, the nearest one wins) — this is how former *local noise* becomes
  part of a global cluster, as in the paper's Figure 5 example;
* objects of a local cluster that no representative happens to cover still
  inherit the global id of their own cluster's representatives (the local
  cluster as a whole is part of that global cluster);
* everything else stays noise.

Two formerly independent local clusters end up with the same global id iff
the server merged their representatives — the "merge two local clusters to
one" effect of Section 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clustering.labels import NOISE, validate_labels
from repro.core.models import GlobalModel
from repro.data.distance import Metric, get_metric

__all__ = ["RelabelStats", "relabel_site"]


@dataclass(frozen=True)
class RelabelStats:
    """Bookkeeping of one site's relabeling pass.

    Attributes:
        n_objects: objects on the site.
        n_covered: objects covered by some representative's ε_r-range.
        n_noise_promoted: former local-noise objects assigned to a global
            cluster (Figure 5's A and B).
        n_inherited: uncovered cluster members that inherited their local
            cluster's global id.
        n_still_noise: objects that remain noise after the update.
        n_local_clusters_merged: local clusters that shared their global id
            with another local cluster of the same site after the update.
    """

    n_objects: int
    n_covered: int
    n_noise_promoted: int
    n_inherited: int
    n_still_noise: int
    n_local_clusters_merged: int


def relabel_site(
    points: np.ndarray,
    local_labels: np.ndarray,
    global_model: GlobalModel,
    *,
    site_id: int | None = None,
    metric: str | Metric = "euclidean",
) -> tuple[np.ndarray, RelabelStats]:
    """Relabel one site's objects with global cluster ids.

    Args:
        points: the site's objects, shape ``(n, d)``.
        local_labels: the site's local DBSCAN labels (noise = -1).
        global_model: the broadcast global model.
        site_id: this site's id — used for the inheritance fallback (maps
            the site's local clusters to their representatives' global ids).
            ``None`` disables inheritance by site (pure coverage relabel).
        metric: distance metric.

    Returns:
        ``(global_labels, stats)`` where ``global_labels`` holds global
        cluster ids (noise = -1).
    """
    resolved = get_metric(metric)
    points = np.asarray(points, dtype=float)
    local_labels = validate_labels(local_labels)
    n = points.shape[0]
    if local_labels.size != n:
        raise ValueError(
            f"{n} points but {local_labels.size} local labels"
        )
    out = np.full(n, NOISE, dtype=np.intp)
    m = len(global_model)
    if m == 0 or n == 0:
        stats = RelabelStats(
            n_objects=n,
            n_covered=0,
            n_noise_promoted=0,
            n_inherited=0,
            n_still_noise=int(np.count_nonzero(out == NOISE)),
            n_local_clusters_merged=0,
        )
        return out, stats

    rep_points = global_model.points()
    rep_ranges = global_model.eps_ranges()
    rep_labels = global_model.global_labels

    # Nearest covering representative per object: one vectorized distance-
    # matrix sweep, chunked over the (possibly large) site data so the
    # (m, chunk) matrix stays small.  Distance ties pick the lowest rep
    # index (argmin), matching the historical first-wins scan.
    best_distance = np.full(n, np.inf)
    chunk = max(1, 4_000_000 // max(m, 1))
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        distances = resolved.matrix(rep_points, points[start:stop])
        masked = np.where(distances <= rep_ranges[:, None], distances, np.inf)
        best_rep = np.argmin(masked, axis=0)
        best = masked[best_rep, np.arange(stop - start)]
        covered = np.isfinite(best)
        out[start:stop][covered] = rep_labels[best_rep[covered]]
        best_distance[start:stop] = best
    n_covered = int(np.count_nonzero(np.isfinite(best_distance)))
    was_noise = local_labels == NOISE
    n_noise_promoted = int(np.count_nonzero(was_noise & (out != NOISE)))

    # Inheritance fallback: members of a local cluster that no ε_r-range
    # covers still belong to the global cluster their representatives
    # joined.  Vectorized per local cluster, not per object: clusters with
    # a single own representative inherit its global id directly, clusters
    # whose representatives split across global clusters follow the
    # nearest own representative.
    n_inherited = 0
    if site_id is not None:
        own = [
            j
            for j, rep in enumerate(global_model.representatives)
            if rep.site_id == site_id
        ]
        uncovered = np.flatnonzero((out == NOISE) & ~was_noise)
        if own and uncovered.size:
            own_local = np.asarray(
                [global_model.representatives[j].local_cluster_id for j in own],
                dtype=np.intp,
            )
            own_labels = rep_labels[own]
            own_points = np.asarray(
                [global_model.representatives[j].point for j in own], dtype=float
            )
            uncovered_locals = local_labels[uncovered]
            for local_id in np.unique(uncovered_locals):
                members = uncovered[uncovered_locals == local_id]
                reps_of_cluster = np.flatnonzero(own_local == local_id)
                if reps_of_cluster.size == 0:
                    continue
                if reps_of_cluster.size == 1:
                    out[members] = own_labels[reps_of_cluster[0]]
                else:
                    distances = resolved.matrix(
                        points[members], own_points[reps_of_cluster]
                    )
                    nearest = reps_of_cluster[np.argmin(distances, axis=1)]
                    out[members] = own_labels[nearest]
                n_inherited += int(members.size)

    # Merge accounting: how many of this site's local clusters now share a
    # global id with another local cluster of the same site.  The summed
    # (len(locals) - 1) over shared globals equals the number of distinct
    # (global, local) pairs minus the number of distinct globals.
    merged = 0
    if site_id is not None:
        counted = (local_labels >= 0) & (out != NOISE)
        if np.any(counted):
            pairs = np.unique(
                np.stack([out[counted], local_labels[counted]]), axis=1
            )
            merged = int(pairs.shape[1] - np.unique(pairs[0]).size)
    stats = RelabelStats(
        n_objects=n,
        n_covered=n_covered,
        n_noise_promoted=n_noise_promoted,
        n_inherited=n_inherited,
        n_still_noise=int(np.count_nonzero(out == NOISE)),
        n_local_clusters_merged=merged,
    )
    return out, stats
