"""Determination of the global model on the server site (Section 6).

The server receives the local models — sets of ``(r, ε_r)`` pairs — and
"reconstructs" a clustering over the representatives with DBSCAN:

* ``MinPts_global = 2``: every representative already stands for a cluster
  of its own, so two density-connected representatives suffice to merge;
* ``Eps_global`` is tunable; the paper's default is the maximum ε_r over all
  transmitted representatives, which is "generally close to 2·Eps_local".

Representatives that DBSCAN leaves as noise are *not* noise in the global
model — "each specific local representative forms a cluster on its own" —
so they receive singleton global cluster ids.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clustering.dbscan import dbscan
from repro.clustering.labels import NOISE
from repro.clustering.optics import extract_dbscan_clustering, optics
from repro.core.models import GlobalModel, LocalModel, Representative
from repro.data.distance import Metric, get_metric

__all__ = [
    "default_eps_global",
    "build_global_model",
    "build_global_model_via_optics",
    "GlobalClusteringStats",
]

MIN_PTS_GLOBAL = 2


@dataclass(frozen=True)
class GlobalClusteringStats:
    """Reporting companion to a global model.

    Attributes:
        n_representatives: representatives clustered on the server.
        n_merged_clusters: global clusters containing >= 2 representatives.
        n_singletons: representatives left unmerged (own global cluster).
        eps_global: radius used.
    """

    n_representatives: int
    n_merged_clusters: int
    n_singletons: int
    eps_global: float


def default_eps_global(local_models: list[LocalModel]) -> float:
    """The paper's default ``Eps_global``: max ε_r over all representatives.

    Args:
        local_models: the collected local models.

    Returns:
        The maximum specific ε-range, or 0.0 when no representatives exist.
    """
    ranges = [model.max_eps_range for model in local_models if len(model)]
    return max(ranges) if ranges else 0.0


def _collect_representatives(local_models: list[LocalModel]) -> list[Representative]:
    reps: list[Representative] = []
    for model in local_models:
        reps.extend(model.representatives)
    return reps


def _promote_singletons(labels: np.ndarray) -> np.ndarray:
    """Give each DBSCAN-noise representative its own global cluster id."""
    labels = labels.copy()
    next_id = int(labels.max()) + 1 if (labels >= 0).any() else 0
    for i, label in enumerate(labels):
        if label == NOISE:
            labels[i] = next_id
            next_id += 1
    return labels


def build_global_model(
    local_models: list[LocalModel],
    *,
    eps_global: float | None = None,
    metric: str | Metric = "euclidean",
    index_kind: str = "auto",
) -> tuple[GlobalModel, GlobalClusteringStats]:
    """Merge local models into the global model (Section 6).

    Args:
        local_models: local models from all sites (any order).
        eps_global: merge radius; defaults to
            :func:`default_eps_global` (≈ ``2·Eps_local``).
        metric: distance metric (must match the sites').
        index_kind: neighbor index kind for the server-side DBSCAN.

    Returns:
        ``(global_model, stats)``.
    """
    resolved = get_metric(metric)
    representatives = _collect_representatives(local_models)
    if eps_global is None:
        eps_global = default_eps_global(local_models)
    if not representatives:
        model = GlobalModel(
            representatives=[],
            global_labels=np.empty(0, dtype=np.intp),
            eps_global=float(eps_global),
            min_pts_global=MIN_PTS_GLOBAL,
        )
        return model, GlobalClusteringStats(0, 0, 0, float(eps_global))
    points = np.asarray([rep.point for rep in representatives])
    if eps_global <= 0:
        # Degenerate radius: nothing can merge; all singletons.
        labels = np.arange(len(representatives), dtype=np.intp)
        n_merged = 0
        n_singletons = len(representatives)
    else:
        result = dbscan(
            points,
            eps_global,
            MIN_PTS_GLOBAL,
            metric=resolved,
            index_kind=index_kind,
        )
        n_singletons = result.n_noise
        n_merged = result.n_clusters
        labels = _promote_singletons(result.labels)
    model = GlobalModel(
        representatives=representatives,
        global_labels=labels,
        eps_global=float(eps_global),
        min_pts_global=MIN_PTS_GLOBAL,
    )
    stats = GlobalClusteringStats(
        n_representatives=len(representatives),
        n_merged_clusters=n_merged,
        n_singletons=n_singletons,
        eps_global=float(eps_global),
    )
    return model, stats


def build_global_model_via_optics(
    local_models: list[LocalModel],
    *,
    eps_max: float,
    eps_cut: float,
    metric: str | Metric = "euclidean",
) -> tuple[GlobalModel, GlobalClusteringStats]:
    """The OPTICS alternative the paper discusses (and sets aside) in §6.

    One OPTICS run with generating radius ``eps_max`` lets the server cut
    the reachability plot at any ``eps_cut <= eps_max`` without
    re-clustering — useful to explore several ``Eps_global`` values.

    Args:
        local_models: local models from all sites.
        eps_max: OPTICS generating radius (upper bound for cuts).
        eps_cut: the cut that produces this global model.
        metric: distance metric.

    Returns:
        ``(global_model, stats)`` equivalent to a DBSCAN-based model at
        ``eps_cut`` up to border ambiguity.
    """
    resolved = get_metric(metric)
    representatives = _collect_representatives(local_models)
    if not representatives:
        return build_global_model(local_models, eps_global=eps_cut, metric=resolved)
    points = np.asarray([rep.point for rep in representatives])
    ordering = optics(points, eps_max, MIN_PTS_GLOBAL, metric=resolved)
    labels = extract_dbscan_clustering(ordering, eps_cut)
    n_singletons = int(np.count_nonzero(labels == NOISE))
    n_merged = int(np.unique(labels[labels >= 0]).size)
    labels = _promote_singletons(labels)
    model = GlobalModel(
        representatives=representatives,
        global_labels=labels,
        eps_global=float(eps_cut),
        min_pts_global=MIN_PTS_GLOBAL,
    )
    stats = GlobalClusteringStats(
        n_representatives=len(representatives),
        n_merged_clusters=n_merged,
        n_singletons=n_singletons,
        eps_global=float(eps_cut),
    )
    return model, stats
