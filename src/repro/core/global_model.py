"""Determination of the global model on the server site (Section 6).

The server receives the local models — sets of ``(r, ε_r)`` pairs — and
"reconstructs" a clustering over the representatives with DBSCAN:

* ``MinPts_global = 2``: every representative already stands for a cluster
  of its own, so two density-connected representatives suffice to merge;
* ``Eps_global`` is tunable; the paper's default is the maximum ε_r over all
  transmitted representatives, which is "generally close to 2·Eps_local".

Representatives that DBSCAN leaves as noise are *not* noise in the global
model — "each specific local representative forms a cluster on its own" —
so they receive singleton global cluster ids.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clustering.dbscan import dbscan
from repro.clustering.labels import NOISE
from repro.clustering.optics import extract_dbscan_clustering, optics
from repro.core.models import GlobalModel, LocalModel, Representative
from repro.data.distance import Metric, get_metric

__all__ = [
    "default_eps_global",
    "build_global_model",
    "build_global_model_via_optics",
    "GlobalClusteringStats",
    "GlobalModelRepairer",
]

MIN_PTS_GLOBAL = 2


@dataclass(frozen=True)
class GlobalClusteringStats:
    """Reporting companion to a global model.

    Attributes:
        n_representatives: representatives clustered on the server.
        n_merged_clusters: global clusters containing >= 2 representatives.
        n_singletons: representatives left unmerged (own global cluster).
        eps_global: radius used.
    """

    n_representatives: int
    n_merged_clusters: int
    n_singletons: int
    eps_global: float


def default_eps_global(local_models: list[LocalModel]) -> float:
    """The paper's default ``Eps_global``: max ε_r over all representatives.

    Args:
        local_models: the collected local models.

    Returns:
        The maximum specific ε-range, or 0.0 when no representatives exist.
    """
    ranges = [model.max_eps_range for model in local_models if len(model)]
    return max(ranges) if ranges else 0.0


def _collect_representatives(local_models: list[LocalModel]) -> list[Representative]:
    reps: list[Representative] = []
    for model in local_models:
        reps.extend(model.representatives)
    return reps


def _promote_singletons(labels: np.ndarray) -> np.ndarray:
    """Give each DBSCAN-noise representative its own global cluster id."""
    labels = labels.copy()
    next_id = int(labels.max()) + 1 if (labels >= 0).any() else 0
    for i, label in enumerate(labels):
        if label == NOISE:
            labels[i] = next_id
            next_id += 1
    return labels


def build_global_model(
    local_models: list[LocalModel],
    *,
    eps_global: float | None = None,
    metric: str | Metric = "euclidean",
    index_kind: str = "auto",
) -> tuple[GlobalModel, GlobalClusteringStats]:
    """Merge local models into the global model (Section 6).

    Args:
        local_models: local models from all sites (any order).
        eps_global: merge radius; defaults to
            :func:`default_eps_global` (≈ ``2·Eps_local``).
        metric: distance metric (must match the sites').
        index_kind: neighbor index kind for the server-side DBSCAN.

    Returns:
        ``(global_model, stats)``.
    """
    resolved = get_metric(metric)
    representatives = _collect_representatives(local_models)
    if eps_global is None:
        eps_global = default_eps_global(local_models)
    if not representatives:
        model = GlobalModel(
            representatives=[],
            global_labels=np.empty(0, dtype=np.intp),
            eps_global=float(eps_global),
            min_pts_global=MIN_PTS_GLOBAL,
        )
        return model, GlobalClusteringStats(0, 0, 0, float(eps_global))
    points = np.asarray([rep.point for rep in representatives])
    if eps_global <= 0:
        # Degenerate radius: nothing can merge; all singletons.
        labels = np.arange(len(representatives), dtype=np.intp)
        n_merged = 0
        n_singletons = len(representatives)
    else:
        result = dbscan(
            points,
            eps_global,
            MIN_PTS_GLOBAL,
            metric=resolved,
            index_kind=index_kind,
        )
        n_singletons = result.n_noise
        n_merged = result.n_clusters
        labels = _promote_singletons(result.labels)
    model = GlobalModel(
        representatives=representatives,
        global_labels=labels,
        eps_global=float(eps_global),
        min_pts_global=MIN_PTS_GLOBAL,
    )
    stats = GlobalClusteringStats(
        n_representatives=len(representatives),
        n_merged_clusters=n_merged,
        n_singletons=n_singletons,
        eps_global=float(eps_global),
    )
    return model, stats


class GlobalModelRepairer:
    """Incrementally fold late local models into an existing global model.

    The recovery rounds of the degraded protocol (``RecoveryPolicy``) need
    the server to *heal* its global model when a failed site finally
    delivers, without re-running the global DBSCAN from scratch — exactly
    the property Section 6 of the paper (and the incremental DBSCAN it
    cites) promises.  This class wraps
    :class:`~repro.clustering.incremental.IncrementalDBSCAN` around a
    built :class:`~repro.core.models.GlobalModel` and inserts late
    representatives one by one.

    Because ``MinPts_global = 2``, every non-noise representative is a
    core object (its ε-neighborhood holds itself plus at least one other),
    so DBSCAN's border ambiguity cannot arise: the maintained partition is
    *exactly* the partition a from-scratch rebuild over the same
    representatives would produce, differing only in label names (the
    equivalence regression tests pin this).

    Label names are kept *stable* on purpose: clusters that existed before
    an insertion keep their ids (a merge adopts the smallest participating
    id), and genuinely new clusters get fresh ids beyond everything handed
    out so far.  Sites that are not re-broadcast therefore never hold a
    label the repaired model re-used for something else.

    ``eps_global`` stays frozen at the base model's radius: the paper's
    default (max ε_r) is a function of *all* models, but re-deriving it on
    every late arrival would re-cluster everything and re-broadcast to
    every site — the repair keeps the round's radius and documents the
    drift instead.

    Args:
        model: the global model to repair (usually the round's build).
        metric: distance metric (must match the server's).
    """

    def __init__(
        self, model: GlobalModel, *, metric: str | Metric = "euclidean"
    ) -> None:
        self.metric = get_metric(metric)
        self.eps_global = float(model.eps_global)
        self._representatives: list[Representative] = list(model.representatives)
        self._labels = np.asarray(model.global_labels, dtype=np.intp).copy()
        self._next_fresh = (
            int(self._labels.max()) + 1 if self._labels.size else 0
        )
        self._incremental: "object | None" = None

    @property
    def n_representatives(self) -> int:
        """Representatives currently in the maintained model."""
        return len(self._representatives)

    def _ensure_incremental(self, dim: int):
        """Build the incremental structure lazily, seeded with the base
        model's representatives (cost is paid once, on the first repair)."""
        from repro.clustering.incremental import IncrementalDBSCAN

        if self._incremental is None:
            inc = IncrementalDBSCAN(
                self.eps_global, MIN_PTS_GLOBAL, dim, metric=self.metric
            )
            for rep in self._representatives:
                inc.insert(rep.point)
            self._incremental = inc
        return self._incremental

    def _canonical_labels(self, raw: np.ndarray, n_prev: int) -> np.ndarray:
        """Map the incremental structure's raw labels onto stable ids.

        Insertions can only grow or merge clusters — never split them —
        so every pre-existing cluster's representatives still share one
        raw label; a raw cluster adopts the smallest previous id among
        its members (merges collapse onto the smallest), raw clusters
        without previous members get fresh ids, and noise representatives
        are singletons (old ones keep their singleton id).
        """
        prev = self._labels
        canonical = np.empty(raw.size, dtype=np.intp)
        target: dict[int, int] = {}
        for i in range(n_prev):
            r = int(raw[i])
            if r >= 0 and (r not in target or int(prev[i]) < target[r]):
                target[r] = int(prev[i])
        next_fresh = self._next_fresh
        for i in range(raw.size):
            r = int(raw[i])
            if r < 0:
                if i < n_prev:
                    canonical[i] = prev[i]
                else:
                    canonical[i] = next_fresh
                    next_fresh += 1
            else:
                if r not in target:
                    target[r] = next_fresh
                    next_fresh += 1
                canonical[i] = target[r]
        self._next_fresh = next_fresh
        return canonical

    def add_model(self, model: LocalModel) -> tuple[GlobalModel, bool]:
        """Insert one late local model and return the repaired global model.

        Args:
            model: the late site's local model.

        Returns:
            ``(repaired_model, relabeled)`` — ``relabeled`` is true when
            any *pre-existing* representative's global label changed (a
            late representative merged old clusters), which is what forces
            a re-broadcast to previously relabeled sites.
        """
        new_reps = list(model.representatives)
        n_prev = len(self._representatives)
        if not new_reps:
            return self.model(), False
        if self.eps_global <= 0:
            # Degenerate radius: nothing can merge, late representatives
            # become singletons; no existing label moves.
            fresh = np.arange(
                self._next_fresh, self._next_fresh + len(new_reps), dtype=np.intp
            )
            self._next_fresh += len(new_reps)
            self._labels = np.concatenate([self._labels, fresh])
            self._representatives.extend(new_reps)
            return self.model(), False
        inc = self._ensure_incremental(new_reps[0].point.size)
        for rep in new_reps:
            inc.insert(rep.point)
        self._representatives.extend(new_reps)
        # live_indices is insertion-ordered (no deletions happen here), so
        # raw labels align with self._representatives.
        raw = inc.labels()
        canonical = self._canonical_labels(raw, n_prev)
        relabeled = bool((canonical[:n_prev] != self._labels[:n_prev]).any())
        self._labels = canonical
        return self.model(), relabeled

    def model(self) -> GlobalModel:
        """The maintained global model (stable labels, no noise)."""
        return GlobalModel(
            representatives=list(self._representatives),
            global_labels=self._labels.copy(),
            eps_global=self.eps_global,
            min_pts_global=MIN_PTS_GLOBAL,
        )


def build_global_model_via_optics(
    local_models: list[LocalModel],
    *,
    eps_max: float,
    eps_cut: float,
    metric: str | Metric = "euclidean",
) -> tuple[GlobalModel, GlobalClusteringStats]:
    """The OPTICS alternative the paper discusses (and sets aside) in §6.

    One OPTICS run with generating radius ``eps_max`` lets the server cut
    the reachability plot at any ``eps_cut <= eps_max`` without
    re-clustering — useful to explore several ``Eps_global`` values.

    Args:
        local_models: local models from all sites.
        eps_max: OPTICS generating radius (upper bound for cuts).
        eps_cut: the cut that produces this global model.
        metric: distance metric.

    Returns:
        ``(global_model, stats)`` equivalent to a DBSCAN-based model at
        ``eps_cut`` up to border ambiguity.
    """
    resolved = get_metric(metric)
    representatives = _collect_representatives(local_models)
    if not representatives:
        return build_global_model(local_models, eps_global=eps_cut, metric=resolved)
    points = np.asarray([rep.point for rep in representatives])
    ordering = optics(points, eps_max, MIN_PTS_GLOBAL, metric=resolved)
    labels = extract_dbscan_clustering(ordering, eps_cut)
    n_singletons = int(np.count_nonzero(labels == NOISE))
    n_merged = int(np.unique(labels[labels >= 0]).size)
    labels = _promote_singletons(labels)
    model = GlobalModel(
        representatives=representatives,
        global_labels=labels,
        eps_global=float(eps_cut),
        min_pts_global=MIN_PTS_GLOBAL,
    )
    stats = GlobalClusteringStats(
        n_representatives=len(representatives),
        n_merged_clusters=n_merged,
        n_singletons=n_singletons,
        eps_global=float(eps_cut),
    )
    return model, stats
