"""Shared-memory numpy arrays for the process-parallel local phase.

The ``parallel_backend="process"`` fan-out of
:class:`~repro.distributed.runner.DistributedRunner` historically pickled
every site's full point array into each worker task (and the worker pickled
it *back* inside the result's neighbor index) — megabytes per site both
ways, which made the process pool slower than sequential execution at
20k points.  This module provides the zero-copy alternative:

* :class:`ShmArrayPool` — owned by the driver; copies arrays once into
  ``multiprocessing.shared_memory`` blocks and hands out lightweight
  :class:`ShmArrayRef` descriptors (name + shape + dtype, a few dozen
  bytes on the wire).
* :class:`ShmArrayRef` — picklable; workers :meth:`~ShmArrayRef.open` it
  to get a read-only numpy view backed directly by the shared block.

The pool tracks how many payload bytes the refs stand for
(:attr:`ShmArrayPool.bytes_shared`), which the runner reports as the
pickling volume saved per dispatch.  Teardown unlinks every block; the
pool is a context manager so no segment outlives the run even on errors.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

__all__ = ["ShmArrayRef", "ShmArrayPool", "attach_array"]


def _open_segment(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment, without resource-tracker registration
    where the runtime supports it (Python 3.13+).

    Before 3.13 every attach registers with the shared resource tracker,
    which then warns about (or even unlinks) segments the *owner* is still
    responsible for; ``track=False`` is the supported opt-out.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no ``track`` parameter
        return shared_memory.SharedMemory(name=name)


@dataclass(frozen=True)
class ShmArrayRef:
    """A picklable pointer to one array living in a shared-memory block.

    Attributes:
        name: the OS-level shared-memory segment name.
        shape: the array's shape.
        dtype: the array's dtype string (``np.dtype(...).str``).
    """

    name: str
    shape: tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        """Payload size the ref stands for (bytes)."""
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize

    def open(self) -> tuple[np.ndarray, shared_memory.SharedMemory]:
        """Attach and return ``(array, segment)``.

        The array is a zero-copy **read-only** view into the segment; the
        caller must keep the segment object alive while the view is used
        and ``segment.close()`` it afterwards (:func:`attach_array` does
        this bookkeeping for one-shot use).
        """
        segment = _open_segment(self.name)
        array = np.ndarray(self.shape, dtype=np.dtype(self.dtype), buffer=segment.buf)
        array.flags.writeable = False
        return array, segment


def attach_array(ref: ShmArrayRef) -> np.ndarray:
    """Attach a ref and return a private in-process *copy* of the array.

    Convenience for callers that want the data without managing segment
    lifetime; the zero-copy path is :meth:`ShmArrayRef.open`.
    """
    view, segment = ref.open()
    try:
        return view.copy()
    finally:
        segment.close()


class ShmArrayPool:
    """Driver-side owner of a set of shared-memory numpy arrays.

    Arrays are copied in once via :meth:`share`; the returned refs travel
    to worker processes instead of the data.  :meth:`close` (or exiting
    the context manager) closes and unlinks every block.

    Args:
        prefix: segment-name prefix (a random suffix is appended per
            block, so concurrent pools never collide).
    """

    def __init__(self, prefix: str = "repro") -> None:
        self._prefix = prefix
        self._segments: list[shared_memory.SharedMemory] = []
        self._bytes_shared = 0
        self._closed = False

    @property
    def n_arrays(self) -> int:
        """Number of arrays currently shared."""
        return len(self._segments)

    @property
    def bytes_shared(self) -> int:
        """Total payload bytes living in shared memory (pickling saved)."""
        return self._bytes_shared

    def share(self, array: np.ndarray) -> ShmArrayRef:
        """Copy ``array`` into a fresh shared block and return its ref.

        The copy is C-contiguous; zero-size arrays are rejected because a
        shared-memory segment cannot be empty (callers should ship those
        inline — they cost nothing to pickle).

        Raises:
            RuntimeError: when the pool is already closed.
            ValueError: for zero-size arrays.
        """
        if self._closed:
            raise RuntimeError("ShmArrayPool is closed")
        array = np.ascontiguousarray(array)
        if array.nbytes == 0:
            raise ValueError("cannot share a zero-size array")
        name = f"{self._prefix}_{secrets.token_hex(6)}"
        segment = shared_memory.SharedMemory(
            name=name, create=True, size=array.nbytes
        )
        mirror = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
        mirror[...] = array
        self._segments.append(segment)
        self._bytes_shared += array.nbytes
        return ShmArrayRef(
            name=segment.name, shape=tuple(array.shape), dtype=array.dtype.str
        )

    def close(self) -> None:
        """Close and unlink every block (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for segment in self._segments:
            try:
                segment.close()
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments.clear()

    def __enter__(self) -> "ShmArrayPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass
