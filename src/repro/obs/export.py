"""Trace exports: the JSON trace document, Chrome ``trace_event`` files,
per-phase totals and schema validation.

The canonical artifact is the *trace document* — a plain dict with the
span forest, the metrics snapshot and clock metadata — written by
``python -m repro trace`` and embedded in ``DistributedRunReport.trace``.
:func:`to_chrome_trace` converts it to the Chrome ``trace_event`` format
(open in ``chrome://tracing`` or Perfetto): pid 1 shows the wall clock,
pid 2 shows the simulated clock, and site-attributed spans get their own
thread lanes.

:func:`validate_trace` checks a document against the checked-in JSON
schema (``trace_schema.json``) with a small built-in validator — the
subset of JSON Schema the schema actually uses — so CI can gate on trace
shape without any third-party dependency.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = [
    "TRACE_FORMAT_VERSION",
    "trace_document",
    "to_chrome_trace",
    "shift_span_times",
    "write_trace",
    "write_chrome_trace",
    "phase_totals",
    "load_trace_schema",
    "validate_trace",
    "validate_document",
]

TRACE_FORMAT_VERSION = 1

_SCHEMA_PATH = Path(__file__).with_name("trace_schema.json")


def trace_document(tracer, metrics=None) -> dict:
    """Assemble the canonical trace document from a tracer (and optional
    metrics registry)."""
    return {
        "version": TRACE_FORMAT_VERSION,
        "clocks": {
            "wall": "time.perf_counter seconds, origin-normalized",
            "sim": "simulated protocol seconds (RoundPolicy / network clock)",
        },
        "origin": {"wall": tracer.wall_origin},
        "spans": tracer.export_spans(),
        "metrics": (
            metrics.to_dict()
            if metrics is not None
            else {"counters": {}, "gauges": {}, "histograms": {}}
        ),
    }


def _walk(spans, depth=0, site=None, parent_name=None, process=None):
    """Yield ``(span_dict, depth, site_id, parent_name, process)`` over a
    forest.  ``site`` and ``process`` attrs propagate to descendants."""
    for span in spans:
        span_site = site
        span_process = process
        attrs = span.get("attrs", {})
        if "site" in attrs:
            span_site = attrs["site"]
        if "process" in attrs:
            span_process = attrs["process"]
        yield span, depth, span_site, parent_name, span_process
        yield from _walk(
            span.get("children", []),
            depth + 1,
            span_site,
            span["name"],
            span_process,
        )


def to_chrome_trace(doc: dict) -> dict:
    """Convert a trace document to Chrome ``trace_event`` JSON.

    Base process lanes: pid 1 replays the wall clock, pid 2 replays the
    simulated clock (only spans that carry sim timestamps appear there).
    Spans carrying (or inheriting) a ``process`` attribute — the merged
    distributed-trace documents the socket service emits — each get their
    *own* pid lane (3, 4, ...), named ``process <name>`` in first-seen
    order, with the document's ``processes`` map pre-registering lanes so
    ordering is stable.  Within each pid, tid 1 is the driver and tid
    ``2 + site`` is one lane per site.  Timestamps/durations are
    microseconds per the format.
    """
    events: list[dict] = [
        {
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "name": "process_name",
            "args": {"name": "wall clock"},
        },
        {
            "ph": "M",
            "pid": 2,
            "tid": 0,
            "name": "process_name",
            "args": {"name": "simulated clock"},
        },
    ]
    process_pids: dict[str, int] = {}

    def _process_pid(process: str) -> int:
        pid = process_pids.get(process)
        if pid is None:
            pid = 3 + len(process_pids)
            process_pids[process] = pid
            events.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "name": "process_name",
                    "args": {"name": f"process {process}"},
                }
            )
        return pid

    for process in doc.get("processes", {}):
        _process_pid(str(process))

    for span, __, site, __parent, process in _walk(doc.get("spans", [])):
        tid = 1 if site is None else 2 + int(site)
        wall_pid = 1 if process is None else _process_pid(str(process))
        args = {
            key: value
            for key, value in span.get("attrs", {}).items()
            if isinstance(value, (str, int, float, bool))
        }
        events.append(
            {
                "ph": "X",
                "pid": wall_pid,
                "tid": tid,
                "name": span["name"],
                "ts": span["wall_start"] * 1e6,
                "dur": max(0.0, span["wall_end"] - span["wall_start"]) * 1e6,
                "args": args,
            }
        )
        if span.get("sim_start") is not None and span.get("sim_end") is not None:
            events.append(
                {
                    "ph": "X",
                    "pid": 2,
                    "tid": tid,
                    "name": span["name"],
                    "ts": span["sim_start"] * 1e6,
                    "dur": max(0.0, span["sim_end"] - span["sim_start"]) * 1e6,
                    "args": args,
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def shift_span_times(span: dict, delta: float) -> dict:
    """Return ``span`` (an exported dict) with all wall timestamps
    shifted by ``delta`` seconds, recursively.

    Used when merging a remote process's span forest into the server's
    trace: ``delta`` is the remote origin plus the estimated clock
    offset minus the local origin, so all lanes share one timeline.
    Sim timestamps are a shared logical clock and are left alone.
    """
    out = dict(span)
    out["wall_start"] = span["wall_start"] + delta
    out["wall_end"] = span["wall_end"] + delta
    if span.get("children"):
        out["children"] = [
            shift_span_times(child, delta) for child in span["children"]
        ]
    return out


def write_trace(doc: dict, path) -> Path:
    """Write the trace document to ``path`` as JSON."""
    path = Path(path)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def write_chrome_trace(doc: dict, path) -> Path:
    """Write the Chrome ``trace_event`` conversion of ``doc`` to ``path``."""
    path = Path(path)
    path.write_text(json.dumps(to_chrome_trace(doc)) + "\n")
    return path


def phase_totals(doc: dict) -> dict:
    """Sum span durations by span name across the document.

    Returns ``{name: {"count", "wall_seconds", "sim_seconds"}}`` where
    ``sim_seconds`` is ``None`` for names that never carry sim stamps.
    Used by the benchmarks and the reconciliation test to compare trace
    contents against report timing fields.
    """
    totals: dict[str, dict] = {}
    for span, __, __site, __parent, __process in _walk(doc.get("spans", [])):
        entry = totals.setdefault(
            span["name"], {"count": 0, "wall_seconds": 0.0, "sim_seconds": None}
        )
        entry["count"] += 1
        entry["wall_seconds"] += span["wall_end"] - span["wall_start"]
        if span.get("sim_start") is not None and span.get("sim_end") is not None:
            if entry["sim_seconds"] is None:
                entry["sim_seconds"] = 0.0
            entry["sim_seconds"] += span["sim_end"] - span["sim_start"]
    return totals


def load_trace_schema() -> dict:
    """Load the checked-in trace document schema."""
    return json.loads(_SCHEMA_PATH.read_text())


def validate_trace(doc, schema: dict | None = None) -> list[str]:
    """Validate ``doc`` against the trace schema.

    Returns a list of human-readable problems (empty means valid).  The
    validator implements the JSON Schema subset the checked-in schema
    uses: ``type``, ``properties``, ``required``, ``additionalProperties``,
    ``items``, ``enum``, ``minimum``, ``$ref`` into ``$defs``.
    """
    if schema is None:
        schema = load_trace_schema()
    return validate_document(doc, schema)


def validate_document(doc, schema: dict) -> list[str]:
    """Validate any document against a JSON Schema (the supported subset).

    The generic entry point behind :func:`validate_trace`; the run
    registry reuses it for ``runrecord_schema.json``.  Returns a list of
    human-readable problems (empty means valid).
    """
    errors: list[str] = []
    _validate(doc, schema, schema, "$", errors)
    return errors


_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}


def _type_ok(value, type_name: str) -> bool:
    if type_name == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if type_name == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    return isinstance(value, _TYPES[type_name])


def _validate(value, schema: dict, root: dict, path: str, errors: list[str]):
    if "$ref" in schema:
        ref = schema["$ref"]
        if not ref.startswith("#/$defs/"):
            errors.append(f"{path}: unsupported $ref {ref!r}")
            return
        schema = root["$defs"][ref[len("#/$defs/") :]]

    expected = schema.get("type")
    if expected is not None:
        names = expected if isinstance(expected, list) else [expected]
        if not any(_type_ok(value, name) for name in names):
            errors.append(
                f"{path}: expected {'/'.join(names)}, "
                f"got {type(value).__name__}"
            )
            return

    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in {schema['enum']!r}")

    if "minimum" in schema and isinstance(value, (int, float)):
        if not isinstance(value, bool) and value < schema["minimum"]:
            errors.append(f"{path}: {value!r} < minimum {schema['minimum']!r}")

    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties", True)
        for key, item in value.items():
            if key in props:
                _validate(item, props[key], root, f"{path}.{key}", errors)
            elif extra is False:
                errors.append(f"{path}: unexpected key {key!r}")
            elif isinstance(extra, dict):
                _validate(item, extra, root, f"{path}.{key}", errors)

    if isinstance(value, list) and "items" in schema:
        for index, item in enumerate(value):
            _validate(item, schema["items"], root, f"{path}[{index}]", errors)
