"""Durable run registry: schema-validated RunRecords in an append-only
JSONL store.

Every harness entry point (``bench``, ``chaos``, ``trace``, ``run``, the
figure runners) appends one **RunRecord** per execution — run id, UTC
timestamp, git revision, config digest, interpreter/library versions,
cpu count, a flat ``metrics`` dict (timings, bytes, retries, Q_DBDC,
transmission ratios) and pointers into a per-run artifact directory —
so performance and quality trajectories survive across machines and
checkouts instead of being overwritten in place.

Layout (gitignored, see ``docs/observability.md``)::

    .runs/
      records.jsonl            # append-only, one RunRecord per line
      artifacts/<run_id>/      # full reports (BENCH JSON, traces, ...)

The record shape is pinned by ``runrecord_schema.json`` (validated with
the same built-in JSON-Schema subset the trace documents use), and the
``python -m repro runs`` CLI family (:mod:`repro.obs.runs_cli`) renders,
diffs, regresses and garbage-collects the store.  Like the rest of
``repro.obs`` this module is a leaf: it imports nothing from the rest of
``repro``.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import math
import os
import platform as _platform
import subprocess
from datetime import datetime, timezone
from pathlib import Path

from repro.obs.export import validate_document

__all__ = [
    "RUNRECORD_VERSION",
    "DEFAULT_REGISTRY_ROOT",
    "git_revision",
    "utc_now_iso",
    "run_environment",
    "config_digest",
    "build_run_record",
    "load_runrecord_schema",
    "validate_run_record",
    "RunRegistry",
]

RUNRECORD_VERSION = 1
DEFAULT_REGISTRY_ROOT = ".runs"

_SCHEMA_PATH = Path(__file__).with_name("runrecord_schema.json")
_RUN_COUNTER = itertools.count()


def load_runrecord_schema() -> dict:
    """Load the checked-in RunRecord schema."""
    return json.loads(_SCHEMA_PATH.read_text())


def validate_run_record(record, schema: dict | None = None) -> list[str]:
    """Validate a RunRecord dict; returns problems (empty means valid)."""
    if schema is None:
        schema = load_runrecord_schema()
    return validate_document(record, schema)


def git_revision(cwd=None) -> str:
    """The current git commit hash (``"unknown"`` outside a checkout)."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            cwd=cwd,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    return proc.stdout.strip() if proc.returncode == 0 else "unknown"


def _git_dirty(cwd=None) -> bool | None:
    """Whether the worktree has uncommitted changes (``None`` if unknown)."""
    try:
        proc = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True,
            text=True,
            cwd=cwd,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    return bool(proc.stdout.strip())


def utc_now_iso() -> str:
    """The current UTC time as ``YYYY-MM-DDTHH:MM:SSZ``."""
    return datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")


def run_environment(cwd=None) -> dict:
    """Provenance block shared by RunRecords and the BENCH ``meta``
    stamps: git revision + dirtiness, python/numpy versions, cpu count,
    platform string."""
    try:
        import numpy

        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dep in practice
        numpy_version = None
    return {
        "git_rev": git_revision(cwd),
        "git_dirty": _git_dirty(cwd),
        "python": _platform.python_version(),
        "numpy": numpy_version,
        "cpu_count": os.cpu_count(),
        "platform": _platform.platform(),
    }


def config_digest(config: dict | None) -> str:
    """Short stable digest of a JSON-able config dict.

    Canonical-JSON (sorted keys, tight separators) sha256, truncated —
    two runs share a digest iff they ran the same configuration.
    """
    canonical = json.dumps(
        config or {}, sort_keys=True, separators=(",", ":"), default=str
    )
    return "sha256:" + hashlib.sha256(canonical.encode()).hexdigest()[:16]


def _clean_metrics(metrics: dict | None) -> dict:
    """Coerce metric values to JSON-safe floats (non-finite → ``None``)."""
    out: dict[str, float | None] = {}
    for name, value in (metrics or {}).items():
        if value is None:
            out[str(name)] = None
            continue
        value = float(value)
        out[str(name)] = value if math.isfinite(value) else None
    return out


def _make_run_id(command: str, created_utc: str, digest: str) -> str:
    """Sortable unique id: ``<timestamp>-<command>-<8 hex>``."""
    stamp = created_utc.replace("-", "").replace(":", "")
    material = "|".join(
        [created_utc, command, digest, str(os.getpid()), str(next(_RUN_COUNTER))]
    )
    suffix = hashlib.sha256(material.encode()).hexdigest()[:8]
    return f"{stamp}-{command}-{suffix}"


def build_run_record(
    command: str,
    *,
    config: dict | None = None,
    metrics: dict | None = None,
    metrics_registry: dict | None = None,
    artifacts: dict[str, str] | None = None,
    environment: dict | None = None,
    created_utc: str | None = None,
    run_id: str | None = None,
) -> dict:
    """Assemble and validate one RunRecord dict.

    Args:
        command: the harness command that produced the run (``bench`` …).
        config: the JSON-able configuration the run executed.
        metrics: flat ``{dotted.name: float}`` measurements; per-kind
            variants append the kind in brackets
            (``"net.bytes[local_model]"``), matching the metric-name
            contract of :mod:`repro.obs.metrics`.
        metrics_registry: an optional ``MetricsRegistry.to_dict()``
            snapshot.
        artifacts: ``{name: registry-relative path}`` pointers (the
            :class:`RunRegistry` fills these in when it writes files).
        environment: provenance override (defaults to
            :func:`run_environment`).
        created_utc: timestamp override (defaults to now).
        run_id: id override (defaults to a fresh sortable id).

    Returns:
        The validated record.

    Raises:
        ValueError: when the assembled record fails schema validation.
    """
    config = dict(config or {})
    created = created_utc or utc_now_iso()
    digest = config_digest(config)
    record = {
        "version": RUNRECORD_VERSION,
        "run_id": run_id or _make_run_id(command, created, digest),
        "command": command,
        "created_utc": created,
        "environment": dict(environment) if environment else run_environment(),
        "config": config,
        "config_digest": digest,
        "metrics": _clean_metrics(metrics),
        "metrics_registry": metrics_registry,
        "artifacts": dict(artifacts or {}),
    }
    problems = validate_run_record(record)
    if problems:
        raise ValueError(
            "invalid RunRecord: " + "; ".join(problems)
        )
    return record


class RunRegistry:
    """The on-disk registry: append-only JSONL plus per-run artifacts."""

    def __init__(self, root=DEFAULT_REGISTRY_ROOT) -> None:
        self.root = Path(root)

    @property
    def records_path(self) -> Path:
        """The append-only JSONL file."""
        return self.root / "records.jsonl"

    def artifacts_dir(self, run_id: str) -> Path:
        """The artifact directory of one run."""
        return self.root / "artifacts" / run_id

    def record(
        self,
        command: str,
        *,
        config: dict | None = None,
        metrics: dict | None = None,
        metrics_registry: dict | None = None,
        artifacts: dict | None = None,
        environment: dict | None = None,
        created_utc: str | None = None,
        run_id: str | None = None,
    ) -> dict:
        """Write one run: artifacts to disk, the record to the JSONL.

        ``artifacts`` maps names to payloads — dicts/lists are written as
        pretty JSON, strings as text — and the stored record points at
        the written files with registry-relative paths.

        Returns:
            The appended (validated) RunRecord.
        """
        record = build_run_record(
            command,
            config=config,
            metrics=metrics,
            metrics_registry=metrics_registry,
            environment=environment,
            created_utc=created_utc,
            run_id=run_id,
        )
        art_dir = self.artifacts_dir(record["run_id"])
        for name, payload in (artifacts or {}).items():
            art_dir.mkdir(parents=True, exist_ok=True)
            path = art_dir / name
            if isinstance(payload, str):
                path.write_text(payload)
            else:
                path.write_text(
                    json.dumps(payload, indent=2, sort_keys=True, default=str)
                    + "\n"
                )
            record["artifacts"][name] = str(path.relative_to(self.root))
        self.root.mkdir(parents=True, exist_ok=True)
        with self.records_path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
        return record

    def load_records(self) -> list[dict]:
        """All records, oldest first (malformed lines are skipped)."""
        if not self.records_path.exists():
            return []
        records = []
        for line in self.records_path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict) and "run_id" in record:
                records.append(record)
        return records

    def resolve(self, ref: str) -> list[dict]:
        """Resolve a record reference to a list of records.

        ``ref`` may be a path to a committed record file (single JSON
        object, a JSON list, or JSONL — every contained record is
        returned, which is how median-of-k baselines are committed), the
        literal ``latest`` / ``latest~N``, or a run id (unique prefixes
        accepted).

        Raises:
            ValueError: when the reference matches nothing (or is
                ambiguous).
        """
        path = Path(ref)
        if path.exists() and path.is_file():
            return _records_from_file(path)
        records = self.load_records()
        if not records:
            raise ValueError(
                f"cannot resolve {ref!r}: registry {self.root} is empty"
            )
        if ref == "latest" or ref.startswith("latest~"):
            back = 0
            if ref.startswith("latest~"):
                back = int(ref.split("~", 1)[1])
            if back >= len(records):
                raise ValueError(
                    f"cannot resolve {ref!r}: only {len(records)} records"
                )
            return [records[-1 - back]]
        exact = [r for r in records if r["run_id"] == ref]
        if exact:
            return [exact[-1]]
        prefixed = [r for r in records if r["run_id"].startswith(ref)]
        if len(prefixed) == 1:
            return prefixed
        if len(prefixed) > 1:
            ids = ", ".join(r["run_id"] for r in prefixed[:5])
            raise ValueError(f"ambiguous run id prefix {ref!r}: {ids}")
        raise ValueError(f"no record matches {ref!r} in {self.root}")

    def last_runs(
        self, command: str, n: int, *, config_digest: str | None = None
    ) -> list[dict]:
        """The most recent ``n`` records of one command, oldest first.

        When ``config_digest`` is given, only records carrying that
        digest qualify, so median-of-k windows cannot silently mix
        runs produced under different configurations.
        """
        matching = [
            r
            for r in self.load_records()
            if r["command"] == command
            and (
                config_digest is None
                or r.get("config_digest") == config_digest
            )
        ]
        return matching[-n:]

    def gc(self, keep: int) -> list[str]:
        """Drop all but the newest ``keep`` records (and their artifacts).

        Returns:
            The dropped run ids, oldest first.
        """
        if keep < 0:
            raise ValueError(f"keep must be >= 0, got {keep}")
        records = self.load_records()
        # Clamp before slicing: a negative start would wrap around and
        # drop the newest records when keep > len(records).
        start = max(0, len(records) - keep)
        kept = records[start:]
        dropped = records[:start]
        if not dropped:
            return []
        tmp_path = self.records_path.with_suffix(".jsonl.tmp")
        with tmp_path.open("w", encoding="utf-8") as handle:
            for record in kept:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        tmp_path.replace(self.records_path)
        for record in dropped:
            art_dir = self.artifacts_dir(record["run_id"])
            if art_dir.is_dir():
                for child in sorted(
                    art_dir.rglob("*"), key=lambda p: len(p.parts), reverse=True
                ):
                    if child.is_file():
                        child.unlink()
                    else:
                        child.rmdir()
                art_dir.rmdir()
        return [record["run_id"] for record in dropped]


def _records_from_file(path: Path) -> list[dict]:
    """Records from a committed baseline file (JSON object/list or JSONL)."""
    text = path.read_text().strip()
    if not text:
        raise ValueError(f"record file {path} is empty")
    try:
        loaded = json.loads(text)
    except json.JSONDecodeError:
        loaded = [json.loads(line) for line in text.splitlines() if line.strip()]
    records = loaded if isinstance(loaded, list) else [loaded]
    for record in records:
        problems = validate_run_record(record)
        if problems:
            raise ValueError(
                f"invalid record in {path}: " + "; ".join(problems[:5])
            )
    return records
