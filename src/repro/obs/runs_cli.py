"""``python -m repro runs`` — inspect, diff, regress and prune the run
registry.

Subcommands::

    runs list    [-n N]                      # newest-last table
    runs show    REF                         # full RunRecord JSON
    runs diff    A B                         # structured metric diff
    runs regress --baseline REF [...]        # noise-aware gate, exit 1
    runs gc      --keep N                    # prune old records+artifacts
    runs export  REF [--out FILE]            # OpenMetrics textfile

``REF`` is a run id (unique prefixes work), ``latest`` / ``latest~N``,
or a path to a committed record file (JSON or JSONL; a JSONL baseline
with k repeats is reduced by per-metric median).  See
``docs/observability.md`` for the regression thresholds and the CI
recipe.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.obs.openmetrics import render_run_record
from repro.obs.regress import (
    DEFAULT_RULES,
    detect_regressions,
    diff_records,
)
from repro.obs.registry import DEFAULT_REGISTRY_ROOT, RunRegistry

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``runs`` sub-parser family."""
    parser = argparse.ArgumentParser(
        prog="dbdc runs",
        description="DBDC run registry — list, diff, regress, gc, export",
    )
    parser.add_argument(
        "--registry",
        default=DEFAULT_REGISTRY_ROOT,
        help="registry root directory (default: .runs)",
    )
    sub = parser.add_subparsers(dest="subcommand", required=True)

    p_list = sub.add_parser("list", help="list recorded runs")
    p_list.add_argument("-n", type=int, default=20, help="show the last N")

    p_show = sub.add_parser("show", help="print one RunRecord as JSON")
    p_show.add_argument("ref", help="run id / latest[~N] / record file")

    p_diff = sub.add_parser("diff", help="structured metric diff of two runs")
    p_diff.add_argument("baseline", help="baseline reference")
    p_diff.add_argument("candidate", help="candidate reference")
    p_diff.add_argument(
        "--json", action="store_true", help="emit the raw diff document"
    )

    p_reg = sub.add_parser(
        "regress", help="regression gate (exit 1 on regression)"
    )
    p_reg.add_argument(
        "--baseline", required=True, help="baseline reference (see above)"
    )
    p_reg.add_argument(
        "--candidate",
        default="latest",
        help="candidate reference (default: latest)",
    )
    p_reg.add_argument(
        "--last",
        type=int,
        default=1,
        help="median over the last N registry records matching the "
        "candidate's command (median-of-k repeats)",
    )
    p_reg.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="PATTERN",
        help="fnmatch pattern of metric names to drop (repeatable)",
    )
    p_reg.add_argument(
        "--ignore-timing",
        action="store_true",
        help="drop wall/CPU-clock metrics (cross-machine comparisons)",
    )
    p_reg.add_argument(
        "--threshold-scale",
        type=float,
        default=1.0,
        help="scale every rule's noise thresholds",
    )

    p_gc = sub.add_parser("gc", help="prune the registry")
    p_gc.add_argument(
        "--keep", type=int, required=True, help="records to keep (newest)"
    )

    p_exp = sub.add_parser("export", help="OpenMetrics textfile export")
    p_exp.add_argument("ref", help="run id / latest[~N] / record file")
    p_exp.add_argument("--out", default=None, help="output path (default: stdout)")
    return parser


def _cmd_list(registry: RunRegistry, args) -> int:
    records = registry.load_records()[-args.n :]
    if not records:
        print(f"no runs recorded in {registry.root}")
        return 0
    header = f"{'run id':44s}  {'command':10s}  {'git':10s}  metrics"
    print(header)
    print("-" * len(header))
    for record in records:
        git_rev = str(record["environment"].get("git_rev", ""))[:10]
        print(
            f"{record['run_id']:44s}  {record['command']:10s}  "
            f"{git_rev:10s}  {len(record['metrics'])}"
        )
    return 0


def _cmd_show(registry: RunRegistry, args) -> int:
    (record,) = registry.resolve(args.ref)[-1:]
    print(json.dumps(record, indent=2, sort_keys=True))
    return 0


def _cmd_diff(registry: RunRegistry, args) -> int:
    baseline = registry.resolve(args.baseline)[-1]
    candidate = registry.resolve(args.candidate)[-1]
    diff = diff_records(baseline, candidate)
    if args.json:
        print(json.dumps(diff, indent=2, sort_keys=True))
        return 0
    print(f"baseline : {diff['baseline_run_id']}")
    print(f"candidate: {diff['candidate_run_id']}")
    for name, entry in diff["metrics"].items():
        if entry["delta"] is None:
            side = "baseline" if entry["candidate"] is None else "candidate"
            print(f"  {name}: only in {side}")
            continue
        if entry["delta"] == 0:
            continue
        rel = (
            f" ({entry['rel_delta']:+.1%})"
            if entry["rel_delta"] is not None
            else ""
        )
        print(
            f"  {name}: {entry['baseline']:g} -> {entry['candidate']:g}"
            f"{rel}  [{entry['verdict']}]"
        )
    return 0


def _cmd_regress(registry: RunRegistry, args) -> int:
    baselines = registry.resolve(args.baseline)
    candidates = registry.resolve(args.candidate)
    base_commands = {r["command"] for r in baselines}
    cand_commands = {r["command"] for r in candidates}
    if base_commands != cand_commands:
        print(
            f"warning: comparing different commands "
            f"({sorted(base_commands)} vs {sorted(cand_commands)}); "
            f"most metrics will be missing on one side",
            file=sys.stderr,
        )
    if args.last > 1 and len(candidates) == 1:
        if Path(args.candidate).is_file():
            print(
                "warning: --last ignored: candidate resolved from a "
                "record file, not the registry",
                file=sys.stderr,
            )
        else:
            candidate = candidates[0]
            widened = registry.last_runs(
                candidate["command"],
                args.last,
                config_digest=candidate.get("config_digest"),
            )
            if 0 < len(widened) < args.last:
                print(
                    f"warning: only {len(widened)} of the requested "
                    f"{args.last} registry records match the candidate's "
                    "command and config digest",
                    file=sys.stderr,
                )
            if widened:
                candidates = widened
    report = detect_regressions(
        baselines,
        candidates,
        rules=DEFAULT_RULES,
        ignore=tuple(args.ignore),
        include_timing=not args.ignore_timing,
        threshold_scale=args.threshold_scale,
    )
    print(report.to_text())
    return 0 if report.ok else 1


def _cmd_gc(registry: RunRegistry, args) -> int:
    dropped = registry.gc(args.keep)
    print(f"dropped {len(dropped)} record(s), kept the newest {args.keep}")
    for run_id in dropped:
        print(f"  - {run_id}")
    return 0


def _cmd_export(registry: RunRegistry, args) -> int:
    record = registry.resolve(args.ref)[-1]
    text = render_run_record(record)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.out}")
    else:
        sys.stdout.write(text)
    return 0


_COMMANDS = {
    "list": _cmd_list,
    "show": _cmd_show,
    "diff": _cmd_diff,
    "regress": _cmd_regress,
    "gc": _cmd_gc,
    "export": _cmd_export,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``runs`` subcommand family.

    Returns:
        Process exit code (``regress`` exits 1 on regression, 2 on
        unresolvable references).
    """
    args = build_parser().parse_args(argv)
    registry = RunRegistry(args.registry)
    try:
        return _COMMANDS[args.subcommand](registry, args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
