"""OpenMetrics / Prometheus textfile export of RunRecords and metric
registries.

External scrapers and dashboards should not have to parse DBDC's JSON:
:func:`render_run_record` serializes a RunRecord (and
:func:`render_registry` a live ``MetricsRegistry.to_dict()`` snapshot)
to the OpenMetrics text exposition format — ``# TYPE`` / ``# HELP``
lines, sanitized names, escaped labels, cumulative histogram buckets
with ``le`` labels and a closing ``# EOF`` — ready for the Prometheus
node-exporter textfile collector or a plain HTTP endpoint.

The repo's dotted metric names map mechanically: dots become
underscores under a ``dbdc_`` prefix, and the bracketed per-kind
variants become labels::

    transport.bytes[local_model]  ->  dbdc_transport_bytes_total{kind="local_model"}
    chaos.q_p2_overall_percent[p=0.25]
                                  ->  dbdc_chaos_q_p2_overall_percent{p="0.25"}

:func:`parse_openmetrics` is a strict reader of the subset this module
emits (legal names per the OpenMetrics ABNF, one ``# TYPE`` per family,
``# EOF`` required) used by the round-trip tests and the CI gate.
"""

from __future__ import annotations

import re

__all__ = [
    "OPENMETRICS_CONTENT_TYPE",
    "sanitize_name",
    "sanitize_label_name",
    "escape_label_value",
    "split_label_suffix",
    "render_registry",
    "render_run_record",
    "parse_openmetrics",
]

#: The content-type an OpenMetrics HTTP endpoint must declare.  The
#: service's ``/metrics`` responds with exactly this, and
#: :func:`parse_openmetrics` (given a ``content_type``) rejects
#: anything else so scrapers fail loudly on a misconfigured endpoint.
OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)

#: Metric names per the OpenMetrics ABNF.
METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
#: Label names per the OpenMetrics ABNF.
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

_ILLEGAL_NAME_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_ILLEGAL_LABEL_CHARS = re.compile(r"[^a-zA-Z0-9_]")


def sanitize_name(name: str, prefix: str = "dbdc") -> str:
    """Map a dotted repo metric name to a legal OpenMetrics name."""
    flat = _ILLEGAL_NAME_CHARS.sub("_", name.replace(".", "_"))
    full = f"{prefix}_{flat}" if prefix else flat
    if not full or not METRIC_NAME_RE.match(full):
        full = "_" + full
    return full


def sanitize_label_name(name: str) -> str:
    """Map an arbitrary string to a legal OpenMetrics label name."""
    flat = _ILLEGAL_LABEL_CHARS.sub("_", name)
    if not flat or not LABEL_NAME_RE.match(flat):
        flat = "_" + flat
    return flat


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def split_label_suffix(name: str) -> tuple[str, dict[str, str]]:
    """Split the repo's bracketed variant off a metric name.

    ``"transport.bytes[local_model]"`` → ``("transport.bytes",
    {"kind": "local_model"})``; a ``key=value`` bracket body names its
    own label (``"q[p=0.25]"`` → ``("q", {"p": "0.25"})``).
    """
    if not name.endswith("]") or "[" not in name:
        return name, {}
    base, body = name[:-1].split("[", 1)
    if "=" in body:
        key, value = body.split("=", 1)
        return base, {sanitize_label_name(key): value}
    return base, {"kind": body}


def _format_value(value: float) -> str:
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _render_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{escape_label_value(value)}"'
        for key, value in labels.items()
    )
    return "{" + inner + "}"


def _sample(name: str, labels: dict[str, str], value: float) -> str:
    return f"{name}{_render_labels(labels)} {_format_value(value)}"


def render_registry(
    snapshot: dict,
    *,
    prefix: str = "dbdc",
    labels: dict[str, str] | None = None,
    terminate: bool = True,
) -> str:
    """Render a ``MetricsRegistry.to_dict()`` snapshot as OpenMetrics text.

    Counters become ``counter`` families (``_total`` suffix), gauges
    ``gauge``, histograms ``histogram`` with *cumulative* power-of-two
    ``le`` buckets plus the mandatory ``+Inf`` bucket, ``_sum`` and
    ``_count`` samples.

    Args:
        snapshot: ``{"counters": …, "gauges": …, "histograms": …}``.
        prefix: metric-name prefix.
        labels: labels stamped on every sample (e.g. the run id).
        terminate: append the ``# EOF`` terminator (disable when the
            caller embeds this block in a larger exposition).
    """
    labels = labels or {}
    lines: list[str] = []
    families: set[str] = set()

    def family(name: str, kind: str, help_text: str) -> None:
        if name in families:
            return
        families.add(name)
        lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} {kind}")

    for raw in sorted(snapshot.get("counters", {})):
        base, extra = split_label_suffix(raw)
        name = sanitize_name(base, prefix)
        if not name.endswith("_total"):
            name += "_total"
        family(name, "counter", f"DBDC counter {base}")
        lines.append(_sample(name, {**labels, **extra},
                             snapshot["counters"][raw]))
    for raw in sorted(snapshot.get("gauges", {})):
        base, extra = split_label_suffix(raw)
        name = sanitize_name(base, prefix)
        family(name, "gauge", f"DBDC gauge {base}")
        lines.append(_sample(name, {**labels, **extra},
                             snapshot["gauges"][raw]))
    for raw in sorted(snapshot.get("histograms", {})):
        base, extra = split_label_suffix(raw)
        name = sanitize_name(base, prefix)
        family(name, "histogram", f"DBDC histogram {base}")
        hist = snapshot["histograms"][raw]
        row_labels = {**labels, **extra}
        cumulative = 0
        for bound in sorted(hist.get("buckets", {}), key=float):
            cumulative += hist["buckets"][bound]
            lines.append(
                _sample(
                    name + "_bucket",
                    {**row_labels, "le": _format_value(float(bound))},
                    cumulative,
                )
            )
        lines.append(
            _sample(name + "_bucket", {**row_labels, "le": "+Inf"},
                    hist["count"])
        )
        lines.append(_sample(name + "_sum", row_labels, hist["sum"]))
        lines.append(_sample(name + "_count", row_labels, hist["count"]))
    if terminate:
        lines.append("# EOF")
    return "\n".join(lines) + "\n"


def render_run_record(record: dict, *, prefix: str = "dbdc") -> str:
    """Render one RunRecord as OpenMetrics text.

    Emits a ``<prefix>_run_info`` gauge carrying the provenance as
    labels, one gauge family per flat metric (labelled with the run id
    and command), and — when the record carries a ``metrics_registry``
    snapshot — the full registry under the same labels.
    """
    env = record.get("environment", {})
    base_labels = {
        "run_id": record["run_id"],
        "command": record["command"],
    }
    lines: list[str] = []
    info = f"{prefix}_run_info"
    lines.append(f"# HELP {info} DBDC run provenance (value is always 1).")
    lines.append(f"# TYPE {info} gauge")
    lines.append(
        _sample(
            info,
            {
                **base_labels,
                "created_utc": record.get("created_utc", ""),
                "git_rev": str(env.get("git_rev", "")),
                "python": str(env.get("python", "")),
                "numpy": str(env.get("numpy", "")),
                "cpu_count": str(env.get("cpu_count", "")),
                "config_digest": record.get("config_digest", ""),
            },
            1,
        )
    )
    seen_families: set[str] = set()
    for raw in sorted(record.get("metrics", {})):
        value = record["metrics"][raw]
        if value is None:
            continue
        base, extra = split_label_suffix(raw)
        name = sanitize_name(base, prefix)
        if name not in seen_families:
            seen_families.add(name)
            lines.append(
                f"# HELP {name} {_escape_help(f'DBDC run metric {base}')}"
            )
            lines.append(f"# TYPE {name} gauge")
        lines.append(_sample(name, {**base_labels, **extra}, value))
    body = "\n".join(lines) + "\n"
    registry_snapshot = record.get("metrics_registry")
    if registry_snapshot:
        body += render_registry(
            registry_snapshot,
            prefix=prefix + "_reg",
            labels=base_labels,
            terminate=False,
        )
    return body + "# EOF\n"


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL_PAIR_RE = re.compile(
    r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
)


def _unescape(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def parse_openmetrics(text: str, *, content_type: str | None = None) -> dict:
    """Parse the exposition subset this module emits.

    Returns ``{family_name: {"type": str, "help": str, "samples":
    [(sample_name, labels_dict, value), …]}}``.  Samples attach to the
    family whose name prefixes theirs (``_bucket``/``_sum``/``_count``
    fold into their histogram).

    Args:
        text: the exposition body.
        content_type: when given (an HTTP scrape), it must declare the
            OpenMetrics media type — pass the response's Content-Type
            header to enforce :data:`OPENMETRICS_CONTENT_TYPE` semantics.

    Raises:
        ValueError: on illegal metric/label names, duplicate ``# TYPE``
            declarations, unparseable samples, a missing ``# EOF``, or a
            non-OpenMetrics ``content_type``.
    """
    if content_type is not None:
        media_type = content_type.split(";", 1)[0].strip().lower()
        if media_type != "application/openmetrics-text":
            raise ValueError(
                f"content type {content_type!r} is not "
                f"{OPENMETRICS_CONTENT_TYPE!r}"
            )
    families: dict[str, dict] = {}
    lines = text.splitlines()
    if not lines or lines[-1].strip() != "# EOF":
        raise ValueError("exposition must end with '# EOF'")
    for line in lines[:-1]:
        if not line.strip():
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            __, keyword, rest = line.split(" ", 2)
            name, __, payload = rest.partition(" ")
            if not METRIC_NAME_RE.match(name):
                raise ValueError(f"illegal metric name {name!r}")
            entry = families.setdefault(
                name, {"type": None, "help": None, "samples": []}
            )
            if keyword == "TYPE":
                if entry["type"] is not None:
                    raise ValueError(f"duplicate # TYPE for {name!r}")
                entry["type"] = payload
            else:
                entry["help"] = payload
            continue
        if line.startswith("#"):
            raise ValueError(f"unexpected comment line {line!r}")
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"unparseable sample line {line!r}")
        sample_name = match.group("name")
        labels: dict[str, str] = {}
        label_blob = match.group("labels")
        if label_blob:
            pairs = list(_LABEL_PAIR_RE.finditer(label_blob))
            rebuilt = ",".join(pair.group(0) for pair in pairs)
            if rebuilt != label_blob:
                raise ValueError(f"illegal label syntax in {line!r}")
            for pair in pairs:
                labels[pair.group("name")] = _unescape(pair.group("value"))
        value = float(match.group("value"))
        # Histogram samples fold into their family; counters are already
        # declared under their `_total` name, gauges under their own.
        family_name = sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            trimmed = sample_name[: -len(suffix)]
            if sample_name.endswith(suffix) and trimmed in families:
                family_name = trimmed
                break
        entry = families.get(family_name)
        if entry is None:
            raise ValueError(
                f"sample {sample_name!r} has no preceding # TYPE family"
            )
        entry["samples"].append((sample_name, labels, value))
    for name, entry in families.items():
        if entry["type"] is None:
            raise ValueError(f"family {name!r} missing # TYPE")
    return families
