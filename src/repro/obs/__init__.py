"""Zero-dependency observability: nested-span tracing + a metrics
registry, with JSON / Chrome ``trace_event`` exports.

The package is a leaf — nothing in here imports the rest of ``repro`` —
so every layer of the pipeline can depend on it without cycles.  See
``docs/observability.md`` for the span taxonomy, metric name/unit
contract, and the wall-vs-simulated clock rules.
"""

from repro.obs.export import (
    TRACE_FORMAT_VERSION,
    load_trace_schema,
    phase_totals,
    to_chrome_trace,
    trace_document,
    validate_trace,
    write_chrome_trace,
    write_trace,
)
from repro.obs.metrics import NULL_METRICS, MetricsRegistry, NullMetrics
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "TRACE_FORMAT_VERSION",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "trace_document",
    "to_chrome_trace",
    "write_trace",
    "write_chrome_trace",
    "phase_totals",
    "load_trace_schema",
    "validate_trace",
]
