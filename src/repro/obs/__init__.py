"""Zero-dependency observability: nested-span tracing + a metrics
registry, with JSON / Chrome ``trace_event`` exports.

The package is a leaf — nothing in here imports the rest of ``repro`` —
so every layer of the pipeline can depend on it without cycles.  See
``docs/observability.md`` for the span taxonomy, metric name/unit
contract, and the wall-vs-simulated clock rules.
"""

from repro.obs.export import (
    TRACE_FORMAT_VERSION,
    load_trace_schema,
    phase_totals,
    shift_span_times,
    to_chrome_trace,
    trace_document,
    validate_document,
    validate_trace,
    write_chrome_trace,
    write_trace,
)
from repro.obs.metrics import NULL_METRICS, MetricsRegistry, NullMetrics
from repro.obs.openmetrics import (
    OPENMETRICS_CONTENT_TYPE,
    parse_openmetrics,
    render_registry,
    render_run_record,
)
from repro.obs.regress import (
    DEFAULT_RULES,
    MetricRule,
    RegressionReport,
    detect_regressions,
    diff_records,
)
from repro.obs.registry import (
    DEFAULT_REGISTRY_ROOT,
    RUNRECORD_VERSION,
    RunRegistry,
    build_run_record,
    config_digest,
    load_runrecord_schema,
    run_environment,
    validate_run_record,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    new_trace_id,
)

__all__ = [
    "TRACE_FORMAT_VERSION",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "new_trace_id",
    "trace_document",
    "to_chrome_trace",
    "shift_span_times",
    "write_trace",
    "write_chrome_trace",
    "phase_totals",
    "load_trace_schema",
    "validate_trace",
    "validate_document",
    "RUNRECORD_VERSION",
    "DEFAULT_REGISTRY_ROOT",
    "RunRegistry",
    "build_run_record",
    "config_digest",
    "run_environment",
    "load_runrecord_schema",
    "validate_run_record",
    "MetricRule",
    "DEFAULT_RULES",
    "RegressionReport",
    "diff_records",
    "detect_regressions",
    "render_run_record",
    "render_registry",
    "parse_openmetrics",
    "OPENMETRICS_CONTENT_TYPE",
]
