"""Nested-span tracer with two clocks (wall + simulated).

A :class:`Tracer` builds a forest of :class:`Span` objects.  Spans carry
*wall* timestamps (``time.perf_counter`` seconds, always present) and
optionally *simulated* timestamps (the protocol clock used by
``RoundPolicy`` deadlines and ``SimulatedNetwork`` transfer times).  The
two clocks are independent axes of the same span — a transport span's
wall duration is how long the driver spent computing it (microseconds)
while its sim duration is the modeled link time (possibly minutes).

Spans are created three ways:

* ``with tracer.span("local_phase"):`` — live timing around a block;
* ``tracer.record("global_phase", wall_start=a, wall_end=b)`` — post-hoc
  from timestamps measured elsewhere (how the runner reuses the *same*
  ``perf_counter`` reads that feed the report fields, so the trace and
  the report reconcile exactly);
* grafting — ``record(..., children=[...])`` accepts exported span dicts
  from worker threads/processes and re-hydrates them under the new span.

The disabled path is a single shared :data:`NULL_TRACER` whose ``span``
returns one reusable context-manager singleton: entering a null span
performs no allocation, keeping the fault-free fast path cost-free.
"""

from __future__ import annotations

import math
import time
import uuid
from dataclasses import dataclass, field

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER", "new_trace_id"]


def new_trace_id() -> int:
    """A fresh random 128-bit trace id (one distributed trace)."""
    return uuid.uuid4().int


@dataclass
class Span:
    """One timed region.  ``wall_*`` are ``perf_counter`` seconds;
    ``sim_*`` (optional) are simulated-clock seconds."""

    name: str
    wall_start: float
    wall_end: float = math.nan
    sim_start: float | None = None
    sim_end: float | None = None
    attrs: dict = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)
    # 64-bit id assigned lazily (Tracer.ensure_span_id) when the span is
    # referenced from a wire trace context; untraced spans never pay for
    # one.
    span_id: int | None = None

    @property
    def wall_seconds(self) -> float:
        return self.wall_end - self.wall_start

    @property
    def sim_seconds(self) -> float | None:
        if self.sim_start is None or self.sim_end is None:
            return None
        return self.sim_end - self.sim_start

    def set_sim(self, start: float, end: float) -> None:
        """Attach the simulated-clock interval of this span."""
        self.sim_start = float(start)
        self.sim_end = float(end)

    def to_dict(self, origin: float = 0.0) -> dict:
        """JSON-ready form; wall timestamps are shifted by ``origin`` so
        exported traces start near zero instead of at an arbitrary
        ``perf_counter`` epoch."""
        out: dict = {
            "name": self.name,
            "wall_start": self.wall_start - origin,
            "wall_end": self.wall_end - origin,
        }
        if self.sim_start is not None:
            out["sim_start"] = self.sim_start
        if self.sim_end is not None:
            out["sim_end"] = self.sim_end
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.span_id is not None:
            out["span_id"] = self.span_id
        if self.children:
            out["children"] = [c.to_dict(origin) for c in self.children]
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        """Inverse of :meth:`to_dict` (origin-relative timestamps kept
        as-is); used to graft worker-exported spans into a driver trace."""
        return cls(
            name=data["name"],
            wall_start=float(data["wall_start"]),
            wall_end=float(data["wall_end"]),
            sim_start=data.get("sim_start"),
            sim_end=data.get("sim_end"),
            attrs=dict(data.get("attrs", {})),
            children=[cls.from_dict(c) for c in data.get("children", [])],
            span_id=data.get("span_id"),
        )


class _LiveSpan:
    """Context manager produced by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        self.span.wall_end = time.perf_counter()
        self._tracer._pop(self.span)


class Tracer:
    """Collects a forest of nested spans on one thread of control.

    The open-span stack is not synchronized: each worker creates its own
    tracer and the driver grafts the exported spans afterwards, so a
    tracer never sees concurrent ``span()`` calls.
    """

    enabled = True

    def __init__(self, *, trace_id: int | None = None) -> None:
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        # Recorded at construction so exports can normalize wall
        # timestamps to a near-zero origin.
        self.wall_origin = time.perf_counter()
        #: 128-bit id of the distributed trace this tracer contributes
        #: to.  Pass the coordinator's id so every process in a session
        #: records into the same logical trace.
        self.trace_id = new_trace_id() if trace_id is None else int(trace_id)
        # Span ids are (random 32-bit base << 32) | sequence — unique
        # across processes without coordination, assigned only on demand.
        self._span_id_base = (uuid.uuid4().int & 0xFFFFFFFF) << 32
        self._span_seq = 0

    def span(self, name: str, attrs: dict | None = None) -> _LiveSpan:
        """Open a live span; close it by exiting the ``with`` block."""
        span = Span(name=name, wall_start=time.perf_counter())
        if attrs:
            span.attrs.update(attrs)
        self._push(span)
        return _LiveSpan(self, span)

    def record(
        self,
        name: str,
        *,
        wall_start: float,
        wall_end: float,
        sim_start: float | None = None,
        sim_end: float | None = None,
        attrs: dict | None = None,
        parent: Span | None = None,
        children: list | None = None,
    ) -> Span:
        """Append an already-measured span.

        ``children`` may mix :class:`Span` objects and exported dicts
        (worker output); dicts are re-hydrated.  With no explicit
        ``parent`` the span nests under the innermost open live span, or
        becomes a root.
        """
        span = Span(name=name, wall_start=wall_start, wall_end=wall_end)
        if sim_start is not None or sim_end is not None:
            span.sim_start = sim_start
            span.sim_end = sim_end
        if attrs:
            span.attrs.update(attrs)
        if children:
            for child in children:
                if isinstance(child, dict):
                    child = Span.from_dict(child)
                span.children.append(child)
        if parent is not None:
            parent.children.append(span)
        elif self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        return span

    def current_span(self) -> Span | None:
        """The innermost open live span, or ``None`` outside any."""
        return self._stack[-1] if self._stack else None

    def ensure_span_id(self, span: Span) -> int:
        """The span's 64-bit id, assigning one on first request."""
        if span.span_id is None:
            self._span_seq += 1
            span.span_id = self._span_id_base | (self._span_seq & 0xFFFFFFFF)
        return span.span_id

    def _push(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        # Tolerate out-of-order exits (an inner `with` leaked) rather
        # than corrupting the stack: unwind down to the closed span.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break

    def export_spans(self, origin: float | None = None) -> list[dict]:
        """The span forest as JSON-ready dicts, origin-normalized."""
        if origin is None:
            origin = self.wall_origin
        return [root.to_dict(origin) for root in self.roots]

    def export(self) -> dict:
        """Spans plus the origin, for cross-process grafting."""
        return {"wall_origin": self.wall_origin, "spans": self.export_spans()}


class _NullSpanHandle:
    """Shared no-op context manager; ``enter`` yields ``None``."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpanHandle()


class NullTracer:
    """The disabled tracer: ``span`` hands back one shared context
    manager, ``record`` returns ``None`` — no allocations either way."""

    enabled = False
    wall_origin = 0.0
    roots: list = []
    trace_id = 0

    def span(self, name: str, attrs: dict | None = None) -> _NullSpanHandle:
        return _NULL_SPAN

    def current_span(self) -> None:
        return None

    def record(
        self,
        name: str,
        *,
        wall_start: float,
        wall_end: float,
        sim_start: float | None = None,
        sim_end: float | None = None,
        attrs: dict | None = None,
        parent: Span | None = None,
        children: list | None = None,
    ) -> None:
        return None

    def export_spans(self, origin: float | None = None) -> list[dict]:
        return []

    def export(self) -> dict:
        return {"wall_origin": 0.0, "spans": []}


NULL_TRACER = NullTracer()
