"""Zero-dependency metrics registry: counters, gauges, histograms.

Every hot layer of the pipeline (the neighbor indexes, DBSCAN, the
resilient transport with its checksums and circuit breakers, the central
server's admission gate, the distributed runner and its recovery rounds)
records into a :class:`MetricsRegistry` when one is attached, and records
nothing — not even an allocation — when none is.  The registry is deliberately
tiny: three metric families, float values, power-of-two histogram
buckets, and a JSON-ready :meth:`MetricsRegistry.to_dict` export that
lands in ``DistributedRunReport.trace`` and the ``python -m repro trace``
output.

Metric names are dotted paths (``"index.region_queries"``); per-kind
variants append the kind in brackets (``"transport.bytes[local_model]"``).
Units are part of the documented name contract (see
``docs/observability.md``), not runtime state.

Worker threads and worker processes record into *their own* registry and
the driver merges the exported dicts (:meth:`MetricsRegistry.merge`), so
no lock contention or cross-process state is needed on the hot path; the
driver-side registry itself is still thread-safe.
"""

from __future__ import annotations

import math
import threading

__all__ = ["MetricsRegistry", "NullMetrics", "NULL_METRICS"]


def _bucket_bound(value: float) -> float:
    """Power-of-two upper bound of the histogram bucket holding ``value``.

    ``0`` collects everything ``<= 0``; exponents are clamped to
    ``2**-30 .. 2**60`` so pathological values cannot mint unbounded
    bucket keys.
    """
    if value <= 0:
        return 0.0
    exponent = math.ceil(math.log2(value))
    return float(2.0 ** min(60, max(-30, exponent)))


class MetricsRegistry:
    """Thread-safe counters, gauges and histograms.

    All three families share one flat name space per family; recording
    under a new name creates the metric on the fly (observability must
    never raise in production paths).
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        # name -> [count, total, min, max, {bucket_bound: count}]
        self._histograms: dict[str, list] = {}

    # Locks cannot cross process boundaries; a registry that rides along
    # in a pickled object (e.g. an index captured by a worker-process
    # result) re-creates its lock on arrival.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def inc(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to counter ``name`` (created at 0 on first use)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + value

    def set(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Record one observation into histogram ``name``."""
        value = float(value)
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = [0, 0.0, math.inf, -math.inf, {}]
                self._histograms[name] = hist
            hist[0] += 1
            hist[1] += value
            hist[2] = min(hist[2], value)
            hist[3] = max(hist[3], value)
            bound = _bucket_bound(value)
            hist[4][bound] = hist[4].get(bound, 0) + 1

    def value(self, name: str, default: float = 0.0) -> float:
        """Current value of counter or gauge ``name`` (``default`` if unset)."""
        with self._lock:
            if name in self._counters:
                return self._counters[name]
            return self._gauges.get(name, default)

    def merge(self, exported: dict | None) -> None:
        """Fold a :meth:`to_dict` export (e.g. from a worker) into this
        registry: counters add, gauges take the incoming value, histograms
        combine."""
        if not exported:
            return
        for name, value in exported.get("counters", {}).items():
            self.inc(name, value)
        for name, value in exported.get("gauges", {}).items():
            self.set(name, value)
        with self._lock:
            for name, data in exported.get("histograms", {}).items():
                hist = self._histograms.get(name)
                if hist is None:
                    hist = [0, 0.0, math.inf, -math.inf, {}]
                    self._histograms[name] = hist
                hist[0] += data["count"]
                hist[1] += data["sum"]
                hist[2] = min(hist[2], data["min"])
                hist[3] = max(hist[3], data["max"])
                for bound, count in data["buckets"].items():
                    bound = float(bound)
                    hist[4][bound] = hist[4].get(bound, 0) + count

    def to_dict(self) -> dict:
        """JSON-ready snapshot of every metric."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: {
                        "count": hist[0],
                        "sum": hist[1],
                        "min": hist[2] if hist[0] else 0.0,
                        "max": hist[3] if hist[0] else 0.0,
                        # JSON object keys must be strings.
                        "buckets": {
                            str(bound): count
                            for bound, count in sorted(hist[4].items())
                        },
                    }
                    for name, hist in self._histograms.items()
                },
            }


class NullMetrics:
    """The disabled registry: every record is a no-op and allocates nothing.

    A single module-level instance (:data:`NULL_METRICS`) is shared by
    everyone; library code holds either a real registry or this object and
    never needs a ``None`` check.
    """

    enabled = False

    def inc(self, name: str, value: float = 1.0) -> None:
        """No-op."""

    def set(self, name: str, value: float) -> None:
        """No-op."""

    def observe(self, name: str, value: float) -> None:
        """No-op."""

    def value(self, name: str, default: float = 0.0) -> float:
        """Always ``default``."""
        return default

    def merge(self, exported: dict | None) -> None:
        """No-op."""

    def to_dict(self) -> dict:
        """An empty snapshot."""
        return {"counters": {}, "gauges": {}, "histograms": {}}


NULL_METRICS = NullMetrics()
