"""Noise-aware regression detection over RunRecords.

Two pure functions do the work: :func:`diff_records` computes a
structured, antisymmetric metric diff of two records, and
:func:`detect_regressions` compares a *set* of baseline records against a
*set* of candidate records — median-of-k on both sides so a single noisy
repeat cannot flip the verdict — under direction-aware per-metric rules:
wall seconds going **up** is bad, Q_DBDC going **down** is bad, speedups
going **down** are bad, and everything inside the per-rule relative/
absolute threshold band is "unchanged".  Both functions are
deterministic for fixed inputs (pinned by a hypothesis test), which is
what lets CI gate on ``python -m repro runs regress``.

The rule table is ordered, first match wins, and names are matched with
``fnmatch`` patterns against the flat metric names of
:mod:`repro.obs.registry` (``"local.wall_seconds"``,
``"quality.q_p2_percent"``, ``"net.bytes[local_model]"`` …).  Timing
rules are tagged so cross-machine comparisons (CI against a committed
baseline) can drop them wholesale with ``include_timing=False``.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from statistics import median

__all__ = [
    "MetricRule",
    "DEFAULT_RULES",
    "rule_for",
    "metric_medians",
    "classify",
    "diff_records",
    "RegressionReport",
    "detect_regressions",
]


@dataclass(frozen=True)
class MetricRule:
    """Direction + noise threshold for one family of metric names.

    Attributes:
        pattern: ``fnmatch`` pattern over flat metric names.
        direction: ``"lower"`` (lower is better), ``"higher"`` or
            ``"ignore"`` (informational only).
        rel_threshold: relative change tolerated before a verdict flips
            away from "unchanged" (fraction of the baseline magnitude).
        abs_threshold: absolute change tolerated regardless of the
            baseline (guards tiny denominators: 1ms → 2ms is not a 2×
            regression worth failing CI over).
        timing: whether the metric is a wall/CPU-clock reading — dropped
            entirely when a comparison runs with ``include_timing=False``
            (different machines, different clocks).
    """

    pattern: str
    direction: str
    rel_threshold: float = 0.10
    abs_threshold: float = 0.0
    timing: bool = False

    def __post_init__(self) -> None:
        if self.direction not in ("lower", "higher", "ignore"):
            raise ValueError(
                f"direction must be lower/higher/ignore, got {self.direction!r}"
            )


#: Ordered, first match wins.  Thresholds encode the observed noise of
#: each family: wall/CPU clocks are the noisiest (30%), the simulated
#: clock and byte counts are deterministic for a fixed seed (10% leaves
#: room for pickle/layout drift across library versions), quality is
#: deterministic (1% relative with half a percentage point of slack).
DEFAULT_RULES: tuple[MetricRule, ...] = (
    MetricRule("*speedup*", "higher", 0.25, abs_threshold=0.1, timing=True),
    MetricRule("*percent*", "higher", 0.01, abs_threshold=0.5),
    MetricRule("*cost_ratio*", "lower", 0.05, abs_threshold=0.01),
    MetricRule("*saving*", "higher", 0.05, abs_threshold=0.01),
    MetricRule("*wall_seconds*", "lower", 0.30, abs_threshold=0.005, timing=True),
    MetricRule("*cpu_seconds*", "lower", 0.30, abs_threshold=0.005, timing=True),
    MetricRule("*sim_seconds*", "lower", 0.10, abs_threshold=0.001),
    MetricRule("*seconds*", "lower", 0.30, abs_threshold=0.005, timing=True),
    MetricRule("*bytes*", "lower", 0.10),
    MetricRule("*retries*", "lower", 0.10, abs_threshold=0.5),
    MetricRule("*timeouts*", "lower", 0.10, abs_threshold=0.5),
    MetricRule("*failed*", "lower", 0.10, abs_threshold=0.5),
    MetricRule("*drops*", "lower", 0.10, abs_threshold=0.5),
    # Correctness flags (1.0 = verified): any drop is a hard regression,
    # so the thresholds are zero and the rule is *not* timing-tagged —
    # it survives --ignore-timing and gates cross-machine CI runs.
    MetricRule("*identical*", "higher", 0.0),
    MetricRule("*roundtrip_ok*", "higher", 0.0),
    # Memory budgets: tracemalloc peaks are reproducible for a fixed
    # config (python allocations only), RSS folds in the interpreter and
    # allocator and is machine-bound — timing-tagged like the clocks.
    MetricRule("*tracemalloc_peak_mb*", "lower", 0.20, abs_threshold=5.0),
    MetricRule("*rss_peak_mb*", "lower", 0.30, abs_threshold=16.0, timing=True),
    # Service-mode throughput (queries/s against a live DBDCService): a
    # rate is a clock reading in disguise, so it is timing-tagged and
    # only gates like-for-like reruns on the same machine.
    MetricRule("*_rps", "higher", 0.30, abs_threshold=1.0, timing=True),
    # Generic boolean verdicts (schema_ok, attribution_ok, …): like the
    # named correctness flags above, any drop from 1.0 is a hard
    # regression and survives --ignore-timing.  Specific *_ok families
    # (roundtrip_ok) are matched by their own earlier rule.
    MetricRule("*_ok", "higher", 0.0),
    MetricRule("*", "ignore"),
)


def rule_for(
    name: str, rules: tuple[MetricRule, ...] = DEFAULT_RULES
) -> MetricRule:
    """The first rule whose pattern matches ``name``."""
    for rule in rules:
        if fnmatch.fnmatchcase(name, rule.pattern):
            return rule
    return MetricRule("*", "ignore")


def metric_medians(records: list[dict]) -> dict[str, float]:
    """Per-metric median over several records' flat metrics.

    The median-of-k aggregate both sides of a comparison reduce to —
    ``None`` values (non-finite measurements) are dropped per metric.
    """
    values: dict[str, list[float]] = {}
    for record in records:
        for name, value in record.get("metrics", {}).items():
            if value is not None:
                values.setdefault(name, []).append(float(value))
    return {name: float(median(vals)) for name, vals in values.items()}


def classify(
    rule: MetricRule,
    baseline: float | None,
    candidate: float | None,
    *,
    threshold_scale: float = 1.0,
) -> str:
    """Verdict for one metric under one rule.

    Returns one of ``"regression"``, ``"improvement"``, ``"unchanged"``,
    ``"info"`` (ignored direction) or ``"missing"`` (either side absent).
    """
    if baseline is None or candidate is None:
        return "missing"
    if rule.direction == "ignore":
        return "info"
    delta = candidate - baseline
    threshold = max(
        rule.abs_threshold * threshold_scale,
        rule.rel_threshold * threshold_scale * abs(baseline),
    )
    if abs(delta) <= threshold:
        return "unchanged"
    worse = delta > 0 if rule.direction == "lower" else delta < 0
    return "regression" if worse else "improvement"


def _entry(
    name: str,
    baseline: float | None,
    candidate: float | None,
    rules: tuple[MetricRule, ...],
    threshold_scale: float,
) -> dict:
    rule = rule_for(name, rules)
    delta = (
        candidate - baseline
        if baseline is not None and candidate is not None
        else None
    )
    rel_delta = (
        delta / abs(baseline)
        if delta is not None and baseline not in (0, 0.0)
        else None
    )
    return {
        "baseline": baseline,
        "candidate": candidate,
        "delta": delta,
        "rel_delta": rel_delta,
        "direction": rule.direction,
        "timing": rule.timing,
        "verdict": classify(
            rule, baseline, candidate, threshold_scale=threshold_scale
        ),
    }


def diff_records(
    a: dict,
    b: dict,
    *,
    rules: tuple[MetricRule, ...] = DEFAULT_RULES,
    threshold_scale: float = 1.0,
) -> dict:
    """Structured metric diff of two RunRecords (``a`` = baseline).

    Antisymmetric by construction: swapping the arguments negates every
    ``delta`` (pinned by a hypothesis property test; verdicts swap too
    whenever the relative threshold band is symmetric around the pair).
    """
    a_metrics = a.get("metrics", {})
    b_metrics = b.get("metrics", {})
    names = sorted(set(a_metrics) | set(b_metrics))
    return {
        "baseline_run_id": a.get("run_id"),
        "candidate_run_id": b.get("run_id"),
        "baseline_config_digest": a.get("config_digest"),
        "candidate_config_digest": b.get("config_digest"),
        "metrics": {
            name: _entry(
                name,
                a_metrics.get(name),
                b_metrics.get(name),
                rules,
                threshold_scale,
            )
            for name in names
        },
    }


@dataclass
class RegressionReport:
    """Outcome of one baseline-vs-candidate comparison.

    Attributes:
        baseline_ids: run ids aggregated into the baseline medians.
        candidate_ids: run ids aggregated into the candidate medians.
        entries: per-metric diff entries (same shape as
            :func:`diff_records` entries).
        include_timing: whether timing metrics took part.
    """

    baseline_ids: list[str]
    candidate_ids: list[str]
    entries: dict[str, dict] = field(default_factory=dict)
    include_timing: bool = True

    @property
    def regressions(self) -> dict[str, dict]:
        """The entries whose verdict is ``regression``."""
        return {
            name: entry
            for name, entry in self.entries.items()
            if entry["verdict"] == "regression"
        }

    @property
    def improvements(self) -> dict[str, dict]:
        """The entries whose verdict is ``improvement``."""
        return {
            name: entry
            for name, entry in self.entries.items()
            if entry["verdict"] == "improvement"
        }

    @property
    def ok(self) -> bool:
        """``True`` when nothing regressed."""
        return not self.regressions

    def to_text(self) -> str:
        """Human-readable report (regressions first)."""
        lines = [
            f"baseline : {', '.join(self.baseline_ids) or '<none>'}",
            f"candidate: {', '.join(self.candidate_ids) or '<none>'}"
            + ("" if self.include_timing else "  (timing metrics ignored)"),
        ]
        order = {"regression": 0, "improvement": 1, "unchanged": 2,
                 "info": 3, "missing": 4}
        for name in sorted(
            self.entries, key=lambda n: (order[self.entries[n]["verdict"]], n)
        ):
            entry = self.entries[name]
            if entry["verdict"] in ("unchanged", "info", "missing"):
                continue
            rel = (
                f" ({entry['rel_delta']:+.1%})"
                if entry["rel_delta"] is not None
                else ""
            )
            lines.append(
                f"{entry['verdict'].upper():11s} {name}: "
                f"{entry['baseline']:g} -> {entry['candidate']:g}{rel}"
            )
        counts = {
            verdict: sum(
                1 for e in self.entries.values() if e["verdict"] == verdict
            )
            for verdict in order
        }
        lines.append(
            "summary: "
            + ", ".join(f"{n} {verdict}" for verdict, n in counts.items() if n)
        )
        lines.append("verdict: " + ("OK" if self.ok else "REGRESSION"))
        return "\n".join(lines)


def detect_regressions(
    baseline_records: list[dict],
    candidate_records: list[dict],
    *,
    rules: tuple[MetricRule, ...] = DEFAULT_RULES,
    ignore: tuple[str, ...] = (),
    include_timing: bool = True,
    threshold_scale: float = 1.0,
) -> RegressionReport:
    """Compare medians of baseline records against medians of candidates.

    Args:
        baseline_records: one or more committed/stored baseline records
            (k repeats reduce by per-metric median).
        candidate_records: one or more fresh records (median likewise).
        rules: the ordered rule table.
        ignore: extra ``fnmatch`` patterns to drop before comparing.
        include_timing: ``False`` drops every rule tagged ``timing``
            (cross-machine comparisons).
        threshold_scale: scales every rule's thresholds (``2.0`` doubles
            the tolerated band).

    Returns:
        A :class:`RegressionReport`; ``report.ok`` gates CI.
    """
    if not baseline_records:
        raise ValueError("no baseline records to compare against")
    if not candidate_records:
        raise ValueError("no candidate records to compare")
    base = metric_medians(baseline_records)
    cand = metric_medians(candidate_records)
    entries: dict[str, dict] = {}
    for name in sorted(set(base) | set(cand)):
        if any(fnmatch.fnmatchcase(name, pattern) for pattern in ignore):
            continue
        rule = rule_for(name, rules)
        if rule.timing and not include_timing:
            continue
        entries[name] = _entry(
            name, base.get(name), cand.get(name), rules, threshold_scale
        )
    return RegressionReport(
        baseline_ids=[r.get("run_id", "?") for r in baseline_records],
        candidate_ids=[r.get("run_id", "?") for r in candidate_records],
        entries=entries,
        include_timing=include_timing,
    )
