"""Chart builders on top of the SVG canvas: scatter, line, reachability.

Every builder returns the SVG document as a string; callers save it with
:meth:`repro.viz.svg.SVGCanvas.save` semantics via :func:`save_svg` or the
figure helpers in :mod:`repro.viz.figures`.
"""

from __future__ import annotations

import math
from pathlib import Path

import numpy as np

from repro.clustering.labels import NOISE
from repro.viz.svg import SVGCanvas

__all__ = ["CLUSTER_COLORS", "scatter_plot", "line_chart", "reachability_plot", "save_svg"]

# A qualitative palette (clusters cycle through it; noise is light gray).
CLUSTER_COLORS = [
    "#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd",
    "#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
    "#393b79", "#637939", "#8c6d31", "#843c39", "#7b4173",
]
NOISE_COLOR = "#c8c8c8"

_MARGIN = 55.0


def _nice_ticks(low: float, high: float, target: int = 5) -> list[float]:
    """Round tick positions covering [low, high]."""
    if high <= low:
        return [low]
    raw_step = (high - low) / max(1, target)
    magnitude = 10 ** math.floor(math.log10(raw_step))
    for multiple in (1, 2, 5, 10):
        step = multiple * magnitude
        if step >= raw_step:
            break
    first = math.ceil(low / step) * step
    ticks = []
    tick = first
    while tick <= high + 1e-9 * step:
        ticks.append(round(tick, 10))
        tick += step
    return ticks or [low]


class _Frame:
    """Maps data coordinates into the canvas' plotting area."""

    def __init__(
        self,
        canvas: SVGCanvas,
        x_range: tuple[float, float],
        y_range: tuple[float, float],
        *,
        log_y: bool = False,
    ) -> None:
        self.canvas = canvas
        self.log_y = log_y
        self.x0, self.x1 = x_range
        y0, y1 = y_range
        if log_y:
            y0, y1 = math.log10(max(y0, 1e-12)), math.log10(max(y1, 1e-12))
        self.y0, self.y1 = y0, y1
        if self.x1 == self.x0:
            self.x1 = self.x0 + 1.0
        if self.y1 == self.y0:
            self.y1 = self.y0 + 1.0
        self.left = _MARGIN
        self.right = canvas.width - 20.0
        self.top = 40.0
        self.bottom = canvas.height - _MARGIN

    def x(self, value: float) -> float:
        return self.left + (value - self.x0) / (self.x1 - self.x0) * (self.right - self.left)

    def y(self, value: float) -> float:
        if self.log_y:
            value = math.log10(max(value, 1e-12))
        return self.bottom - (value - self.y0) / (self.y1 - self.y0) * (self.bottom - self.top)

    def draw_axes(self, xlabel: str, ylabel: str, title: str) -> None:
        canvas = self.canvas
        canvas.line(self.left, self.bottom, self.right, self.bottom)
        canvas.line(self.left, self.top, self.left, self.bottom)
        canvas.text(canvas.width / 2, 20, title, size=14, anchor="middle")
        canvas.text(
            (self.left + self.right) / 2, canvas.height - 12, xlabel, anchor="middle"
        )
        canvas.text(
            16, (self.top + self.bottom) / 2, ylabel, anchor="middle", rotate=-90.0
        )
        for tick in _nice_ticks(self.x0, self.x1):
            px = self.x(tick)
            canvas.line(px, self.bottom, px, self.bottom + 4)
            canvas.text(px, self.bottom + 17, f"{tick:g}", size=10, anchor="middle")
        y_ticks = (
            [10 ** t for t in _nice_ticks(self.y0, self.y1)]
            if self.log_y
            else _nice_ticks(self.y0, self.y1)
        )
        for tick in y_ticks:
            py = self.y(tick)
            canvas.line(self.left - 4, py, self.left, py)
            canvas.text(self.left - 7, py + 3, f"{tick:g}", size=10, anchor="end")
            canvas.line(self.left, py, self.right, py, stroke="#eeeeee")


def scatter_plot(
    points: np.ndarray,
    labels: np.ndarray | None = None,
    *,
    title: str = "",
    width: int = 520,
    height: int = 440,
    point_radius: float = 1.6,
) -> str:
    """Scatter of a 2-D point set, colored by cluster label.

    Args:
        points: array of shape ``(n, 2)``.
        labels: optional label array (noise = -1 renders gray).
        title: chart title.
        width: canvas width.
        height: canvas height.
        point_radius: marker radius.

    Returns:
        The SVG document.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError(f"need (n, 2) points, got shape {points.shape}")
    canvas = SVGCanvas(width, height)
    if points.shape[0] == 0:
        canvas.text(width / 2, height / 2, "(empty)", anchor="middle")
        return canvas.to_string()
    low = points.min(axis=0)
    high = points.max(axis=0)
    frame = _Frame(canvas, (low[0], high[0]), (low[1], high[1]))
    frame.draw_axes("x", "y", title)
    if labels is None:
        labels = np.zeros(points.shape[0], dtype=np.intp)
    labels = np.asarray(labels)
    color_of: dict[int, str] = {}
    for (x, y), label in zip(points, labels):
        label = int(label)
        if label == NOISE:
            color = NOISE_COLOR
        else:
            if label not in color_of:
                color_of[label] = CLUSTER_COLORS[len(color_of) % len(CLUSTER_COLORS)]
            color = color_of[label]
        canvas.circle(frame.x(x), frame.y(y), point_radius, fill=color, opacity=0.8)
    return canvas.to_string()


def line_chart(
    x_values: list[float],
    series: dict[str, list[float]],
    *,
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
    width: int = 560,
    height: int = 400,
    log_y: bool = False,
) -> str:
    """Multi-series line chart with a legend.

    Args:
        x_values: shared x coordinates.
        series: name → y values (must align with ``x_values``).
        title: chart title.
        xlabel: x axis label.
        ylabel: y axis label.
        width: canvas width.
        height: canvas height.
        log_y: log-scale the y axis (runtime charts).

    Returns:
        The SVG document.

    Raises:
        ValueError: on empty or misaligned inputs.
    """
    if not x_values or not series:
        raise ValueError("x_values and series must be non-empty")
    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(ys)} values for {len(x_values)} x"
            )
    canvas = SVGCanvas(width, height)
    all_y = [y for ys in series.values() for y in ys]
    frame = _Frame(
        canvas,
        (min(x_values), max(x_values)),
        (min(all_y), max(all_y)),
        log_y=log_y,
    )
    frame.draw_axes(xlabel, ylabel, title)
    for i, (name, ys) in enumerate(series.items()):
        color = CLUSTER_COLORS[i % len(CLUSTER_COLORS)]
        coords = [(frame.x(x), frame.y(y)) for x, y in zip(x_values, ys)]
        canvas.polyline(coords, stroke=color, stroke_width=2.0)
        for cx, cy in coords:
            canvas.circle(cx, cy, 2.6, fill=color)
        # Legend entry.
        ly = 34 + 16 * i
        canvas.line(frame.right - 130, ly, frame.right - 110, ly, stroke=color, stroke_width=2.5)
        canvas.text(frame.right - 104, ly + 4, name, size=11)
    return canvas.to_string()


def reachability_plot(
    reachability_in_order: np.ndarray,
    *,
    eps_cut: float | None = None,
    title: str = "OPTICS reachability plot",
    width: int = 640,
    height: int = 300,
) -> str:
    """The classic OPTICS bar plot (reachability per visit position).

    Args:
        reachability_in_order: reachability values in visit order
            (``OPTICSResult.reachability_plot()``); infinities are drawn
            at the finite maximum.
        eps_cut: optional horizontal cut line.
        title: chart title.
        width: canvas width.
        height: canvas height.

    Returns:
        The SVG document.
    """
    values = np.asarray(reachability_in_order, dtype=float)
    if values.size == 0:
        raise ValueError("reachability array is empty")
    finite = values[np.isfinite(values)]
    ceiling = float(finite.max()) * 1.05 if finite.size else 1.0
    drawn = np.where(np.isfinite(values), values, ceiling)
    canvas = SVGCanvas(width, height)
    frame = _Frame(canvas, (0, values.size), (0, ceiling))
    frame.draw_axes("visit order", "reachability", title)
    bar_width = max(0.5, (frame.right - frame.left) / values.size)
    for i, value in enumerate(drawn):
        x = frame.x(i)
        canvas.rect(
            x,
            frame.y(value),
            bar_width,
            frame.bottom - frame.y(value),
            fill="#1f77b4",
            stroke="none",
            opacity=0.9,
        )
    if eps_cut is not None:
        y = frame.y(eps_cut)
        canvas.line(frame.left, y, frame.right, y, stroke="#d62728", dash="5,3")
        canvas.text(frame.right - 4, y - 5, f"cut = {eps_cut:g}", size=10, anchor="end", fill="#d62728")
    return canvas.to_string()


def save_svg(document: str, path: str | Path) -> Path:
    """Write an SVG string to disk (creating parent directories)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(document)
    return path
