"""A minimal SVG document builder (no third-party plotting available
offline, so the figure generation is self-contained).

Only the handful of primitives the charts need: rectangles, circles,
lines, polylines and text, plus grouping and proper XML escaping.  The
output is a standalone ``.svg`` file any browser renders.
"""

from __future__ import annotations

from pathlib import Path
from xml.sax.saxutils import escape, quoteattr

__all__ = ["SVGCanvas"]


def _fmt(value: float) -> str:
    """Compact coordinate formatting (trim trailing zeros)."""
    return f"{value:.2f}".rstrip("0").rstrip(".")


class SVGCanvas:
    """An append-only SVG document.

    Args:
        width: canvas width in pixels.
        height: canvas height in pixels.
        background: optional background fill color.
    """

    def __init__(self, width: int, height: int, background: str | None = "white") -> None:
        if width <= 0 or height <= 0:
            raise ValueError(f"canvas must be positive, got {width}x{height}")
        self.width = int(width)
        self.height = int(height)
        self._elements: list[str] = []
        if background:
            self.rect(0, 0, width, height, fill=background, stroke="none")

    # ------------------------------------------------------------------
    # primitives
    # ------------------------------------------------------------------
    def rect(
        self,
        x: float,
        y: float,
        width: float,
        height: float,
        *,
        fill: str = "none",
        stroke: str = "black",
        stroke_width: float = 1.0,
        opacity: float = 1.0,
    ) -> None:
        """Append an axis-aligned rectangle."""
        self._elements.append(
            f'<rect x="{_fmt(x)}" y="{_fmt(y)}" width="{_fmt(width)}" '
            f'height="{_fmt(height)}" fill={quoteattr(fill)} '
            f'stroke={quoteattr(stroke)} stroke-width="{_fmt(stroke_width)}" '
            f'opacity="{_fmt(opacity)}"/>'
        )

    def circle(
        self,
        cx: float,
        cy: float,
        r: float,
        *,
        fill: str = "black",
        stroke: str = "none",
        opacity: float = 1.0,
    ) -> None:
        """Append a circle."""
        self._elements.append(
            f'<circle cx="{_fmt(cx)}" cy="{_fmt(cy)}" r="{_fmt(r)}" '
            f'fill={quoteattr(fill)} stroke={quoteattr(stroke)} '
            f'opacity="{_fmt(opacity)}"/>'
        )

    def line(
        self,
        x1: float,
        y1: float,
        x2: float,
        y2: float,
        *,
        stroke: str = "black",
        stroke_width: float = 1.0,
        dash: str | None = None,
    ) -> None:
        """Append a straight line segment."""
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        self._elements.append(
            f'<line x1="{_fmt(x1)}" y1="{_fmt(y1)}" x2="{_fmt(x2)}" '
            f'y2="{_fmt(y2)}" stroke={quoteattr(stroke)} '
            f'stroke-width="{_fmt(stroke_width)}"{dash_attr}/>'
        )

    def polyline(
        self,
        points: list[tuple[float, float]],
        *,
        stroke: str = "black",
        stroke_width: float = 1.5,
        dash: str | None = None,
    ) -> None:
        """Append an open polyline through ``points``."""
        coords = " ".join(f"{_fmt(x)},{_fmt(y)}" for x, y in points)
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        self._elements.append(
            f'<polyline points="{coords}" fill="none" '
            f'stroke={quoteattr(stroke)} stroke-width="{_fmt(stroke_width)}"'
            f"{dash_attr}/>"
        )

    def text(
        self,
        x: float,
        y: float,
        content: str,
        *,
        size: int = 12,
        anchor: str = "start",
        fill: str = "black",
        rotate: float | None = None,
    ) -> None:
        """Append a text label (``anchor``: start / middle / end)."""
        transform = (
            f' transform="rotate({_fmt(rotate)} {_fmt(x)} {_fmt(y)})"'
            if rotate is not None
            else ""
        )
        self._elements.append(
            f'<text x="{_fmt(x)}" y="{_fmt(y)}" font-size="{size}" '
            f'font-family="sans-serif" text-anchor="{anchor}" '
            f"fill={quoteattr(fill)}{transform}>{escape(content)}</text>"
        )

    # ------------------------------------------------------------------
    # output
    # ------------------------------------------------------------------
    def to_string(self) -> str:
        """The complete SVG document."""
        body = "\n".join(self._elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width}" height="{self.height}" '
            f'viewBox="0 0 {self.width} {self.height}">\n{body}\n</svg>\n'
        )

    def save(self, path: str | Path) -> Path:
        """Write the document to ``path`` and return it."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_string())
        return path
