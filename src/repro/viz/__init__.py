"""Self-contained SVG visualization: scatter/line/reachability charts and
paper-figure rendering (no third-party plotting dependency)."""

from repro.viz.charts import (
    CLUSTER_COLORS,
    line_chart,
    reachability_plot,
    save_svg,
    scatter_plot,
)
from repro.viz.figures import render_all_figures
from repro.viz.svg import SVGCanvas

__all__ = [
    "CLUSTER_COLORS",
    "line_chart",
    "reachability_plot",
    "save_svg",
    "scatter_plot",
    "render_all_figures",
    "SVGCanvas",
]
