"""Render the paper's figures as SVG files.

``python -m repro.cli figures --out figures/`` (or
:func:`render_all_figures`) regenerates graphical versions of the
evaluation figures from the same experiment code the text tables use:

* ``fig6_<A|B|C>.svg`` — the data sets, colored by a central DBSCAN run
  (the scatter plots of the paper's Figure 6),
* ``fig7a.svg`` / ``fig7b.svg`` — runtime vs cardinality,
* ``fig8.svg`` — speed-up vs number of sites,
* ``fig9.svg`` — quality vs ``Eps_global`` (both P functions),
* ``fig10.svg`` — quality vs number of sites,
* ``optics_reachability.svg`` — the §6 OPTICS alternative illustrated.
"""

from __future__ import annotations

from pathlib import Path

from repro.clustering.dbscan import dbscan
from repro.clustering.optics import optics
from repro.data.datasets import DATASET_NAMES, load_dataset
from repro.viz.charts import line_chart, reachability_plot, save_svg, scatter_plot

__all__ = [
    "render_fig6",
    "render_fig7",
    "render_fig8",
    "render_fig9",
    "render_fig10",
    "render_reachability",
    "render_all_figures",
]


def render_fig6(out_dir: str | Path) -> list[Path]:
    """Scatter plots of data sets A, B, C colored by central DBSCAN."""
    paths = []
    for name in DATASET_NAMES:
        data = load_dataset(name)
        result = dbscan(data.points, data.eps_local, data.min_pts)
        document = scatter_plot(
            data.points,
            result.labels,
            title=(
                f"data set {name}: {data.n} objects, "
                f"{result.n_clusters} clusters, {result.n_noise} noise"
            ),
        )
        paths.append(save_svg(document, Path(out_dir) / f"fig6_{name}.svg"))
    return paths


def render_fig7(out_dir: str | Path, *, seed: int = 42) -> list[Path]:
    """Runtime-vs-cardinality charts (Figures 7a/7b), log-scaled."""
    from repro.experiments.fig7 import run_fig7a, run_fig7b

    paths = []
    for run, name in ((run_fig7a, "fig7a"), (run_fig7b, "fig7b")):
        table = run(seed=seed)
        document = line_chart(
            [float(v) for v in table.column("objects")],
            {
                "central DBSCAN": table.column("central DBSCAN [s]"),
                "DBDC(REP_Scor)": table.column("DBDC(REP_Scor) [s]"),
                "DBDC(REP_kMeans)": table.column("DBDC(REP_kMeans) [s]"),
            },
            title=table.title.split(" — ")[0] + " — runtime vs cardinality",
            xlabel="objects",
            ylabel="seconds",
            log_y=True,
        )
        paths.append(save_svg(document, Path(out_dir) / f"{name}.svg"))
    return paths


def render_fig8(out_dir: str | Path, *, cardinality: int = 20_000, seed: int = 42) -> Path:
    """Speed-up vs number of sites (Figure 8b)."""
    from repro.experiments.fig8 import run_fig8

    table = run_fig8(cardinality=cardinality, seed=seed)
    document = line_chart(
        [float(v) for v in table.column("sites")],
        {"speed-up vs central": table.column("speed-up")},
        title=f"Fig. 8 — DBDC speed-up vs number of sites ({cardinality} objects)",
        xlabel="sites",
        ylabel="speed-up",
    )
    return save_svg(document, Path(out_dir) / "fig8.svg")


def render_fig9(
    out_dir: str | Path, *, cardinality: int = 8_700, seed: int = 42
) -> Path:
    """Quality vs Eps_global (Figures 9a + 9b in one chart)."""
    from repro.experiments.fig9 import run_fig9

    table = run_fig9(cardinality=cardinality, seed=seed)
    document = line_chart(
        [float(v) for v in table.column("Eps_global / Eps_local")],
        {
            "P^I kMeans": table.column("P^I kMeans [%]"),
            "P^I Scor": table.column("P^I Scor [%]"),
            "P^II kMeans": table.column("P^II kMeans [%]"),
            "P^II Scor": table.column("P^II Scor [%]"),
        },
        title="Fig. 9 — quality vs Eps_global (data set A)",
        xlabel="Eps_global / Eps_local",
        ylabel="Q_DBDC [%]",
    )
    return save_svg(document, Path(out_dir) / "fig9.svg")


def render_fig10(
    out_dir: str | Path, *, cardinality: int = 8_700, seed: int = 42
) -> Path:
    """Quality vs number of sites (the Figure 10 table as curves)."""
    from repro.experiments.fig10 import run_fig10

    table = run_fig10(cardinality=cardinality, seed=seed)
    document = line_chart(
        [float(v) for v in table.column("sites")],
        {
            "P^I kMeans": table.column("P^I kMeans"),
            "P^II kMeans": table.column("P^II kMeans"),
            "P^I Scor": table.column("P^I Scor"),
            "P^II Scor": table.column("P^II Scor"),
        },
        title="Fig. 10 — quality vs number of sites (data set A)",
        xlabel="sites",
        ylabel="Q_DBDC [%]",
    )
    return save_svg(document, Path(out_dir) / "fig10.svg")


def render_reachability(out_dir: str | Path) -> Path:
    """OPTICS reachability plot over data set C (the §6 alternative)."""
    data = load_dataset("C")
    ordering = optics(data.points, 4 * data.eps_local, 5)
    document = reachability_plot(
        ordering.reachability_plot(),
        eps_cut=data.eps_local,
        title="OPTICS reachability over data set C (cut = Eps_local)",
    )
    return save_svg(document, Path(out_dir) / "optics_reachability.svg")


def render_all_figures(
    out_dir: str | Path, *, seed: int = 42, fig8_cardinality: int = 20_000
) -> list[Path]:
    """Render every figure into ``out_dir`` and return the paths."""
    paths: list[Path] = []
    paths.extend(render_fig6(out_dir))
    paths.extend(render_fig7(out_dir, seed=seed))
    paths.append(render_fig8(out_dir, cardinality=fig8_cardinality, seed=seed))
    paths.append(render_fig9(out_dir, seed=seed))
    paths.append(render_fig10(out_dir, seed=seed))
    paths.append(render_reachability(out_dir))
    return paths
