"""A transport that survives the faults a :class:`FaultPlan` injects.

:class:`ResilientTransport` wraps the accounting-only
:class:`~repro.distributed.network.SimulatedNetwork` with the standard
unreliable-network machinery: per-message timeouts, capped exponential
backoff with deterministic jitter, and a per-link retry budget.  Every
attempt — including dropped, truncated and duplicated ones — is recorded
on the underlying network, so the byte/sim-time accounting reflects what
the wire actually carried, not just what got through.

Simulated time, not wall time, drives everything: a dropped attempt costs
the sender its timeout, a retry costs the backoff delay, a delivered
attempt costs the link's transfer time plus jitter.  All of it derives
from the plan's seeded RNG streams, so the same plan yields the same
retry counts and the same simulated clock, every run.

Two integrity/health mechanisms ride on top:

* every delivered payload is checked against the CRC-32 the sender
  stamped on the :class:`~repro.distributed.network.Message`, so the
  ``corrupt_prob`` fault (flipped bytes in flight) is *detectable* —
  the outcome reports ``checksum_ok=False`` and the receiver decides
  (the central server quarantines, see ``CentralServer.admit``);
* an optional per-link circuit breaker (:class:`BreakerPolicy`)
  fast-fails messages to links that keep failing, instead of burning the
  full retry budget every time, and re-probes on a deterministic
  simulated-clock schedule (closed → open → half-open).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.faults.integrity import crc_matches
from repro.faults.plan import FaultPlan

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.distributed.network import SimulatedNetwork

__all__ = [
    "TransportPolicy",
    "BreakerPolicy",
    "DeliveryOutcome",
    "TransportStats",
    "ResilientTransport",
]


@dataclass(frozen=True)
class TransportPolicy:
    """Retry/backoff behavior of the transport.

    Attributes:
        timeout_s: how long the sender waits before declaring an attempt
            lost (simulated seconds).
        max_attempts: per-message attempt budget (1 = no retries).
        backoff_base_s: first retry delay; attempt ``k`` waits
            ``min(backoff_cap_s, backoff_base_s · 2^(k-1))``.
        backoff_cap_s: upper bound on a single backoff delay.
        backoff_jitter: fraction of the backoff delay added as
            deterministic jitter (decorrelates retry storms).
    """

    timeout_s: float = 1.0
    max_attempts: int = 4
    backoff_base_s: float = 0.1
    backoff_cap_s: float = 2.0
    backoff_jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {self.timeout_s}")
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff delays must be >= 0")
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ValueError(
                f"backoff_jitter must be in [0, 1], got {self.backoff_jitter}"
            )

    def backoff_seconds(self, attempt: int, jitter_u: float) -> float:
        """Backoff before retry number ``attempt`` (1-based), with a
        deterministic jitter draw ``jitter_u`` in ``[0, 1)``."""
        base = min(self.backoff_cap_s, self.backoff_base_s * 2.0 ** (attempt - 1))
        return base * (1.0 + self.backoff_jitter * jitter_u)


@dataclass(frozen=True)
class BreakerPolicy:
    """Per-link circuit breaker parameters.

    The breaker protects the *sender's* retry budget from links that keep
    failing: after ``failure_threshold`` consecutive failed messages on a
    link the breaker **opens** and every message to that link fast-fails
    (0 attempts, 0 simulated seconds, no bytes) until ``cooldown_s``
    simulated seconds have passed.  The first message after the cooldown
    is the **half-open** probe: if it gets through, the breaker closes;
    if not, the breaker re-opens for another cooldown.  Everything runs
    on the simulated clock, so breaker behavior is as deterministic as
    the fault plan driving it.

    Attributes:
        failure_threshold: consecutive failed messages that trip the
            breaker open.
        cooldown_s: simulated seconds an open breaker waits before
            letting a half-open probe through.
    """

    failure_threshold: int = 3
    cooldown_s: float = 30.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.cooldown_s <= 0:
            raise ValueError(f"cooldown_s must be positive, got {self.cooldown_s}")


class _LinkBreaker:
    """Health state of one client↔server link (simulated-clock driven)."""

    __slots__ = ("policy", "state", "failures", "open_until", "state_changes")

    def __init__(self, policy: BreakerPolicy) -> None:
        self.policy = policy
        self.state = "closed"
        self.failures = 0
        self.open_until = 0.0
        self.state_changes = 0

    def _transition(self, state: str) -> None:
        if self.state != state:
            self.state = state
            self.state_changes += 1

    def allow(self, now_s: float) -> bool:
        """Whether a message may be attempted at simulated time ``now_s``."""
        if self.state == "open":
            if now_s < self.open_until:
                return False
            self._transition("half_open")
        return True

    def record(self, delivered: bool, now_s: float) -> None:
        """Feed one message outcome back into the breaker."""
        if delivered:
            self.failures = 0
            self._transition("closed")
            return
        self.failures += 1
        if self.state == "half_open" or self.failures >= self.policy.failure_threshold:
            self._transition("open")
            self.open_until = max(self.open_until, now_s + self.policy.cooldown_s)


@dataclass(frozen=True)
class DeliveryOutcome:
    """What happened to one logical message.

    Attributes:
        delivered: whether any attempt got through intact.
        attempts: attempts made (1 when the first try succeeded).
        retries: ``attempts - 1``.
        sim_seconds: simulated time from first send to delivery (or to
            giving up): transfer times, jitter, timeouts and backoffs.
        arrival_s: absolute simulated arrival time (``start_s`` +
            ``sim_seconds``); meaningful only when delivered.
        n_dropped: attempts lost in flight.
        n_truncated: attempts that arrived corrupt.
        n_duplicates: extra copies the receiver saw.
        bytes_sent: total bytes put on the wire across all attempts and
            duplicates.
        payload: the bytes the receiver actually got (``None`` unless
            delivered) — differs from what was sent when the corruption
            fault fired.
        checksum_ok: whether the received payload matches the CRC-32 the
            sender stamped on the message (vacuously true for undelivered
            messages; the receiver must treat a delivered-but-corrupt
            payload as poison).
        n_corrupted: delivered attempts whose payload was bit-flipped.
        fast_failed: the message never hit the wire because the link's
            circuit breaker was open (0 attempts, 0 simulated seconds).
    """

    delivered: bool
    attempts: int
    sim_seconds: float
    arrival_s: float
    n_dropped: int = 0
    n_truncated: int = 0
    n_duplicates: int = 0
    bytes_sent: int = 0
    payload: bytes | None = None
    checksum_ok: bool = True
    n_corrupted: int = 0
    fast_failed: bool = False

    @property
    def retries(self) -> int:
        """Attempts beyond the first."""
        return max(0, self.attempts - 1)


@dataclass
class TransportStats:
    """Aggregate transport bookkeeping across all messages.

    Attributes:
        n_messages: logical messages handed to the transport.
        n_delivered: messages that eventually got through.
        n_failed: messages that exhausted their attempt budget.
        n_attempts: wire attempts (includes retries, excludes duplicates).
        n_retries: attempts beyond each message's first.
        n_dropped: attempts lost in flight.
        n_truncated: attempts that arrived corrupt.
        n_duplicates: duplicate copies delivered.
        n_corrupted: delivered payloads that arrived bit-flipped
            (checksum mismatch at the receiver).
        n_fast_failed: messages an open circuit breaker refused without
            touching the wire.
        n_breaker_state_changes: breaker transitions across all links
            (closed → open → half-open → …).
    """

    n_messages: int = 0
    n_delivered: int = 0
    n_failed: int = 0
    n_attempts: int = 0
    n_retries: int = 0
    n_dropped: int = 0
    n_truncated: int = 0
    n_duplicates: int = 0
    n_corrupted: int = 0
    n_fast_failed: int = 0
    n_breaker_state_changes: int = 0


@dataclass
class _LinkSequence:
    """Per-link logical-message counter (diversifies the RNG streams)."""

    next_seq: int = 0

    def take(self) -> int:
        seq = self.next_seq
        self.next_seq += 1
        return seq


class ResilientTransport:
    """Timeout/retry/backoff delivery over a :class:`SimulatedNetwork`.

    Args:
        network: the accounting network every attempt is recorded on.
        plan: the fault plan deciding what goes wrong.
        policy: retry/backoff parameters.
        breaker_policy: optional per-link circuit breaker; ``None`` (the
            default) disables breakers entirely — existing runs are
            bit-identical.
        metrics: optional :class:`~repro.obs.MetricsRegistry`; every
            delivery records ``transport.*`` counters (attempts, retries,
            drops, truncations, duplicates, corruptions, bytes per
            message kind) and ``breaker.*`` counters when breakers are
            enabled.
        retryable_errors: exception types from ``network.send`` treated
            as a lost attempt (charged a timeout, retried with backoff)
            instead of propagating.  The socket path passes ``OSError``
            and :class:`~repro.service.wire.WireError` here so real
            connection failures drive the same retry loop the simulated
            drops do.  The default ``()`` catches nothing — simulated
            runs are byte-identical to before this seam existed.
        sleep: optional callable taking seconds; when set, backoff
            delays are *really* slept (socket mode), not only added to
            the simulated clock.
    """

    def __init__(
        self,
        network: "SimulatedNetwork",
        plan: FaultPlan,
        policy: TransportPolicy | None = None,
        *,
        breaker_policy: BreakerPolicy | None = None,
        metrics=None,
        retryable_errors: tuple = (),
        sleep=None,
    ) -> None:
        self.network = network
        self.plan = plan
        self.policy = policy or TransportPolicy()
        self.breaker_policy = breaker_policy
        self.metrics = metrics
        self.retryable_errors = tuple(retryable_errors)
        self._sleep = sleep
        self.stats = TransportStats()
        self._sequences: dict[tuple[int, int, str], _LinkSequence] = {}
        self._breakers: dict[int, _LinkBreaker] = {}

    def _sequence(self, sender: int, receiver: int, kind: str) -> int:
        key = (sender, receiver, kind)
        if key not in self._sequences:
            self._sequences[key] = _LinkSequence()
        return self._sequences[key].take()

    def _breaker_for(self, site_end: int) -> "_LinkBreaker | None":
        if self.breaker_policy is None:
            return None
        if site_end not in self._breakers:
            self._breakers[site_end] = _LinkBreaker(self.breaker_policy)
        return self._breakers[site_end]

    def breaker_state(self, site_end: int) -> str:
        """Current breaker state of one link (``"closed"`` without one)."""
        breaker = self._breakers.get(site_end)
        return breaker.state if breaker is not None else "closed"

    @staticmethod
    def _flip_bytes(payload: bytes, rng: np.random.Generator) -> bytes:
        """Deterministically corrupt ``payload`` (at least one byte changes)."""
        data = bytearray(payload)
        n_flips = int(rng.integers(1, 9))
        positions = rng.integers(0, len(data), size=n_flips)
        masks = rng.integers(1, 256, size=n_flips)
        for pos, mask in zip(positions, masks):
            data[int(pos)] ^= int(mask)
        if bytes(data) == payload:  # two flips on one byte can cancel out
            data[0] ^= 0xFF
        return bytes(data)

    def deliver(
        self,
        sender: int,
        receiver: int,
        kind: str,
        payload: bytes,
        *,
        start_s: float = 0.0,
        receiver_down: bool = False,
    ) -> DeliveryOutcome:
        """Try to move one message, retrying through injected faults.

        Args:
            sender: site id, or a negative server id.
            receiver: site id, or a negative server id.
            kind: message tag (drives the per-kind byte accounting).
            payload: serialized content.
            start_s: simulated time at which the first attempt starts.
            receiver_down: the receiver has already crashed but the
                sender does not know.  Every attempt still reaches the
                wire (and is charged bytes and a timeout, like an
                in-flight drop), the full retry budget burns, and the
                message can never be delivered.  This is how a broadcast
                to a crash-after-send site is accounted: the server is
                not omniscient, so the bytes still hit the network.

        Returns:
            A :class:`DeliveryOutcome`; every attempt was recorded on the
            underlying network either way.
        """
        # The client end identifies the link (the other end is a server).
        site_end = sender if receiver < 0 else receiver
        breaker = self._breaker_for(site_end)
        if breaker is not None and not breaker.allow(start_s):
            # Open breaker: fail fast, no wire traffic, no RNG draws (the
            # per-message streams are keyed, so skipping one perturbs
            # nothing else).  The sequence number is not consumed either.
            self.stats.n_messages += 1
            self.stats.n_failed += 1
            self.stats.n_fast_failed += 1
            if self.metrics is not None:
                self.metrics.inc("transport.messages")
                self.metrics.inc("transport.failed")
                self.metrics.inc("breaker.fast_fails")
            return DeliveryOutcome(
                delivered=False,
                attempts=0,
                sim_seconds=0.0,
                arrival_s=start_s,
                fast_failed=True,
            )
        faults = self.plan.link_faults_for(site_end)
        seq = self._sequence(sender, receiver, kind)
        policy = self.policy

        elapsed = 0.0
        n_dropped = 0
        n_truncated = 0
        n_corrupted = 0
        n_duplicates = 0
        bytes_sent = 0
        delivered = False
        checksum_ok = True
        payload_out: bytes | None = None
        attempts = 0
        for attempt in range(1, policy.max_attempts + 1):
            attempts = attempt
            rng = self.plan.rng_for("link", site_end, kind, seq, attempt)
            # Fixed draw order keeps decisions independent of which fault
            # rates are enabled.
            u_drop, u_trunc, u_dup, u_jitter, u_reorder, u_backoff = rng.random(6)
            jitter = faults.jitter_s * u_jitter

            if receiver_down:
                # Dead receiver: the attempt is sent and charged like any
                # other, no ack ever comes back, the sender burns its
                # timeout.  (The RNG was still drawn above so the link's
                # other messages keep their streams.)
                self.network.send(sender, receiver, kind, payload)
                bytes_sent += len(payload)
                n_dropped += 1
                elapsed += policy.timeout_s
            elif u_drop < faults.drop_prob:
                # Lost in flight: the bytes left the sender, the receiver
                # saw nothing, the sender burns its timeout.
                self.network.send(sender, receiver, kind, payload)
                bytes_sent += len(payload)
                n_dropped += 1
                elapsed += policy.timeout_s
            elif u_trunc < faults.truncate_prob:
                # Short read: fraction of the payload arrives, receiver
                # detects the corruption after the (partial) transfer.
                keep = max(1, int(len(payload) * (0.1 + 0.8 * rng.random())))
                message = self.network.send(sender, receiver, kind, payload[:keep])
                bytes_sent += message.n_bytes
                n_truncated += 1
                elapsed += message.sim_seconds + jitter
            else:
                try:
                    message = self.network.send(sender, receiver, kind, payload)
                except self.retryable_errors:
                    # A real transport failure (socket reset, truncated
                    # response, injected fault): charge it like an
                    # in-flight drop and let the retry loop run.
                    bytes_sent += len(payload)
                    n_dropped += 1
                    elapsed += policy.timeout_s
                    if attempt < policy.max_attempts:
                        backoff = policy.backoff_seconds(attempt, u_backoff)
                        elapsed += backoff
                        if self._sleep is not None:
                            self._sleep(backoff)
                    continue
                bytes_sent += message.n_bytes
                elapsed += message.sim_seconds + jitter
                if u_reorder < faults.reorder_prob:
                    # Slow route: arrives late enough to land behind
                    # messages sent after it.
                    elapsed += faults.reorder_delay_s
                if u_dup < faults.duplicate_prob:
                    duplicate = self.network.send(sender, receiver, kind, payload)
                    bytes_sent += duplicate.n_bytes
                    n_duplicates += 1
                # Corruption draw: branch-local and *after* every decision
                # draw of this attempt, so enabling corrupt_prob cannot
                # shift any other fault's stream (the attempt's RNG is
                # keyed to this message alone and nothing draws after it).
                u_corrupt = rng.random()
                payload_out = payload
                if payload and u_corrupt < faults.corrupt_prob:
                    # Flipped in flight: the transfer *looks* successful;
                    # only the receiver's CRC check catches it.
                    payload_out = self._flip_bytes(payload, rng)
                    n_corrupted += 1
                checksum_ok = crc_matches(payload_out, message.payload_crc)
                delivered = True
                break

            if attempt < policy.max_attempts:
                elapsed += policy.backoff_seconds(attempt, u_backoff)

        if breaker is not None:
            # A delivered-but-corrupt message still counts as a success for
            # link *health*: the link moved bytes end to end.
            breaker.record(delivered, start_s + elapsed)
            self.stats.n_breaker_state_changes = sum(
                b.state_changes for b in self._breakers.values()
            )
        self.stats.n_messages += 1
        self.stats.n_attempts += attempts
        self.stats.n_retries += attempts - 1
        self.stats.n_dropped += n_dropped
        self.stats.n_truncated += n_truncated
        self.stats.n_duplicates += n_duplicates
        self.stats.n_corrupted += n_corrupted
        if delivered:
            self.stats.n_delivered += 1
        else:
            self.stats.n_failed += 1
        metrics = self.metrics
        if metrics is not None:
            metrics.inc("transport.messages")
            metrics.inc("transport.attempts", attempts)
            metrics.inc("transport.retries", attempts - 1)
            if n_dropped:
                metrics.inc("transport.drops", n_dropped)
            if n_truncated:
                metrics.inc("transport.truncated", n_truncated)
            if n_duplicates:
                metrics.inc("transport.duplicates", n_duplicates)
            if n_corrupted:
                metrics.inc("transport.corrupted", n_corrupted)
            if breaker is not None:
                metrics.set(
                    "breaker.state_changes",
                    self.stats.n_breaker_state_changes,
                )
            metrics.inc(
                "transport.delivered" if delivered else "transport.failed"
            )
            metrics.inc(f"transport.bytes[{kind}]", bytes_sent)
            metrics.observe("transport.sim_seconds", elapsed)
        return DeliveryOutcome(
            delivered=delivered,
            attempts=attempts,
            sim_seconds=elapsed,
            arrival_s=start_s + elapsed,
            n_dropped=n_dropped,
            n_truncated=n_truncated,
            n_duplicates=n_duplicates,
            bytes_sent=bytes_sent,
            payload=payload_out if delivered else None,
            checksum_ok=checksum_ok,
            n_corrupted=n_corrupted,
        )
