"""Fault injection for the distributed DBDC protocol.

The paper's federation is loosely coupled by design; this package makes
that testable.  :class:`FaultPlan` describes unreliable links (drop,
duplicate, reorder, jitter, truncation) and site failures (crash before
the local phase, crash after the upload, stragglers) as pure, seeded
data; :class:`ResilientTransport` moves messages through those faults
with timeouts, capped exponential backoff and retry budgets; and the
degraded-mode path of :class:`~repro.distributed.runner.DistributedRunner`
plus the deadline/quorum policy of
:class:`~repro.distributed.server.CentralServer` turn whatever survives
into a (possibly degraded) global clustering.

See ``docs/fault_model.md`` for the fault taxonomy and the degraded-mode
label guarantees, and ``repro.experiments.chaos`` for the quality-vs-
failure-rate sweep built on top.
"""

from repro.faults.integrity import crc_matches, payload_crc32
from repro.faults.plan import FaultPlan, LinkFaults, SiteBehavior, SiteFaults
from repro.faults.transport import (
    BreakerPolicy,
    DeliveryOutcome,
    ResilientTransport,
    TransportPolicy,
    TransportStats,
)

__all__ = [
    "FaultPlan",
    "LinkFaults",
    "SiteFaults",
    "SiteBehavior",
    "BreakerPolicy",
    "DeliveryOutcome",
    "ResilientTransport",
    "TransportPolicy",
    "TransportStats",
    "crc_matches",
    "payload_crc32",
]
