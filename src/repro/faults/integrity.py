"""Payload-integrity helpers shared by every transport.

Exactly one CRC-32 implementation guards DBDC payloads, whichever path
they travel: :class:`~repro.distributed.network.SimulatedNetwork` stamps
:func:`payload_crc32` on every :class:`~repro.distributed.network.Message`,
:class:`~repro.faults.transport.ResilientTransport` verifies delivered
bytes with :func:`crc_matches`, and the socket wire protocol
(:mod:`repro.service.wire`) carries the same checksum in its frame
header.  Keeping the stamp/verify pair in one leaf module means the
simulated and socket paths cannot drift: a payload admitted under one
transport checks out under the other, bit for bit.

This module is a leaf — stdlib only — so any layer may import it.
"""

from __future__ import annotations

import zlib

__all__ = ["payload_crc32", "crc_matches"]


def payload_crc32(payload: bytes) -> int:
    """The CRC-32 a sender stamps on ``payload`` (unsigned 32-bit)."""
    return zlib.crc32(payload) & 0xFFFFFFFF


def crc_matches(payload: bytes, expected_crc: int) -> bool:
    """Whether received bytes match the checksum the sender stamped."""
    return payload_crc32(payload) == (expected_crc & 0xFFFFFFFF)
