"""A deterministic, seed-driven fault-injection plan.

The paper treats the federation as loosely coupled — "the sites can be
seen as independent" and the server simply clusters whatever local models
it receives.  A :class:`FaultPlan` makes that robustness claim testable:
it describes *which* faults a run should experience (lossy links, site
crashes, stragglers) as pure data, and every random decision is derived
from the plan's seed plus the *identity* of the event (site id, message
kind, attempt number).  Two runs with the same plan therefore inject the
exact same faults — retry counts included — which is what lets the chaos
experiments and the determinism property tests pin their outputs.

The plan only *describes* faults; :mod:`repro.faults.transport` and the
degraded-mode path of :class:`~repro.distributed.runner.DistributedRunner`
act on it.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

__all__ = ["LinkFaults", "SiteFaults", "SiteBehavior", "FaultPlan"]


def _check_prob(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")


@dataclass(frozen=True)
class LinkFaults:
    """Per-attempt failure modes of one client↔server link.

    Attributes:
        drop_prob: probability that an attempt is lost in flight (the
            sender learns about it only through its timeout).
        duplicate_prob: probability that a delivered message arrives twice
            (the duplicate's bytes are accounted, the payload is ignored).
        reorder_prob: probability that a delivered message takes a slow
            route and arrives ``reorder_delay_s`` later — enough to arrive
            after messages sent afterwards (out-of-order delivery).
        reorder_delay_s: the extra delay a reordered message suffers.
        jitter_s: uniform latency jitter added to every delivered attempt.
        truncate_prob: probability that the payload arrives truncated; the
            receiver detects the short read and the attempt counts as
            failed.
        corrupt_prob: probability that a *delivered* payload arrives with
            flipped bytes.  Unlike truncation the transfer looks
            successful — only the receiver's checksum
            (:class:`~repro.distributed.network.Message` stamps a CRC-32)
            reveals the damage, and only admission-time validation keeps
            the poisoned model out of the global DBSCAN.
    """

    drop_prob: float = 0.0
    duplicate_prob: float = 0.0
    reorder_prob: float = 0.0
    reorder_delay_s: float = 0.5
    jitter_s: float = 0.0
    truncate_prob: float = 0.0
    corrupt_prob: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "drop_prob",
            "duplicate_prob",
            "reorder_prob",
            "truncate_prob",
            "corrupt_prob",
        ):
            _check_prob(name, getattr(self, name))
        if self.jitter_s < 0:
            raise ValueError(f"jitter_s must be >= 0, got {self.jitter_s}")
        if self.reorder_delay_s < 0:
            raise ValueError(
                f"reorder_delay_s must be >= 0, got {self.reorder_delay_s}"
            )

    @property
    def active(self) -> bool:
        """Whether any link fault can actually fire."""
        return (
            self.drop_prob > 0
            or self.duplicate_prob > 0
            or self.reorder_prob > 0
            or self.jitter_s > 0
            or self.truncate_prob > 0
            or self.corrupt_prob > 0
        )


@dataclass(frozen=True)
class SiteFaults:
    """Per-round failure modes of one client site.

    Attributes:
        crash_before_local_prob: probability the site dies before its local
            clustering even starts — it contributes nothing to the round
            and its objects end up unlabeled (noise).
        crash_after_send_prob: probability the site dies right after
            uploading its local model — the server still merges it, but
            the site cannot receive the broadcast and keeps local labels.
        straggler_prob: probability the site is slowed down this round.
        straggler_factor: multiplier on the straggler's simulated local
            compute time (≥ 1).
    """

    crash_before_local_prob: float = 0.0
    crash_after_send_prob: float = 0.0
    straggler_prob: float = 0.0
    straggler_factor: float = 4.0

    def __post_init__(self) -> None:
        for name in (
            "crash_before_local_prob",
            "crash_after_send_prob",
            "straggler_prob",
        ):
            _check_prob(name, getattr(self, name))
        if self.straggler_factor < 1.0:
            raise ValueError(
                f"straggler_factor must be >= 1, got {self.straggler_factor}"
            )

    @property
    def active(self) -> bool:
        """Whether any site fault can actually fire."""
        return (
            self.crash_before_local_prob > 0
            or self.crash_after_send_prob > 0
            or self.straggler_prob > 0
        )


@dataclass(frozen=True)
class SiteBehavior:
    """The resolved (deterministic) behavior of one site for one round.

    Attributes:
        site_id: the site.
        crashes_before_local: dies before computing anything.
        crashes_after_send: dies after uploading its local model.
        slowdown: multiplier on the site's simulated local compute time.
    """

    site_id: int
    crashes_before_local: bool = False
    crashes_after_send: bool = False
    slowdown: float = 1.0

    @property
    def alive_for_broadcast(self) -> bool:
        """Whether the site can still receive the global model."""
        return not (self.crashes_before_local or self.crashes_after_send)


@dataclass(frozen=True)
class FaultPlan:
    """Everything that can go wrong in one distributed round, as data.

    All randomness is derived from ``seed`` and the identity of the event
    being decided, never from shared mutable RNG state — so the injected
    faults do not depend on execution order (parallel local phases see the
    same faults as sequential ones) and identical plans produce identical
    runs.

    Attributes:
        seed: master seed for every fault decision.
        link: default link fault rates (all client↔server links).
        site: default site fault rates (all sites).
        link_overrides: per-site link fault overrides (keyed by the client
            end of the link).
        site_overrides: per-site fault overrides.
    """

    seed: int = 0
    link: LinkFaults = field(default_factory=LinkFaults)
    site: SiteFaults = field(default_factory=SiteFaults)
    link_overrides: dict[int, LinkFaults] = field(default_factory=dict)
    site_overrides: dict[int, SiteFaults] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def none(cls, seed: int = 0) -> "FaultPlan":
        """A plan that injects nothing (the runner takes the exact
        fault-free code path for it)."""
        return cls(seed=seed)

    @classmethod
    def site_failures(cls, prob: float, *, seed: int = 0) -> "FaultPlan":
        """Every site independently crashes before its local phase with
        probability ``prob`` — the chaos sweep's main axis."""
        return cls(seed=seed, site=SiteFaults(crash_before_local_prob=prob))

    @classmethod
    def lossy_links(cls, drop_prob: float, *, seed: int = 0) -> "FaultPlan":
        """Every message attempt is dropped with probability
        ``drop_prob`` (retries may still get it through)."""
        return cls(seed=seed, link=LinkFaults(drop_prob=drop_prob))

    @classmethod
    def corrupted_payloads(cls, corrupt_prob: float, *, seed: int = 0) -> "FaultPlan":
        """Every delivered payload arrives bit-flipped with probability
        ``corrupt_prob`` — exercises the checksum/quarantine path."""
        return cls(seed=seed, link=LinkFaults(corrupt_prob=corrupt_prob))

    @classmethod
    def chaos(cls, intensity: float, *, seed: int = 0) -> "FaultPlan":
        """A bit of everything, scaled by ``intensity`` in ``[0, 1]``:
        crashes, drops, duplicates, jitter, corruption, stragglers."""
        _check_prob("intensity", intensity)
        return cls(
            seed=seed,
            link=LinkFaults(
                drop_prob=0.5 * intensity,
                duplicate_prob=0.2 * intensity,
                reorder_prob=0.2 * intensity,
                jitter_s=0.05 * intensity,
                truncate_prob=0.1 * intensity,
                corrupt_prob=0.1 * intensity,
            ),
            site=SiteFaults(
                crash_before_local_prob=0.5 * intensity,
                crash_after_send_prob=0.25 * intensity,
                straggler_prob=0.5 * intensity,
            ),
        )

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def is_active(self) -> bool:
        """Whether this plan can inject any fault at all."""
        return (
            self.link.active
            or self.site.active
            or any(f.active for f in self.link_overrides.values())
            or any(f.active for f in self.site_overrides.values())
        )

    def rng_for(self, *key: int | str) -> np.random.Generator:
        """A generator whose stream depends only on ``seed`` and ``key``.

        String key parts are hashed with CRC-32 (stable across processes,
        unlike ``hash``), so the stream identity survives process
        boundaries and is independent of call order.
        """
        parts = [self.seed & 0xFFFFFFFF]
        for part in key:
            if isinstance(part, str):
                parts.append(zlib.crc32(part.encode("utf-8")))
            else:
                parts.append(int(part) & 0xFFFFFFFF)
        return np.random.default_rng(np.random.SeedSequence(parts))

    def link_faults_for(self, site_id: int) -> LinkFaults:
        """The link fault rates of ``site_id``'s link to the server."""
        return self.link_overrides.get(site_id, self.link)

    def site_faults_for(self, site_id: int) -> SiteFaults:
        """The site fault rates of ``site_id``."""
        return self.site_overrides.get(site_id, self.site)

    def resolve_site(self, site_id: int) -> SiteBehavior:
        """Decide, deterministically, what happens to ``site_id``.

        Crash-before-local wins over crash-after-send (a site cannot do
        both); stragglers compose with either a clean round or a
        crash-after-send.
        """
        faults = self.site_faults_for(site_id)
        rng = self.rng_for("site", site_id)
        # Three independent draws, always consumed in the same order so a
        # change to one probability does not shift the others' decisions.
        u_before, u_after, u_straggle = rng.random(3)
        crashes_before = u_before < faults.crash_before_local_prob
        crashes_after = (not crashes_before) and u_after < faults.crash_after_send_prob
        slowdown = (
            faults.straggler_factor
            if u_straggle < faults.straggler_prob
            else 1.0
        )
        return SiteBehavior(
            site_id=site_id,
            crashes_before_local=crashes_before,
            crashes_after_send=crashes_after,
            slowdown=slowdown,
        )
