"""Command-line interface: regenerate any of the paper's tables and figures.

Usage::

    python -m repro.cli fig6            # data set statistics + sketches
    python -m repro.cli fig7a fig7b     # runtime vs cardinality
    python -m repro.cli fig8 --cardinality 203000
    python -m repro.cli fig9 fig10 fig11
    python -m repro.cli ablations
    python -m repro.cli all             # everything (sized for a laptop)
    python -m repro.cli run --dataset A --sites 4 --scheme rep_kmeans
    python -m repro.cli bench           # hot-path perf -> BENCH_hotpaths.json
    python -m repro chaos               # fault sweep  -> BENCH_chaos.json
    python -m repro trace               # traced run   -> TRACE_run.json
    python -m repro trace --smoke       # CI gate: schema + reconciliation
    python -m repro runs list           # the run registry (.runs/)
    python -m repro runs regress --baseline baselines/run_smoke.json
    python -m repro serve               # live socket service (docs/service.md)
    python -m repro serve-worker --port 7171 --site-id 0
    python -m repro serve-bench         # sustained-load bench -> BENCH_serve.json

Every command (except ``runs`` itself and ``trace --smoke``) appends a
schema-validated RunRecord to the registry (``.runs/``, gitignored) so
perf and quality trajectories survive; ``--no-registry`` opts out.  The
figure commands print the same rows the paper reports;
``EXPERIMENTS.md`` records a captured run side by side with the paper's
numbers.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    run_compression_tradeoff,
    run_dimension_ablation,
    run_fig6,
    run_fig7a,
    run_fig7b,
    run_fig8,
    run_fig9,
    run_fig10,
    run_fig11,
    run_index_ablation,
    run_metric_ablation,
    run_noise_ablation,
    run_partition_ablation,
    run_site_failure_ablation,
    run_transmission_ablation,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="dbdc",
        description="DBDC (EDBT 2004) reproduction — experiment harness",
    )
    parser.add_argument(
        "commands",
        nargs="+",
        choices=[
            "fig6",
            "fig7a",
            "fig7b",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "ablations",
            "baselines",
            "figures",
            "all",
            "run",
            "bench",
            "chaos",
            "trace",
        ],
        help="experiments to regenerate",
    )
    parser.add_argument(
        "--cardinality",
        type=int,
        default=None,
        help="override the data set cardinality (fig7/8/9/10, run)",
    )
    parser.add_argument(
        "--sites", type=int, default=4, help="number of client sites (run)"
    )
    parser.add_argument(
        "--dataset", default="A", help="data set name for 'run' (A/B/C)"
    )
    parser.add_argument(
        "--scheme",
        default="rep_scor",
        choices=["rep_scor", "rep_kmeans"],
        help="local model scheme for 'run'",
    )
    parser.add_argument("--seed", type=int, default=42, help="random seed")
    parser.add_argument(
        "--no-sketch", action="store_true", help="skip ASCII sketches in fig6"
    )
    parser.add_argument(
        "--out", default="figures", help="output directory for 'figures'"
    )
    parser.add_argument(
        "--parallelism",
        type=int,
        default=4,
        help="parallel local-phase width for 'bench'",
    )
    parser.add_argument(
        "--repeats", type=int, default=1, help="best-of repeats for 'bench'"
    )
    parser.add_argument(
        "--bench-out",
        default="BENCH_hotpaths.json",
        help="output JSON path for 'bench'",
    )
    parser.add_argument(
        "--bench-cardinality",
        default=None,
        help="comma-separated cardinality sweep for 'bench' (first entry "
        "runs the classic sections, every entry gets a memory-budgeted "
        "scale pipeline); overrides --cardinality",
    )
    parser.add_argument(
        "--strict-git",
        action="store_true",
        help="make 'bench' refuse to run on a dirty git tree",
    )
    parser.add_argument(
        "--failure-probs",
        default="0,0.125,0.25,0.375,0.5",
        help="comma-separated failure probabilities for 'chaos'",
    )
    parser.add_argument(
        "--chaos-mode",
        default="sites",
        choices=["sites", "links", "chaos"],
        help="what fails in the 'chaos' sweep",
    )
    parser.add_argument(
        "--trials",
        type=int,
        default=3,
        help="fault seeds per probability for 'chaos'",
    )
    parser.add_argument(
        "--chaos-out",
        default="BENCH_chaos.json",
        help="output JSON path for 'chaos'",
    )
    parser.add_argument(
        "--recovery-rounds",
        type=int,
        default=0,
        help="'chaos': recovery rounds per run (0 = abandon failed sites)",
    )
    parser.add_argument(
        "--corrupt-rate",
        type=float,
        default=0.0,
        help="'chaos': payload corruption probability layered on the mode",
    )
    parser.add_argument(
        "--transport",
        default="simulated",
        choices=["simulated", "socket"],
        help="'chaos': run the sweep over the simulated network or "
        "against a live socket service with real fault injection",
    )
    parser.add_argument(
        "--probe-messages",
        type=int,
        default=2,
        help="'chaos --transport socket': health probes per site through "
        "the same resilient link (gives circuit breakers traffic)",
    )
    parser.add_argument(
        "--server-crashes",
        type=int,
        default=0,
        help="'chaos --transport socket': hard-kill and restart the "
        "journaled service this many times per trial between site "
        "uploads (exercises write-ahead recovery)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="'trace': tiny run + schema/reconciliation validation (CI gate)",
    )
    parser.add_argument(
        "--fault-intensity",
        type=float,
        default=0.0,
        help="'trace': run the degraded protocol under chaos(intensity)",
    )
    parser.add_argument(
        "--trace-out",
        default="TRACE_run.json",
        help="output JSON path for 'trace'",
    )
    parser.add_argument(
        "--chrome-out",
        default=None,
        help="'trace': also write Chrome trace_event JSON here",
    )
    parser.add_argument(
        "--critical-path",
        default=None,
        metavar="TRACE_JSON",
        help="'trace': read a merged session trace document (from "
        "'serve-trace') and print the per-round critical-path report "
        "instead of running anything",
    )
    parser.add_argument(
        "--registry",
        default=".runs",
        help="run registry root (RunRecords + artifacts)",
    )
    parser.add_argument(
        "--no-registry",
        action="store_true",
        help="do not append a RunRecord to the registry",
    )
    return parser


def _run_single(args: argparse.Namespace) -> dict:
    """The 'run' command: one DBDC execution with a quality report.

    Returns:
        The run's flat RunRecord metrics (timings, quality, bytes).
    """
    from repro.data.datasets import load_dataset
    from repro.experiments.common import central_reference, dataset_trial

    data = load_dataset(args.dataset, cardinality=args.cardinality)
    central, central_seconds = central_reference(
        data.points, data.eps_local, data.min_pts
    )
    trial = dataset_trial(
        data,
        n_sites=args.sites,
        scheme=args.scheme,
        seed=args.seed,
        central=central,
        central_seconds=central_seconds,
    )
    result = trial.run.result
    print(f"data set {data.name}: {data.n} objects on {args.sites} sites")
    print(
        f"central DBSCAN: {central.n_clusters} clusters, "
        f"{central.n_noise} noise, {central_seconds:.2f}s"
    )
    print(
        f"DBDC({args.scheme}): {result.n_global_clusters} global clusters, "
        f"{result.n_representatives} representatives "
        f"({100 * result.representative_fraction:.1f}% of the data), "
        f"Eps_global={result.eps_global_used:.2f}"
    )
    print(
        f"runtime: max local {result.max_local_seconds:.2f}s + "
        f"global {result.global_seconds:.2f}s = {result.overall_seconds:.2f}s "
        f"(central: {central_seconds:.2f}s)"
    )
    print(
        f"quality: P^I = {trial.quality.q_p1_percent:.1f}%  "
        f"P^II = {trial.quality.q_p2_percent:.1f}%"
    )
    print(
        f"transmission: {result.bytes_up} bytes up / "
        f"{result.bytes_down} bytes down per site"
    )
    return {
        "quality.q_p1_percent": trial.quality.q_p1_percent,
        "quality.q_p2_percent": trial.quality.q_p2_percent,
        "model.global_clusters_count": result.n_global_clusters,
        "model.representatives_count": result.n_representatives,
        "model.representative_fraction": result.representative_fraction,
        "local.max_wall_seconds": result.max_local_seconds,
        "global.wall_seconds": result.global_seconds,
        "overall.wall_seconds": result.overall_seconds,
        "central.wall_seconds": central_seconds,
        "net.bytes_up_per_site": result.bytes_up,
        "net.bytes_down_per_site": result.bytes_down,
    }


def _record_command(
    args: argparse.Namespace,
    command: str,
    *,
    metrics: dict | None = None,
    wall_seconds: float | None = None,
) -> None:
    """Append one RunRecord for a CLI command (best effort).

    Recording is observability, so it must never break the run: any
    failure prints a warning and the command still succeeds.
    """
    if args.no_registry:
        return
    from repro.obs.registry import RunRegistry

    metrics = dict(metrics or {})
    if wall_seconds is not None:
        metrics.setdefault("command.wall_seconds", wall_seconds)
    try:
        RunRegistry(args.registry).record(
            command,
            config={
                "dataset": args.dataset,
                "cardinality": args.cardinality,
                "n_sites": args.sites,
                "scheme": args.scheme,
                "seed": args.seed,
            },
            metrics=metrics,
        )
    except Exception as error:  # never fail the run over bookkeeping
        print(f"warning: could not record run: {error}", file=sys.stderr)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point.

    Args:
        argv: argument list (defaults to ``sys.argv[1:]``).

    Returns:
        Process exit code.
    """
    if argv is None:
        argv = sys.argv[1:]
    # The registry CLI is its own subcommand family with its own parser.
    if argv and argv[0] == "runs":
        from repro.obs.runs_cli import main as runs_main

        return runs_main(argv[1:])
    # Service mode commands own their parsers too (docs/service.md).
    if argv and argv[0] == "serve":
        from repro.service.cli import serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "serve-worker":
        from repro.service.cli import worker_main

        return worker_main(argv[1:])
    if argv and argv[0] == "serve-bench":
        from repro.service.bench import main as serve_bench_main

        return serve_bench_main(argv[1:])
    if argv and argv[0] == "serve-trace":
        from repro.service.tracing import main as serve_trace_main

        return serve_trace_main(argv[1:])
    if argv and argv[0] == "serve-recovery-smoke":
        from repro.service.recovery_smoke import main as recovery_smoke_main

        return recovery_smoke_main(argv[1:])
    args = build_parser().parse_args(argv)
    commands = list(args.commands)
    if "all" in commands:
        commands = [
            "fig6", "fig7a", "fig7b", "fig8", "fig9", "fig10", "fig11",
            "ablations", "baselines",
        ]

    for command in commands:
        command_start = time.perf_counter()
        if command == "fig6":
            table, sketches = run_fig6(sketch=not args.no_sketch)
            print(table.to_text())
            for name, sketch in sketches.items():
                print(f"\ndata set {name}:")
                print(sketch)
        elif command == "fig7a":
            print(run_fig7a(seed=args.seed).to_text())
        elif command == "fig7b":
            print(run_fig7b(seed=args.seed).to_text())
        elif command == "fig8":
            kwargs = {"seed": args.seed}
            if args.cardinality:
                kwargs["cardinality"] = args.cardinality
            print(run_fig8(**kwargs).to_text())
        elif command == "fig9":
            kwargs = {"seed": args.seed}
            if args.cardinality:
                kwargs["cardinality"] = args.cardinality
            print(run_fig9(**kwargs).to_text())
        elif command == "fig10":
            kwargs = {"seed": args.seed}
            if args.cardinality:
                kwargs["cardinality"] = args.cardinality
            print(run_fig10(**kwargs).to_text())
        elif command == "fig11":
            print(run_fig11(seed=args.seed).to_text())
        elif command == "ablations":
            print(run_index_ablation(seed=args.seed).to_text())
            print()
            print(run_partition_ablation(seed=args.seed).to_text())
            print()
            print(run_transmission_ablation(seed=args.seed).to_text())
            print()
            print(run_metric_ablation(seed=args.seed).to_text())
            print()
            print(run_dimension_ablation(seed=args.seed).to_text())
            print()
            print(run_noise_ablation(seed=args.seed).to_text())
            print()
            print(run_site_failure_ablation(seed=args.seed).to_text())
            print()
            print(run_compression_tradeoff(seed=args.seed).to_text())
        elif command == "figures":
            from repro.viz.figures import render_all_figures

            paths = render_all_figures(args.out, seed=args.seed)
            for path in paths:
                print(f"wrote {path}")
        elif command == "baselines":
            from repro.experiments.baselines import run_baseline_comparison

            print(run_baseline_comparison(seed=args.seed).to_text())
        elif command == "run":
            run_metrics = _run_single(args)
            _record_command(
                args,
                "run",
                metrics=run_metrics,
                wall_seconds=time.perf_counter() - command_start,
            )
        elif command == "bench":
            from repro.perf.hotpaths import (
                format_summary,
                record_bench_run,
                run_hotpath_bench,
                write_report,
            )

            if args.bench_cardinality:
                cardinality = [
                    int(part)
                    for part in str(args.bench_cardinality).split(",")
                    if part.strip()
                ]
            else:
                cardinality = args.cardinality or 20_000
            report = run_hotpath_bench(
                cardinality=cardinality,
                n_sites=args.sites,
                parallelism=args.parallelism,
                repeats=args.repeats,
                seed=args.seed,
                strict_git=args.strict_git,
            )
            print(format_summary(report))
            # Registry first (durable history), then the generated
            # "latest" view with the run id stamped into its meta.
            if not args.no_registry:
                try:
                    record = record_bench_run(report, args.registry)
                    print(f"recorded {record['run_id']} in {args.registry}")
                except Exception as error:
                    print(
                        f"warning: could not record run: {error}",
                        file=sys.stderr,
                    )
            path = write_report(report, args.bench_out)
            print(f"wrote {path}")
        elif command == "chaos" and args.transport == "socket":
            from repro.experiments.chaos import (
                DEFAULT_SOCKET_CHAOS_PATH,
                record_socket_chaos_run,
                run_socket_chaos_sweep,
                socket_chaos_table,
                write_chaos_report,
            )
            from repro.faults.transport import BreakerPolicy

            probs = tuple(
                float(p) for p in args.failure_probs.split(",") if p.strip()
            )
            chaos_report = run_socket_chaos_sweep(
                dataset=args.dataset,
                cardinality=args.cardinality,
                n_sites=args.sites,
                failure_probs=probs,
                trials=args.trials,
                mode=args.chaos_mode,
                scheme=args.scheme,
                seed=args.seed,
                corrupt_rate=args.corrupt_rate,
                probe_messages=args.probe_messages,
                server_crashes=args.server_crashes,
                breaker_policy=BreakerPolicy(
                    failure_threshold=2, cooldown_s=0.5
                ),
            )
            print(socket_chaos_table(chaos_report).to_text())
            if not args.no_registry:
                try:
                    record = record_socket_chaos_run(
                        chaos_report, args.registry
                    )
                    print(f"recorded {record['run_id']} in {args.registry}")
                except Exception as error:
                    print(
                        f"warning: could not record run: {error}",
                        file=sys.stderr,
                    )
            out_path = (
                args.chaos_out
                if args.chaos_out != "BENCH_chaos.json"
                else DEFAULT_SOCKET_CHAOS_PATH
            )
            path = write_chaos_report(chaos_report, out_path)
            print(f"wrote {path}")
        elif command == "chaos":
            from repro.experiments.chaos import (
                chaos_table,
                record_chaos_run,
                run_chaos_sweep,
                write_chaos_report,
            )

            probs = tuple(
                float(p) for p in args.failure_probs.split(",") if p.strip()
            )
            chaos_report = run_chaos_sweep(
                dataset=args.dataset,
                cardinality=args.cardinality,
                n_sites=args.sites,
                failure_probs=probs,
                trials=args.trials,
                mode=args.chaos_mode,
                scheme=args.scheme,
                seed=args.seed,
                recovery_rounds=args.recovery_rounds,
                corrupt_rate=args.corrupt_rate,
            )
            print(chaos_table(chaos_report).to_text())
            if not args.no_registry:
                try:
                    record = record_chaos_run(chaos_report, args.registry)
                    print(f"recorded {record['run_id']} in {args.registry}")
                except Exception as error:
                    print(
                        f"warning: could not record run: {error}",
                        file=sys.stderr,
                    )
            path = write_chaos_report(chaos_report, args.chaos_out)
            print(f"wrote {path}")
        elif command == "trace":
            from repro.perf.tracing import run_trace_command

            status = run_trace_command(args)
            if status:
                return status
        if command in (
            "fig6", "fig7a", "fig7b", "fig8", "fig9", "fig10", "fig11",
            "ablations", "baselines", "figures",
        ):
            _record_command(
                args,
                command,
                wall_seconds=time.perf_counter() - command_start,
            )
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
