"""DBDC: Density Based Distributed Clustering — full reproduction.

Reproduces Januzaj, Kriegel & Pfeifle, *"DBDC: Density Based Distributed
Clustering"*, EDBT 2004, from scratch in pure Python + numpy:

* the DBDC protocol (local DBSCAN → ``REP_Scor``/``REP_kMeans`` local
  models → global DBSCAN over representatives → relabeling),
* every substrate it depends on (DBSCAN, incremental DBSCAN, k-means,
  OPTICS, grid/kd-tree/R-tree spatial indexes, a simulated site/server
  network), and
* the paper's quality framework (``P^I``, ``P^II``, ``Q_DBDC``).

Quick start::

    import numpy as np
    from repro import DBDCConfig, run_dbdc_partitioned, dataset_a
    from repro.distributed import uniform_random

    data = dataset_a()
    assignment = uniform_random(data.n, n_sites=4, seed=0)
    config = DBDCConfig(eps_local=data.eps_local, min_pts_local=data.min_pts)
    run = run_dbdc_partitioned(data.points, assignment, config)
    labels = run.labels_in_original_order()

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
paper-vs-measured record of every table and figure.
"""

from repro.clustering import DBSCAN, IncrementalDBSCAN, dbscan, kmeans, optics
from repro.core import (
    DBDCConfig,
    DBDCResult,
    GlobalModel,
    LocalModel,
    PartitionedDBDCResult,
    Representative,
    build_global_model,
    build_local_model,
    default_eps_global,
    relabel_site,
    run_dbdc,
    run_dbdc_partitioned,
)
from repro.data import dataset_a, dataset_b, dataset_c, load_dataset
from repro.quality import evaluate_quality, q_dbdc_p1, q_dbdc_p2

__version__ = "1.0.0"

__all__ = [
    "DBSCAN",
    "IncrementalDBSCAN",
    "dbscan",
    "kmeans",
    "optics",
    "DBDCConfig",
    "DBDCResult",
    "PartitionedDBDCResult",
    "GlobalModel",
    "LocalModel",
    "Representative",
    "build_global_model",
    "build_local_model",
    "default_eps_global",
    "relabel_site",
    "run_dbdc",
    "run_dbdc_partitioned",
    "dataset_a",
    "dataset_b",
    "dataset_c",
    "load_dataset",
    "evaluate_quality",
    "q_dbdc_p1",
    "q_dbdc_p2",
    "__version__",
]
