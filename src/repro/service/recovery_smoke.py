"""Crash-restart recovery smoke: kill -9 a real server mid-session.

``python -m repro serve-recovery-smoke`` is the CI gate behind the
durability tentpole (ISSUE 10).  It runs the full disaster drill against
a **separate server process** — not an in-process thread — so the kill
is a real ``SIGKILL`` and the restart a real process boot:

1. Compute the in-process streaming oracle for an N-round session.
2. Spawn ``python -m repro serve`` with a write-ahead journal.
3. Run every site's streaming session concurrently; after round
   ``kill_after_round`` commits, one designated worker ``kill -9``'s the
   server process and boots a fresh one on the same port and journal
   while the others hold at a barrier.
4. The workers reconnect-and-resume and finish the session; per-round
   labels and the final global model must be **bit-identical** to the
   oracle — the crash must be invisible in the output.
5. An overload storm against a ``max_inflight_requests=1`` service
   checks that every shed reply is a *typed* ``overloaded`` status with
   a retry hint and that no query is ever lost — retries always land.

The report records ``recovery.*`` metrics shaped for the regress rules:
``*identical*`` / ``*_ok`` gate at zero tolerance and survive
``--ignore-timing``; ``recovery.journal_bytes`` is deterministic for the
pinned workload; wall clocks are timing-tagged.
"""

from __future__ import annotations

import argparse
import os
import socket
import subprocess
import sys
import tempfile
import threading
import time

import numpy as np

from repro.data.datasets import load_dataset
from repro.distributed.site import ClientSite
from repro.distributed.streaming import run_streaming_session
from repro.service import wire
from repro.service.client import ServiceClient
from repro.service.server import ServiceConfig, ServiceHandle
from repro.service.transport import ServiceError
from repro.service.worker import run_site_worker_session

__all__ = [
    "run_recovery_smoke",
    "run_overload_storm",
    "format_recovery_summary",
    "record_recovery_smoke",
    "main",
]


def _free_port() -> int:
    """An OS-assigned free TCP port (released before use; the restart
    needs a *fixed* port, so an ephemeral bind won't do)."""
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _spawn_server(
    port: int, n_sites: int, journal_dir: str, log_file
) -> subprocess.Popen:
    """Start one ``repro serve`` process on ``port`` with the journal."""
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--host",
            "127.0.0.1",
            "--port",
            str(port),
            "--metrics-port",
            "-1",
            "--expected-sites",
            str(n_sites),
            "--journal-dir",
            journal_dir,
            "--idle-timeout",
            "60",
        ],
        stdout=log_file,
        stderr=log_file,
        env=os.environ.copy(),
    )


def _wait_ready(
    port: int, proc: subprocess.Popen, deadline_s: float = 30.0
) -> dict:
    """Poll the health verb until the server process accepts requests."""
    deadline = time.monotonic() + deadline_s
    last_error: Exception | None = None
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(
                f"server process exited with {proc.returncode} before "
                "becoming ready"
            )
        try:
            with ServiceClient("127.0.0.1", port, timeout_s=2.0) as client:
                return client.health()
        except (OSError, wire.WireError, ServiceError) as error:
            last_error = error
            time.sleep(0.1)
    raise RuntimeError(
        f"server on port {port} not ready after {deadline_s}s "
        f"(last error: {last_error})"
    )


def run_recovery_smoke(
    *,
    dataset: str = "A",
    cardinality: int = 480,
    n_sites: int = 2,
    n_rounds: int = 3,
    seed: int = 0,
    kill_after_round: int = 0,
    timeout_s: float = 60.0,
) -> dict:
    """Run the kill -9 / restart / resume drill against a real process.

    Args:
        dataset: data set name (A/B/C).
        cardinality: data set size.
        n_sites: concurrent session workers.
        n_rounds: rounds per session (must exceed ``kill_after_round``).
        seed: data set seed.
        kill_after_round: crash the server right after this round
            commits (a deterministic round boundary — no uploads are in
            flight, so the journal contents are reproducible).
        timeout_s: barrier/join budget for the whole session.

    Returns:
        A JSON-able report with a flat ``metrics`` dict.
    """
    if not 0 <= kill_after_round < n_rounds - 1:
        raise ValueError(
            f"kill_after_round must be in [0, {n_rounds - 1}), got "
            f"{kill_after_round} (the session must continue after the kill)"
        )
    data = load_dataset(dataset, cardinality=cardinality, seed=seed)
    points = data.points
    chunk = points.shape[0] // n_rounds
    batches = []
    for round_index in range(n_rounds):
        block = points[round_index * chunk : (round_index + 1) * chunk]
        batches.append([block[i::n_sites] for i in range(n_sites)])
    oracle = run_streaming_session(
        batches, eps_local=data.eps_local, min_pts_local=data.min_pts
    )

    report: dict = {
        "meta": {
            "dataset": data.name,
            "cardinality": int(points.shape[0]),
            "n_sites": int(n_sites),
            "n_rounds": int(n_rounds),
            "seed": int(seed),
            "kill_after_round": int(kill_after_round),
        }
    }
    smoke_start = time.perf_counter()
    port = _free_port()
    barrier = threading.Barrier(n_sites, timeout=timeout_s)
    restarted = threading.Event()
    restart_wall: dict[str, float] = {}
    results: dict[int, object] = {}
    hook_errors: list[str] = []

    with tempfile.TemporaryDirectory(prefix="dbdc-recovery-") as tmp:
        journal_dir = os.path.join(tmp, "wal")
        os.mkdir(journal_dir)
        log_path = os.path.join(tmp, "server.log")
        log_file = open(log_path, "ab")
        proc_box = {"proc": _spawn_server(port, n_sites, journal_dir, log_file)}
        try:
            _wait_ready(port, proc_box["proc"])

            def kill_and_restart() -> None:
                start = time.perf_counter()
                proc = proc_box["proc"]
                proc.kill()  # SIGKILL: no drain, no journal close
                proc.wait(timeout=15)
                proc_box["proc"] = _spawn_server(
                    port, n_sites, journal_dir, log_file
                )
                _wait_ready(port, proc_box["proc"])
                restart_wall["seconds"] = time.perf_counter() - start

            def make_hook(site_id: int):
                def hook(round_index: int, model) -> None:
                    if round_index != kill_after_round:
                        return
                    try:
                        barrier.wait()
                        if site_id == 0:
                            kill_and_restart()
                            restarted.set()
                        else:
                            restarted.wait(timeout_s)
                    except Exception as error:
                        hook_errors.append(f"site {site_id}: {error}")
                        raise

                return hook

            def work(site_id: int) -> None:
                results[site_id] = run_site_worker_session(
                    "127.0.0.1",
                    port,
                    site_id,
                    [batches[r][site_id] for r in range(n_rounds)],
                    n_sites=n_sites,
                    eps_local=data.eps_local,
                    min_pts_local=data.min_pts,
                    timeout_s=10.0,
                    max_reconnects=60,
                    round_hook=make_hook(site_id),
                )

            threads = [
                threading.Thread(target=work, args=(site_id,))
                for site_id in range(n_sites)
            ]
            session_start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout_s)
            session_seconds = time.perf_counter() - session_start

            health = {}
            try:
                with ServiceClient("127.0.0.1", port, timeout_s=5.0) as client:
                    health = client.health()
                    client.shutdown()
            except (OSError, wire.WireError, ServiceError) as error:
                report["shutdown_error"] = str(error)
            try:
                proc_box["proc"].wait(timeout=15)
            except subprocess.TimeoutExpired:
                proc_box["proc"].kill()
                proc_box["proc"].wait(timeout=15)

            journal_bytes = sum(
                os.path.getsize(os.path.join(journal_dir, name))
                for name in os.listdir(journal_dir)
            )
        finally:
            if proc_box["proc"].poll() is None:
                proc_box["proc"].kill()
                proc_box["proc"].wait(timeout=15)
            log_file.close()
            with open(log_path, "r", encoding="utf-8", errors="replace") as f:
                report["server_log_tail"] = f.read()[-4000:]

    # Score the drill against the oracle.
    labels_identical = 1.0
    verdicts_ok = 1.0
    epochs_ok = 1.0
    model_identical = 0.0
    reconnects = 0
    errors: list[str] = list(hook_errors)
    if sorted(results) != list(range(n_sites)):
        labels_identical = verdicts_ok = epochs_ok = 0.0
        errors.append(
            f"missing worker results: have {sorted(results)}, "
            f"want {list(range(n_sites))}"
        )
    for site_id, result in sorted(results.items()):
        if result.error:
            errors.append(f"site {site_id}: {result.error}")
        if result.verdicts != ["admitted"] * n_rounds:
            verdicts_ok = 0.0
            errors.append(f"site {site_id} verdicts: {result.verdicts}")
        if len(result.labels) != n_rounds:
            labels_identical = 0.0
        else:
            for round_index in range(n_rounds):
                if not np.array_equal(
                    result.labels[round_index],
                    oracle.labels[round_index][site_id],
                ):
                    labels_identical = 0.0
                    errors.append(
                        f"site {site_id} round {round_index} labels diverge"
                    )
        # Two distinct epochs = the worker provably talked to both the
        # original and the recovered server generation.
        if len(result.epochs) < 2:
            epochs_ok = 0.0
            errors.append(f"site {site_id} epochs: {result.epochs}")
        reconnects += result.reconnects
        if site_id == 0 and result.model is not None:
            model_identical = 1.0 if _models_identical(
                result.model, oracle.model
            ) else 0.0

    storm = run_overload_storm(points=points[: min(256, points.shape[0])])
    report["health"] = health
    report["errors"] = errors
    report["metrics"] = {
        "recovery.labels_identical": labels_identical,
        "recovery.model_identical": model_identical,
        "recovery.verdicts_ok": verdicts_ok,
        "recovery.epochs_ok": epochs_ok,
        "recovery.server_kills_count": 1.0,
        "recovery.reconnects_count": float(reconnects),
        "recovery.recovered_models_count": float(
            health.get("recovered_models", 0)
        ),
        "recovery.final_epoch_count": float(health.get("epoch", 0)),
        "recovery.duplicate_uploads_count": float(
            health.get("duplicate_uploads", 0)
        ),
        "recovery.journal_bytes": float(journal_bytes),
        "recovery.session_wall_seconds": session_seconds,
        "recovery.restart_wall_seconds": restart_wall.get("seconds", 0.0),
        "recovery.total_wall_seconds": time.perf_counter() - smoke_start,
        **storm["metrics"],
    }
    report["overload"] = storm["detail"]
    return report


def _models_identical(model, oracle) -> bool:
    """Bit-identity of two global models: every representative's
    identity and point, every global label, the merge radius."""
    if model.eps_global != oracle.eps_global:
        return False
    if not np.array_equal(model.global_labels, oracle.global_labels):
        return False
    if len(model.representatives) != len(oracle.representatives):
        return False
    return all(
        a.site_id == b.site_id
        and a.local_cluster_id == b.local_cluster_id
        and np.array_equal(a.point, b.point)
        for a, b in zip(model.representatives, oracle.representatives)
    )


def run_overload_storm(
    *,
    points: np.ndarray,
    n_threads: int = 6,
    n_queries: int = 8,
) -> dict:
    """Storm a ``max_inflight_requests=1`` service with label queries.

    Every failure must be a *typed* ``overloaded`` reply carrying a
    positive ``retry_after_s`` — raw socket errors, hung connections or
    dropped queries fail the smoke — and honoring the hint must always
    land the query eventually (no livelock, no starvation).

    Returns:
        ``{"metrics": {...}, "detail": {...}}`` with
        ``recovery.overload_typed_ok`` / ``recovery.overload_shed_count``.
    """
    eps = float(np.ptp(points, axis=0).max()) / 4 or 1.0
    site = ClientSite(0, points, eps_local=eps, min_pts_local=4)
    model = site.run_local_clustering()
    lock = threading.Lock()
    counts = {"ok": 0, "shed": 0, "untyped": 0}
    storm_start = time.perf_counter()
    with ServiceHandle.start(
        ServiceConfig(metrics_port=None, max_inflight_requests=1)
    ) as handle:
        with ServiceClient(handle.host, handle.port, site_id=0) as client:
            client.submit(model)
            client.await_global_model(timeout_s=10.0)

        def storm(thread_index: int) -> None:
            try:
                with ServiceClient(handle.host, handle.port) as client:
                    for __ in range(n_queries):
                        budget = 500
                        while True:
                            try:
                                labels = client.query(points)
                                with lock:
                                    if labels.size == points.shape[0]:
                                        counts["ok"] += 1
                                    else:
                                        counts["untyped"] += 1
                                break
                            except ServiceError as error:
                                typed = (
                                    error.status == "overloaded"
                                    and error.retry_after_s is not None
                                    and error.retry_after_s > 0
                                )
                                with lock:
                                    if typed:
                                        counts["shed"] += 1
                                    else:
                                        counts["untyped"] += 1
                                if not typed or budget <= 0:
                                    break
                                budget -= 1
                                time.sleep(error.retry_after_s)
            except (OSError, wire.WireError) as error:
                with lock:
                    counts["untyped"] += 1
                    counts["last_socket_error"] = f"{error}"  # type: ignore[assignment]

        threads = [
            threading.Thread(target=storm, args=(index,))
            for index in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        shed_metric = handle.service.metrics.to_dict()["gauges"].get(
            "service.overloaded_replies", 0.0
        )
    expected = n_threads * n_queries
    typed_ok = 1.0 if (
        counts["untyped"] == 0 and counts["ok"] == expected
    ) else 0.0
    return {
        "metrics": {
            "recovery.overload_typed_ok": typed_ok,
            "recovery.overload_shed_count": float(counts["shed"]),
            "recovery.overload_queries_count": float(counts["ok"]),
            "recovery.overload_wall_seconds": (
                time.perf_counter() - storm_start
            ),
        },
        "detail": {
            **{k: v for k, v in counts.items()},
            "expected_queries": expected,
            "server_overloaded_replies": shed_metric,
        },
    }


def format_recovery_summary(report: dict) -> str:
    """Human-readable smoke summary."""
    meta = report["meta"]
    metrics = report["metrics"]
    lines = [
        f"serve-recovery-smoke: data set {meta['dataset']} "
        f"({meta['cardinality']} objects, {meta['n_sites']} sites x "
        f"{meta['n_rounds']} rounds, kill -9 after round "
        f"{meta['kill_after_round']})",
        f"  per-round labels bit-identical to oracle: "
        f"{'yes' if metrics['recovery.labels_identical'] else 'NO'}",
        f"  final model bit-identical to oracle:      "
        f"{'yes' if metrics['recovery.model_identical'] else 'NO'}",
        f"  all uploads admitted: "
        f"{'yes' if metrics['recovery.verdicts_ok'] else 'NO'}   "
        f"two epochs observed per worker: "
        f"{'yes' if metrics['recovery.epochs_ok'] else 'NO'}",
        f"  recovery: {int(metrics['recovery.recovered_models_count'])} "
        f"models replayed, epoch {int(metrics['recovery.final_epoch_count'])}, "
        f"{int(metrics['recovery.reconnects_count'])} client reconnects, "
        f"{int(metrics['recovery.duplicate_uploads_count'])} duplicate "
        f"uploads deduped",
        f"  journal: {int(metrics['recovery.journal_bytes'])} bytes on disk",
        f"  overload storm: typed sheds only "
        f"{'yes' if metrics['recovery.overload_typed_ok'] else 'NO'} "
        f"({int(metrics['recovery.overload_shed_count'])} sheds, "
        f"{int(metrics['recovery.overload_queries_count'])} queries landed)",
        f"  walls: restart {metrics['recovery.restart_wall_seconds']:.2f}s, "
        f"session {metrics['recovery.session_wall_seconds']:.2f}s, "
        f"total {metrics['recovery.total_wall_seconds']:.2f}s",
    ]
    if report.get("errors"):
        lines.append("  errors:")
        lines.extend(f"    - {error}" for error in report["errors"])
    return "\n".join(lines)


def record_recovery_smoke(report: dict, registry_root: str = ".runs") -> dict:
    """Append the smoke to the registry (``service-recovery`` record)."""
    from repro.obs.registry import RunRegistry

    meta = report["meta"]
    record = RunRegistry(registry_root).record(
        "service-recovery",
        config={
            key: meta[key]
            for key in (
                "dataset",
                "cardinality",
                "n_sites",
                "n_rounds",
                "seed",
                "kill_after_round",
            )
        },
        metrics=report["metrics"],
        artifacts={"SMOKE_recovery.json": report},
    )
    meta["run_id"] = record["run_id"]
    return record


def build_parser() -> argparse.ArgumentParser:
    """Parser of the ``serve-recovery-smoke`` command."""
    parser = argparse.ArgumentParser(
        prog="repro serve-recovery-smoke",
        description="kill -9 a live journaled DBDC server mid-session, "
        "restart it, and require bit-identical output",
    )
    parser.add_argument("--dataset", default="A", help="data set name (A/B/C)")
    parser.add_argument(
        "--cardinality", type=int, default=480, help="data set size"
    )
    parser.add_argument(
        "--sites", type=int, default=2, help="concurrent session workers"
    )
    parser.add_argument(
        "--rounds", type=int, default=3, help="rounds per session"
    )
    parser.add_argument("--seed", type=int, default=0, help="data set seed")
    parser.add_argument(
        "--kill-after-round",
        type=int,
        default=0,
        help="crash the server after this round commits",
    )
    parser.add_argument(
        "--registry", default=".runs", help="run registry root"
    )
    parser.add_argument(
        "--no-registry",
        action="store_true",
        help="do not append a RunRecord to the registry",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """The ``serve-recovery-smoke`` command body."""
    args = build_parser().parse_args(argv)
    report = run_recovery_smoke(
        dataset=args.dataset,
        cardinality=args.cardinality,
        n_sites=args.sites,
        n_rounds=args.rounds,
        seed=args.seed,
        kill_after_round=args.kill_after_round,
    )
    print(format_recovery_summary(report))
    if not args.no_registry:
        try:
            record = record_recovery_smoke(report, args.registry)
            print(f"recorded {record['run_id']} in {args.registry}")
        except Exception as error:
            print(f"warning: could not record run: {error}", file=sys.stderr)
    metrics = report["metrics"]
    failed = not (
        metrics["recovery.labels_identical"]
        and metrics["recovery.model_identical"]
        and metrics["recovery.verdicts_ok"]
        and metrics["recovery.epochs_ok"]
        and metrics["recovery.overload_typed_ok"]
    )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
