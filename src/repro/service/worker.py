"""Site-worker entry point: one DBDC site as a service client.

:func:`run_site_worker` executes the full protocol for one site against
a live :class:`~repro.service.server.DBDCService` — local DBSCAN, model
derivation, upload, await-global, relabel — and returns the site's
global labels plus transfer bookkeeping.  It is the process body behind
``python -m repro serve-worker`` and the thread body the integration
tests and the sustained-load bench fan out.

The upload rides :class:`~repro.faults.transport.ResilientTransport`
over the :class:`~repro.service.transport.SocketTransport` — the exact
retry/backoff/breaker machinery the simulated deployments use, run
unchanged over a real socket (the seam ISSUE 7's tentpole demands).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.models import GlobalModel
from repro.distributed.site import ClientSite
from repro.faults.plan import FaultPlan
from repro.faults.transport import ResilientTransport, TransportPolicy
from repro.obs import NULL_TRACER
from repro.service import wire
from repro.service.client import ServiceClient, upload_trace
from repro.service.transport import ServiceError, SocketTransport

__all__ = [
    "SiteWorkerResult",
    "SiteSessionResult",
    "run_site_worker",
    "run_site_worker_session",
]


@dataclass
class SiteWorkerResult:
    """What one site worker brings home.

    Attributes:
        site_id: the worker's site id.
        verdict: admission verdict of the upload (``"admitted"`` /
            ``"quarantined"`` / ``"deadline_missed"`` / ``"failed"``).
        labels: the site's global labels (noise = -1); local labels
            renumbered nowhere — exactly what ``receive_global_model``
            would have produced in process.
        n_objects: objects the site clustered.
        upload_attempts: transport attempts the upload took.
        bytes_sent: payload bytes the worker put on the wire.
        wall_seconds: end-to-end worker wall time.
        phase_seconds: per-phase wall breakdown (``local_dbscan`` /
            ``upload`` / ``await_global`` / ``relabel``) — populated
            only when the worker ran with an enabled tracer.
        error: the failure detail when ``verdict == "failed"``.
    """

    site_id: int
    verdict: str
    labels: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.intp)
    )
    n_objects: int = 0
    upload_attempts: int = 0
    bytes_sent: int = 0
    wall_seconds: float = 0.0
    phase_seconds: dict = field(default_factory=dict)
    error: str = ""


def run_site_worker(
    host: str,
    port: int,
    site_id: int,
    points: np.ndarray,
    *,
    eps_local: float,
    min_pts_local: int,
    scheme: str = "rep_scor",
    metric: str = "euclidean",
    index_kind: str = "auto",
    relabel_kernel: str = "auto",
    timeout_s: float = 30.0,
    await_global_s: float = 30.0,
    transport_policy: TransportPolicy | None = None,
    fault_plan: FaultPlan | None = None,
    breaker_policy=None,
    tracer=None,
    metrics=None,
) -> SiteWorkerResult:
    """Run one site through the full protocol against a live service.

    Args:
        host: service host.
        port: service port.
        site_id: this site's id.
        points: the site's objects, shape ``(n, d)``.
        eps_local: local DBSCAN ``Eps``.
        min_pts_local: local DBSCAN ``MinPts``.
        scheme: local model scheme.
        metric: distance metric.
        index_kind: neighbor index kind.
        relabel_kernel: coverage kernel for the update step.
        timeout_s: per-operation socket timeout.
        await_global_s: how long to wait for the global model.
        transport_policy: retry/backoff policy of the upload (default:
            the fault layer's defaults).
        fault_plan: socket-level fault plan; when set, the upload runs
            through a :class:`~repro.service.faulting.FaultingSocketTransport`
            so drops/truncation/corruption hit the *real* connection.
        breaker_policy: optional per-link circuit breaker
            (:class:`~repro.faults.transport.BreakerPolicy`).
        tracer: optional :class:`~repro.obs.Tracer` — records the
            worker's phase spans, stamps trace contexts on outgoing
            frames, and ships the span forest to the service at the end.
        metrics: optional registry for the transport's per-frame-kind
            byte counters.

    Returns:
        A :class:`SiteWorkerResult`; never raises for protocol-level
        refusals — the verdict records them.
    """
    tracer = NULL_TRACER if tracer is None else tracer
    start = time.perf_counter()
    site = ClientSite(
        site_id,
        points,
        eps_local=eps_local,
        min_pts_local=min_pts_local,
        scheme=scheme,
        metric=metric,
        index_kind=index_kind,
        relabel_kernel=relabel_kernel,
    )
    result = SiteWorkerResult(
        site_id=site_id, verdict="failed", n_objects=int(points.shape[0])
    )
    socket_transport = SocketTransport(
        host,
        port,
        site_id=site_id,
        timeout_s=timeout_s,
        tracer=tracer,
        metrics=metrics,
    )
    worker_span = tracer.span(
        "site_worker",
        (
            {
                "process": f"site-{site_id}",
                "site": int(site_id),
                "n_objects": int(points.shape[0]),
            }
            if tracer.enabled
            else None
        ),
    )
    if tracer.enabled:
        # Anchor the root at the same read that feeds wall_seconds so
        # the trace and the result reconcile exactly.
        worker_span.span.wall_start = start
    try:
        with socket_transport, worker_span:
            model = site.run_local_clustering()
            local_done = time.perf_counter()
            if tracer.enabled:
                tracer.record(
                    "local_dbscan", wall_start=start, wall_end=local_done
                )
            # The simulated deployments' retry/backoff/breaker layer,
            # pointed at the socket instead of SimulatedNetwork.  When a
            # fault plan is set, the injector sits between the two and
            # sabotages the real connection; the retry loop treats its
            # failures exactly like in-flight drops.
            # Socket failures are always retryable: a connect refused
            # during a server restart window, a connection severed by a
            # crash, a torn frame — all of them ride the retry/backoff
            # seam instead of surfacing raw (the transport closed the
            # connection, so each retry reconnects from scratch).
            network = socket_transport
            retryable: tuple = (OSError, wire.WireError)
            if fault_plan is not None:
                from repro.service.faulting import FaultingSocketTransport

                network = FaultingSocketTransport(socket_transport, fault_plan)
                retryable = FaultingSocketTransport.RETRYABLE
            resilient = ResilientTransport(
                network,
                FaultPlan.none(),
                transport_policy,
                breaker_policy=breaker_policy,
                retryable_errors=retryable,
                sleep=time.sleep,
            )
            payload = wire.encode_local_model(model)
            overload_budget = 50
            while True:
                try:
                    outcome = resilient.deliver(
                        site_id, wire.SERVER_ID, "local_model", payload
                    )
                    break
                except ServiceError as error:
                    if (
                        error.status == "overloaded"
                        and error.retry_after_s is not None
                        and overload_budget > 0
                    ):
                        # Typed backpressure: honor the server's retry
                        # hint instead of treating the shed as a verdict.
                        overload_budget -= 1
                        time.sleep(error.retry_after_s)
                        continue
                    # The admission gate said no: surface its verdict.
                    result.verdict = error.status
                    result.error = error.detail
                    return result
            result.upload_attempts = outcome.attempts
            result.bytes_sent = outcome.bytes_sent
            if not outcome.delivered:
                result.error = "upload not delivered"
                return result
            response = socket_transport.last_response
            if response is not None and response.kind == wire.FrameKind.ACK:
                result.verdict, __ = wire.decode_status(response.payload)
            else:
                result.verdict = "admitted"
            upload_done = time.perf_counter()
            if tracer.enabled:
                tracer.record(
                    "upload",
                    wall_start=local_done,
                    wall_end=upload_done,
                    attrs={
                        "attempts": outcome.attempts,
                        "bytes": outcome.bytes_sent,
                    },
                )
            global_model = _await_global(socket_transport, await_global_s)
            await_done = time.perf_counter()
            if tracer.enabled:
                tracer.record(
                    "await_global", wall_start=upload_done, wall_end=await_done
                )
            site.receive_global_model(global_model)
            result.labels = site.global_labels
            if tracer.enabled:
                tracer.record(
                    "relabel",
                    wall_start=await_done,
                    wall_end=time.perf_counter(),
                )
    except (OSError, wire.WireError, ServiceError) as error:
        result.verdict = "failed"
        result.error = f"{type(error).__name__}: {error}"
    finally:
        result.wall_seconds = time.perf_counter() - start
    if tracer.enabled:
        for root in tracer.roots:
            if root is worker_span.span:
                result.phase_seconds = {
                    child.name: child.wall_seconds for child in root.children
                }
                break
        try:
            with socket_transport:
                upload_trace(
                    socket_transport,
                    tracer,
                    process=f"site-{site_id}",
                    site=int(site_id),
                )
        except (OSError, wire.WireError, ServiceError):
            pass  # tracing is best-effort; never fail the protocol result
    return result


def _await_global(
    transport: SocketTransport, timeout_s: float
) -> GlobalModel:
    response = transport.request(
        wire.FrameKind.AWAIT_GLOBAL, wire.encode_await_global(timeout_s)
    )
    return wire.decode_global_model(response.payload)


@dataclass
class SiteSessionResult:
    """What one streaming-session worker brings home.

    Attributes:
        site_id: the worker's *base* site id (round ``r`` submits under
            effective id ``site_id + r * n_sites``).
        n_rounds: batches the worker processed.
        verdicts: per-round admission verdicts.
        labels: per-round label arrays — ``labels[r]`` are the global
            labels of batch ``r`` under the *final* session model.
        model: the final session :class:`GlobalModel` (``None`` when the
            session failed before round 0 committed).
        bytes_sent: payload bytes the worker put on the wire.
        wall_seconds: end-to-end worker wall time.
        round_wall_seconds: wall time of each completed round, measured
            from the same ``perf_counter`` reads that bound the round's
            trace spans (so trace and result reconcile exactly).
        round_phase_seconds: per-round ``{phase: seconds}`` breakdown
            (``open_round`` / ``local_dbscan`` / ``upload`` /
            ``await_delta`` / ``relabel``); the phases exactly partition
            the round's wall time.
        reconnects: transport reconnects the session survived (server
            restarts, severed connections).
        epochs: server epochs observed, in order of first sighting — a
            second entry means the server crashed and recovered
            mid-session.
        error: the failure detail (empty on success).
    """

    site_id: int
    n_rounds: int = 0
    verdicts: list = field(default_factory=list)
    labels: list = field(default_factory=list)
    model: GlobalModel | None = None
    bytes_sent: int = 0
    wall_seconds: float = 0.0
    round_wall_seconds: list = field(default_factory=list)
    round_phase_seconds: list = field(default_factory=list)
    reconnects: int = 0
    epochs: list = field(default_factory=list)
    error: str = ""


def run_site_worker_session(
    host: str,
    port: int,
    site_id: int,
    batches: list,
    *,
    n_sites: int,
    eps_local: float,
    min_pts_local: int,
    scheme: str = "rep_scor",
    metric: str = "euclidean",
    index_kind: str = "auto",
    relabel_kernel: str = "auto",
    timeout_s: float = 30.0,
    await_global_s: float = 30.0,
    tracer=None,
    metrics=None,
    resume: bool = True,
    max_reconnects: int = 10,
    reconnect_backoff_s: float = 0.05,
    round_hook=None,
) -> SiteSessionResult:
    """Run one site through an N-round streaming session.

    Per round ``r`` the worker opens the round, clusters batch ``r``
    under effective site id ``site_id + r * n_sites`` (which keeps the
    ``(site_id, local_cluster_id)`` inheritance keys collision-free
    across rounds), submits the local model, then blocks on the round's
    MODEL_DELTA — representatives strictly append, so each round only
    ships the new ones.  After every commit all batches seen so far are
    relabeled against the updated model, so ``labels`` reflects the
    final session state.

    The round protocol is race-free across workers: a worker only opens
    round ``r + 1`` after receiving round ``r``'s delta, and round ``r``
    cannot commit before every worker has submitted to it.

    Args:
        host: service host.
        port: service port.
        site_id: this worker's base site id in ``[0, n_sites)``.
        batches: one point array per round, shape ``(n_r, d)`` each.
        n_sites: total workers in the session (the effective-id stride).
        eps_local: local DBSCAN ``Eps``.
        min_pts_local: local DBSCAN ``MinPts``.
        scheme: local model scheme.
        metric: distance metric.
        index_kind: neighbor index kind.
        relabel_kernel: coverage kernel for the update step.
        timeout_s: per-operation socket timeout.
        await_global_s: how long each MODEL_DELTA may block server-side.
        tracer: optional :class:`~repro.obs.Tracer` — records one
            ``round`` span per round (children: the five phases below),
            stamps trace contexts on every frame, and ships the span
            forest to the service after the last round.
        metrics: optional registry for the transport's per-frame-kind
            byte counters.
        resume: survive server crashes/restarts — socket failures close
            the connection and retry the failed verb with capped
            exponential backoff; every verb is idempotent server-side
            (duplicate submits dedupe, re-opened rounds acknowledge,
            committed rounds replay their deltas), so a mid-session
            restart from the journal continues seamlessly.  Typed
            ``overloaded`` replies always sleep the server's
            ``retry_after`` hint and retry, resume or not.
        max_reconnects: reconnect budget per verb when resuming.
        reconnect_backoff_s: first reconnect delay; doubles per attempt,
            capped at 1 second.
        round_hook: optional ``hook(round_index, model)`` called after
            each round's relabel — the seam the recovery tests use to
            crash the server at a deterministic round boundary.

    Returns:
        A :class:`SiteSessionResult`; protocol-level refusals land in
        ``error`` rather than raising.
    """
    tracer = NULL_TRACER if tracer is None else tracer
    start = time.perf_counter()
    result = SiteSessionResult(site_id=site_id, n_rounds=len(batches))
    sites: list[ClientSite] = []
    model: GlobalModel | None = None
    try:
        with ServiceClient(
            host,
            port,
            site_id=site_id,
            timeout_s=timeout_s,
            tracer=tracer,
            metrics=metrics,
        ) as client:

            def call(verb, *args, **kwargs):
                """One protocol verb through the reconnect-and-resume seam.

                ``overloaded`` replies sleep the server's retry hint and
                go again (typed backpressure is not a failure).  Socket
                and framing errors reconnect with capped exponential
                backoff up to ``max_reconnects`` — every verb is
                idempotent server-side, so a retried request against a
                recovered server lands exactly once.
                """
                reconnects = 0
                overload_budget = 200
                while True:
                    try:
                        return verb(*args, **kwargs)
                    except ServiceError as error:
                        if (
                            error.status == "overloaded"
                            and error.retry_after_s is not None
                            and overload_budget > 0
                        ):
                            overload_budget -= 1
                            time.sleep(error.retry_after_s)
                            continue
                        raise
                    except (OSError, wire.WireError):
                        if not resume or reconnects >= max_reconnects:
                            raise
                        client.close()
                        delay = min(
                            reconnect_backoff_s * (2.0 ** reconnects), 1.0
                        )
                        reconnects += 1
                        result.reconnects += 1
                        time.sleep(delay)

            def note_epoch() -> None:
                epoch = client.server_epoch
                if epoch is not None and epoch not in result.epochs:
                    result.epochs.append(epoch)

            # A live session span parents the per-round records and is
            # the trace context outgoing frames carry.
            with tracer.span(
                "session",
                (
                    {
                        "process": f"site-{site_id}",
                        "site": int(site_id),
                        "n_rounds": len(batches),
                    }
                    if tracer.enabled
                    else None
                ),
            ):
                for round_index, batch in enumerate(batches):
                    r0 = time.perf_counter()
                    call(client.open_round, round_index)
                    opened = time.perf_counter()
                    site = ClientSite(
                        site_id + round_index * n_sites,
                        np.asarray(batch, dtype=float),
                        eps_local=eps_local,
                        min_pts_local=min_pts_local,
                        scheme=scheme,
                        metric=metric,
                        index_kind=index_kind,
                        relabel_kernel=relabel_kernel,
                    )
                    local_model = site.run_local_clustering()
                    r1 = time.perf_counter()
                    result.verdicts.append(call(client.submit, local_model))
                    r2 = time.perf_counter()
                    sites.append(site)
                    model = call(
                        client.await_model_delta,
                        round_index,
                        model,
                        timeout_s=await_global_s,
                    )
                    r3 = time.perf_counter()
                    # True streaming: every batch seen so far is
                    # relabeled against the round's committed model.
                    for seen in sites:
                        seen.receive_global_model(model)
                    r4 = time.perf_counter()
                    result.round_wall_seconds.append(r4 - r0)
                    result.round_phase_seconds.append(
                        {
                            "open_round": opened - r0,
                            "local_dbscan": r1 - opened,
                            "upload": r2 - r1,
                            "await_delta": r3 - r2,
                            "relabel": r4 - r3,
                        }
                    )
                    if tracer.enabled:
                        round_span = tracer.record(
                            "round",
                            wall_start=r0,
                            wall_end=r4,
                            attrs={
                                "round": round_index,
                                "site": int(site_id),
                                "process": f"site-{site_id}",
                            },
                        )
                        for name, (lo, hi) in (
                            ("open_round", (r0, opened)),
                            ("local_dbscan", (opened, r1)),
                            ("upload", (r1, r2)),
                            ("await_delta", (r2, r3)),
                            ("relabel", (r3, r4)),
                        ):
                            tracer.record(
                                name,
                                wall_start=lo,
                                wall_end=hi,
                                attrs={"round": round_index},
                                parent=round_span,
                            )
                    note_epoch()
                    if round_hook is not None:
                        round_hook(round_index, model)
            result.bytes_sent = client.transport.bytes_sent
            if tracer.enabled:
                try:
                    client.upload_trace(
                        process=f"site-{site_id}", site=int(site_id)
                    )
                except (OSError, wire.WireError, ServiceError):
                    pass  # tracing is best-effort
    except ServiceError as error:
        result.error = f"{error.status}: {error.detail}"
    except (OSError, wire.WireError) as error:
        result.error = f"{type(error).__name__}: {error}"
    result.labels = [site.global_labels for site in sites]
    result.model = model
    result.wall_seconds = time.perf_counter() - start
    return result


def run_site_worker_simple(
    host: str,
    port: int,
    site_id: int,
    points: np.ndarray,
    *,
    eps_local: float,
    min_pts_local: int,
    **kwargs,
) -> SiteWorkerResult:
    """Like :func:`run_site_worker` but over the plain blocking client —
    no retry layer, for minimal-dependency deployments."""
    start = time.perf_counter()
    site = ClientSite(
        site_id,
        points,
        eps_local=eps_local,
        min_pts_local=min_pts_local,
        **{
            key: value
            for key, value in kwargs.items()
            if key in ("scheme", "metric", "index_kind", "relabel_kernel")
        },
    )
    result = SiteWorkerResult(
        site_id=site_id, verdict="failed", n_objects=int(points.shape[0])
    )
    timeout_s = float(kwargs.get("timeout_s", 30.0))
    await_global_s = float(kwargs.get("await_global_s", 30.0))
    try:
        with ServiceClient(
            host, port, site_id=site_id, timeout_s=timeout_s
        ) as client:
            model = site.run_local_clustering()
            result.verdict = client.submit(model)
            result.bytes_sent = client.transport.bytes_sent
            result.upload_attempts = 1
            site.receive_global_model(
                client.await_global_model(await_global_s)
            )
            result.labels = site.global_labels
    except ServiceError as error:
        result.verdict = error.status
        result.error = error.detail
    except (OSError, wire.WireError) as error:
        result.verdict = "failed"
        result.error = f"{type(error).__name__}: {error}"
    finally:
        result.wall_seconds = time.perf_counter() - start
    return result
