"""Site-worker entry point: one DBDC site as a service client.

:func:`run_site_worker` executes the full protocol for one site against
a live :class:`~repro.service.server.DBDCService` — local DBSCAN, model
derivation, upload, await-global, relabel — and returns the site's
global labels plus transfer bookkeeping.  It is the process body behind
``python -m repro serve-worker`` and the thread body the integration
tests and the sustained-load bench fan out.

The upload rides :class:`~repro.faults.transport.ResilientTransport`
over the :class:`~repro.service.transport.SocketTransport` — the exact
retry/backoff/breaker machinery the simulated deployments use, run
unchanged over a real socket (the seam ISSUE 7's tentpole demands).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.models import GlobalModel
from repro.distributed.site import ClientSite
from repro.faults.plan import FaultPlan
from repro.faults.transport import ResilientTransport, TransportPolicy
from repro.service import wire
from repro.service.client import ServiceClient
from repro.service.transport import ServiceError, SocketTransport

__all__ = ["SiteWorkerResult", "run_site_worker"]


@dataclass
class SiteWorkerResult:
    """What one site worker brings home.

    Attributes:
        site_id: the worker's site id.
        verdict: admission verdict of the upload (``"admitted"`` /
            ``"quarantined"`` / ``"deadline_missed"`` / ``"failed"``).
        labels: the site's global labels (noise = -1); local labels
            renumbered nowhere — exactly what ``receive_global_model``
            would have produced in process.
        n_objects: objects the site clustered.
        upload_attempts: transport attempts the upload took.
        bytes_sent: payload bytes the worker put on the wire.
        wall_seconds: end-to-end worker wall time.
        error: the failure detail when ``verdict == "failed"``.
    """

    site_id: int
    verdict: str
    labels: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.intp)
    )
    n_objects: int = 0
    upload_attempts: int = 0
    bytes_sent: int = 0
    wall_seconds: float = 0.0
    error: str = ""


def run_site_worker(
    host: str,
    port: int,
    site_id: int,
    points: np.ndarray,
    *,
    eps_local: float,
    min_pts_local: int,
    scheme: str = "rep_scor",
    metric: str = "euclidean",
    index_kind: str = "auto",
    relabel_kernel: str = "auto",
    timeout_s: float = 30.0,
    await_global_s: float = 30.0,
    transport_policy: TransportPolicy | None = None,
) -> SiteWorkerResult:
    """Run one site through the full protocol against a live service.

    Args:
        host: service host.
        port: service port.
        site_id: this site's id.
        points: the site's objects, shape ``(n, d)``.
        eps_local: local DBSCAN ``Eps``.
        min_pts_local: local DBSCAN ``MinPts``.
        scheme: local model scheme.
        metric: distance metric.
        index_kind: neighbor index kind.
        relabel_kernel: coverage kernel for the update step.
        timeout_s: per-operation socket timeout.
        await_global_s: how long to wait for the global model.
        transport_policy: retry/backoff policy of the upload (default:
            the fault layer's defaults).

    Returns:
        A :class:`SiteWorkerResult`; never raises for protocol-level
        refusals — the verdict records them.
    """
    start = time.perf_counter()
    site = ClientSite(
        site_id,
        points,
        eps_local=eps_local,
        min_pts_local=min_pts_local,
        scheme=scheme,
        metric=metric,
        index_kind=index_kind,
        relabel_kernel=relabel_kernel,
    )
    result = SiteWorkerResult(
        site_id=site_id, verdict="failed", n_objects=int(points.shape[0])
    )
    socket_transport = SocketTransport(
        host, port, site_id=site_id, timeout_s=timeout_s
    )
    try:
        with socket_transport:
            model = site.run_local_clustering()
            # The simulated deployments' retry/backoff/breaker layer,
            # pointed at the socket instead of SimulatedNetwork.
            resilient = ResilientTransport(
                socket_transport, FaultPlan.none(), transport_policy
            )
            payload = wire.encode_local_model(model)
            try:
                outcome = resilient.deliver(
                    site_id, wire.SERVER_ID, "local_model", payload
                )
            except ServiceError as error:
                # The admission gate said no: surface its verdict.
                result.verdict = error.status
                result.error = error.detail
                return result
            result.upload_attempts = outcome.attempts
            result.bytes_sent = outcome.bytes_sent
            if not outcome.delivered:
                result.error = "upload not delivered"
                return result
            response = socket_transport.last_response
            if response is not None and response.kind == wire.FrameKind.ACK:
                result.verdict, __ = wire.decode_status(response.payload)
            else:
                result.verdict = "admitted"
            global_model = _await_global(socket_transport, await_global_s)
            site.receive_global_model(global_model)
            result.labels = site.global_labels
    except (OSError, wire.WireError, ServiceError) as error:
        result.verdict = "failed"
        result.error = f"{type(error).__name__}: {error}"
    finally:
        result.wall_seconds = time.perf_counter() - start
    return result


def _await_global(
    transport: SocketTransport, timeout_s: float
) -> GlobalModel:
    response = transport.request(
        wire.FrameKind.AWAIT_GLOBAL, wire.encode_await_global(timeout_s)
    )
    return wire.decode_global_model(response.payload)


def run_site_worker_simple(
    host: str,
    port: int,
    site_id: int,
    points: np.ndarray,
    *,
    eps_local: float,
    min_pts_local: int,
    **kwargs,
) -> SiteWorkerResult:
    """Like :func:`run_site_worker` but over the plain blocking client —
    no retry layer, for minimal-dependency deployments."""
    start = time.perf_counter()
    site = ClientSite(
        site_id,
        points,
        eps_local=eps_local,
        min_pts_local=min_pts_local,
        **{
            key: value
            for key, value in kwargs.items()
            if key in ("scheme", "metric", "index_kind", "relabel_kernel")
        },
    )
    result = SiteWorkerResult(
        site_id=site_id, verdict="failed", n_objects=int(points.shape[0])
    )
    timeout_s = float(kwargs.get("timeout_s", 30.0))
    await_global_s = float(kwargs.get("await_global_s", 30.0))
    try:
        with ServiceClient(
            host, port, site_id=site_id, timeout_s=timeout_s
        ) as client:
            model = site.run_local_clustering()
            result.verdict = client.submit(model)
            result.bytes_sent = client.transport.bytes_sent
            result.upload_attempts = 1
            site.receive_global_model(
                client.await_global_model(await_global_s)
            )
            result.labels = site.global_labels
    except ServiceError as error:
        result.verdict = error.status
        result.error = error.detail
    except (OSError, wire.WireError) as error:
        result.verdict = "failed"
        result.error = f"{type(error).__name__}: {error}"
    finally:
        result.wall_seconds = time.perf_counter() - start
    return result
