"""Socket-level fault injection: the FaultPlan DSL on real connections.

:class:`FaultingSocketTransport` sits between
:class:`~repro.faults.transport.ResilientTransport` and a
:class:`~repro.service.transport.SocketTransport` and sabotages *actual*
TCP traffic the way the simulated network sabotages accounting entries:
drops (nothing hits the wire, the attempt errors), truncation (a prefix
of a real frame is written and the connection torn down mid-payload),
corruption (a full frame whose payload bytes were flipped in flight, so
the server's CRC check quarantines it), and jitter (real sleeps).

Each decision comes from the plan's seeded RNG streams — keyed by link,
message kind and a per-link call counter, never by wall clock — so a
seeded chaos run against a live service reproduces the same drop/retry
trace on every machine.

The injector implements the :class:`~repro.service.transport.Transport`
protocol as ONE attempt per ``send``: retries stay where they belong, in
:class:`ResilientTransport`, which must be constructed with
``retryable_errors=FaultingSocketTransport.RETRYABLE`` so injected
failures drive its retry/backoff/breaker loop instead of propagating.
"""

from __future__ import annotations

import time

from repro.distributed.network import Message
from repro.faults.plan import FaultPlan
from repro.faults.transport import ResilientTransport
from repro.service import wire
from repro.service.transport import (
    _KIND_TO_FRAME,
    ServiceError,
    SocketTransport,
)

__all__ = ["InjectedFault", "FaultingSocketTransport"]


class InjectedFault(ConnectionError):
    """An injected socket-level failure (a subclass of ``OSError``, so
    generic socket error handling treats it like the real thing)."""


class FaultingSocketTransport:
    """A :class:`Transport` that injects plan-driven faults into a real
    socket connection.

    Args:
        inner: the live connection to sabotage.
        plan: the seed-keyed fault plan deciding what goes wrong.
        sleep: the jitter sleep (monkeypatch in tests to keep them fast).

    Attributes:
        n_sends: ``send`` calls made.
        n_dropped: attempts dropped before touching the wire.
        n_truncated: attempts cut off mid-frame on the wire.
        n_corrupted: attempts delivered with flipped payload bytes.
    """

    #: Exception types ``ResilientTransport`` must treat as a lost
    #: attempt when this injector is in the path: injected faults and
    #: real socket errors are ``OSError``; a torn-down connection can
    #: also surface as a truncated response frame.
    RETRYABLE: tuple = (OSError, wire.WireError)

    def __init__(
        self,
        inner: SocketTransport,
        plan: FaultPlan,
        *,
        sleep=time.sleep,
    ) -> None:
        self.inner = inner
        self.plan = plan
        self._sleep = sleep
        self._calls: dict[tuple[int, int, str], int] = {}
        self.n_sends = 0
        self.n_dropped = 0
        self.n_truncated = 0
        self.n_corrupted = 0

    def _call_index(self, sender: int, receiver: int, kind: str) -> int:
        key = (sender, receiver, kind)
        index = self._calls.get(key, 0)
        self._calls[key] = index + 1
        return index

    def send(
        self, sender: int, receiver: int, kind: str, payload: bytes
    ) -> Message:
        """One sabotage-eligible attempt over the real connection.

        Raises:
            InjectedFault: the attempt was dropped or truncated (the
                retry layer treats it like a socket error).
            ServiceError: the frame arrived but the service refused it
                (e.g. a corrupted upload was quarantined) — a protocol
                verdict, deliberately *not* retryable.
        """
        mapping = _KIND_TO_FRAME.get(kind)
        if mapping is None:
            raise ValueError(
                f"kind {kind!r} has no wire mapping; known: "
                f"{sorted(_KIND_TO_FRAME)}"
            )
        frame_kind, __expected = mapping
        self.n_sends += 1
        site_end = sender if receiver < 0 else receiver
        faults = self.plan.link_faults_for(site_end)
        index = self._call_index(sender, receiver, kind)
        rng = self.plan.rng_for("socket", site_end, kind, index)
        # Fixed draw order keeps decisions independent of which fault
        # rates are enabled — the same property the simulated path pins.
        u_drop, u_trunc, u_corrupt, u_jitter = rng.random(4)

        if faults.jitter_s > 0.0:
            self._sleep(faults.jitter_s * u_jitter)

        if u_drop < faults.drop_prob:
            # Lost in flight: nothing hits the wire, the request/response
            # stream stays in sync, the attempt just fails.
            self.n_dropped += 1
            raise InjectedFault(
                f"injected drop ({kind!r} call {index} to site {site_end})"
            )

        frame = wire.encode_frame(
            frame_kind, payload, site_id=self.inner.site_id
        )

        if u_trunc < faults.truncate_prob:
            # Short write: a prefix of the real frame goes out, then the
            # connection dies mid-payload — the server sees an actual
            # truncated read.  Closing resyncs the stream; the inner
            # transport reconnects on the next attempt.
            keep = max(1, int(len(frame) * (0.1 + 0.8 * rng.random())))
            keep = min(keep, len(frame) - 1)
            self.inner.send_raw(frame[:keep])
            self.inner.close()
            self.n_truncated += 1
            raise InjectedFault(
                f"injected truncation after {keep}/{len(frame)} bytes "
                f"({kind!r} call {index} to site {site_end})"
            )

        if payload and u_corrupt < faults.corrupt_prob:
            # Flipped in flight: the header (length + CRC of the payload
            # as *sent*) goes out intact, the payload bytes do not — the
            # receiver's CRC check is the only thing that can tell.
            flipped = ResilientTransport._flip_bytes(payload, rng)
            self.inner.send_raw(frame[: wire.HEADER_SIZE] + flipped)
            self.n_corrupted += 1
            start = time.perf_counter()
            response = self.inner.read_frame()
            elapsed = time.perf_counter() - start
            self.inner.n_requests += 1
            self.inner.last_response = response
            if response.kind == wire.FrameKind.ERROR:
                status, detail = wire.decode_status(response.payload)
                raise ServiceError(status, detail)
            return Message(
                sender=sender,
                receiver=receiver,
                kind=kind,
                n_bytes=len(payload),
                sim_seconds=elapsed,
                payload_crc=wire.payload_crc32(payload),
            )

        return self.inner.send(sender, receiver, kind, payload)
